"""Fuzzing with and without recovered signatures (paper §6.2).

Builds a fleet of vulnerable contracts (each hiding INVALID-guarded
bugs), then runs the same fuzzer twice: once generating *typed* inputs
from SigRec-recovered signatures (ContractFuzzer) and once generating
random byte sequences (ContractFuzzer−).

Run:  python examples/fuzzing_campaign.py
"""

from repro.apps.fuzzer import ContractFuzzer, build_fuzz_targets


def main() -> None:
    targets = build_fuzz_targets(n_contracts=40, seed=17)
    planted = sum(len(t.functions) for t in targets)
    print(f"built {len(targets)} vulnerable contracts with {planted} planted bugs\n")

    typed = ContractFuzzer(typed=True, seed=1).fuzz_campaign(targets)
    untyped = ContractFuzzer(typed=False, seed=1).fuzz_campaign(targets)

    print(f"{'':>24} {'ContractFuzzer':>16} {'ContractFuzzer−':>16}")
    print(f"{'(typed inputs?)':>24} {'yes':>16} {'no':>16}")
    print("-" * 60)
    print(f"{'bugs found':>24} {typed.bug_count:>16} {untyped.bug_count:>16}")
    print(f"{'vulnerable contracts':>24} {len(typed.vulnerable_contracts):>16} "
          f"{len(untyped.vulnerable_contracts):>16}")
    print(f"{'executions':>24} {typed.executions:>16} {untyped.executions:>16}")

    if untyped.bug_count:
        gain_bugs = 100 * (typed.bug_count / untyped.bug_count - 1)
        gain_contracts = 100 * (
            len(typed.vulnerable_contracts) / len(untyped.vulnerable_contracts) - 1
        )
        print(f"\nwith recovered signatures the fuzzer finds "
              f"{gain_bugs:.0f}% more bugs and {gain_contracts:.0f}% more "
              f"vulnerable contracts (paper: +23% / +25%)")


if __name__ == "__main__":
    main()
