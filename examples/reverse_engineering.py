"""Reverse engineering with Erays and Erays+ (paper §6.3).

Lifts a contract's bytecode to three-address IR (Erays), then enhances
the IR with SigRec-recovered signatures (Erays+): named, typed
arguments, num-field names, and parameter-access plumbing removed.

Run:  python examples/reverse_engineering.py
"""

from repro import SigRec
from repro.abi.signature import FunctionSignature, Visibility
from repro.apps.erays import Erays, EraysPlus
from repro.compiler import compile_contract


def main() -> None:
    declared = [
        FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL),
        FunctionSignature.parse("stake(uint256[],bool)", Visibility.EXTERNAL),
    ]
    contract = compile_contract(declared)

    plain = Erays().lift(contract.bytecode)
    print("=== Erays (no signatures) ===")
    print(plain.render())
    print(f"\n[{plain.line_count} IR statements]\n")

    recovered = SigRec().recover(contract.bytecode)
    result = EraysPlus(recovered).enhance(contract.bytecode)
    print("=== Erays+ (with recovered signatures) ===")
    print(result.text)
    print(f"\nimprovements: {result.added_types} types added, "
          f"{result.added_param_names} parameter names added, "
          f"{result.added_num_names} num names added, "
          f"{result.removed_lines} plumbing lines removed")


if __name__ == "__main__":
    main()
