"""Corpus-scale recovery: accuracy, rule usage and timing.

Builds a mixed corpus of Solidity and Vyper contracts across many
codegen versions, recovers everything, and prints the RQ1/RQ4-style
statistics: overall accuracy, accuracy by language, rule-usage ranking
and the recovery-time distribution.

Run:  python examples/batch_recovery.py
"""

import statistics

from repro.corpus.datasets import build_open_source_corpus, build_vyper_corpus
from repro.corpus.evaluate import evaluate_corpus
from repro.sigrec.api import SigRec


def main() -> None:
    solidity = build_open_source_corpus(n_contracts=80, seed=7)
    vyper = build_vyper_corpus(n_contracts=30, seed=8)
    tool = SigRec()

    sol_report = evaluate_corpus(solidity, tool)
    vy_report = evaluate_corpus(vyper, tool)

    total = sol_report.total + vy_report.total
    correct = sol_report.correct + vy_report.correct
    print(f"recovered {total} function signatures "
          f"({len(solidity)} Solidity + {len(vyper)} Vyper contracts)")
    print(f"  overall accuracy : {correct / total:.1%} (paper: 98.7%)")
    print(f"  Solidity accuracy: {sol_report.accuracy:.1%} (paper: 98.7%)")
    print(f"  Vyper accuracy   : {vy_report.accuracy:.1%} (paper: 97.8%)")

    errors = sol_report.errors_by_quirk()
    if errors:
        print("\nerror attribution (the paper's five inaccuracy cases):")
        for case, count in sorted(errors.items()):
            print(f"  {case}: {count}")

    print("\nrule usage (Fig. 19), most-used first:")
    counts = tool.tracker.as_dict()
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])
    for rule_id, count in ranked[:8]:
        print(f"  {rule_id}: {count}")
    print(f"  ... least used: {tool.tracker.least_used()} "
          f"({counts[tool.tracker.least_used()]})")

    times = sol_report.timing_seconds() + vy_report.timing_seconds()
    print("\nrecovery time per signature (RQ3):")
    print(f"  mean   : {statistics.mean(times) * 1000:.2f} ms")
    print(f"  median : {statistics.median(times) * 1000:.2f} ms")
    print(f"  max    : {max(times) * 1000:.2f} ms")
    under_1s = sum(1 for t in times if t <= 1.0) / len(times)
    print(f"  <= 1 s : {under_1s:.1%} (paper: 99.7%)")


if __name__ == "__main__":
    main()
