"""Attack detection with ParChecker (paper §6.1).

Simulates a transaction stream against a token contract — mostly
well-formed calls, with a few malformed ones and a handful of short
address attacks mixed in — and uses the signatures recovered by SigRec
to validate every call's actual arguments.

Run:  python examples/attack_detection.py
"""

import random

from repro import SigRec
from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Visibility
from repro.apps.parchecker import CORRUPTION_KINDS, ParChecker, corrupt_calldata
from repro.compiler import compile_contract


def main() -> None:
    rng = random.Random(2024)
    signatures = [
        FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL),
        FunctionSignature.parse("mint(address,uint256,bool)", Visibility.EXTERNAL),
        FunctionSignature.parse("setData(bytes4,bytes)", Visibility.PUBLIC),
    ]
    contract = compile_contract(signatures)

    # Step 1: recover the signatures from bytecode (no source needed).
    recovered = SigRec().recover_map(contract.bytecode)
    checker = ParChecker({s: r.param_list for s, r in recovered.items()})
    print("recovered signatures:")
    for selector, rec in sorted(recovered.items()):
        print(f"  {rec.selector_hex}({rec.param_list})")

    # Step 2: synthesize a transaction stream with ~3% malformations.
    transactions = []
    transfer = signatures[0]
    for _ in range(1000):
        sig = rng.choice(signatures)
        values = [p.random_value(rng) for p in sig.params]
        roll = rng.random()
        if roll < 0.008:
            # A plausible attack: attacker-controlled address ending in
            # zeros, a realistic (small) token amount.
            attack_values = [rng.getrandbits(152) << 8, rng.randint(1, 10**6)]
            calldata = corrupt_calldata(transfer, attack_values, "short_address", rng)
            transactions.append(("short-address attack", calldata))
        elif roll < 0.03:
            kind = rng.choice([k for k in CORRUPTION_KINDS if k != "short_address"])
            calldata = corrupt_calldata(sig, values, kind, rng)
            if calldata is None:
                calldata = encode_call(sig.selector, list(sig.params), values)
                transactions.append(("valid", calldata))
            else:
                transactions.append((kind, calldata))
        else:
            calldata = encode_call(sig.selector, list(sig.params), values)
            transactions.append(("valid", calldata))

    # Step 3: scan the stream.
    invalid = 0
    attacks = 0
    missed = []
    for label, calldata in transactions:
        result = checker.check(calldata)
        if not result.valid:
            invalid += 1
        if result.short_address_attack:
            attacks += 1
        if label != "valid" and result.valid:
            missed.append(label)

    total = len(transactions)
    print(f"\nscanned {total} transactions:")
    print(f"  invalid actual arguments : {invalid} ({invalid / total:.1%})")
    print(f"  short address attacks    : {attacks}")
    if missed:
        print(f"  malformations not caught : {len(missed)} ({set(missed)})")
    else:
        print("  every injected malformation was caught")


if __name__ == "__main__":
    main()
