"""The full on-chain pipeline: deploy, transact, mine, recover, audit.

Uses the bundled chain substrate the way the paper uses mainnet:
contracts are deployed through init code, transactions are mined into
blocks, signatures are recovered from the *deployed* bytecode (with
duplicate contracts analyzed once), and ParChecker audits every
transaction in every block.

Run:  python examples/onchain_pipeline.py
"""

import random

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Visibility
from repro.apps.parchecker import ParChecker, corrupt_calldata
from repro.chain import Chain, Transaction
from repro.compiler import compile_contract
from repro.corpus.signatures import SignatureGenerator
from repro.sigrec.api import SigRec


def main() -> None:
    rng = random.Random(7)
    chain = Chain()
    chain.fund(0xAA, 10**30)

    # Deploy a small ecosystem: one token (many duplicate deployments,
    # like mainnet) and a few one-off contracts.
    token_sigs = [
        FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL),
        FunctionSignature.parse("approve(address,uint256)", Visibility.EXTERNAL),
    ]
    token = compile_contract(token_sigs)
    token_addresses = [
        chain.deploy(token.bytecode, sender=0xAA) for _ in range(5)
    ]
    gen = SignatureGenerator(seed=8, struct_weight=0, nested_weight=0)
    oneoff_addresses = []
    oneoff_sigs = {}
    for _ in range(3):
        sigs = gen.signatures(2)
        contract = compile_contract(sigs)
        address = chain.deploy(contract.bytecode, sender=0xAA)
        oneoff_addresses.append(address)
        oneoff_sigs[address] = sigs
    chain.mine()
    print(f"deployed {len(token_addresses)} token copies and "
          f"{len(oneoff_addresses)} one-off contracts")

    # Traffic: valid calls plus a couple of short-address attacks.
    transfer = token_sigs[0]
    for i in range(300):
        address = rng.choice(token_addresses)
        if i % 97 == 0:
            values = [rng.getrandbits(152) << 8, rng.randint(1, 10**6)]
            data = corrupt_calldata(transfer, values, "short_address", rng)
        else:
            sig = rng.choice(token_sigs)
            values = [p.random_value(rng) for p in sig.params]
            data = encode_call(sig.selector, list(sig.params), values)
        chain.send(Transaction(sender=0xAA, to=address, data=data))
        if i % 100 == 99:
            chain.mine()
    chain.mine()

    # Recover every deployed contract's signatures — duplicates once.
    tool = SigRec()
    all_addresses = token_addresses + oneoff_addresses
    bytecodes = [chain.code_at(a) for a in all_addresses]
    recovered = tool.recover_batch(bytecodes)
    unique = len({code for code in bytecodes})
    print(f"recovered signatures for {len(all_addresses)} contracts "
          f"({unique} unique bytecodes analyzed)")
    for address, sigs in zip(all_addresses[:3], recovered[:3]):
        listing = ", ".join(str(s) for s in sigs)
        print(f"  {address:#042x}: {listing}")

    # Audit every mined transaction with the recovered signatures.
    checker = ParChecker(
        {s.selector: s.param_list for sigs in recovered for s in sigs}
    )
    scanned = invalid = attacks = 0
    for block in chain.blocks:
        for tx in block.transactions:
            if tx.is_create:
                continue
            scanned += 1
            result = checker.check(tx.data)
            invalid += not result.valid
            attacks += result.short_address_attack
    print(f"\naudited {scanned} transactions across {len(chain.blocks)} blocks:")
    print(f"  invalid arguments: {invalid}")
    print(f"  short address attacks: {attacks}")


if __name__ == "__main__":
    main()
