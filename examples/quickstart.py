"""Quickstart: recover function signatures from EVM runtime bytecode.

Builds a small ERC-20-style token contract with the bundled
Solidity-like code generator, then recovers every public/external
function signature from the *bytecode alone* — no source, no signature
database.

Run:  python examples/quickstart.py
"""

from repro import SigRec
from repro.abi.signature import FunctionSignature, Visibility
from repro.compiler import CodegenOptions, compile_contract


def main() -> None:
    # An ERC-20-ish token: the ground truth we will pretend not to know.
    declared = [
        FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL),
        FunctionSignature.parse("approve(address,uint256)", Visibility.EXTERNAL),
        FunctionSignature.parse("transferFrom(address,address,uint256)",
                                Visibility.EXTERNAL),
        FunctionSignature.parse("balanceOf(address)", Visibility.EXTERNAL),
        FunctionSignature.parse("batchSend(address[],uint256[])", Visibility.PUBLIC),
        FunctionSignature.parse("setName(string)", Visibility.PUBLIC),
    ]
    contract = compile_contract(declared, CodegenOptions(version="0.5.5"))
    print(f"compiled token contract: {len(contract.bytecode)} bytes of bytecode\n")

    # Recovery: bytecode in, signatures out.
    tool = SigRec()
    recovered = tool.recover(contract.bytecode)

    print(f"{'function id':<12} {'recovered parameter types':<40} match?")
    print("-" * 70)
    truth = {int.from_bytes(s.selector, "big"): s for s in declared}
    for sig in recovered:
        expected = truth[sig.selector]
        ok = "yes" if sig.param_list == expected.param_list() else "NO"
        print(f"{sig.selector_hex:<12} {sig.param_list:<40} {ok}"
              f"   (declared: {expected.canonical()})")

    print("\nrules fired across this contract:")
    fired = {r: c for r, c in tool.tracker.as_dict().items() if c}
    for rule_id in sorted(fired, key=lambda r: int(r[1:])):
        print(f"  {rule_id}: {fired[rule_id]}x")


if __name__ == "__main__":
    main()
