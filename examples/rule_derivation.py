"""The §3.1 rule-derivation pipeline, end to end.

Generates single-parameter probe contracts for whole type families,
collects each family's accessing pattern from the compiled bytecode,
intersects them into common patterns and diffs them against the basic
type — the automated steps 1-3 from which the paper's 31 rules were
summarized.

Run:  python examples/rule_derivation.py
"""

from repro.abi.signature import Visibility
from repro.sigrec.rulegen import PatternLearner


def main() -> None:
    learner = PatternLearner()
    for visibility in (Visibility.PUBLIC, Visibility.EXTERNAL):
        print(f"===== {visibility.value} functions =====")
        report = learner.derive_report(visibility)
        for family, data in report.items():
            print(f"\nfamily {family}  (members: {', '.join(data.members[:4])}"
                  f"{'...' if len(data.members) > 4 else ''})")
            print(f"  common accessing pattern ({len(data.common)} ops):")
            print(f"    {' '.join(data.common)}")
            if data.differential:
                print(f"  differential vs uint8 ({len(data.differential)} ops):")
                print(f"    {' '.join(data.differential)}")
        print()

    print("These differentials are exactly the ingredients of the rules:")
    print("  T[]    adds offset/num CALLDATALOADs + a MUL-32 copy  -> R1, R7")
    print("  bytes  adds the round-to-32 mask before its copy      -> R8")
    print("  T[N]   adds CALLDATACOPY + MLOAD                      -> R6")
    print("  T[N][M] adds the LT bound check + loop jumps          -> R9/R3")


if __name__ == "__main__":
    main()
