"""Parallel + cached batch recovery at chain scale.

Two claims, measured separately:

* **Parallel speedup** — on a no-duplicate corpus (the worst case for
  memoization: every job must run the engine), sharding across a
  process pool beats the serial path by >= 2x on machines with >= 4
  cores.  Per-contract analysis shares nothing, so the workload scales
  with cores; the paper's 368,679 unique mainnet bytecodes are exactly
  this shape.
* **Warm cache** — a second run over the same corpus with a persistent
  cache directory runs zero engine executions (100% hit rate) and still
  reproduces the identical signatures and rule-usage statistics.
"""

import os
import time

import pytest

from repro.corpus.signatures import SignatureGenerator
from repro.compiler import compile_contract
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery


def _unique_corpus(n_contracts: int = 48, seed: int = 77):
    """No-duplicate bytecodes: every contract is real engine work."""
    gen = SignatureGenerator(seed=seed)
    codes = []
    seen = set()
    while len(codes) < n_contracts:
        code = compile_contract(gen.signatures(6)).bytecode
        if code not in seen:
            seen.add(code)
            codes.append(code)
    return codes


def _timed_run(codes, workers, cache_dir=None):
    runner = BatchRecovery(tool=SigRec(), workers=workers, cache_dir=cache_dir)
    start = time.perf_counter()
    results = runner.recover_all(codes)
    elapsed = time.perf_counter() - start
    return results, runner, elapsed


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup is only demonstrable on >= 4 cores",
)
def test_parallel_speedup_on_unique_corpus(record):
    codes = _unique_corpus()
    workers = min(os.cpu_count() or 1, 8)

    _, _, serial_elapsed = _timed_run(codes, workers=0)
    parallel_results, runner, parallel_elapsed = _timed_run(codes, workers=workers)
    speedup = serial_elapsed / parallel_elapsed

    record(
        "parallel_speedup",
        [
            "Parallel batch recovery: no-duplicate corpus (worst case for dedup)",
            f"corpus: {len(codes)} unique contracts",
            f"serial   : {serial_elapsed:.2f}s "
            f"({len(codes) / serial_elapsed:,.0f} contracts/s)",
            f"parallel : {parallel_elapsed:.2f}s with {workers} workers "
            f"({len(codes) / parallel_elapsed:,.0f} contracts/s)",
            f"speedup  : {speedup:.1f}x",
            f"stats    : {runner.stats.summary()}",
        ],
    )
    assert len(parallel_results) == len(codes)
    assert speedup >= 2.0


def test_warm_cache_skips_engine_entirely(record, tmp_path):
    codes = _unique_corpus(n_contracts=12, seed=78)
    cache_dir = str(tmp_path / "sigcache")

    cold_results, cold_runner, cold_elapsed = _timed_run(
        codes, workers=0, cache_dir=cache_dir
    )
    warm_results, warm_runner, warm_elapsed = _timed_run(
        codes, workers=0, cache_dir=cache_dir
    )

    record(
        "warm_cache",
        [
            "Persistent result cache: repeat run over an unchanged corpus",
            f"corpus: {len(codes)} unique contracts",
            f"cold: {cold_elapsed:.3f}s ({cold_runner.stats.summary()})",
            f"warm: {warm_elapsed:.3f}s ({warm_runner.stats.summary()})",
            f"warm speedup: {cold_elapsed / warm_elapsed:.0f}x",
            "paper context: 37,009,570 deployed contracts re-scanned daily "
            "need only diff against 368,679 cached uniques",
        ],
    )
    assert cold_runner.stats.cache_misses == len(codes)
    assert warm_runner.stats.cache_hits == len(codes)
    assert warm_runner.stats.cache_hit_rate == 1.0
    assert warm_runner.stats.analyzed == 0  # no engine executions at all
    assert warm_elapsed < cold_elapsed

    def essence(results):
        return [
            [(s.selector, s.param_types, s.fired_rules) for s in contract]
            for contract in results
        ]

    assert essence(warm_results) == essence(cold_results)
