#!/usr/bin/env python
"""Per-PR perf changelog CLI — thin wrapper over repro.obs.perfhistory.

Usage (from the repo root, after running the benchmark suite so that
``BENCH_throughput.json`` is fresh):

    PYTHONPATH=src python benchmarks/perf_history.py append "PR note"
    PYTHONPATH=src python benchmarks/perf_history.py check [threshold]

``append`` writes the next ``benchmarks/history/NNNN.json`` snapshot;
``check`` exits non-zero when the live document regresses >20% against
the newest snapshot on any tracked tier.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

if __name__ == "__main__":
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.obs.perfhistory import main

    raise SystemExit(main(sys.argv[1:], repo_root=REPO_ROOT))
