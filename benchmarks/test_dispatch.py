"""Dispatch micro-benchmark: table lookup vs the legacy string chain.

Both execution engines used to resolve every executed instruction
through an ``if name == "ADD" ... elif name == "MUL" ...`` chain of
~80 string comparisons.  The unified semantics core replaces that with
one dict lookup into a per-domain dispatch table, pre-bound per pc.
This benchmark measures pure resolution cost on a realistic instruction
stream; the numbers are printed for the CI log, not gated — end-to-end
throughput is gated separately in ``test_throughput.py``.
"""

import time

from repro.corpus.signatures import SignatureGenerator
from repro.compiler import compile_contract
from repro.evm.disasm import disassemble
from repro.evm.semantics import ConcreteDomain, dispatch_table

#: The mnemonic order of the legacy interpreter's elif chain.
_LEGACY_ORDER = [
    "STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT", "JUMPDEST",
    "JUMP", "JUMPI", "ADD", "MUL", "SUB", "DIV", "SDIV", "MOD", "SMOD",
    "EXP", "SIGNEXTEND", "LT", "GT", "SLT", "SGT", "EQ", "ISZERO", "AND",
    "OR", "XOR", "NOT", "BYTE", "SHL", "SHR", "SAR", "ADDMOD", "MULMOD",
    "SHA3", "ADDRESS", "ORIGIN", "CALLER", "CALLVALUE", "GASPRICE",
    "COINBASE", "TIMESTAMP", "NUMBER", "DIFFICULTY", "GASLIMIT",
    "CHAINID", "SELFBALANCE", "BASEFEE", "PC", "MSIZE", "GAS", "CODESIZE",
    "RETURNDATASIZE", "BALANCE", "EXTCODESIZE", "EXTCODEHASH",
    "BLOCKHASH", "CALLDATALOAD", "CALLDATASIZE", "CALLDATACOPY",
    "CODECOPY", "RETURNDATACOPY", "EXTCODECOPY", "MLOAD", "MSTORE",
    "MSTORE8", "SLOAD", "SSTORE", "POP", "LOG0", "LOG1", "LOG2", "LOG3",
    "LOG4", "CREATE", "CREATE2", "CALL", "CALLCODE", "DELEGATECALL",
    "STATICCALL",
]


def _instruction_stream(n_contracts: int = 8, seed: int = 31):
    """Disassembled instructions of real generated dispatchers."""
    gen = SignatureGenerator(seed=seed, struct_weight=0, nested_weight=0)
    stream = []
    for _ in range(n_contracts):
        code = compile_contract(gen.signatures(3)).bytecode
        stream.extend(disassemble(code))
    return stream


def _resolve_by_chain(name: str) -> int:
    """Model the legacy chain: compare mnemonics in the historical
    order (PUSH/DUP/SWAP prefix classes first, as the old loop did)."""
    if name.startswith("PUSH"):
        return -1
    if name.startswith("DUP"):
        return -2
    if name.startswith("SWAP"):
        return -3
    for position, candidate in enumerate(_LEGACY_ORDER):
        if name == candidate:
            return position
    return -4  # UNKNOWN


def test_dispatch_table_vs_string_chain(record):
    stream = _instruction_stream()
    table = dispatch_table(ConcreteDomain)
    rounds = 40

    start = time.perf_counter()
    for _ in range(rounds):
        for ins in stream:
            table[ins.op.code]
    table_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        for ins in stream:
            _resolve_by_chain(ins.op.name)
    chain_elapsed = time.perf_counter() - start

    resolved = rounds * len(stream)
    table_rate = resolved / table_elapsed
    chain_rate = resolved / chain_elapsed
    record(
        "dispatch_microbench",
        [
            "Dispatch resolution: semantics table vs legacy string chain",
            f"instruction stream: {len(stream)} instructions x {rounds} rounds",
            f"table lookup : {table_rate:,.0f} resolutions/s",
            f"string chain : {chain_rate:,.0f} resolutions/s",
            f"speedup      : {table_rate / chain_rate:.1f}x",
            "(informational; end-to-end throughput is gated in "
            "test_throughput.py)",
        ],
    )
    # Sanity only — not a performance gate: both paths resolved
    # something for every instruction.
    assert resolved > 0
