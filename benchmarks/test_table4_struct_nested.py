"""Table 4 (§5.6): recovery of struct and nested-array parameters.

Paper: existing tools top out at ~11% (only database hits — their
built-in rules cannot handle ABIEncoderV2 types at all), while SigRec
reaches 61.3%, with every SigRec miss being a case-5 ambiguity.
SigRec wins by a large factor; its accuracy here is *lower* than on
other types — both properties must reproduce.
"""

from repro.baselines import DatabaseTool, EveemLike, build_efsd
from repro.corpus.evaluate import evaluate_baseline, evaluate_corpus
from repro.sigrec.api import SigRec


def test_table4_struct_and_nested(benchmark, struct_corpus, record):
    # EFSD records ~10% of these signatures (the paper: 10.1% of
    # struct/nested functions are in EFSD).
    db = build_efsd([struct_corpus], coverage=0.101, seed=44)

    def run():
        sig_report = evaluate_corpus(struct_corpus, SigRec())
        osd = evaluate_baseline(struct_corpus, DatabaseTool("OSD", db))
        eveem = evaluate_baseline(struct_corpus, EveemLike(db))
        return sig_report, osd, eveem

    sig_report, osd, eveem = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        "Table 4: struct and nested-array parameters",
        f"{'tool':<10} {'paper acc':>10} {'measured acc':>13}",
        f"{'SigRec':<10} {'61.3%':>10} {sig_report.accuracy:>12.1%}",
        f"{'OSD':<10} {'<=11%':>10} {osd.accuracy:>12.1%}",
        f"{'Eveem':<10} {'10.1%':>10} {eveem.accuracy:>12.1%}",
        f"functions: {sig_report.total}",
    ]
    record("table4_struct_nested", rows)
    benchmark.extra_info["sigrec_accuracy"] = sig_report.accuracy

    # Shape: SigRec far ahead; baselines capped by database coverage.
    assert sig_report.accuracy > 0.5
    assert osd.accuracy <= 0.2
    assert eveem.accuracy <= 0.25
    assert sig_report.accuracy > 3 * max(osd.accuracy, eveem.accuracy)
