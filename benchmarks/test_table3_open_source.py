"""Table 3 (§5.6): dataset 3 — all unique open-source contracts.

Paper shape: SigRec leads every other tool by at least 22.5 points;
the database tools stay below 51% because more than 49% of open-source
signatures are missing from EFSD; Eveem beats OSD (same database, but
heuristics on misses); Gigahorse aborts on some contracts.
"""

from repro.baselines import DatabaseTool, EveemLike, GigahorseLike
from repro.corpus.evaluate import evaluate_baseline
from repro.sigrec.api import SigRec


def test_table3_open_source(benchmark, open_corpus, open_report, efsd,
                            tool_databases, record):
    def run():
        return {
            "OSD": evaluate_baseline(
                open_corpus, DatabaseTool("OSD", tool_databases["OSD"])
            ),
            "EBD": evaluate_baseline(
                open_corpus, DatabaseTool("EBD", tool_databases["EBD"])
            ),
            "JEB": evaluate_baseline(
                open_corpus, DatabaseTool("JEB", tool_databases["JEB"])
            ),
            "Eveem": evaluate_baseline(open_corpus, EveemLike(efsd)),
            "Gigahorse": evaluate_baseline(open_corpus, GigahorseLike(efsd)),
        }

    baseline_reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        "Table 3: dataset 3 (open-source contracts)",
        f"{'tool':<12} {'measured acc':>13} {'no answer':>10} {'aborts':>8}",
        f"{'SigRec':<12} {open_report.accuracy:>12.1%} {'-':>10} {'-':>8}",
    ]
    best_baseline = 0.0
    for name, report in baseline_reports.items():
        rows.append(
            f"{name:<12} {report.accuracy:>12.1%} {report.no_answer:>10} "
            f"{report.aborted_contracts:>8}"
        )
        best_baseline = max(best_baseline, report.accuracy)
    margin = open_report.accuracy - best_baseline
    rows.append(f"SigRec margin over best baseline: {margin:.1%} (paper: >=22.5%)")
    record("table3_open_source", rows)
    benchmark.extra_info["margin"] = margin

    assert margin >= 0.225
    for name in ("OSD", "EBD", "JEB"):
        assert baseline_reports[name].accuracy < 0.60
    # Eveem >= OSD: heuristics on database misses help.
    assert baseline_reports["Eveem"].accuracy >= baseline_reports["OSD"].accuracy
    assert baseline_reports["Gigahorse"].aborted_contracts > 0
