"""Inference throughput: indexed event analysis vs the reference path.

The seed profile put type inference at ~83% of attributable recovery
wall time — the pass rescanned the whole load list for every load and
re-walked expression trees for every predicate probe.  The indexed
rewrite builds the load/copy derivation graph and the label inverted
index once per function and memoizes the structural predicates, so this
benchmark gates two figures:

* **inference alone**: events/second through ``infer_function`` with
  ``indexed=True`` must be at least 3x the retained reference path
  (``indexed=False`` — the original quadratic scans, kept as the
  differential oracle);
* **cold end-to-end**: full ``SigRec.recover`` with indexed inference
  must beat the same corpus with the reference path forced, by 1.5x.

Both figures land in ``BENCH_throughput.json`` under ``inference`` and
are tracked by the perf-history trajectory gate.
"""

import time

from repro.corpus.signatures import SignatureGenerator
from repro.compiler import compile_contract
from repro.evm.predecode import clear_program_cache
from repro.sigrec import api as api_module
from repro.sigrec.api import SigRec
from repro.sigrec.engine import TASEEngine
from repro.sigrec.inference import infer_function
from repro.sigrec.rules import RuleTracker

INFERENCE_SPEEDUP_GATE = 3.0
COLD_E2E_SPEEDUP_GATE = 1.5


def _corpus():
    """Struct/nested-heavy contracts: the inference-dominated shape."""
    codes = []
    for seed in (7, 11, 23):
        gen = SignatureGenerator(seed=seed, struct_weight=2, nested_weight=2)
        codes.extend(compile_contract(gen.signatures(6)).bytecode
                     for _ in range(10))
    return codes


def _collect_events(codes):
    """One TASE pass per contract; the inference inputs, selector order."""
    collected = []
    for code in codes:
        result = TASEEngine(code).run()
        for selector in sorted(result.functions):
            collected.append(result.functions[selector])
    return collected


def _event_count(events_list):
    return sum(
        len(ev.loads) + len(ev.copies) + len(ev.uses) for ev in events_list
    )


def _measure_inference(events_list, indexed, trials=3):
    """Best-of-``trials`` events/s through the inference pass alone."""
    n_events = _event_count(events_list)
    best = 0.0
    for _ in range(trials):
        start = time.perf_counter()
        for events in events_list:
            infer_function(events, RuleTracker(), indexed=indexed)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, n_events / elapsed)
    return best


def _measure_cold_recovery(codes, trials=2):
    """Best-of cold full-pipeline contracts/s (fresh tool per contract,
    memo tiers off, decode cache dropped per pass)."""
    best = 0.0
    for _ in range(trials):
        clear_program_cache()
        start = time.perf_counter()
        for code in codes:
            SigRec(memo=False, inference_memo=False).recover(code)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, len(codes) / elapsed)
    return best


def test_inference_events_per_second(record, bench_json):
    """Indexed inference >=3x the reference path; cold end-to-end
    recovery >=1.5x with the index in place."""
    codes = _corpus()
    events_list = _collect_events(codes)
    n_events = _event_count(events_list)

    indexed_rate = _measure_inference(events_list, indexed=True)
    reference_rate = _measure_inference(events_list, indexed=False)
    speedup = indexed_rate / reference_rate if reference_rate else 0.0

    # End-to-end, both sides cold: the reference side forces
    # ``indexed=False`` through the one seam both recovery strategies
    # share — the module-level ``infer_function`` binding in the API.
    e2e_indexed = _measure_cold_recovery(codes)
    original = api_module.infer_function

    def reference_infer(events, tracker, **kwargs):
        kwargs["indexed"] = False
        return original(events, tracker, **kwargs)

    api_module.infer_function = reference_infer
    try:
        e2e_reference = _measure_cold_recovery(codes)
    finally:
        api_module.infer_function = original
    e2e_speedup = e2e_indexed / e2e_reference if e2e_reference else 0.0

    record(
        "inference_speed",
        [
            "Type-inference throughput (indexed event analysis)",
            f"corpus: {len(codes)} contracts, {len(events_list)} functions, "
            f"{n_events:,} events",
            f"indexed  : {indexed_rate:,.0f} events/s",
            f"reference: {reference_rate:,.0f} events/s "
            "(retained quadratic path, the differential oracle)",
            f"inference speedup: {speedup:.2f}x "
            f"(gate: >={INFERENCE_SPEEDUP_GATE:.0f}x)",
            f"cold end-to-end: {e2e_indexed:,.1f} vs "
            f"{e2e_reference:,.1f} contracts/s -> {e2e_speedup:.2f}x "
            f"(gate: >={COLD_E2E_SPEEDUP_GATE:.1f}x)",
        ],
    )
    bench_json(
        "inference",
        {
            "contracts": len(codes),
            "functions": len(events_list),
            "events": n_events,
            "events_per_second": round(indexed_rate, 2),
            "events_per_second_reference": round(reference_rate, 2),
            "speedup_vs_baseline": round(speedup, 3),
            "cold_e2e_contracts_per_second": round(e2e_indexed, 2),
            "cold_e2e_speedup": round(e2e_speedup, 3),
        },
    )
    assert speedup >= INFERENCE_SPEEDUP_GATE
    assert e2e_speedup >= COLD_E2E_SPEEDUP_GATE
