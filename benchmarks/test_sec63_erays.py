"""§6.3: improving reverse engineering with recovered signatures.

Paper: applying Erays+ to 53,166 open-source contracts improves every
one of them, adding on average 5.5 types, 15 parameter names and 3.4
num names per contract while removing 15 lines of parameter-access
plumbing.  We reproduce the pipeline over the open-source corpus.
"""

from repro.apps.erays import Erays, EraysPlus
from repro.sigrec.api import SigRec


def test_sec63_erays_plus(benchmark, open_corpus, record):
    tool = SigRec()
    sample = open_corpus.cases[:60]

    def run():
        improved = 0
        types_total = names_total = nums_total = removed_total = 0
        for case in sample:
            recovered = tool.recover(case.contract.bytecode)
            result = EraysPlus(recovered).enhance(case.contract.bytecode)
            if (
                result.added_types
                or result.added_param_names
                or result.removed_lines
            ):
                improved += 1
            types_total += result.added_types
            names_total += result.added_param_names
            nums_total += result.added_num_names
            removed_total += result.removed_lines
        n = len(sample)
        return (
            improved / n,
            types_total / n,
            names_total / n,
            nums_total / n,
            removed_total / n,
        )

    improved, types_avg, names_avg, nums_avg, removed_avg = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    record(
        "sec63_erays",
        [
            "§6.3: Erays+ readability improvements per contract",
            f"contracts improved      paper=100%  measured={improved:.0%}",
            f"types added (avg)       paper=5.5   measured={types_avg:.1f}",
            f"param names added (avg) paper=15    measured={names_avg:.1f}",
            f"num names added (avg)   paper=3.4   measured={nums_avg:.1f}",
            f"plumbing lines removed  paper=15    measured={removed_avg:.1f}",
        ],
    )
    benchmark.extra_info["improved_ratio"] = improved

    assert improved == 1.0, "Erays+ should improve every contract"
    assert types_avg >= 1
    assert names_avg >= types_avg  # names >= types (arrays get names too)
    assert removed_avg >= 1
