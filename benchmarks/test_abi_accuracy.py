"""ABI-completion accuracy and recovery overhead.

Two gates for the mutability/returns passes:

* **Accuracy** — over corpora whose compiled contracts carry
  ground-truth ``stateMutability`` and output skeletons (CALLVALUE
  guards, effect markers, RETURN buffers — including the obfuscated
  guard form), the recovered verdicts must match at least 95% of
  functions on each axis.  The measured numbers feed
  ``EXPERIMENTS.md``.
* **Overhead** — the three passes the ABI work added to every analysis
  (reach, mutability, returns) must cost under 5% of cold end-to-end
  recovery.  Measured as a throughput ratio between recovery under the
  full default pipeline and under the pre-ABI pipeline (the default
  minus exactly those three passes — the storage/lint cost relative to
  ``CORE_PIPELINE`` is already gated by ``test_storage_accuracy``),
  exported as ``abi.throughput_ratio`` for the perf-history trajectory.
"""

import time

from repro.analysis import analyze
from repro.analysis import framework as _framework
from repro.analysis.framework import AnalysisPipeline
from repro.corpus.datasets import build_abi_corpus, build_storage_corpus
from repro.sigrec.api import SigRec

ACCURACY_FLOOR = 0.95
OVERHEAD_LIMIT = 1.05
ROUNDS = 7


def _score(corpus):
    """Per-axis (hits, total) plus misses vs the compiled ground truth."""
    mut_hits = ret_hits = total = 0
    misses = []
    for case in corpus.cases:
        analysis = analyze(case.contract.bytecode)
        for i, sig in enumerate(case.contract.signatures):
            selector = int.from_bytes(sig.selector, "big")
            truth_mut = case.contract.mutability[i]
            truth_ret = case.contract.returns[i]
            got_mut = analysis.mutability.functions.get(selector)
            got = analysis.returns.functions.get(selector)
            got_ret = got.shape if got is not None else None
            total += 1
            if got_mut == truth_mut:
                mut_hits += 1
            else:
                misses.append((str(sig), "mutability", truth_mut, got_mut))
            if got_ret == truth_ret:
                ret_hits += 1
            else:
                misses.append((str(sig), "returns", truth_ret, got_ret))
    return mut_hits, ret_hits, total, misses


def test_abi_recovery_accuracy(benchmark, record, bench_json):
    abi_corpus = build_abi_corpus(n_contracts=24, seed=23)
    # Legacy emission (no guards, STOP epilogues): everything must read
    # as payable with an empty output skeleton — no false guards.
    legacy_corpus = build_storage_corpus(n_contracts=8, seed=21)

    def run():
        return _score(abi_corpus), _score(legacy_corpus)

    (a_mut, a_ret, a_total, a_miss), (l_mut, l_ret, l_total, l_miss) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    mut_accuracy = (a_mut + l_mut) / (a_total + l_total)
    ret_accuracy = (a_ret + l_ret) / (a_total + l_total)
    record(
        "abi_accuracy",
        [
            "ABI completion accuracy (ground-truth corpora)",
            f"abi corpus: mutability {a_mut}/{a_total}, returns "
            f"{a_ret}/{a_total} over {len(abi_corpus.cases)} contracts",
            f"legacy corpus (payable/STOP): mutability {l_mut}/{l_total}, "
            f"returns {l_ret}/{l_total} over {len(legacy_corpus.cases)} "
            "contracts",
            f"overall: mutability {mut_accuracy:.1%}, returns "
            f"{ret_accuracy:.1%} (floor {ACCURACY_FLOOR:.0%})",
        ],
    )
    bench_json(
        "abi",
        {
            "functions": a_total + l_total,
            "mutability_accuracy": round(mut_accuracy, 4),
            "returns_accuracy": round(ret_accuracy, 4),
        },
    )
    assert a_total and l_total
    assert mut_accuracy >= ACCURACY_FLOOR, (
        f"mutability accuracy {mut_accuracy:.1%}; first misses: "
        f"{(a_miss + l_miss)[:3]}"
    )
    assert ret_accuracy >= ACCURACY_FLOOR, (
        f"return-shape accuracy {ret_accuracy:.1%}; first misses: "
        f"{(a_miss + l_miss)[:3]}"
    )


def _cold_recovery_pass(bytecodes):
    recovered = 0
    for code in bytecodes:
        # Fresh tool per contract: every memo tier cold, so the analysis
        # pipeline runs once per contract like a first-sight batch.
        recovered += len(SigRec(static_check=False).recover(code))
    return recovered


def test_abi_pass_overhead_under_five_percent(benchmark, record, bench_json):
    bytecodes = [
        case.contract.bytecode
        for case in build_abi_corpus(n_contracts=14, seed=23).cases
    ]

    def run():
        original = _framework.DEFAULT_PIPELINE
        pre_abi = AnalysisPipeline(tuple(
            p for p in original.passes
            if p.name not in ("reach", "mutability", "returns")
        ))
        try:
            ratios = []
            full_n = core_n = 0
            # Paired CPU-time rounds, gate on the minimum ratio: noise
            # inflates individual rounds, a real overhead regression
            # lifts all of them (same scheme as the storage gate).
            _cold_recovery_pass(bytecodes)  # untimed warmup
            for _round in range(ROUNDS):
                _framework.DEFAULT_PIPELINE = original
                start = time.process_time()
                full_n = _cold_recovery_pass(bytecodes)
                full_elapsed = time.process_time() - start
                _framework.DEFAULT_PIPELINE = pre_abi
                start = time.process_time()
                core_n = _cold_recovery_pass(bytecodes)
                core_elapsed = time.process_time() - start
                ratios.append(full_elapsed / core_elapsed)
            return ratios, full_n, core_n
        finally:
            _framework.DEFAULT_PIPELINE = original

    ratios, full_n, core_n = benchmark.pedantic(run, rounds=1, iterations=1)
    assert full_n == core_n > 0
    best = min(ratios)
    median = sorted(ratios)[len(ratios) // 2]
    record(
        "abi_overhead",
        [
            "ABI-pass overhead on cold recovery "
            "(full pipeline vs pre-ABI pipeline)",
            f"contracts: {len(bytecodes)} | functions: {full_n}",
            f"paired rounds: {ROUNDS} (CPU time)",
            f"overhead ratio: best {best:.4f}, median {median:.4f} "
            f"(limit {OVERHEAD_LIMIT})",
        ],
    )
    bench_json(
        "abi",
        {
            "contracts": len(bytecodes),
            "overhead_ratio": round(best, 4),
            # Perf-history tier: full-pipeline throughput relative to
            # the pre-ABI passes — drops mean the ABI passes got
            # slower.  The median round, not the min: the gate's min is
            # noise-biased downward, and a flukishly low round would
            # seed the history with a "speedup" later runs cannot hold.
            "throughput_ratio": round(1.0 / median, 4),
        },
    )
    assert best < OVERHEAD_LIMIT, (
        f"ABI passes cost {best:.4f}x core recovery in every round "
        f"(per-round: {', '.join(f'{r:.3f}' for r in ratios)})"
    )
