"""Fig. 15 / Fig. 16 (§5.3): accuracy across compiler versions.

Paper: never below 96% for all 155 Solidity versions; above 90% for
most Vyper versions (the dips come from tiny per-version samples, not
compiler features); no downward trend as compilers evolve.

Fig. 15's claim isolates *compiler-version* robustness, so its corpus
is built per version with a fixed contract count and no inaccuracy-case
injection (those cases are version-independent and measured by RQ1).
"""

import random

from repro.compiler.options import solidity_versions
from repro.corpus.datasets import Corpus, _build_contract_case
from repro.corpus.evaluate import evaluate_corpus
from repro.corpus.signatures import SignatureGenerator
from repro.sigrec.api import SigRec


def _per_version_corpus(contracts_per_version: int = 3, seed: int = 15):
    rng = random.Random(seed)
    gen = SignatureGenerator(seed=seed + 1)
    corpus = Corpus()
    for options in solidity_versions():
        for _ in range(contracts_per_version):
            corpus.cases.append(
                _build_contract_case(
                    gen, rng, options, rng.randint(1, 4), quirk_rate=0.0
                )
            )
    return corpus


def test_fig15_solidity_versions(benchmark, record):
    corpus = _per_version_corpus()

    def run():
        return evaluate_corpus(corpus, SigRec()).accuracy_by_version()

    by_version = benchmark.pedantic(run, rounds=1, iterations=1)
    worst_version = min(by_version, key=lambda v: by_version[v])
    worst = by_version[worst_version]
    above_96 = sum(1 for a in by_version.values() if a >= 0.96)

    # No downward trend: split versions into old (0.1-0.4) and new
    # (0.5-0.8) eras and compare average accuracy.
    old = [a for v, a in by_version.items() if v.split(".")[1] in "1234"]
    new = [a for v, a in by_version.items() if v.split(".")[1] in "5678"]
    old_avg = sum(old) / len(old) if old else 1.0
    new_avg = sum(new) / len(new) if new else 1.0

    record(
        "fig15_solidity_versions",
        [
            "Fig. 15: accuracy per Solidity compiler version",
            f"versions covered: {len(by_version)} "
            f"(paper: 155, incl. optimized variants)",
            f"worst version   paper=>96%  measured={worst:.1%} ({worst_version})",
            f"versions >=96%: {above_96}/{len(by_version)}",
            f"old-era average  (0.1-0.4): {old_avg:.1%}",
            f"new-era average  (0.5-0.8): {new_avg:.1%}",
            "trend: no degradation with compiler evolution"
            if new_avg >= old_avg - 0.05 else "trend: DEGRADED (unexpected)",
        ],
    )
    benchmark.extra_info["worst_version_accuracy"] = worst
    assert len(by_version) >= 150
    assert worst >= 0.8
    assert above_96 >= 0.9 * len(by_version)
    assert new_avg >= old_avg - 0.05


def test_fig16_vyper_versions(benchmark, vyper_corpus, record):
    report = benchmark.pedantic(
        lambda: evaluate_corpus(vyper_corpus, SigRec()), rounds=1, iterations=1
    )
    by_version = report.accuracy_by_version()
    above_90 = sum(1 for a in by_version.values() if a >= 0.9)
    record(
        "fig16_vyper_versions",
        [
            "Fig. 16: accuracy per Vyper compiler version",
            f"versions covered: {len(by_version)}",
            f"versions >=90%   paper=12/15  measured={above_90}/{len(by_version)}",
            f"overall vyper accuracy: {report.accuracy:.1%}",
        ],
    )
    assert above_90 >= 0.8 * len(by_version)
