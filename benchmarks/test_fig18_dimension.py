"""Fig. 18 (§5.4): recovery time vs array dimension.

Paper: recovering an array parameter whose dimension grows from 1 to 20
costs time that increases *linearly* with the dimension, because each
extra dimension adds one bound check and one loop level.
"""

import time

from repro.abi.signature import FunctionSignature, Visibility
from repro.abi.types import ArrayType, UIntType
from repro.compiler import compile_contract
from repro.sigrec.api import SigRec


def _array_of_dimension(dims: int) -> ArrayType:
    current = UIntType(256)
    for _ in range(dims):
        current = ArrayType(current, 2)
    return current  # uint256[2][2]...[2], `dims` dimensions


def _measure(dims: int, repeats: int = 7) -> float:
    sig = FunctionSignature(
        "f", (_array_of_dimension(dims),), Visibility.EXTERNAL
    )
    contract = compile_contract([sig])
    tool = SigRec()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        out = tool.recover(contract.bytecode)
        best = min(best, time.perf_counter() - start)
        assert out, f"dimension {dims} not recovered"
    return best


def test_fig18_time_grows_linearly_with_dimension(benchmark, record):
    dimensions = list(range(1, 21))

    def run():
        return [_measure(d) for d in dimensions]

    times = benchmark.pedantic(run, rounds=1, iterations=1)

    # Least-squares fit t = a*d + b; linearity = correlation with d.
    n = len(dimensions)
    mean_d = sum(dimensions) / n
    mean_t = sum(times) / n
    cov = sum((d - mean_d) * (t - mean_t) for d, t in zip(dimensions, times))
    var_d = sum((d - mean_d) ** 2 for d in dimensions)
    var_t = sum((t - mean_t) ** 2 for t in times)
    slope = cov / var_d
    correlation = cov / (var_d**0.5 * var_t**0.5) if var_t else 1.0

    rows = [
        "Fig. 18: recovery time vs array dimension (uint256 items)",
        "paper: time grows linearly from dimension 1 to 20",
        f"measured slope: {slope * 1000:.3f} ms per extra dimension",
        f"dimension-time correlation: {correlation:.3f}",
    ]
    rows += [f"  dim {d:2d}: {t * 1000:.2f} ms" for d, t in zip(dimensions, times)]
    record("fig18_dimension", rows)
    benchmark.extra_info["correlation"] = correlation

    assert slope > 0, "time must grow with dimension"
    assert correlation > 0.8, "growth should be close to linear"
    # Comparing averaged halves is robust to per-point scheduler noise.
    first_half = sum(times[:10]) / 10
    second_half = sum(times[10:]) / 10
    assert second_half > first_half
