"""Fig. 17 + RQ3 (§5.4): time to recover one function signature.

Paper: 5e-5 s to 23.5 s per signature, average 0.074 s, and 99.7% of
signatures take at most 1 second.  Our substrate is smaller than
mainnet contracts, so absolute numbers are lower; the *shape* — a
tight distribution with nearly everything under a second — holds.
"""

import statistics

from repro.abi.signature import FunctionSignature, Visibility
from repro.compiler import compile_contract
from repro.sigrec.api import SigRec


def test_fig17_time_distribution(benchmark, open_report, record):
    times = open_report.timing_seconds()

    def summarize():
        return (
            statistics.mean(times),
            statistics.median(times),
            max(times),
            sum(1 for t in times if t <= 1.0) / len(times),
        )

    mean, median, worst, under_1s = benchmark.pedantic(
        summarize, rounds=1, iterations=1
    )
    record(
        "fig17_timing",
        [
            "Fig. 17 / RQ3: recovery time per function signature",
            f"mean     paper=0.074 s  measured={mean:.4f} s",
            f"median   measured={median:.4f} s",
            f"max      paper=23.5 s   measured={worst:.4f} s",
            f"<= 1 s   paper=99.7%    measured={under_1s:.1%}",
            f"signatures measured: {len(times)}",
        ],
    )
    benchmark.extra_info["mean_seconds"] = mean
    assert under_1s >= 0.997
    assert mean < 0.074 * 2  # at least in the paper's ballpark


def test_fig17_single_contract_recovery_benchmark(benchmark):
    """pytest-benchmark timing of one representative recovery."""
    sigs = [
        FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL),
        FunctionSignature.parse("swap(uint256[],address,bytes)", Visibility.PUBLIC),
        FunctionSignature.parse("audit(uint8[2][],bool)", Visibility.EXTERNAL),
    ]
    contract = compile_contract(sigs)
    tool = SigRec()
    result = benchmark(lambda: tool.recover(contract.bytecode))
    assert len(result) == len(sigs)
