"""Table 5 (§5.6): recovery of function signatures in Vyper contracts.

Paper: SigRec recovers Vyper signatures at 97.8% while the existing
tools — built for Solidity patterns plus database lookups — perform
far worse on Vyper's comparison-based accessing patterns.
"""

from repro.baselines import DatabaseTool, EveemLike, build_efsd
from repro.corpus.evaluate import evaluate_baseline, evaluate_corpus
from repro.sigrec.api import SigRec


def test_table5_vyper_contracts(benchmark, vyper_corpus, record):
    # Vyper signatures are rarer in EFSD than Solidity ones.
    db = build_efsd([vyper_corpus], coverage=0.3, seed=55)

    def run():
        sig_report = evaluate_corpus(vyper_corpus, SigRec())
        osd = evaluate_baseline(vyper_corpus, DatabaseTool("OSD", db))
        eveem = evaluate_baseline(vyper_corpus, EveemLike(db))
        return sig_report, osd, eveem

    sig_report, osd, eveem = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        "Table 5: Vyper contracts",
        f"{'tool':<10} {'paper acc':>10} {'measured acc':>13}",
        f"{'SigRec':<10} {'97.8%':>10} {sig_report.accuracy:>12.1%}",
        f"{'OSD':<10} {'low':>10} {osd.accuracy:>12.1%}",
        f"{'Eveem':<10} {'low':>10} {eveem.accuracy:>12.1%}",
        f"functions: {sig_report.total}",
    ]
    record("table5_vyper", rows)

    assert sig_report.accuracy > 0.95
    assert sig_report.accuracy > osd.accuracy + 0.3
    assert sig_report.accuracy > eveem.accuracy + 0.3
