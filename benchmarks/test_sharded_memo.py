"""Sharded TASE + warm function-body memo vs the monolithic baseline.

Real chains are clone-heavy: proxy factories deploy thousands of
near-identical bodies that differ only in trailing metadata, so their
bytecode hashes (and hence the whole-contract cache keys) all differ
while every function body is shared.  This benchmark builds such a
corpus (>=50% shared bodies), primes the on-disk function memo, and
requires the warm sharded+memoized batch to beat the pre-memo
monolithic batch by at least 1.5x while producing byte-identical
signatures.
"""

import os
import time

import pytest

from repro.corpus.datasets import build_clone_corpus
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery

WORKERS = 4


def _keys(results):
    """Timing-free view of a batch result (test_sharded idiom)."""
    return [
        [
            (s.selector, s.param_types, s.language, s.fired_rules, s.confidences)
            for s in sigs
        ]
        for sigs in results
    ]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup gate needs >=4 cores to be meaningful",
)
def test_warm_memo_batch_beats_monolithic_baseline(record, bench_json, tmp_path):
    corpus = build_clone_corpus(n_families=6, clones_per_family=4, seed=17)
    codes = [case.contract.bytecode for case in corpus.cases]
    assert len(set(codes)) == len(codes)  # every clone is a distinct bytecode

    # PR 4 baseline: monolithic TASE, no function memo, same worker pool.
    baseline_runner = BatchRecovery(
        tool=SigRec(sharded=False, memo=False), workers=WORKERS
    )
    start = time.perf_counter()
    baseline_results = baseline_runner.recover_all(codes)
    baseline_elapsed = time.perf_counter() - start

    # Prime the disk tier of the function memo from one clone per family
    # (untimed: this is the "the chain has been crawled before" state).
    memo_dir = os.path.join(str(tmp_path), "fnmemo")
    primer = SigRec(memo_dir=memo_dir)
    for family in range(0, len(codes), 4):
        primer.recover(codes[family])
    assert primer.function_memo().writes > 0

    # Warm run: sharded recovery, memo hits from disk, cold contract cache.
    warm_runner = BatchRecovery(
        tool=SigRec(), workers=WORKERS, cache_dir=str(tmp_path)
    )
    start = time.perf_counter()
    warm_results = warm_runner.recover_all(codes)
    warm_elapsed = time.perf_counter() - start

    assert _keys(warm_results) == _keys(baseline_results)
    stats = warm_runner.stats
    assert stats.cache_hits == 0  # speedup must come from the memo alone
    assert stats.memo_hit_rate >= 0.5

    speedup = baseline_elapsed / warm_elapsed
    record(
        "sharded_memo",
        [
            "Warm function-body memo vs monolithic batch (clone-heavy corpus)",
            f"corpus: {len(codes)} contracts, 6 families x 4 clones "
            "(75% shared bodies, all distinct bytecode hashes)",
            f"monolithic baseline: {baseline_elapsed:.3f}s "
            f"({len(codes) / baseline_elapsed:,.1f} contracts/s)",
            f"warm sharded+memo : {warm_elapsed:.3f}s "
            f"({len(codes) / warm_elapsed:,.1f} contracts/s)",
            f"speedup: {speedup:.2f}x (gate: >=1.5x)",
            f"memo hit rate: {stats.memo_hit_rate:.0%} "
            f"({stats.memo_hits} hits / {stats.memo_misses} misses)",
            f"batch stats: {stats.summary()}",
        ],
    )
    bench_json(
        "sharded_memo",
        {
            "contracts": len(codes),
            "workers": WORKERS,
            "baseline_seconds": round(baseline_elapsed, 4),
            "warm_seconds": round(warm_elapsed, 4),
            "speedup": round(speedup, 3),
            "contracts_per_second": round(len(codes) / warm_elapsed, 2),
            "memo_hit_rate": round(stats.memo_hit_rate, 4),
            "memo_hits": stats.memo_hits,
            "memo_misses": stats.memo_misses,
        },
    )
    assert speedup >= 1.5
