"""Table 2 (§5.6): dataset 2 — 1,000 synthesized function signatures.

None of the synthesized signatures exist in any database, so the paper
reports: SigRec 98.8% correct (all errors case 5); OSD/EBD/JEB recover
exactly 0; Eveem recovers 18.3% thanks to its heuristic rules but emits
wrong types for most functions.
"""

from repro.baselines import DatabaseTool, EveemLike
from repro.corpus.evaluate import evaluate_baseline, evaluate_corpus
from repro.sigrec.api import SigRec


def test_table2_synthesized_functions(benchmark, dataset2, efsd, record):
    def run():
        sig_report = evaluate_corpus(dataset2, SigRec())
        osd = evaluate_baseline(dataset2, DatabaseTool("OSD", efsd))
        ebd = evaluate_baseline(dataset2, DatabaseTool("EBD", efsd))
        jeb = evaluate_baseline(dataset2, DatabaseTool("JEB", efsd))
        eveem = evaluate_baseline(dataset2, EveemLike(efsd))
        return sig_report, osd, ebd, jeb, eveem

    sig_report, osd, ebd, jeb, eveem = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        "Table 2: dataset 2 (1,000 synthesized functions)",
        f"{'tool':<10} {'paper acc':>10} {'measured acc':>13} "
        f"{'no answer':>10} {'wrong count':>12} {'wrong types':>12}",
        f"{'SigRec':<10} {'98.8%':>10} {sig_report.accuracy:>12.1%} "
        f"{'-':>10} {'-':>12} {'-':>12}",
        f"{'OSD':<10} {'0%':>10} {osd.accuracy:>12.1%} "
        f"{osd.no_answer:>10} {'-':>12} {'-':>12}",
        f"{'EBD':<10} {'0%':>10} {ebd.accuracy:>12.1%} "
        f"{ebd.no_answer:>10} {'-':>12} {'-':>12}",
        f"{'JEB':<10} {'0%':>10} {jeb.accuracy:>12.1%} "
        f"{jeb.no_answer:>10} {'-':>12} {'-':>12}",
        f"{'Eveem':<10} {'18.3%':>10} {eveem.accuracy:>12.1%} "
        f"{eveem.no_answer:>10} {eveem.wrong_param_count():>12} "
        f"{eveem.wrong_types_only():>12}",
        f"SigRec errors by case: {sig_report.errors_by_quirk()}",
    ]
    record("table2_synthesized", rows)
    benchmark.extra_info["sigrec_accuracy"] = sig_report.accuracy

    assert sig_report.accuracy > 0.97
    # Fresh signatures: databases must recover exactly nothing.
    assert osd.accuracy == 0.0 and ebd.accuracy == 0.0 and jeb.accuracy == 0.0
    # Eveem's heuristics get a minority right, far below SigRec.
    assert 0.0 < eveem.accuracy < 0.5
    assert eveem.wrong_types_only() > 0
    # SigRec's errors are all case 5 (the paper: 8 errors, all case 5).
    errors = sig_report.errors_by_quirk()
    assert set(errors) <= {"case5"}
