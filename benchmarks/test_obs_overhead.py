"""Observability overhead gates on the recovery path.

Two bounds, two configurations:

* **disabled** — every layer carries instrumentation hooks (engine
  tallies, phase spans, per-recover counters), all guarded by an
  identity check against the shared null singletons.  A fully
  instrumented ``SigRec.recover`` with the default null backends must
  stay within 3% of a hand-rolled engine+inference loop that bypasses
  the instrumented wrapper entirely, over the same 80-contract corpus
  the pruning benchmark uses.
* **ledger-enabled** — turning the run ledger on (which auto-creates a
  real registry for phase attribution) must cost under 5% on a serial
  batch over the throughput corpus.  The instrumented pass also feeds
  the ``phases`` section of ``BENCH_throughput.json``, the baseline
  ``repro report --check-perf`` uses to name the phase whose share of
  wall time moved when a tier regresses.
"""

import time

from repro.compiler import compile_contract
from repro.corpus.datasets import (
    build_closed_source_corpus,
    build_obfuscated_corpus,
    build_vyper_corpus,
)
from repro.corpus.signatures import SignatureGenerator
from repro.obs import NULL_REGISTRY, NULL_TRACER, RunLedger
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery
from repro.sigrec.engine import TASEEngine
from repro.sigrec.inference import infer_function
from repro.sigrec.rules import RuleTracker

OVERHEAD_LIMIT = 1.03
ROUNDS = 9

LEDGER_OVERHEAD_LIMIT = 1.05
LEDGER_ROUNDS = 7

#: The non-overlapping top-level pipeline phases (``analysis.*`` nests
#: inside ``static_analysis``; ``recover`` is the outer span).
_TOP_PHASES = ("disasm", "static_analysis", "tase", "inference")


def _bytecodes():
    out = []
    for corpus in (
        build_closed_source_corpus(n_contracts=40, seed=2),
        build_vyper_corpus(n_contracts=20, seed=4),
        build_obfuscated_corpus(n_contracts=20, seed=9),
    ):
        out.extend(case.contract.bytecode for case in corpus.cases)
    return out


def _bare_pass(bytecodes):
    """Engine + inference with no wrapper: the uninstrumented floor."""
    recovered = 0
    for code in bytecodes:
        result = TASEEngine(code).run()
        tracker = RuleTracker()
        for selector in result.selectors:
            infer_function(result.functions[selector], tracker)
            recovered += 1
    return recovered


def _instrumented_pass(bytecodes):
    """The production path, observability disabled (null backends)."""
    recovered = 0
    for code in bytecodes:
        # Fresh tool per contract (the batch-worker pattern) so the
        # result memo never short-circuits the engine, and the same
        # monolithic strategy as the bare loop — sharded exploration
        # runs one engine per selector, which would make the ratio
        # measure strategy cost instead of instrumentation guards.
        # The inference memo is off for the same reason: its event
        # digest is real caching work (bounded by its own benchmark),
        # not a null-backend guard.
        tool = SigRec(
            static_check=False, sharded=False, memo=False,
            inference_memo=False,
        )
        assert tool.metrics is NULL_REGISTRY and tool.tracer is NULL_TRACER
        recovered += len(tool.recover(code))
    return recovered


def test_null_backend_overhead_under_three_percent(benchmark, record):
    bytecodes = _bytecodes()

    def run():
        # Untimed warmup: first-touch costs (bytecode caches, allocator
        # arenas) must not land on either timed side.
        _bare_pass(bytecodes)
        _instrumented_pass(bytecodes)
        bare_n = instrumented_n = 0
        ratios = []
        # CPU time, not wall clock: the workload is deterministic and
        # the interesting quantity is instruction cost, so scheduler
        # preemption on a busy host must not count against either side.
        # Rounds are paired back-to-back so host-wide slowdowns (cgroup
        # throttling, SMT contention) inflate both sides of one round
        # together and cancel in the ratio; the gate is the *minimum*
        # paired ratio — the run's least-noisy estimate.  Noise only
        # inflates individual ratios, while a genuine guard-cost
        # regression lifts every round's ratio, so the minimum stays a
        # faithful detector without flaking on busy machines.
        for _round in range(ROUNDS):
            start = time.process_time()
            bare_n = _bare_pass(bytecodes)
            bare_elapsed = time.process_time() - start
            start = time.process_time()
            instrumented_n = _instrumented_pass(bytecodes)
            instrumented_elapsed = time.process_time() - start
            ratios.append(instrumented_elapsed / bare_elapsed)
        return ratios, bare_n, instrumented_n

    ratios, bare_n, instrumented_n = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert instrumented_n == bare_n > 0
    best_ratio = min(ratios)
    median_ratio = sorted(ratios)[len(ratios) // 2]
    record(
        "obs_overhead",
        [
            "Observability null-backend overhead (serial recovery)",
            f"contracts: {len(bytecodes)} | functions: {bare_n}",
            f"paired rounds: {ROUNDS} (bare vs instrumented CPU time)",
            f"overhead ratio: best {best_ratio:.4f}, "
            f"median {median_ratio:.4f} (limit {OVERHEAD_LIMIT})",
        ],
    )
    assert best_ratio < OVERHEAD_LIMIT, (
        f"null-backend overhead {best_ratio:.4f} exceeds {OVERHEAD_LIMIT} "
        f"in every round (per-round ratios: "
        f"{', '.join(f'{r:.3f}' for r in ratios)})"
    )


def _throughput_corpus():
    """60 unique contracts, the steps-per-second benchmark's recipe."""
    codes = []
    for seed in (7, 11, 23):
        gen = SignatureGenerator(seed=seed, struct_weight=2, nested_weight=2)
        codes.extend(
            compile_contract(gen.signatures(6)).bytecode for _ in range(20)
        )
    return codes


def _plain_batch(codes):
    runner = BatchRecovery(tool=SigRec(), workers=0)
    return sum(len(r) for r in runner.recover_all(codes))


def _ledgered_batch(codes):
    """The full bookkeeping path: ledger + auto-created registry."""
    ledger = RunLedger()
    tool = SigRec(ledger=ledger)
    runner = BatchRecovery(tool=tool, workers=0)
    n = sum(len(r) for r in runner.recover_all(codes))
    return n, ledger, tool.metrics


def test_ledger_enabled_batch_overhead_under_five_percent(
    benchmark, record, bench_json
):
    codes = _throughput_corpus()

    def run():
        # Untimed warmup on both sides (see the null-backend gate).
        _plain_batch(codes)
        _ledgered_batch(codes)
        ratios = []
        plain_n = ledgered_n = 0
        ledger = registry = None
        for _round in range(LEDGER_ROUNDS):
            start = time.process_time()
            plain_n = _plain_batch(codes)
            plain_elapsed = time.process_time() - start
            start = time.process_time()
            ledgered_n, ledger, registry = _ledgered_batch(codes)
            ledgered_elapsed = time.process_time() - start
            ratios.append(ledgered_elapsed / plain_elapsed)
        return ratios, plain_n, ledgered_n, ledger, registry

    ratios, plain_n, ledgered_n, ledger, registry = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert ledgered_n == plain_n > 0
    assert len(ledger.all_records()) == len(codes)

    # Publish the phase-share baseline for report's mover attribution.
    sums = registry.histogram_sums("phase.seconds", "phase")
    top = {p: sums[p][0] for p in _TOP_PHASES if p in sums}
    total = sum(top.values())
    shares = {p: round(s / total, 6) for p, s in top.items()} if total else {}
    bench_json("phases", shares)

    best_ratio = min(ratios)
    median_ratio = sorted(ratios)[len(ratios) // 2]
    record(
        "obs_ledger_overhead",
        [
            "Run-ledger overhead (serial batch, throughput corpus)",
            f"contracts: {len(codes)} | functions: {plain_n}",
            f"paired rounds: {LEDGER_ROUNDS} (plain vs ledgered CPU time)",
            f"overhead ratio: best {best_ratio:.4f}, "
            f"median {median_ratio:.4f} (limit {LEDGER_OVERHEAD_LIMIT})",
            "phase shares: " + ", ".join(
                f"{p} {s:.1%}" for p, s in shares.items()
            ),
        ],
    )
    assert best_ratio < LEDGER_OVERHEAD_LIMIT, (
        f"ledger-enabled overhead {best_ratio:.4f} exceeds "
        f"{LEDGER_OVERHEAD_LIMIT} in every round (per-round ratios: "
        f"{', '.join(f'{r:.3f}' for r in ratios)})"
    )
