"""Null-backend observability overhead on the serial recovery path.

Every layer of the recovery pipeline now carries instrumentation hooks
(engine tallies, phase spans, per-recover counters), all guarded by an
identity check against the shared null singletons.  This benchmark
bounds what those guards cost when observability is *off*: a fully
instrumented ``SigRec.recover`` with the default null backends must
stay within 3% of a hand-rolled engine+inference loop that bypasses
the instrumented wrapper entirely, over the same 80-contract corpus
the pruning benchmark uses.
"""

import time

from repro.corpus.datasets import (
    build_closed_source_corpus,
    build_obfuscated_corpus,
    build_vyper_corpus,
)
from repro.obs import NULL_REGISTRY, NULL_TRACER
from repro.sigrec.api import SigRec
from repro.sigrec.engine import TASEEngine
from repro.sigrec.inference import infer_function
from repro.sigrec.rules import RuleTracker

OVERHEAD_LIMIT = 1.03
ROUNDS = 9


def _bytecodes():
    out = []
    for corpus in (
        build_closed_source_corpus(n_contracts=40, seed=2),
        build_vyper_corpus(n_contracts=20, seed=4),
        build_obfuscated_corpus(n_contracts=20, seed=9),
    ):
        out.extend(case.contract.bytecode for case in corpus.cases)
    return out


def _bare_pass(bytecodes):
    """Engine + inference with no wrapper: the uninstrumented floor."""
    recovered = 0
    for code in bytecodes:
        result = TASEEngine(code).run()
        tracker = RuleTracker()
        for selector in result.selectors:
            infer_function(result.functions[selector], tracker)
            recovered += 1
    return recovered


def _instrumented_pass(bytecodes):
    """The production path, observability disabled (null backends)."""
    recovered = 0
    for code in bytecodes:
        # Fresh tool per contract (the batch-worker pattern) so the
        # result memo never short-circuits the engine.
        tool = SigRec(static_check=False)
        assert tool.metrics is NULL_REGISTRY and tool.tracer is NULL_TRACER
        recovered += len(tool.recover(code))
    return recovered


def test_null_backend_overhead_under_three_percent(benchmark, record):
    bytecodes = _bytecodes()

    def run():
        # Untimed warmup: first-touch costs (bytecode caches, allocator
        # arenas) must not land on either timed side.
        _bare_pass(bytecodes)
        _instrumented_pass(bytecodes)
        bare_n = instrumented_n = 0
        ratios = []
        # CPU time, not wall clock: the workload is deterministic and
        # the interesting quantity is instruction cost, so scheduler
        # preemption on a busy host must not count against either side.
        # Rounds are paired back-to-back so host-wide slowdowns (cgroup
        # throttling, SMT contention) inflate both sides of one round
        # together and cancel in the ratio; the gate is the *minimum*
        # paired ratio — the run's least-noisy estimate.  Noise only
        # inflates individual ratios, while a genuine guard-cost
        # regression lifts every round's ratio, so the minimum stays a
        # faithful detector without flaking on busy machines.
        for _round in range(ROUNDS):
            start = time.process_time()
            bare_n = _bare_pass(bytecodes)
            bare_elapsed = time.process_time() - start
            start = time.process_time()
            instrumented_n = _instrumented_pass(bytecodes)
            instrumented_elapsed = time.process_time() - start
            ratios.append(instrumented_elapsed / bare_elapsed)
        return ratios, bare_n, instrumented_n

    ratios, bare_n, instrumented_n = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert instrumented_n == bare_n > 0
    best_ratio = min(ratios)
    median_ratio = sorted(ratios)[len(ratios) // 2]
    record(
        "obs_overhead",
        [
            "Observability null-backend overhead (serial recovery)",
            f"contracts: {len(bytecodes)} | functions: {bare_n}",
            f"paired rounds: {ROUNDS} (bare vs instrumented CPU time)",
            f"overhead ratio: best {best_ratio:.4f}, "
            f"median {median_ratio:.4f} (limit {OVERHEAD_LIMIT})",
        ],
    )
    assert best_ratio < OVERHEAD_LIMIT, (
        f"null-backend overhead {best_ratio:.4f} exceeds {OVERHEAD_LIMIT} "
        f"in every round (per-round ratios: "
        f"{', '.join(f'{r:.3f}' for r in ratios)})"
    )
