"""Throughput: chain-scale recovery with deduplication.

The paper's corpus is 37M deployed contracts with only 368,679 unique
bytecodes (~1% unique).  Recovery at chain scale is therefore dominated
by dedup: this benchmark measures contracts/second with and without
memoizing per unique bytecode, at mainnet's duplication ratio.
"""

import time

from repro.corpus.signatures import SignatureGenerator
from repro.compiler import compile_contract
from repro.obs import MetricsRegistry
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery


def _duplicated_population(unique: int = 12, copies: int = 60, seed: int = 70):
    """~1/copies unique ratio, echoing mainnet's duplication."""
    gen = SignatureGenerator(seed=seed, struct_weight=0, nested_weight=0)
    uniques = [
        compile_contract(gen.signatures(3)).bytecode for _ in range(unique)
    ]
    population = []
    for code in uniques:
        population.extend([code] * copies)
    return population


def test_throughput_with_dedup(benchmark, record, bench_json):
    population = _duplicated_population()

    def run():
        registry = MetricsRegistry()
        tool = SigRec(metrics=registry)
        runner = BatchRecovery(tool=tool, workers=0)
        start = time.perf_counter()
        runner.recover_all(population)
        dedup_elapsed = time.perf_counter() - start
        steps = registry.counter_values().get("tase.steps", 0)
        start = time.perf_counter()
        tool.recover_batch(population[:120], deduplicate=False)
        raw_elapsed = (time.perf_counter() - start) * (len(population) / 120)
        return dedup_elapsed, raw_elapsed, runner.stats, steps

    dedup_elapsed, raw_elapsed, stats, steps = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    dedup_rate = len(population) / dedup_elapsed
    raw_rate = len(population) / raw_elapsed
    record(
        "throughput",
        [
            "Throughput: chain-scale recovery (mainnet-style duplication)",
            f"population: {len(population)} contracts, "
            f"{len(set(population))} unique (~{len(set(population))/len(population):.0%})",
            f"with dedup   : {dedup_rate:,.0f} contracts/s",
            f"without dedup: {raw_rate:,.0f} contracts/s (extrapolated)",
            f"speedup: {dedup_rate / raw_rate:.0f}x",
            f"batch stats: {stats.summary()}",
            "paper context: 37,009,570 deployed contracts, 368,679 unique",
            "see parallel_speedup.txt / warm_cache.txt for the worker-pool "
            "and persistent-cache numbers on a no-duplicate corpus",
        ],
    )
    bench_json(
        "throughput",
        {
            "contracts": len(population),
            "unique": len(set(population)),
            "contracts_per_second": round(dedup_rate, 2),
            "contracts_per_second_no_dedup": round(raw_rate, 2),
            "tase_steps": steps,
            "memo_hit_rate": round(stats.memo_hit_rate, 4),
            "memo_hits": stats.memo_hits,
            "cache_hits": stats.cache_hits,
        },
    )
    benchmark.extra_info["contracts_per_second"] = dedup_rate
    assert dedup_rate > raw_rate * 5
