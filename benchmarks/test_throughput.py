"""Throughput: chain-scale recovery with deduplication.

The paper's corpus is 37M deployed contracts with only 368,679 unique
bytecodes (~1% unique).  Recovery at chain scale is therefore dominated
by dedup: this benchmark measures contracts/second with and without
memoizing per unique bytecode, at mainnet's duplication ratio.
"""

import time

from repro.corpus.signatures import SignatureGenerator
from repro.compiler import compile_contract
from repro.evm.predecode import clear_program_cache
from repro.obs import MetricsRegistry
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery
from repro.sigrec.engine import TASEEngine

#: Single-core TASE steps/s implied by the *committed seed*
#: ``BENCH_throughput.json`` — the file carried no explicit rate, so
#: the baseline is derived from its throughput section: 4,603 TASE
#: steps executed while recovering 720 contracts at 10,753.17
#: contracts/s, i.e. ``4603 / (720 / 10753.17) = 68,745`` steps/s.
#: Frozen here (not recomputed from the live file) because this run
#: rewrites the file with post-superblock numbers.
SEED_BASELINE_STEPS_PER_SECOND = 68_745.0


def _steps_corpus():
    """60 unique contracts with struct/nested-heavy signatures."""
    codes = []
    for seed in (7, 11, 23):
        gen = SignatureGenerator(seed=seed, struct_weight=2, nested_weight=2)
        codes.extend(
            compile_contract(gen.signatures(6)).bytecode for _ in range(20)
        )
    return codes


def _measure_steps_rate(codes, trials=3, **engine_opts):
    """Cold single-core steps/s, best of ``trials`` passes.

    Cold: the decode cache is dropped before every pass and each engine
    owns a fresh expression arena, so the measurement includes the full
    pre-decode cost.  Best-of is the standard noise-resistant statistic
    for a throughput gate on shared hardware.
    """
    best_rate, steps = 0.0, 0
    for _ in range(trials):
        clear_program_cache()
        start = time.perf_counter()
        steps = 0
        for code in codes:
            steps += TASEEngine(code, **engine_opts).run().total_steps
        elapsed = time.perf_counter() - start
        best_rate = max(best_rate, steps / elapsed)
    return best_rate, steps


def test_tase_steps_per_second(record, bench_json):
    """ROADMAP item 5: ≥2x single-core TASE steps/s over the committed
    ``BENCH_throughput.json`` baseline (superblock driver + priority
    scheduling + per-engine arena), with the legacy per-opcode driver
    measured in the same process for the driver-vs-driver record."""
    codes = _steps_corpus()
    rate, steps = _measure_steps_rate(codes)
    legacy_rate, legacy_steps = _measure_steps_rate(
        codes, driver="legacy", scheduler="lifo"
    )
    # Both configurations execute the identical exploration.
    assert steps == legacy_steps

    record(
        "tase_steps",
        [
            "TASE single-core throughput (cold, superblock driver)",
            f"corpus: {len(codes)} unique contracts, {steps:,} steps",
            f"superblock+priority: {rate:,.0f} steps/s",
            f"legacy lifo driver : {legacy_rate:,.0f} steps/s "
            f"(same-process comparison)",
            f"committed seed baseline: "
            f"{SEED_BASELINE_STEPS_PER_SECOND:,.0f} steps/s "
            "(derived from the seed throughput section)",
            f"speedup vs committed baseline: "
            f"{rate / SEED_BASELINE_STEPS_PER_SECOND:.2f}x (gate: >=2x)",
        ],
    )
    bench_json(
        "tase",
        {
            "contracts": len(codes),
            "steps": steps,
            "steps_per_second": round(rate, 2),
            "steps_per_second_legacy_driver": round(legacy_rate, 2),
            "baseline_steps_per_second": SEED_BASELINE_STEPS_PER_SECOND,
            "speedup_vs_baseline": round(
                rate / SEED_BASELINE_STEPS_PER_SECOND, 3
            ),
        },
    )
    assert rate >= 2.0 * SEED_BASELINE_STEPS_PER_SECOND


def _duplicated_population(unique: int = 12, copies: int = 60, seed: int = 70):
    """~1/copies unique ratio, echoing mainnet's duplication."""
    gen = SignatureGenerator(seed=seed, struct_weight=0, nested_weight=0)
    uniques = [
        compile_contract(gen.signatures(3)).bytecode for _ in range(unique)
    ]
    population = []
    for code in uniques:
        population.extend([code] * copies)
    return population


def test_throughput_with_dedup(benchmark, record, bench_json):
    population = _duplicated_population()

    def run():
        registry = MetricsRegistry()
        tool = SigRec(metrics=registry)
        runner = BatchRecovery(tool=tool, workers=0)
        start = time.perf_counter()
        runner.recover_all(population)
        dedup_elapsed = time.perf_counter() - start
        steps = registry.counter_values().get("tase.steps", 0)
        # Naive baseline: a fresh tool per contract (the batch-worker
        # pattern), so neither the in-instance result memo nor the
        # per-bytecode analysis memo short-circuits the engine.
        start = time.perf_counter()
        for code in population[:120]:
            SigRec().recover(code)
        raw_elapsed = (time.perf_counter() - start) * (len(population) / 120)
        return dedup_elapsed, raw_elapsed, runner.stats, steps

    dedup_elapsed, raw_elapsed, stats, steps = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    dedup_rate = len(population) / dedup_elapsed
    raw_rate = len(population) / raw_elapsed
    record(
        "throughput",
        [
            "Throughput: chain-scale recovery (mainnet-style duplication)",
            f"population: {len(population)} contracts, "
            f"{len(set(population))} unique (~{len(set(population))/len(population):.0%})",
            f"with dedup   : {dedup_rate:,.0f} contracts/s",
            f"without dedup: {raw_rate:,.0f} contracts/s (extrapolated)",
            f"speedup: {dedup_rate / raw_rate:.0f}x",
            f"batch stats: {stats.summary()}",
            "paper context: 37,009,570 deployed contracts, 368,679 unique",
            "see parallel_speedup.txt / warm_cache.txt for the worker-pool "
            "and persistent-cache numbers on a no-duplicate corpus",
        ],
    )
    bench_json(
        "throughput",
        {
            "contracts": len(population),
            "unique": len(set(population)),
            "contracts_per_second": round(dedup_rate, 2),
            "contracts_per_second_no_dedup": round(raw_rate, 2),
            "tase_steps": steps,
            "memo_hit_rate": round(stats.memo_hit_rate, 4),
            "memo_hits": stats.memo_hits,
            "cache_hits": stats.cache_hits,
        },
    )
    benchmark.extra_info["contracts_per_second"] = dedup_rate
    assert dedup_rate > raw_rate * 5
