"""Storage-layout recovery accuracy and analysis-pass overhead.

Two gates for the multi-pass analysis framework:

* **Accuracy** — the storage pass, run over corpora whose compiled
  contracts carry ground-truth layouts (packed slots, nested mappings,
  dynamic arrays), must identify slot, intra-slot offset/width, kind,
  rendered type and mapping depth for at least 95% of variables.  The
  measured number feeds ``EXPERIMENTS.md``.
* **Overhead** — the two passes the framework added to every analysis
  (storage, lint) must cost under 5% of cold end-to-end recovery.
  Measured as a throughput ratio between recovery under the full
  default pipeline and under ``CORE_PIPELINE`` (cfg/jumps/stack/
  dispatcher only — exactly the pre-framework analysis), exported as
  ``analysis.throughput_ratio`` for the perf-history trajectory.
"""

import time

from repro.analysis import CORE_PIPELINE, analyze
from repro.analysis import framework as _framework
from repro.corpus.datasets import build_clone_corpus, build_storage_corpus
from repro.sigrec.api import SigRec

ACCURACY_FLOOR = 0.95
OVERHEAD_LIMIT = 1.05
ROUNDS = 7


def _score(corpus):
    """(hits, total, misses) of recovered layouts vs ground truth."""
    hits = total = 0
    misses = []
    for case in corpus.cases:
        layout = analyze(case.contract.bytecode).storage
        recovered = {(v.slot, v.offset, v.width): v for v in layout.variables}
        for truth in case.contract.storage:
            total += 1
            variable = recovered.get(
                (truth["slot"], truth["offset"], truth["width"])
            )
            if (
                variable is not None
                and variable.kind == truth["kind"]
                and variable.type == truth["type"]
                and variable.depth == truth["depth"]
            ):
                hits += 1
            else:
                misses.append((truth, variable))
    return hits, total, misses


def test_storage_layout_accuracy(benchmark, record, bench_json):
    storage_corpus = build_storage_corpus(n_contracts=24, seed=21)
    clone_corpus = build_clone_corpus(seed=11, storage_rate=0.5)

    def run():
        return _score(storage_corpus), _score(clone_corpus)

    (s_hit, s_total, s_miss), (c_hit, c_total, c_miss) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    accuracy = (s_hit + c_hit) / (s_total + c_total)
    record(
        "storage_accuracy",
        [
            "Storage-layout recovery accuracy (ground-truth corpora)",
            f"storage corpus: {s_hit}/{s_total} variables "
            f"({s_hit / s_total:.1%}) over {len(storage_corpus.cases)} "
            "contracts",
            f"clone corpus (storage_rate=0.5): {c_hit}/{c_total} "
            f"({c_hit / c_total:.1%}) over {len(clone_corpus.cases)} "
            "contracts",
            f"overall: {accuracy:.1%} (floor {ACCURACY_FLOOR:.0%})",
        ],
    )
    bench_json(
        "storage",
        {
            "variables": s_total + c_total,
            "layout_accuracy": round(accuracy, 4),
        },
    )
    assert s_total and c_total
    assert accuracy >= ACCURACY_FLOOR, (
        f"layout accuracy {accuracy:.1%}; first misses: "
        f"{(s_miss + c_miss)[:3]}"
    )


def _cold_recovery_pass(bytecodes):
    recovered = 0
    for code in bytecodes:
        # Fresh tool per contract: every memo tier cold, so the analysis
        # pipeline runs once per contract like a first-sight batch.
        recovered += len(SigRec(static_check=False).recover(code))
    return recovered


def test_analysis_pass_overhead_under_five_percent(benchmark, record,
                                                   bench_json):
    bytecodes = [
        case.contract.bytecode
        for case in build_clone_corpus(n_families=10, clones_per_family=2,
                                       seed=11, storage_rate=0.5).cases
    ]

    def run():
        original = _framework.DEFAULT_PIPELINE
        try:
            ratios = []
            full_n = core_n = 0
            # Paired CPU-time rounds, gate on the minimum ratio: noise
            # inflates individual rounds, a real overhead regression
            # lifts all of them (same scheme as the obs-overhead gate).
            _cold_recovery_pass(bytecodes)  # untimed warmup
            for _round in range(ROUNDS):
                _framework.DEFAULT_PIPELINE = original
                start = time.process_time()
                full_n = _cold_recovery_pass(bytecodes)
                full_elapsed = time.process_time() - start
                _framework.DEFAULT_PIPELINE = CORE_PIPELINE
                start = time.process_time()
                core_n = _cold_recovery_pass(bytecodes)
                core_elapsed = time.process_time() - start
                ratios.append(full_elapsed / core_elapsed)
            return ratios, full_n, core_n
        finally:
            _framework.DEFAULT_PIPELINE = original

    ratios, full_n, core_n = benchmark.pedantic(run, rounds=1, iterations=1)
    assert full_n == core_n > 0
    best = min(ratios)
    median = sorted(ratios)[len(ratios) // 2]
    record(
        "analysis_overhead",
        [
            "Analysis-pass overhead on cold recovery "
            "(full pipeline vs core passes)",
            f"contracts: {len(bytecodes)} | functions: {full_n}",
            f"paired rounds: {ROUNDS} (CPU time)",
            f"overhead ratio: best {best:.4f}, median {median:.4f} "
            f"(limit {OVERHEAD_LIMIT})",
        ],
    )
    bench_json(
        "analysis",
        {
            "contracts": len(bytecodes),
            "overhead_ratio": round(best, 4),
            # Perf-history tier: full-pipeline throughput relative to
            # the core passes — drops mean the added passes got slower.
            "throughput_ratio": round(1.0 / best, 4),
        },
    )
    assert best < OVERHEAD_LIMIT, (
        f"analysis passes cost {best:.4f}x core recovery in every round "
        f"(per-round: {', '.join(f'{r:.3f}' for r in ratios)})"
    )
