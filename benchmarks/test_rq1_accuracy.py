"""RQ1 (§5.2): overall recovery accuracy.

Paper: 98.7% overall — 98.74% over 210,869 Solidity signatures and
97.77% over 1,076 Vyper signatures; the errors fall into five
documented cases.
"""

from repro.corpus.evaluate import evaluate_corpus
from repro.sigrec.api import SigRec


def test_rq1_overall_accuracy(benchmark, open_corpus, vyper_corpus, record):
    tool = SigRec()

    def run():
        sol = evaluate_corpus(open_corpus, tool)
        vy = evaluate_corpus(vyper_corpus, tool)
        return sol, vy

    sol, vy = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sol.total + vy.total
    correct = sol.correct + vy.correct
    overall = correct / total

    record(
        "rq1_accuracy",
        [
            "RQ1: accuracy of SigRec (paper vs measured)",
            f"overall   paper=98.7%   measured={overall:.1%}  ({total} functions)",
            f"solidity  paper=98.74%  measured={sol.accuracy:.1%}  ({sol.total} functions)",
            f"vyper     paper=97.77%  measured={vy.accuracy:.1%}  ({vy.total} functions)",
            f"error attribution: {sol.errors_by_quirk()}",
        ],
    )
    benchmark.extra_info["overall_accuracy"] = overall

    # Shape assertions: high accuracy, and every error is one of the
    # paper's documented cases.
    assert overall > 0.95
    assert sol.accuracy > 0.95
    assert vy.accuracy > 0.95
    unexplained = [
        o for o in sol.outcomes + vy.outcomes if not o.correct and o.quirk is None
    ]
    assert len(unexplained) <= 0.01 * total
