"""Shared fixtures for the experiment benchmarks.

Corpora are built once per session; each benchmark file regenerates one
table or figure of the paper's evaluation and records a
paper-vs-measured comparison under ``benchmarks/results/``.
"""

import json
import os
from typing import Callable, List, Mapping

import pytest

from repro.baselines import build_efsd
from repro.corpus.datasets import (
    build_closed_source_corpus,
    build_open_source_corpus,
    build_struct_nested_corpus,
    build_synthesized_dataset,
    build_vyper_corpus,
)
from repro.corpus.evaluate import evaluate_corpus
from repro.sigrec.api import SigRec

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Machine-readable throughput baseline at the repo root: CI uploads it
# as an artifact so regressions are diffable across runs.
BENCH_JSON = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                          "BENCH_throughput.json")


@pytest.fixture(scope="session")
def open_corpus():
    """Dataset 3: the ground-truth "open-source" corpus."""
    return build_open_source_corpus(n_contracts=320, seed=1)


@pytest.fixture(scope="session")
def closed_corpus():
    """Dataset 1: the "closed-source" corpus."""
    return build_closed_source_corpus(n_contracts=200, seed=2)


@pytest.fixture(scope="session")
def dataset2():
    """Dataset 2: 1,000 synthesized functions (fresh, not in any DB)."""
    return build_synthesized_dataset(n_functions=1000, seed=3)


@pytest.fixture(scope="session")
def vyper_corpus():
    return build_vyper_corpus(n_contracts=120, seed=4)


@pytest.fixture(scope="session")
def struct_corpus():
    return build_struct_nested_corpus(n_contracts=150, seed=5)


@pytest.fixture(scope="session")
def efsd(open_corpus, closed_corpus):
    """EFSD covers about half of published signatures (the paper finds
    >49% of open-source signatures missing)."""
    return build_efsd([open_corpus, closed_corpus], coverage=0.5, seed=99)


@pytest.fixture(scope="session")
def tool_databases(open_corpus, closed_corpus, efsd):
    """Per-tool databases: the real OSD/EBD/JEB ship different (and
    differently stale) databases, which is where the paper's per-tool
    spread comes from."""
    corpora = [open_corpus, closed_corpus]
    return {
        "OSD": efsd,  # OSD queries EFSD directly
        "EBD": build_efsd(corpora, coverage=0.38, seed=101),
        "JEB": build_efsd(corpora, coverage=0.27, seed=103),
    }


@pytest.fixture(scope="session")
def open_report(open_corpus):
    """SigRec evaluated once over the open-source corpus."""
    return evaluate_corpus(open_corpus, SigRec())


@pytest.fixture(scope="session")
def sigrec_tool():
    return SigRec()


@pytest.fixture()
def record() -> Callable[[str, List[str]], None]:
    """Write one experiment's paper-vs-measured rows to results/."""

    def _record(name: str, lines: List[str]) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        text = "\n".join(lines) + "\n"
        with open(path, "w") as handle:
            handle.write(text)
        print(f"\n[{name}]")
        print(text)

    return _record


@pytest.fixture()
def bench_json() -> Callable[[str, Mapping], None]:
    """Merge one benchmark's numbers into ``BENCH_throughput.json``.

    Payloads merge *within* their top-level section (several tests may
    contribute keys to one section, e.g. accuracy and overhead both
    feeding ``abi``); a partial benchmark invocation never clobbers the
    other sections' numbers.
    """

    def _bench_json(section: str, payload: Mapping) -> None:
        doc = {"schema": "sigrec-bench:v1"}
        if os.path.exists(BENCH_JSON):
            try:
                with open(BENCH_JSON, encoding="utf-8") as handle:
                    existing = json.load(handle)
                if isinstance(existing, dict):
                    doc.update(existing)
            except (OSError, ValueError):
                pass
        doc["schema"] = "sigrec-bench:v1"
        merged = doc.get(section)
        merged = dict(merged) if isinstance(merged, dict) else {}
        merged.update(payload)
        doc[section] = merged
        tmp = BENCH_JSON + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, BENCH_JSON)
        print(f"\n[BENCH_throughput.json <- {section}]")

    return _bench_json
