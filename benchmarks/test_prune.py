"""Static pruning: TASE step counts and wall time, pruning on vs off.

The static analysis proves certain JUMPI forks land in blocks that halt
without emitting any inference event (bound-check and clamp failures
jumping into shared revert blocks), so the pruned engine suppresses the
fork — no state clone, no steps through the revert path — while
emulating the unpruned run's path accounting exactly.  This benchmark
quantifies the saving and asserts the output is unchanged.
"""

import time

from repro.analysis import analyze
from repro.corpus.datasets import (
    build_closed_source_corpus,
    build_obfuscated_corpus,
    build_vyper_corpus,
)
from repro.sigrec.api import SigRec
from repro.sigrec.engine import TASEEngine


def _bytecodes():
    out = []
    for corpus in (
        build_closed_source_corpus(n_contracts=40, seed=2),
        build_vyper_corpus(n_contracts=20, seed=4),
        build_obfuscated_corpus(n_contracts=20, seed=9),
    ):
        out.extend(case.contract.bytecode for case in corpus.cases)
    return out


def _signature_key(signatures):
    return [
        (s.selector, s.param_types, s.language, s.fired_rules, s.confidences)
        for s in signatures
    ]


def test_prune_steps_and_wall_time(benchmark, record):
    bytecodes = _bytecodes()

    def run():
        plain_steps = pruned_steps = forks = 0
        start = time.perf_counter()
        for code in bytecodes:
            plain_steps += TASEEngine(code).run().total_steps
        plain_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for code in bytecodes:
            result = TASEEngine(code, analysis=analyze(code)).run()
            pruned_steps += result.total_steps
            forks += result.pruned_forks
        pruned_elapsed = time.perf_counter() - start
        return plain_steps, pruned_steps, forks, plain_elapsed, pruned_elapsed

    plain_steps, pruned_steps, forks, plain_elapsed, pruned_elapsed = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    assert pruned_steps < plain_steps
    assert forks > 0
    saved = plain_steps - pruned_steps
    record(
        "prune",
        [
            "TASE pruning via static analysis (same output, less work)",
            f"contracts: {len(bytecodes)}",
            f"steps unpruned: {plain_steps:,}",
            f"steps pruned  : {pruned_steps:,}  "
            f"(-{saved:,}, {saved / plain_steps:.1%})",
            f"silent-halt forks suppressed: {forks:,}",
            f"engine wall time unpruned: {plain_elapsed:.3f}s",
            f"engine wall time pruned  : {pruned_elapsed:.3f}s "
            "(includes running the analysis itself)",
            "recovered signatures verified byte-identical on this corpus "
            "(see tests/sigrec/test_prune.py for the per-event check)",
        ],
    )


def test_prune_output_identical_end_to_end(benchmark):
    bytecodes = _bytecodes()[:30]

    def run():
        mismatches = 0
        for code in bytecodes:
            plain = SigRec(prune=False).recover(code)
            pruned = SigRec(prune=True).recover(code)
            if _signature_key(plain) != _signature_key(pruned):
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mismatches == 0
