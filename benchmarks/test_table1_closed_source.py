"""Table 1 (§5.6): dataset 1 — all unique closed-source contracts.

No ground truth is assumed available to the tools; the paper reports
(a) how often each existing tool *agrees with SigRec*, (b) how often
tools abort, and (c) how many function ids are recorded in EFSD.
Paper shape: agreement well below 100% for every tool (26.8%-84.9%),
Gigahorse unstable, EFSD covering only about half the functions.
"""

from repro.baselines import DatabaseTool, EveemLike, GigahorseLike
from repro.sigrec.api import SigRec
from repro.sigrec.selectors import extract_selectors


def test_table1_agreement_with_sigrec(benchmark, closed_corpus, efsd,
                                      tool_databases, record):
    tools = [
        DatabaseTool("OSD", tool_databases["OSD"]),
        DatabaseTool("EBD", tool_databases["EBD"]),
        DatabaseTool("JEB", tool_databases["JEB"]),
        EveemLike(efsd),
        GigahorseLike(efsd),
    ]
    sigrec = SigRec()

    def run():
        # SigRec's answers are the reference (no ground truth here).
        reference = {}
        for case in closed_corpus.cases:
            for selector, rec in sigrec.recover_map(case.contract.bytecode).items():
                reference[(id(case), selector)] = rec.param_list
        stats = {}
        efsd_hits = 0
        total_functions = 0
        for case in closed_corpus.cases:
            for selector in extract_selectors(case.contract.bytecode):
                total_functions += 1
                if selector in efsd:
                    efsd_hits += 1
        for tool in tools:
            agree = 0
            total = 0
            aborted = 0
            for case in closed_corpus.cases:
                output = tool.recover(case.contract.bytecode)
                if output.aborted:
                    aborted += 1
                    continue
                for selector, params in output.functions.items():
                    key = (id(case), selector)
                    if key not in reference:
                        continue
                    total += 1
                    if params == reference[key]:
                        agree += 1
            stats[tool.name] = (
                agree / total if total else 0.0,
                aborted / len(closed_corpus.cases),
            )
        return stats, efsd_hits / total_functions

    stats, efsd_cover = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        "Table 1: dataset 1 (closed-source contracts)",
        "paper: agreement with SigRec 26.8%-84.9%; Gigahorse aborts ~3.4%;",
        "       EFSD records only about half the function ids",
        f"EFSD coverage of function ids: {efsd_cover:.1%}",
        f"{'tool':<12} {'agree-with-SigRec':>18} {'abort ratio':>12}",
    ]
    for name, (agreement, abort) in stats.items():
        rows.append(f"{name:<12} {agreement:>17.1%} {abort:>11.1%}")
    record("table1_closed_source", rows)

    # Shape: nobody matches SigRec fully; DB tools capped by coverage;
    # Gigahorse is the unstable one.
    for name, (agreement, _) in stats.items():
        assert agreement < 0.95, name
    assert stats["gigahorse"][1] > 0
    assert 0.3 < efsd_cover < 0.7
