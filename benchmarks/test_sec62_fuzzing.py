"""§6.2: fuzzing with recovered signatures.

Paper: with SigRec's signatures, ContractFuzzer finds 23% more bugs
and 25% more vulnerable smart contracts than ContractFuzzer− (the same
fuzzer generating random byte sequences) over 1,000 contracts.
"""

from repro.apps.fuzzer import (
    ContractFuzzer,
    MutationFuzzer,
    build_fuzz_targets,
    build_staged_targets,
)


def test_sec62_typed_vs_untyped_fuzzing(benchmark, record):
    targets = build_fuzz_targets(n_contracts=60, seed=17)

    def campaign():
        typed = ContractFuzzer(typed=True, seed=1).fuzz_campaign(targets)
        untyped = ContractFuzzer(typed=False, seed=1).fuzz_campaign(targets)
        return typed, untyped

    typed, untyped = benchmark.pedantic(campaign, rounds=1, iterations=1)

    bug_gain = typed.bug_count / untyped.bug_count - 1
    contract_gain = (
        len(typed.vulnerable_contracts) / len(untyped.vulnerable_contracts) - 1
    )
    record(
        "sec62_fuzzing",
        [
            "§6.2: ContractFuzzer (typed) vs ContractFuzzer− (random bytes)",
            f"contracts fuzzed: {len(targets)}, "
            f"bugs planted: {sum(len(t.functions) for t in targets)}",
            f"bugs found          typed={typed.bug_count} "
            f"untyped={untyped.bug_count}",
            f"vulnerable contracts typed={len(typed.vulnerable_contracts)} "
            f"untyped={len(untyped.vulnerable_contracts)}",
            f"more bugs with signatures     paper=+23%  measured=+{bug_gain:.0%}",
            f"more vulnerable contracts     paper=+25%  measured=+{contract_gain:.0%}",
        ],
    )
    benchmark.extra_info["bug_gain"] = bug_gain

    # Shape: typed strictly wins on both axes, by tens of percent.
    assert typed.bug_count > untyped.bug_count
    assert len(typed.vulnerable_contracts) >= len(untyped.vulnerable_contracts)
    assert 0.05 <= bug_gain <= 1.0


def test_sec62_coverage_guided_mutation(benchmark, record):
    """Extension: the paper's "strategically mutate" claim, concrete.

    Staged bugs hide behind accumulating bit conditions; coverage-guided
    typed mutation climbs them stage by stage while blind generation
    faces the joint 2^-stages probability.
    """
    targets = build_staged_targets(n_contracts=20, seed=23)
    planted = sum(len(t.functions) for t in targets)

    def campaign():
        mutation = MutationFuzzer(seed=1).fuzz_campaign(targets, 250)
        generation = ContractFuzzer(typed=True, seed=1).fuzz_campaign(targets, 250)
        return mutation, generation

    mutation, generation = benchmark.pedantic(campaign, rounds=1, iterations=1)
    record(
        "sec62_mutation",
        [
            "§6.2 extension: coverage-guided typed mutation vs generation",
            f"staged bugs planted: {planted}",
            f"typed generation finds: {generation.bug_count}",
            f"coverage-guided mutation finds: {mutation.bug_count}",
        ],
    )
    assert mutation.bug_count > generation.bug_count
    assert mutation.bug_count >= 0.7 * planted
