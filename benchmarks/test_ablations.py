"""Ablations of SigRec's design choices (beyond the paper's tables).

Three studies:

* **Obfuscation (§7)** — the paper leaves obfuscation resistance as
  future work and sketches the fix: rules that match *semantics*, not
  instruction sequences.  We implement both the attack (an obfuscating
  codegen: shift-pair masks, EQ-zero booleans, inverted loop guards,
  shifted strides, split constants) and the defense (generalized
  idioms), and measure each side of the ablation.
* **Fine-grained refinement (step 4)** — disabling R11-R18/R26-R31
  shows how much of the accuracy comes from usage-based refinement vs
  structural classification alone.
* **Fork budget** — the symbolic-loop exploration budget trades
  accuracy against analysis time.
"""

import time

from repro.corpus.datasets import build_obfuscated_corpus, build_open_source_corpus
from repro.corpus.evaluate import evaluate_corpus
from repro.sigrec.api import SigRec


def test_ablation_obfuscation(benchmark, record):
    plain = build_open_source_corpus(n_contracts=50, seed=9, quirk_rate=0.0)
    obfuscated = build_obfuscated_corpus(n_contracts=50, seed=9)

    from repro.baselines.syntactic import SyntacticMatcher
    from repro.corpus.evaluate import evaluate_baseline

    def run():
        return {
            ("plain", "general"): evaluate_corpus(plain, SigRec()).accuracy,
            ("obf", "general"): evaluate_corpus(obfuscated, SigRec()).accuracy,
            ("obf", "strict"): evaluate_corpus(
                obfuscated, SigRec(semantic_idioms=False)
            ).accuracy,
            ("plain", "strict"): evaluate_corpus(
                plain, SigRec(semantic_idioms=False)
            ).accuracy,
            ("plain", "syntactic"): evaluate_baseline(
                plain, SyntacticMatcher()
            ).accuracy,
            ("obf", "syntactic"): evaluate_baseline(
                obfuscated, SyntacticMatcher()
            ).accuracy,
        }

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_obfuscation",
        [
            "Ablation: obfuscated accessing patterns (§7 extension)",
            f"{'corpus':<10} {'tool/rules':<18} accuracy",
            f"{'plain':<10} {'TASE general':<18} {accs[('plain', 'general')]:.1%}",
            f"{'plain':<10} {'TASE strict':<18} {accs[('plain', 'strict')]:.1%}",
            f"{'plain':<10} {'syntactic match':<18} {accs[('plain', 'syntactic')]:.1%}",
            f"{'obfuscated':<10} {'TASE general':<18} {accs[('obf', 'general')]:.1%}",
            f"{'obfuscated':<10} {'TASE strict':<18} {accs[('obf', 'strict')]:.1%}",
            f"{'obfuscated':<10} {'syntactic match':<18} {accs[('obf', 'syntactic')]:.1%}",
            "general = semantic idioms (shift-pair masks, EQ-zero bools,",
            "inverted guards); strict = literal AND/ISZERO matching only;",
            "syntactic = heimdall/EVMole-style window matching, no execution",
        ],
    )
    # The syntactic matcher is the weakest on both corpora.
    assert accs[("plain", "syntactic")] < accs[("plain", "general")]
    assert accs[("obf", "syntactic")] <= accs[("obf", "general")]
    # The defense holds: general rules survive obfuscation.
    assert accs[("obf", "general")] >= accs[("plain", "general")] - 0.05
    # The attack works against literal pattern matching.
    assert accs[("obf", "strict")] < accs[("obf", "general")] - 0.2
    # On plain code both rule sets behave the same.
    assert abs(accs[("plain", "general")] - accs[("plain", "strict")]) < 0.05


def test_ablation_fine_grained_refinement(benchmark, record):
    corpus = build_open_source_corpus(n_contracts=50, seed=10, quirk_rate=0.0)

    def run():
        full = evaluate_corpus(corpus, SigRec()).accuracy
        coarse = evaluate_corpus(corpus, SigRec(coarse_only=True)).accuracy
        return full, coarse

    full, coarse = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_refinement",
        [
            "Ablation: step 4 (fine-grained refinement) disabled",
            f"full pipeline : {full:.1%}",
            f"coarse only   : {coarse:.1%}",
            "coarse-only classifies families correctly but reports every",
            "basic type and item type as uint256 (the R4/R25 default)",
        ],
    )
    assert full > coarse + 0.2  # refinement carries a large share


def test_ablation_fork_budget(benchmark, record):
    corpus = build_open_source_corpus(n_contracts=30, seed=11, quirk_rate=0.0)

    def run():
        rows = []
        for fork_bound in (1, 2, 3, 4):
            start = time.perf_counter()
            accuracy = evaluate_corpus(
                corpus, SigRec(fork_bound=fork_bound)
            ).accuracy
            elapsed = time.perf_counter() - start
            rows.append((fork_bound, accuracy, elapsed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation: symbolic-branch exploration budget",
        f"{'fork_bound':>10} {'accuracy':>9} {'seconds':>8}",
    ]
    for fork_bound, accuracy, elapsed in rows:
        lines.append(f"{fork_bound:>10} {accuracy:>8.1%} {elapsed:>8.2f}")
    record("ablation_fork_budget", lines)

    by_bound = {fb: acc for fb, acc, _ in rows}
    # Budget >= 2 suffices (each loop needs one taken + one exit side);
    # the default (3) must match it.
    assert by_bound[3] >= by_bound[2] - 0.01
    assert by_bound[2] >= by_bound[1]
