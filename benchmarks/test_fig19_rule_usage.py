"""Fig. 19 + RQ4 (§5.5): how frequently each rule is used.

Paper: all 31 rules are used; R4 (basic types default to uint256) is
the most frequent because basic types dominate; R9 (multidimensional
static arrays in public functions) is the least frequent.
"""

from repro.corpus.evaluate import evaluate_corpus
from repro.sigrec.api import SigRec


def test_fig19_rule_usage(benchmark, open_corpus, vyper_corpus, struct_corpus, record):
    tool = SigRec()

    def run():
        evaluate_corpus(open_corpus, tool)
        evaluate_corpus(vyper_corpus, tool)
        evaluate_corpus(struct_corpus, tool)
        return tool.tracker.as_dict()

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    ranked = sorted(counts.items(), key=lambda kv: -kv[1])
    unused = [rule for rule, count in counts.items() if count == 0]

    rows = [
        "Fig. 19 / RQ4: rule usage frequency",
        f"paper: all 31 rules used; R4 most frequent, R9 least frequent",
        f"measured: {31 - len(unused)}/31 rules used"
        + (f" (unused: {unused})" if unused else ""),
        f"most used : {ranked[0][0]} ({ranked[0][1]}x)",
        f"least used: {ranked[-1][0]} ({ranked[-1][1]}x)",
        "full ranking:",
    ]
    rows += [f"  {rule}: {count}" for rule, count in ranked]
    record("fig19_rule_usage", rows)

    assert not unused, f"rules never fired: {unused}"
    assert ranked[0][0] == "R4", "basic types should dominate"
    # R9's family (multidim static public arrays) sits in the rare tail.
    tail = {rule for rule, _ in ranked[-12:]}
    assert "R9" in tail
