"""§6.1: ParChecker — invalid actual arguments and short address attacks.

Paper: scanning all transactions in 556,361 blocks (91M transactions)
finds ~1% with invalid actual arguments, and among transfer() calls,
73 short-address attacks stealing tokens.  We reproduce the pipeline at
simulation scale on the chain substrate: deploy token contracts, mine
blocks of transactions with malformations injected at the same order of
magnitude, recover the contracts' signatures from their *on-chain*
bytecode, and scan the blocks.
"""

import random

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Visibility
from repro.apps.parchecker import CORRUPTION_KINDS, ParChecker, corrupt_calldata
from repro.chain import Chain, Transaction
from repro.compiler import compile_contract
from repro.sigrec.api import SigRec

N_TRANSACTIONS = 5000
BLOCK_SIZE = 250
INVALID_RATE = 0.01
ATTACK_RATE = 0.0015


def _build_chain(seed: int):
    rng = random.Random(seed)
    signatures = [
        FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL),
        FunctionSignature.parse("mint(address,uint256,bool)", Visibility.EXTERNAL),
        FunctionSignature.parse("setData(bytes4,bytes)", Visibility.PUBLIC),
        FunctionSignature.parse("vote(uint8,uint256[])", Visibility.EXTERNAL),
    ]
    chain = Chain()
    chain.fund(0xAA, 10**30)
    contract = compile_contract(signatures)
    address = chain.deploy(contract.bytecode, sender=0xAA)
    chain.mine()  # genesis-ish deployment block

    transfer = signatures[0]
    injected_invalid = 0
    injected_attacks = 0
    for i in range(N_TRANSACTIONS):
        roll = rng.random()
        if roll < ATTACK_RATE:
            values = [rng.getrandbits(152) << 8, rng.randint(1, 10**9)]
            data = corrupt_calldata(transfer, values, "short_address", rng)
            injected_attacks += 1
            injected_invalid += 1
        else:
            sig = rng.choice(signatures)
            values = [p.random_value(rng) for p in sig.params]
            if roll < INVALID_RATE:
                kind = rng.choice(
                    [k for k in CORRUPTION_KINDS if k != "short_address"]
                )
                data = corrupt_calldata(sig, values, kind, rng)
                if data is None:
                    data = encode_call(sig.selector, list(sig.params), values)
                else:
                    injected_invalid += 1
            else:
                data = encode_call(sig.selector, list(sig.params), values)
        chain.send(Transaction(sender=0xAA, to=address, data=data))
        if (i + 1) % BLOCK_SIZE == 0:
            chain.mine()
    chain.mine()
    return chain, address, injected_invalid, injected_attacks


def test_sec61_parchecker(benchmark, record):
    chain, address, injected_invalid, injected_attacks = _build_chain(61)

    # Signatures recovered from the deployed bytecode, as the paper does.
    recovered = SigRec().recover_map(chain.code_at(address))
    checker = ParChecker({s: r.param_list for s, r in recovered.items()})

    def scan():
        invalid = 0
        attacks = 0
        scanned = 0
        for block in chain.blocks:
            for tx in block.transactions:
                if tx.is_create:
                    continue
                scanned += 1
                result = checker.check(tx.data)
                if not result.valid:
                    invalid += 1
                if result.short_address_attack:
                    attacks += 1
        return scanned, invalid, attacks

    scanned, invalid, attacks = benchmark.pedantic(scan, rounds=1, iterations=1)

    record(
        "sec61_parchecker",
        [
            "§6.1: ParChecker over mined blocks",
            f"blocks scanned: {len(chain.blocks)}, transactions: {scanned}",
            f"invalid arguments  paper=1.0% of txs  "
            f"measured={invalid / scanned:.2%} "
            f"(injected {injected_invalid / scanned:.2%})",
            f"short address attacks  paper=73 found  "
            f"measured={attacks} found / {injected_attacks} injected",
        ],
    )
    benchmark.extra_info["invalid_found"] = invalid

    assert scanned == N_TRANSACTIONS
    assert attacks == injected_attacks, "every attack must be caught"
    assert invalid >= injected_invalid * 0.9
    # No false positives beyond the injected malformations.
    assert invalid <= injected_invalid
