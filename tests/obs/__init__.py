"""Tests for the repro.obs observability core."""
