"""Slow-exemplar log tests: bounded heap, span trees, round-trips."""

import pytest

from repro.obs import SlowLog
from repro.obs.slowlog import span_tree_lines


def test_keeps_only_the_k_slowest():
    log = SlowLog(k=3)
    for index, elapsed in enumerate([0.1, 0.9, 0.2, 0.5, 0.05, 0.7]):
        log.offer(elapsed, contract=f"c{index}")
    assert log.offered == 6
    entries = log.entries()
    assert [entry["elapsed_seconds"] for entry in entries] == [0.9, 0.7, 0.5]
    assert [entry["contract"] for entry in entries] == ["c1", "c5", "c3"]


def test_fast_units_are_rejected_without_allocation():
    log = SlowLog(k=2)
    assert log.offer(1.0, contract="slow-a")
    assert log.offer(2.0, contract="slow-b")
    assert not log.offer(0.5, contract="fast")
    assert len(log.entries()) == 2


def test_bad_k_rejected():
    with pytest.raises(ValueError):
        SlowLog(k=0)


def test_span_tree_renders_nesting():
    spans = [
        {"type": "span_start", "id": 1, "parent": None, "name": "recover"},
        {"type": "span_start", "id": 2, "parent": 1, "name": "tase"},
        {"type": "span_end", "id": 2, "dur": 0.25},
        {"type": "span_start", "id": 3, "parent": 1, "name": "inference"},
        {"type": "span_end", "id": 3, "dur": 0.05},
        {"type": "span_end", "id": 1, "dur": 0.5},
    ]
    lines = span_tree_lines(spans)
    assert lines == [
        "recover 0.500s",
        "  tase 0.250s",
        "  inference 0.050s",
    ]


def test_entry_carries_unit_spans_and_diagnostics():
    log = SlowLog(k=1)
    log.offer(
        0.3,
        contract="abcd",
        unit=(4, 1),
        spans=[{"type": "span_start", "id": 1, "name": "recover"}],
        diagnostics=[{"kind": "tase-truncated-paths", "detail": "cap"}],
    )
    (entry,) = log.entries()
    assert entry["unit"] == [4, 1]
    assert entry["spans"][0]["name"] == "recover"
    assert entry["diagnostics"][0]["kind"] == "tase-truncated-paths"
    text = log.render_text()
    assert "abcd unit 4/1" in text
    assert "! tase-truncated-paths: cap" in text


def test_dump_load_round_trip(tmp_path):
    log = SlowLog(k=2)
    log.offer(0.4, contract="aa", unit=(0, 0))
    log.offer(0.8, contract="bb")
    log.offer(0.1, contract="cc")
    path = str(tmp_path / "slow.json")
    log.dump(path)
    loaded = SlowLog.load(path)
    assert loaded.k == 2
    assert loaded.offered == 3
    assert loaded.entries() == log.entries()
    # The reloaded heap still evicts correctly.
    loaded.offer(0.6, contract="dd")
    assert [entry["contract"] for entry in loaded.entries()] == ["bb", "dd"]
