"""Rendering: ``repro stats`` text and Prometheus exposition."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import _parse_sample, render_prometheus, validate_exposition
from repro.obs.stats import render_stats


def _sample_doc():
    registry = MetricsRegistry()
    registry.counter("tase.runs").inc(4)
    registry.counter("tase.paths").inc(40)
    registry.counter("tase.steps").inc(4000)
    registry.counter("tase.forks").inc(30)
    registry.counter("tase.forks_suppressed").inc(10)
    registry.counter("tase.truncations", reason="max_paths").inc(2)
    registry.counter("recover.calls").inc(4)
    registry.counter("recover.functions").inc(9)
    registry.counter("rules.fired", rule="R4").inc(9)
    registry.counter("rules.fired", rule="R11").inc(3)
    registry.counter("rules.conflicts", rule="R15").inc(2)
    registry.counter("cache.hits").inc(3)
    registry.counter("cache.misses").inc(1)
    registry.counter("cache.invalidations").inc(1)
    registry.counter("eval.contracts").inc(4)
    registry.counter("eval.functions").inc(9)
    registry.counter("eval.correct").inc(8)
    registry.histogram("phase.seconds", phase="tase").observe(0.3)
    registry.histogram("phase.seconds", phase="inference").observe(0.1)
    return registry.to_dict()


def test_render_stats_covers_every_section():
    text = render_stats(_sample_doc())
    for needle in (
        "engine",
        "paths 40",
        "suppressed by pruning 10",
        "prune ratio 25.0%",
        "max_paths: 2",
        "recovery",
        "rules (fired 12 times",
        "R4",
        "shadowed candidates: R15: 2",
        "cache",
        "hit rate 75.0%",
        "invalidations 1",
        "evaluation",
        "accuracy 88.9%",
        "phases",
        "tase",
    ):
        assert needle in text, needle


def test_render_stats_lists_slowest_contracts_from_trace():
    trace = [
        {
            "type": "event",
            "name": "contract",
            "attrs": {"sha": "aa" * 8, "elapsed": 0.5, "functions": 3},
        },
        {
            "type": "event",
            "name": "contract",
            "attrs": {"sha": "bb" * 8, "elapsed": 2.0, "functions": 1},
        },
        {"type": "span_start", "name": "batch", "id": 1, "parent": None},
    ]
    text = render_stats(_sample_doc(), trace_records=trace, top=1)
    assert "slowest contracts (top 1)" in text
    assert "bb" * 8 in text
    assert "aa" * 8 not in text


def test_render_stats_empty_document():
    text = render_stats({"counters": {}, "gauges": {}, "histograms": {}})
    # Engine section always renders (all-zero), never crashes.
    assert "engine" in text


def test_prometheus_exposition_shape():
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(3)
    registry.counter("rules.fired", rule="R4").inc(2)
    registry.gauge("batch.workers").set(8)
    histogram = registry.histogram("phase.seconds", phase="tase", buckets=(0.5, 1.0))
    histogram.observe(0.2)
    histogram.observe(2.0)
    text = render_prometheus(registry)
    assert "# TYPE cache_hits counter" in text
    assert "cache_hits 3" in text
    assert 'rules_fired{rule="R4"} 2' in text
    assert "# TYPE batch_workers gauge" in text
    assert 'phase_seconds_bucket{phase="tase",le="0.5"} 1' in text
    assert 'phase_seconds_bucket{phase="tase",le="1.0"} 1' in text
    assert 'phase_seconds_bucket{phase="tase",le="+Inf"} 2' in text
    assert 'phase_seconds_count{phase="tase"} 2' in text
    # Renders identically from the serialized document.
    assert render_prometheus(registry.to_dict()) == text


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c", tag='quo"te').inc()
    text = render_prometheus(registry)
    assert 'tag="quo\\"te"' in text


def test_prometheus_escapes_backslash_quote_and_newline():
    registry = MetricsRegistry()
    registry.counter("c", tag="back\\slash").inc()
    registry.counter("d", tag="multi\nline").inc()
    text = render_prometheus(registry)
    assert 'tag="back\\\\slash"' in text
    assert 'tag="multi\\nline"' in text
    # The escaped newline keeps the exposition one-sample-per-line.
    assert all(" 1" in line for line in text.splitlines() if line[0] != "#")
    assert validate_exposition(text) == []
    # Backslash and quote escapes round-trip through the parser.
    name, labels, value = _parse_sample('c{tag="back\\\\sl\\"ash"} 4')
    assert (name, labels, value) == ("c", {"tag": 'back\\sl"ash'}, 4.0)


def test_prometheus_renders_non_finite_gauges():
    registry = MetricsRegistry()
    registry.gauge("g_nan").set(float("nan"))
    registry.gauge("g_pos").set(float("inf"))
    registry.gauge("g_neg").set(float("-inf"))
    text = render_prometheus(registry)
    assert "g_nan NaN" in text
    assert "g_pos +Inf" in text
    assert "g_neg -Inf" in text
    # The spellings are the ones a scraper's float() accepts.
    assert validate_exposition(text) == []


def test_validate_exposition_accepts_renderer_output():
    assert validate_exposition(render_prometheus(_sample_doc())) == []
    assert validate_exposition("") == []


def test_validate_exposition_flags_structural_breakage():
    assert validate_exposition("bad-name 1\n")
    assert validate_exposition("# TYPE x teapot\nx 1\n")
    assert validate_exposition("x nope\n")
    non_monotone = (
        '# TYPE h histogram\n'
        'h_bucket{le="0.5"} 3\n'
        'h_bucket{le="1.0"} 2\n'
        'h_bucket{le="+Inf"} 3\n'
        "h_count 3\n"
    )
    assert any("not cumulative" in e for e in validate_exposition(non_monotone))
    no_inf = '# TYPE h histogram\nh_bucket{le="0.5"} 1\nh_count 1\n'
    assert any("+Inf" in e for e in validate_exposition(no_inf))
    mismatch = (
        '# TYPE h histogram\n'
        'h_bucket{le="+Inf"} 2\n'
        "h_count 3\n"
    )
    assert any("_count" in e for e in validate_exposition(mismatch))


def test_render_stats_memo_tiers():
    registry = MetricsRegistry()
    registry.counter("memo.hits", tier="memory").inc(3)
    registry.counter("memo.hits", tier="disk").inc(1)
    registry.counter("memo.misses").inc(4)
    registry.counter("memo.writes").inc(4)
    registry.counter("infmemo.hits", tier="memory").inc(5)
    registry.counter("infmemo.hits", tier="disk").inc(1)
    registry.counter("infmemo.misses").inc(2)
    registry.counter("infmemo.writes").inc(2)
    text = render_stats(registry.to_dict())
    assert "function memo" in text
    assert "inference memo" in text
    assert "hits 6 [disk: 1, memory: 5] | misses 2 (hit rate 75.0%)" in text
    # A document without inference-memo activity omits the section.
    silent = MetricsRegistry()
    silent.counter("memo.hits", tier="memory").inc(1)
    assert "inference memo" not in render_stats(silent.to_dict())
