"""Run-ledger tests: rotation, queries, and recovery integration."""

import json

import pytest

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.obs import MetricsRegistry, RunLedger
from repro.obs.ledger import (
    filter_records,
    ledger_paths,
    phase_delta,
    read_ledger,
    summarize,
    top_by_elapsed,
    top_by_phase,
)
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery


def _bytecode(*sigs):
    return compile_contract(
        [FunctionSignature.parse(s) for s in sigs]
    ).bytecode


# ----------------------------------------------------------------------
# Storage modes and rotation
# ----------------------------------------------------------------------


def test_in_memory_ledger_accumulates_records():
    ledger = RunLedger()
    ledger.append({"strategy": "sharded"})
    ledger.extend([{"strategy": "cached"}, {"strategy": "monolithic"}])
    records = ledger.all_records()
    assert len(records) == 3
    assert ledger.written == 3
    # A schema field is stamped on every record.
    assert all(record["schema"] == 1 for record in records)
    # all_records returns a copy, not the live list.
    records.append({"bogus": True})
    assert len(ledger.all_records()) == 3


def test_file_ledger_round_trips(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    ledger = RunLedger(path)
    for index in range(5):
        ledger.append({"index": index})
    records = read_ledger(path)
    assert [record["index"] for record in records] == list(range(5))
    assert ledger.all_records() == records


def test_read_ledger_skips_truncated_final_line(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    ledger = RunLedger(path)
    ledger.append({"index": 0})
    ledger.append({"index": 1})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"index": 2, "truncat')  # died mid-write
    records = read_ledger(path)
    assert [record["index"] for record in records] == [0, 1]


def test_rotation_chains_and_caps_backups(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    ledger = RunLedger(path, max_bytes=200, backups=2)
    for index in range(40):
        ledger.append({"index": index, "pad": "x" * 40})
    chain = ledger_paths(path)
    assert chain[-1] == path
    assert len(chain) <= 3  # active file + at most 2 backups
    records = read_ledger(path)
    # Oldest records fell off the end of the chain, order is preserved.
    indices = [record["index"] for record in records]
    assert indices == sorted(indices)
    assert indices[-1] == 39
    assert len(indices) < 40


def test_rotation_with_zero_backups_truncates(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    ledger = RunLedger(path, max_bytes=120, backups=0)
    for index in range(20):
        ledger.append({"index": index})
    assert ledger_paths(path) == [path]
    indices = [record["index"] for record in read_ledger(path)]
    assert indices and indices[-1] == 19


def test_bad_max_bytes_rejected():
    with pytest.raises(ValueError):
        RunLedger(max_bytes=0)


# ----------------------------------------------------------------------
# Query API
# ----------------------------------------------------------------------


_RECORDS = [
    {"strategy": "sharded", "tier": "cold", "elapsed_seconds": 0.5,
     "phases": {"tase": 0.4, "inference": 0.1},
     "tase": {"truncated_paths": False, "truncated_steps": False}},
    {"strategy": "sharded", "tier": "memo", "elapsed_seconds": 0.1,
     "phases": {"tase": 0.01, "inference": 0.05},
     "tase": {"truncated_paths": True, "truncated_steps": False}},
    {"strategy": "cached", "tier": "result-cache", "elapsed_seconds": 0.0,
     "phases": {}},
]


def test_filter_records_by_strategy_tier_truncation():
    assert len(filter_records(_RECORDS, strategy="sharded")) == 2
    assert len(filter_records(_RECORDS, tier="result-cache")) == 1
    assert len(filter_records(_RECORDS, truncated=True)) == 1
    assert len(
        filter_records(_RECORDS, strategy="sharded", truncated=False)
    ) == 1


def test_top_by_phase_and_elapsed():
    top = top_by_phase(_RECORDS, "tase", n=5)
    assert [record["phases"]["tase"] for record in top] == [0.4, 0.01]
    top = top_by_elapsed(_RECORDS, n=2)
    assert [record["elapsed_seconds"] for record in top] == [0.5, 0.1]


def test_summarize_aggregates():
    summary = summarize(_RECORDS)
    assert summary["records"] == 3
    assert summary["strategies"] == {"cached": 1, "sharded": 2}
    assert summary["tiers"] == {
        "cold": 1, "memo": 1, "result-cache": 1
    }
    assert summary["truncated"] == 1
    assert summary["phase_seconds"]["tase"] == pytest.approx(0.41)


def test_phase_delta_positive_only():
    assert phase_delta(
        {"tase": 1.0, "gone": 2.0}, {"tase": 1.5, "new": 0.25, "gone": 2.0}
    ) == {"tase": pytest.approx(0.5), "new": pytest.approx(0.25)}


# ----------------------------------------------------------------------
# SigRec integration
# ----------------------------------------------------------------------


def test_recover_appends_one_record_per_call():
    ledger = RunLedger()
    tool = SigRec(ledger=ledger)
    code = _bytecode("transfer(address,uint256)", "balanceOf(address)")
    recovered = tool.recover(code)
    (record,) = ledger.all_records()
    assert record["functions"] == len(recovered) == 2
    assert record["strategy"] == tool.last_strategy
    assert record["tier"] == "cold"
    assert record["partial"] is False
    assert record["bytes"] == len(code)
    assert len(record["code_sha256"]) == 64
    assert record["memo"] == {"hits": 0, "misses": 2}
    assert record["tase"]["steps"] > 0
    assert record["elapsed_seconds"] > 0
    # Phase attribution covers the whole pipeline.
    for phase in ("disasm", "static_analysis", "tase", "inference"):
        assert record["phases"][phase] >= 0


def test_ledger_auto_creates_a_real_registry():
    tool = SigRec(ledger=RunLedger())
    assert isinstance(tool.metrics, MetricsRegistry)
    assert tool.metrics.to_dict()["counters"] == {}


def test_ledger_does_not_perturb_options_fingerprint():
    assert SigRec(ledger=RunLedger()).options() == SigRec().options()


def test_second_recover_hits_the_memo_tier():
    ledger = RunLedger()
    tool = SigRec(ledger=ledger)
    code = _bytecode("transfer(address,uint256)")
    tool.recover(code)
    tool.recover(code)
    first, second = ledger.all_records()
    assert first["tier"] == "cold"
    assert second["tier"] == "memo"
    assert second["memo"]["hits"] == 1


def test_ledger_phase_seconds_reconcile_with_histograms():
    registry = MetricsRegistry()
    ledger = RunLedger()
    tool = SigRec(metrics=registry, ledger=ledger)
    for code in (
        _bytecode("a(uint256)", "b(address,bool)"),
        _bytecode("c(bytes)"),
    ):
        tool.recover(code)
    summed = summarize(ledger.all_records())["phase_seconds"]
    histograms = registry.histogram_sums("phase.seconds", "phase")
    for phase, (total, _count) in histograms.items():
        assert summed.get(phase, 0.0) == pytest.approx(total, rel=1e-6,
                                                       abs=1e-9)


# ----------------------------------------------------------------------
# Batch integration
# ----------------------------------------------------------------------


def _corpus():
    unique = [
        _bytecode("transfer(address,uint256)", "balanceOf(address)"),
        _bytecode("approve(address,uint256)"),
        _bytecode("mint(address,uint256)", "burn(uint256)"),
    ]
    return unique + [unique[0]]  # one duplicate


def _batch_records(workers):
    ledger = RunLedger()
    # The inference memo is off: its hit pattern (and with it the
    # ledger tier) legitimately depends on how units land on workers —
    # transfer/approve/mint share one parameter shape — and these
    # tests assert worker-count-independent records.
    runner = BatchRecovery(
        tool=SigRec(ledger=ledger, inference_memo=False), workers=workers
    )
    runner.recover_all(_corpus())
    return ledger.all_records()


def test_batch_serial_and_parallel_ledgers_agree():
    serial = _batch_records(0)
    parallel = _batch_records(2)
    assert len(serial) == len(parallel) == 3  # deduped corpus
    for left, right in zip(serial, parallel):
        for field in ("code_sha256", "strategy", "tier", "functions",
                      "job", "unit"):
            assert left[field] == right[field]


def test_batch_cache_hits_record_the_result_cache_tier(tmp_path):
    cache_dir = str(tmp_path / "cache")
    corpus = _corpus()
    cold = RunLedger()
    BatchRecovery(
        tool=SigRec(ledger=cold, inference_memo=False),
        workers=0, cache_dir=cache_dir,
    ).recover_all(corpus)
    assert {record["tier"] for record in cold.all_records()} == {"cold"}
    warm = RunLedger()
    BatchRecovery(
        tool=SigRec(ledger=warm, inference_memo=False),
        workers=0, cache_dir=cache_dir,
    ).recover_all(corpus)
    records = warm.all_records()
    assert len(records) == 3
    assert {record["tier"] for record in records} == {"result-cache"}
    assert {record["strategy"] for record in records} == {"cached"}
    assert all(record["elapsed_seconds"] == 0.0 for record in records)


def test_batch_file_ledger_is_json_parseable(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    runner = BatchRecovery(tool=SigRec(ledger=RunLedger(path)), workers=0)
    runner.recover_all(_corpus())
    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    assert len(lines) == 3
    assert all("code_sha256" in record for record in lines)
