"""Metrics registry: instruments, keys, serialization, merging, null."""

import json
import multiprocessing

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    dump_metrics,
    load_metrics,
    metric_key,
    parse_key,
)


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc(4)
    registry.gauge("g").set(2.5)
    assert registry.counter("a").value == 5
    assert registry.gauge("g").value == 2.5


def test_metric_key_is_label_order_stable():
    assert metric_key("x", {}) == "x"
    assert metric_key("x", {"b": 1, "a": 2}) == "x{a=2,b=1}"
    assert parse_key("x{a=2,b=1}") == ("x", {"a": "2", "b": "1"})
    assert parse_key("plain") == ("plain", {})


def test_labelled_counters_are_distinct_series():
    registry = MetricsRegistry()
    registry.counter("rules.fired", rule="R4").inc(3)
    registry.counter("rules.fired", rule="R11").inc()
    values = registry.counter_values()
    assert values["rules.fired{rule=R4}"] == 3
    assert values["rules.fired{rule=R11}"] == 1


def test_histogram_buckets_and_mean():
    histogram = Histogram(bounds=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        histogram.observe(value)
    assert histogram.bucket_counts == [1, 2, 1]  # <=0.1, <=1.0, overflow
    assert histogram.count == 4
    assert abs(histogram.mean - (0.05 + 0.5 + 0.5 + 5.0) / 4) < 1e-12


def test_histogram_boundary_value_lands_in_its_bucket():
    histogram = Histogram(bounds=(1.0, 2.0))
    histogram.observe(1.0)
    assert histogram.bucket_counts == [1, 0, 0]


def test_round_trip_and_merge():
    a = MetricsRegistry()
    a.counter("c").inc(2)
    a.gauge("g").set(1.0)
    a.histogram("h", buckets=(0.5, 1.5)).observe(1.0)
    b = MetricsRegistry.from_dict(a.to_dict())
    b.merge(a)  # registry merge, not just document merge
    assert b.counter("c").value == 4
    assert b.gauge("g").value == 1.0
    assert b.histogram("h", buckets=(0.5, 1.5)).count == 2
    # Serialized documents stay JSON-clean.
    json.dumps(b.to_dict())


def test_merge_rejects_mismatched_histogram_bounds():
    a = MetricsRegistry()
    a.histogram("h", buckets=(0.5,)).observe(0.1)
    b = MetricsRegistry()
    b.histogram("h", buckets=(0.9,)).observe(0.1)
    with pytest.raises(ValueError):
        a.merge(b)


def test_null_registry_swallows_everything():
    NULL_REGISTRY.counter("x", rule="R4").inc(10)
    NULL_REGISTRY.gauge("y").set(3)
    NULL_REGISTRY.histogram("z").observe(0.2)
    doc = NULL_REGISTRY.to_dict()
    assert doc["counters"] == {} and doc["gauges"] == {}
    assert doc["histograms"] == {}
    # Null instruments are shared singletons: creation allocates nothing.
    assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")


def test_dump_metrics_accumulates_across_runs(tmp_path):
    path = str(tmp_path / "m.json")
    cold = MetricsRegistry()
    cold.counter("cache.misses").inc(5)
    dump_metrics(cold, path)
    warm = MetricsRegistry()
    warm.counter("cache.hits").inc(5)
    doc = dump_metrics(warm, path)
    assert doc["counters"] == {"cache.hits": 5, "cache.misses": 5}
    assert load_metrics(path)["counters"]["cache.misses"] == 5


def test_dump_metrics_without_merge_overwrites(tmp_path):
    path = str(tmp_path / "m.json")
    first = MetricsRegistry()
    first.counter("c").inc()
    dump_metrics(first, path)
    second = MetricsRegistry()
    second.counter("d").inc()
    doc = dump_metrics(second, path, merge_existing=False)
    assert doc["counters"] == {"d": 1}


def test_load_metrics_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json at all")
    assert load_metrics(str(path)) is None
    path.write_text(json.dumps([1, 2, 3]))
    assert load_metrics(str(path)) is None
    assert load_metrics(str(tmp_path / "absent.json")) is None


def test_default_buckets_are_sorted():
    assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


def test_histogram_sums_extracts_one_label_family():
    registry = MetricsRegistry()
    registry.histogram("phase.seconds", phase="tase").observe(0.3)
    registry.histogram("phase.seconds", phase="tase").observe(0.2)
    registry.histogram("phase.seconds", phase="disasm").observe(0.01)
    registry.histogram("other.seconds", phase="tase").observe(9.0)
    sums = registry.histogram_sums("phase.seconds", "phase")
    assert sums["tase"] == (pytest.approx(0.5), 2)
    assert sums["disasm"] == (pytest.approx(0.01), 1)
    assert set(sums) == {"tase", "disasm"}


def _dump_worker(args):
    # Module-level so the pool can pickle it.
    path, rounds = args
    for _ in range(rounds):
        registry = MetricsRegistry()
        registry.counter("race.total").inc()
        dump_metrics(registry, path)
    return rounds


def test_dump_metrics_merge_is_atomic_across_processes(tmp_path):
    path = str(tmp_path / "m.json")
    workers, rounds = 4, 25
    with multiprocessing.Pool(workers) as pool:
        done = pool.map(_dump_worker, [(path, rounds)] * workers)
    assert done == [rounds] * workers
    # Without the advisory lock concurrent read-merge-replace cycles
    # lose increments; with it the final count is exact.
    assert load_metrics(path)["counters"]["race.total"] == workers * rounds
