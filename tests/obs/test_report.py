"""``repro report`` tests: sections, parity, perf-history attribution."""

import json

import pytest

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.obs import MetricsRegistry, RunLedger, SlowLog
from repro.obs.report import (
    build_report,
    perf_history_section,
    render_report,
)
from repro.sigrec.api import SigRec


def _bytecode(*sigs):
    return compile_contract(
        [FunctionSignature.parse(s) for s in sigs]
    ).bytecode


@pytest.fixture()
def run_sources():
    """One instrumented recovery run: (metrics doc, ledger records)."""
    registry = MetricsRegistry()
    ledger = RunLedger()
    tool = SigRec(metrics=registry, ledger=ledger)
    tool.recover(_bytecode("transfer(address,uint256)", "balanceOf(address)"))
    tool.recover(_bytecode("approve(address,uint256)"))
    return registry.to_dict(), ledger.all_records()


def test_phase_section_reproduces_histogram_seconds(run_sources):
    doc, records = run_sources
    report = build_report(metrics_doc=doc, ledger_records=records)
    phases = report["phases"]
    for key, payload in doc["histograms"].items():
        if not key.startswith("phase.seconds{"):
            continue
        phase = key[len("phase.seconds{phase="):-1]
        assert phases[phase]["seconds"] == pytest.approx(payload["sum"])
        assert phases[phase]["count"] == payload["count"]
    # Shares exist for the top-level pipeline phases only and sum to 1.
    shared = [p for p, entry in phases.items() if "share" in entry]
    assert sorted(shared) == [
        "disasm", "inference", "static_analysis", "tase",
    ]
    assert sum(phases[p]["share"] for p in shared) == pytest.approx(1.0)
    assert "share" not in phases["recover"]


def test_ledger_section_matches_summarize(run_sources):
    doc, records = run_sources
    report = build_report(metrics_doc=doc, ledger_records=records)
    assert report["ledger"]["records"] == 2
    # The acceptance cross-check: ledger phase sums reproduce the
    # registry's per-phase seconds within rounding.
    for phase, entry in report["phases"].items():
        assert report["ledger"]["phase_seconds"][phase] == pytest.approx(
            entry["seconds"], rel=1e-6, abs=1e-9
        )


def test_tier_section_hit_rates():
    doc = {
        "counters": {
            "cache.hits": 6, "cache.misses": 2,
            "memo.hits{tier=memory}": 3, "memo.hits{tier=disk}": 1,
            "memo.misses": 4,
        },
        "gauges": {}, "histograms": {},
    }
    tiers = build_report(metrics_doc=doc)["tiers"]
    assert tiers["result_cache"]["hit_rate"] == pytest.approx(0.75)
    assert tiers["function_memo"]["hit_rate"] == pytest.approx(0.5)
    empty = build_report(metrics_doc={"counters": {}})["tiers"]
    assert empty["result_cache"]["hit_rate"] is None


def test_hotspots_aggregate_across_records():
    records = [
        {"hotspots": [[16, 100], [32, 50]]},
        {"hotspots": [[16, 25]]},
        {},
    ]
    report = build_report(ledger_records=records)
    assert report["hotspots"] == [[16, 125], [32, 50]]


def test_slowest_section_names_the_dominant_phase():
    records = [
        {"code_sha256": "a" * 64, "elapsed_seconds": 2.0,
         "strategy": "sharded", "tier": "cold", "functions": 3,
         "phases": {"recover": 2.0, "tase": 1.5, "inference": 0.2}},
        {"code_sha256": "b" * 64, "elapsed_seconds": 0.5,
         "strategy": "cached", "tier": "result-cache", "functions": 1,
         "phases": {}},
    ]
    slowest = build_report(ledger_records=records)["slowest"]
    assert slowest[0]["code_sha256"] == "a" * 16
    assert slowest[0]["dominant_phase"] == "tase"  # not the outer span
    assert slowest[1]["dominant_phase"] is None


def test_render_report_has_every_section(run_sources):
    doc, records = run_sources
    slowlog = SlowLog(k=2)
    slowlog.offer(0.4, contract="abcd", unit=(0, 0))
    text = render_report(
        build_report(metrics_doc=doc, ledger_records=records,
                     slowlog=slowlog,
                     perf={"status": "no-history", "failures": []})
    )
    assert "phase time attribution" in text
    assert "tier hit rates" in text
    assert "run ledger: 2 records" in text
    assert "slowest recoveries" in text
    assert "slow exemplars" in text
    assert "perf history: no snapshots" in text


def test_render_empty_report():
    assert render_report({}) == "(empty report)\n"


# ----------------------------------------------------------------------
# perf-history section
# ----------------------------------------------------------------------


def _write(path, doc):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)


def test_perf_history_no_snapshots(tmp_path):
    bench = tmp_path / "bench.json"
    _write(str(bench), {"sharded_memo": {"speedup": 3.0}})
    section = perf_history_section(str(bench), str(tmp_path / "none"))
    assert section["status"] == "no-history"


def test_perf_history_ok_and_regression_name_the_moving_phase(tmp_path):
    history = tmp_path / "history"
    history.mkdir()
    baseline_phases = {"disasm": 0.05, "static_analysis": 0.25,
                       "tase": 0.55, "inference": 0.15}
    _write(str(history / "0001.json"), {
        "sequence": 1, "calibration": 0.0,
        "bench": {"sharded_memo": {"speedup": 3.0},
                  "phases": baseline_phases},
    })
    bench = tmp_path / "bench.json"
    # Same speedup -> ok.
    _write(str(bench), {"sharded_memo": {"speedup": 3.0},
                        "phases": baseline_phases})
    section = perf_history_section(str(bench), str(history))
    assert section["status"] == "ok"
    assert section["baseline_entry"] == 1
    # A 50% drop on a ratio tier -> regressed, and the phase whose
    # share of wall time moved most is named.
    moved = {"disasm": 0.05, "static_analysis": 0.15,
             "tase": 0.70, "inference": 0.10}
    _write(str(bench), {"sharded_memo": {"speedup": 1.4}, "phases": moved})
    section = perf_history_section(str(bench), str(history))
    assert section["status"] == "regressed"
    assert any("sharded_memo.speedup" in f for f in section["failures"])
    assert section["phase_shares"]["mover"] == "tase"
    assert section["phase_shares"]["shifts"]["tase"] == pytest.approx(0.15)
    rendered = render_report(build_report(perf=section))
    assert "REGRESSED" in rendered
    assert "phase share moved most: tase" in rendered


def test_perf_history_regression_without_phase_baseline(tmp_path):
    history = tmp_path / "history"
    history.mkdir()
    _write(str(history / "0001.json"), {
        "sequence": 1, "calibration": 0.0,
        "bench": {"sharded_memo": {"speedup": 3.0}},  # predates phases
    })
    bench = tmp_path / "bench.json"
    _write(str(bench), {"sharded_memo": {"speedup": 1.0},
                        "phases": {"tase": 1.0}})
    section = perf_history_section(str(bench), str(history))
    assert section["status"] == "regressed"
    assert section["phase_shares"] is None
    assert "no phase-share baseline" in render_report(
        build_report(perf=section)
    )


def test_tier_section_includes_inference_memo():
    doc = {
        "counters": {
            "infmemo.hits{tier=memory}": 3, "infmemo.hits{tier=disk}": 1,
            "infmemo.misses": 4,
        },
        "gauges": {}, "histograms": {},
    }
    report = build_report(metrics_doc=doc)
    assert report["tiers"]["inference_memo"]["hit_rate"] == pytest.approx(0.5)
    text = render_report(report)
    assert "inference memo  3 memory + 1 disk hits / 4 misses" in text
    # Reports built before the tier existed still render.
    legacy = {"tiers": {
        "result_cache": {"hits": 0, "misses": 0, "invalidations": 0,
                         "hit_rate": None},
        "function_memo": {"hits_memory": 0, "hits_disk": 0, "misses": 0,
                          "hit_rate": None},
    }}
    assert "inference memo" not in render_report(legacy)


def test_perf_history_reports_improvements_as_info_lines(tmp_path):
    history = tmp_path / "history"
    history.mkdir()
    baseline_phases = {"disasm": 0.05, "static_analysis": 0.10,
                       "tase": 0.15, "inference": 0.70}
    _write(str(history / "0001.json"), {
        "sequence": 1, "calibration": 0.0,
        "bench": {"sharded_memo": {"speedup": 3.0},
                  "inference": {"speedup_vs_baseline": 4.0},
                  "phases": baseline_phases},
    })
    bench = tmp_path / "bench.json"
    # The inference speedup jumped 5x and its phase share collapsed:
    # the report must say so instead of printing a bare "OK".
    improved_phases = {"disasm": 0.10, "static_analysis": 0.25,
                       "tase": 0.45, "inference": 0.20}
    _write(str(bench), {"sharded_memo": {"speedup": 3.0},
                        "inference": {"speedup_vs_baseline": 20.0},
                        "phases": improved_phases})
    section = perf_history_section(str(bench), str(history))
    assert section["status"] == "ok"
    assert any(
        "inference.speedup_vs_baseline" in line
        for line in section["improvements"]
    )
    rendered = render_report(build_report(perf=section))
    assert "info: improved" in rendered
    assert "inference.speedup_vs_baseline" in rendered
    # The inference share dropped 50 points: it is the mover, and the
    # rendering names it with a negative shift.
    assert section["phase_shares"]["mover"] == "inference"
    assert "-50.0%" in rendered
