"""Telemetry endpoint tests: routing, parity, path-backed serving."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    RunLedger,
    dump_metrics,
    render_prometheus,
    validate_exposition,
)
from repro.obs.httpexp import TelemetryServer


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("recover.calls").inc(3)
    reg.counter("rules.fired", rule="R4").inc(7)
    reg.gauge("batch.queue_peak").set(5)
    reg.histogram("phase.seconds", phase="tase").observe(0.25)
    return reg


def test_healthz(registry):
    server = TelemetryServer(registry=registry).start()
    try:
        status, _headers, body = _get(server.url("/healthz"))
        assert status == 200
        assert body == b"ok\n"
    finally:
        server.stop()


def test_metrics_is_byte_identical_to_the_cli_exposition(registry):
    server = TelemetryServer(registry=registry).start()
    try:
        status, headers, body = _get(server.url("/metrics"))
        assert status == 200
        assert headers["Content-Type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        # ``repro stats --prometheus`` writes render_prometheus(doc)
        # verbatim; the endpoint must serve the same bytes.
        assert body.decode("utf-8") == render_prometheus(registry.to_dict())
        assert validate_exposition(body.decode("utf-8")) == []
    finally:
        server.stop()


def test_metrics_sees_live_registry_updates(registry):
    server = TelemetryServer(registry=registry).start()
    try:
        _status, _headers, before = _get(server.url("/metrics"))
        registry.counter("recover.calls").inc(10)
        _status, _headers, after = _get(server.url("/metrics"))
        assert before != after
        assert b"recover_calls 13" in after
    finally:
        server.stop()


def test_ledger_summary_json(registry):
    ledger = RunLedger()
    ledger.append({"strategy": "sharded", "tier": "cold", "functions": 2,
                   "elapsed_seconds": 0.5, "phases": {"tase": 0.4}})
    server = TelemetryServer(registry=registry, ledger=ledger).start()
    try:
        status, headers, body = _get(server.url("/ledger/summary"))
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        summary = json.loads(body)
        assert summary["records"] == 1
        assert summary["tiers"] == {"cold": 1}
    finally:
        server.stop()


def test_unknown_path_is_404_and_missing_sources_degrade(registry):
    server = TelemetryServer(registry=registry).start()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url("/nope"))
        assert excinfo.value.code == 404
        # No ledger configured -> /ledger/summary is 404, not a crash.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url("/ledger/summary"))
        assert excinfo.value.code == 404
    finally:
        server.stop()


def test_path_backed_serving_rereads_documents(tmp_path, registry):
    metrics_path = str(tmp_path / "metrics.json")
    ledger_path = str(tmp_path / "ledger.jsonl")
    dump_metrics(registry, metrics_path)
    RunLedger(ledger_path).append({"strategy": "sharded", "tier": "cold"})
    server = TelemetryServer(
        metrics_path=metrics_path, ledger_path=ledger_path
    ).start()
    try:
        _status, _headers, body = _get(server.url("/metrics"))
        assert b"recover_calls 3" in body
        # The standalone mode re-reads per scrape: an updated document
        # is visible without restarting the server.
        registry.counter("recover.calls").inc()
        dump_metrics(registry, metrics_path, merge_existing=False)
        _status, _headers, body = _get(server.url("/metrics"))
        assert b"recover_calls 4" in body
        summary = json.loads(_get(server.url("/ledger/summary"))[2])
        assert summary["records"] == 1
    finally:
        server.stop()


def test_missing_metrics_document_is_503(tmp_path):
    server = TelemetryServer(
        metrics_path=str(tmp_path / "absent.json")
    ).start()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url("/metrics"))
        assert excinfo.value.code == 503
    finally:
        server.stop()
