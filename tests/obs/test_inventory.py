"""Docs completeness: every published metric is in the inventory table."""

import os
import re

_REPO = os.path.join(os.path.dirname(__file__), "..", "..")
_SRC = os.path.join(_REPO, "src")
_DOC = os.path.join(_REPO, "docs", "observability.md")

# Instrument creation sites: registry.counter("name", ...), .gauge, .histogram.
_INSTRUMENT_RE = re.compile(r"\.(?:counter|gauge|histogram)\(\s*\"([^\"]+)\"")


def _published_names():
    names = set()
    for root, _dirs, files in os.walk(_SRC):
        for filename in files:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(root, filename)
            with open(path, encoding="utf-8") as handle:
                names.update(_INSTRUMENT_RE.findall(handle.read()))
    return names


def test_every_metric_name_is_documented():
    names = _published_names()
    assert names, "no instrument sites found under src/ — regex rotted?"
    with open(_DOC, encoding="utf-8") as handle:
        doc = handle.read()
    missing = sorted(
        name for name in names if f"`{name}`" not in doc
    )
    assert not missing, (
        f"metrics missing from docs/observability.md inventory: {missing}"
    )


def test_inventory_table_exists():
    with open(_DOC, encoding="utf-8") as handle:
        doc = handle.read()
    assert "| name | type | labels | emitted by |" in doc
