"""Span tracer: nesting, parent ids, JSONL output, null backend."""

import io

from repro.obs.trace import NULL_TRACER, SpanTracer, read_trace


def test_span_nesting_records_parent_ids():
    tracer = SpanTracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            tracer.event("tick", n=1)
    kinds = [r["type"] for r in tracer.records]
    assert kinds == ["span_start", "span_start", "event", "span_end", "span_end"]
    starts = [r for r in tracer.records if r["type"] == "span_start"]
    assert starts[0]["name"] == "outer" and starts[0]["parent"] is None
    assert starts[1]["name"] == "inner" and starts[1]["parent"] == outer.span_id
    event = next(r for r in tracer.records if r["type"] == "event")
    assert event["parent"] == inner.span_id
    ends = [r for r in tracer.records if r["type"] == "span_end"]
    assert all(e["dur"] >= 0 for e in ends)
    assert all("error" not in e for e in ends)


def test_span_end_records_error_type():
    tracer = SpanTracer()
    try:
        with tracer.span("boom"):
            raise RuntimeError("nope")
    except RuntimeError:
        pass
    end = tracer.records[-1]
    assert end["type"] == "span_end"
    assert end["error"] == "RuntimeError"


def test_tracer_writes_jsonl_to_file_like(tmp_path):
    buffer = io.StringIO()
    tracer = SpanTracer(out=buffer)
    with tracer.span("phase", contract=7):
        tracer.event("mark")
    tracer.close()
    path = tmp_path / "t.jsonl"
    path.write_text(buffer.getvalue())
    records = read_trace(str(path))
    assert [r["type"] for r in records] == ["span_start", "event", "span_end"]
    assert records[0]["attrs"] == {"contract": 7}


def test_read_trace_skips_malformed_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"type": "event", "name": "ok"}\nnot json\n\n')
    records = read_trace(str(path))
    assert len(records) == 1 and records[0]["name"] == "ok"
    assert read_trace(str(tmp_path / "absent.jsonl")) == []


def test_read_trace_tolerates_final_line_truncated_mid_write(tmp_path):
    buffer = io.StringIO()
    tracer = SpanTracer(out=buffer)
    with tracer.span("phase"):
        tracer.event("mark")
    tracer.close()
    lines = buffer.getvalue().splitlines()
    # Simulate the writer dying mid-record: the last line is cut short.
    path = tmp_path / "t.jsonl"
    path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
    records = read_trace(str(path))
    assert [r["type"] for r in records] == ["span_start", "event"]


def test_null_tracer_is_inert():
    with NULL_TRACER.span("anything", a=1) as span:
        NULL_TRACER.event("ignored")
        with NULL_TRACER.span("nested") as nested:
            assert nested is span  # shared singleton span
    assert NULL_TRACER.records == []
    NULL_TRACER.close()
