"""Hot-loop profiler tests: exactness, neutrality, sampling bounds."""

import pytest

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.obs import HotLoopProfiler
from repro.obs.profiler import render_hotspots, top_hotspots
from repro.sigrec.engine import TASEEngine


def _bytecode(*sigs):
    return compile_contract(
        [FunctionSignature.parse(s) for s in sigs]
    ).bytecode


_CODE = _bytecode(
    "transfer(address,uint256)", "balanceOf(address)", "approve(address,uint256)"
)


def test_bad_mode_and_interval_rejected():
    with pytest.raises(ValueError):
        HotLoopProfiler(mode="trace")
    with pytest.raises(ValueError):
        HotLoopProfiler(interval=0)


def test_counting_mode_is_exact():
    profiler = HotLoopProfiler(mode="count")
    result = TASEEngine(_CODE, profiler=profiler).run()
    assert profiler.total_steps == result.total_steps
    assert profiler.counts  # attribution actually happened
    assert all(pc >= 0 and steps > 0 for pc, steps in profiler.counts.items())


def test_profiler_does_not_change_the_result():
    plain = TASEEngine(_CODE).run()
    profiled = TASEEngine(_CODE, profiler=HotLoopProfiler()).run()
    assert profiled.selectors == plain.selectors
    assert profiled.total_steps == plain.total_steps
    assert profiled.paths_explored == plain.paths_explored
    assert profiled.forks_taken == plain.forks_taken


def test_sampling_mode_attribution_is_bounded():
    interval = 64
    profiler = HotLoopProfiler(mode="sample", interval=interval)
    result = TASEEngine(_CODE, profiler=profiler).run()
    # Sampled attribution is quantized to whole intervals and can't
    # overshoot the true total by more than the leftover credit.
    assert profiler.total_steps % interval == 0
    assert abs(profiler.total_steps - result.total_steps) < interval
    # Sampled hot set is a subset of the exact hot set.
    exact = HotLoopProfiler(mode="count")
    TASEEngine(_CODE, profiler=exact).run()
    assert set(profiler.counts) <= set(exact.counts)


def test_sample_mode_credit_spans_small_blocks():
    profiler = HotLoopProfiler(mode="sample", interval=10)
    for _ in range(7):
        profiler.record_block(0x10, 3)  # 21 steps: 2 samples
    assert profiler.counts == {0x10: 20}


def test_sample_mode_charges_multiple_samples_for_huge_blocks():
    profiler = HotLoopProfiler(mode="sample", interval=10)
    profiler.record_block(0x20, 35)  # crosses thresholds 10, 20, 30
    assert profiler.counts == {0x20: 30}
    profiler.record_block(0x30, 5)  # the 5 leftover credit is consumed
    assert profiler.counts == {0x20: 30, 0x30: 10}


def test_snapshot_delta_and_merge():
    profiler = HotLoopProfiler()
    profiler.record_block(1, 10)
    before = profiler.snapshot()
    profiler.record_block(1, 5)
    profiler.record_block(2, 7)
    assert profiler.delta(before) == {1: 5, 2: 7}
    other = HotLoopProfiler()
    other.record_block(2, 3)
    profiler.merge(other)
    assert profiler.counts == {1: 15, 2: 10}
    profiler.merge({1: 1})
    assert profiler.counts[1] == 16
    profiler.clear()
    assert profiler.counts == {} and profiler.total_steps == 0


def test_top_hotspots_ordering_breaks_ties_by_pc():
    counts = {5: 10, 3: 10, 7: 99, 9: 1}
    assert top_hotspots(counts, 3) == [(7, 99), (3, 10), (5, 10)]


def test_render_hotspots_table():
    text = render_hotspots({0x40: 75, 0x80: 25}, n=10)
    assert "hot superblocks: 100 steps over 2 blocks" in text
    assert "0x000040" in text and "75.0%" in text
    sampled = HotLoopProfiler(mode="sample").render_table()
    assert "(sampled)" in sampled


def test_run_ledger_records_carry_hotspots():
    from repro.obs import RunLedger
    from repro.sigrec.api import SigRec

    ledger = RunLedger()
    tool = SigRec(ledger=ledger, profiler=HotLoopProfiler())
    tool.recover(_CODE)
    (record,) = ledger.all_records()
    assert record["hotspots"]
    assert all(
        isinstance(pc, int) and steps > 0 for pc, steps in record["hotspots"]
    )
