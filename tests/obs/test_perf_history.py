"""Perf-trajectory bookkeeping: snapshots and the regression gate."""

import json

import pytest

from repro.obs import perfhistory


def _write_bench(tmp_path, tase=250_000.0, memo=1.6, batch=7_500.0):
    doc = {
        "schema": "sigrec-bench:v1",
        "tase": {"steps_per_second": tase},
        "sharded_memo": {"speedup": memo},
        "throughput": {"contracts_per_second": batch},
    }
    path = tmp_path / "BENCH_throughput.json"
    path.write_text(json.dumps(doc))
    return str(path)


def test_append_assigns_monotonic_sequence_numbers(tmp_path):
    bench = _write_bench(tmp_path)
    history = str(tmp_path / "history")
    first = perfhistory.append_snapshot(bench, history, calibration=1e6)
    second = perfhistory.append_snapshot(
        bench, history, note="second", calibration=1e6
    )
    assert first.endswith("0001.json")
    assert second.endswith("0002.json")
    entries = perfhistory.history_entries(history)
    assert [seq for seq, _ in entries] == [1, 2]
    assert entries[1][1]["note"] == "second"
    assert entries[1][1]["bench"]["tase"]["steps_per_second"] == 250_000.0


def test_check_passes_when_rates_hold(tmp_path):
    bench = _write_bench(tmp_path)
    history = str(tmp_path / "history")
    perfhistory.append_snapshot(bench, history, calibration=1e6)
    failures = perfhistory.check_regression(bench, history, calibration=1e6)
    assert failures == []


def test_check_flags_each_regressing_tier(tmp_path):
    history = str(tmp_path / "history")
    perfhistory.append_snapshot(
        _write_bench(tmp_path), history, calibration=1e6
    )
    # 30% slower TASE and batch, memo speedup collapsed to 1.0.
    current = _write_bench(
        tmp_path, tase=175_000.0, memo=1.0, batch=5_250.0
    )
    failures = perfhistory.check_regression(current, history, calibration=1e6)
    assert len(failures) == 3
    assert any("tase.steps_per_second" in f for f in failures)
    assert any("sharded_memo.speedup" in f for f in failures)
    assert any("throughput.contracts_per_second" in f for f in failures)


def test_check_normalizes_rates_by_calibration(tmp_path):
    """A slower machine (half calibration, half measured rate) is fine,
    but the dimensionless memo speedup must hold absolutely."""
    history = str(tmp_path / "history")
    perfhistory.append_snapshot(
        _write_bench(tmp_path), history, calibration=2e6
    )
    halved = _write_bench(tmp_path, tase=125_000.0, memo=1.6, batch=3_750.0)
    assert perfhistory.check_regression(halved, history, calibration=1e6) == []
    # The same absolute drop WITHOUT the calibration excuse fails.
    failures = perfhistory.check_regression(halved, history, calibration=2e6)
    assert len(failures) == 2


def test_check_skips_missing_tiers_and_empty_history(tmp_path):
    bench = _write_bench(tmp_path)
    history = str(tmp_path / "history")
    assert perfhistory.check_regression(bench, history, calibration=1e6) == []
    # Previous entry predates the tase section: that tier is skipped.
    old = {"schema": "sigrec-bench:v1", "sharded_memo": {"speedup": 1.6}}
    old_path = tmp_path / "old.json"
    old_path.write_text(json.dumps(old))
    perfhistory.append_snapshot(str(old_path), history, calibration=1e6)
    failures = perfhistory.check_regression(bench, history, calibration=1e6)
    assert failures == []


def test_threshold_is_respected(tmp_path):
    history = str(tmp_path / "history")
    perfhistory.append_snapshot(
        _write_bench(tmp_path), history, calibration=1e6
    )
    # 15% drop: inside the default 20% budget, outside a 10% one.
    current = _write_bench(tmp_path, tase=212_500.0)
    assert perfhistory.check_regression(current, history, calibration=1e6) == []
    failures = perfhistory.check_regression(
        current, history, threshold=0.10, calibration=1e6
    )
    assert len(failures) == 1 and "tase.steps_per_second" in failures[0]


def test_calibrate_returns_positive_rate():
    assert perfhistory.calibrate(rounds=1) > 0


def test_cli_append_then_check(tmp_path, capsys):
    root = tmp_path
    (root / "benchmarks").mkdir()
    _write_bench(root)
    assert perfhistory.main(["append", "initial"], repo_root=str(root)) == 0
    assert perfhistory.main(["check"], repo_root=str(root)) == 0
    out = capsys.readouterr().out
    assert "0001.json" in out and "perf trajectory OK" in out
    assert perfhistory.main(["bogus"], repo_root=str(root)) == 2


def test_cli_check_reports_regression(tmp_path, capsys):
    root = tmp_path
    (root / "benchmarks").mkdir()
    _write_bench(root)
    assert perfhistory.main(["append"], repo_root=str(root)) == 0
    _write_bench(root, memo=1.0)
    assert perfhistory.main(["check"], repo_root=str(root)) == 1
    assert "PERF REGRESSION" in capsys.readouterr().out


@pytest.mark.parametrize("section,key", [(s, k) for s, k, _ in perfhistory.TIERS])
def test_tracked_tiers_exist_in_committed_bench(section, key):
    """The committed BENCH document carries every tracked tier, so the
    CI check is never vacuously green."""
    import os

    repo_root = os.path.join(os.path.dirname(__file__), "..", "..")
    with open(os.path.join(repo_root, "BENCH_throughput.json")) as handle:
        doc = json.load(handle)
    assert key in doc[section]
