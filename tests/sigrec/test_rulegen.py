"""The §3.1 rule-derivation pipeline recovers the rules' ingredients."""

import pytest

from repro.abi.signature import Visibility
from repro.abi.types import parse_type
from repro.sigrec.rulegen import PatternLearner, _lcs


def test_lcs_basic():
    assert _lcs(list("ABCBDAB"), list("BDCABA")) in (
        list("BCBA"), list("BDAB"), list("BCAB"),
    )
    assert _lcs([], ["A"]) == []
    assert _lcs(["A", "B"], ["A", "B"]) == ["A", "B"]


@pytest.fixture(scope="module")
def learner():
    return PatternLearner()


def test_pattern_extraction_slices_body(learner):
    pattern = learner.pattern_for(parse_type("uint8"))
    # The body begins at its JUMPDEST and contains the access sequence.
    assert pattern.opcodes[0] == "JUMPDEST"
    assert "CALLDATALOAD" in pattern.opcodes
    assert "AND" in pattern.opcodes
    assert "STOP" not in pattern.opcodes


def test_uint_family_common_pattern(learner):
    report = learner.derive_report()
    common = report["uint(M)"].common
    # Every uint width reads the call data; masking (AND) is common to
    # uint8..uint128 but absent for uint256, so it must NOT survive the
    # family intersection.
    assert "CALLDATALOAD" in common
    assert "AND" not in common


def test_int_family_keeps_calldataload_drops_signextend(learner):
    report = learner.derive_report()
    common = report["int(M)"].common
    assert "CALLDATALOAD" in common
    # int256 needs no SIGNEXTEND, so the family intersection drops it.
    assert "SIGNEXTEND" not in common


def test_static_array_differential_contains_copy(learner):
    report = learner.derive_report()
    diff = report["T[N]"].differential
    # Public static arrays add the CALLDATACOPY + MLOAD machinery the
    # basic type does not have (rule R6's ingredient).
    assert "CALLDATACOPY" in diff
    assert "MLOAD" in diff


def test_dynamic_array_differential_adds_offset_reads(learner):
    report = learner.derive_report()
    diff = report["T[]"].differential
    # One extra CALLDATALOAD pair: the offset and num fields (R1).
    assert diff.count("CALLDATALOAD") >= 1
    assert "CALLDATACOPY" in diff
    assert "MUL" in diff  # num * 32 for the copy length (R7)


def test_bytes_differential_has_rounding(learner):
    report = learner.derive_report()
    diff = report["bytes"].differential
    assert "CALLDATACOPY" in diff
    # Rounding num up to a 32-byte multiple uses the full-width ~31
    # mask constant (R8's ingredient) — uint8's own AND absorbs the
    # masking op itself in the multiset differential, but its PUSH32
    # constant is unique to the rounding.
    assert "PUSH32" in diff


def test_multidim_differential_adds_loop(learner):
    report = learner.derive_report()
    diff = report["T[N1][N2]"].differential
    # The nested-loop machinery: bound check + jumps (R9's ingredient).
    assert "LT" in diff
    assert "JUMPI" in diff or "JUMP" in diff


def test_external_mode_patterns_differ_from_public(learner):
    public = learner.pattern_for(parse_type("uint8[3]"), Visibility.PUBLIC)
    external = learner.pattern_for(parse_type("uint8[3]"), Visibility.EXTERNAL)
    assert "CALLDATACOPY" in public.opcodes
    assert "CALLDATACOPY" not in external.opcodes
    assert "LT" in external.opcodes  # the bound check


def test_vyper_families_show_clamps_not_masks():
    from repro.abi.signature import Language
    from repro.compiler.options import CodegenOptions
    from repro.sigrec.rulegen import PatternLearner

    vyper_learner = PatternLearner(CodegenOptions(language=Language.VYPER))
    report = vyper_learner.derive_vyper_report()
    clamped = report["clamped basics"]
    # The family's common pattern reads the call data and compares.
    assert "CALLDATALOAD" in clamped.common
    # The differential vs uint256 (unclamped) contains the comparison
    # machinery and the revert branch — R20's signature.
    diff = clamped.differential
    assert "JUMPI" in diff
    assert "AND" not in diff  # no masks anywhere in Vyper's clamps
    # Fixed-size byte arrays copy via CALLDATACOPY (R23's ingredient).
    assert "CALLDATACOPY" in report["bytes[maxLen]"].common


def test_common_subsequence_of_identical_is_identity(learner):
    pattern = learner.pattern_for(parse_type("bool"))
    common = learner.common_subsequence([pattern.opcodes, pattern.opcodes])
    assert common == pattern.opcodes
