"""SigRec public API: per-type recovery across modes and languages.

These are the round-trip acceptance tests for the paper's §2 accessing
patterns: compile a declared signature with the Solidity/Vyper-like
codegen, recover it from the bytecode alone, and compare canonically.
"""

import pytest

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.abi.types import BoundedBytesType, BoundedStringType
from repro.compiler import CodegenOptions, compile_contract
from repro.sigrec.api import SigRec


def roundtrip(text, vis=Visibility.EXTERNAL, language=Language.SOLIDITY, **opt):
    sig = FunctionSignature.parse(text, vis, language)
    options = CodegenOptions(language=language, **opt)
    contract = compile_contract([sig], options)
    tool = SigRec()
    out = tool.recover_map(contract.bytecode)
    selector = int.from_bytes(sig.selector, "big")
    assert selector in out, f"selector of {text} not found"
    return out[selector].param_list


BASIC_CASES = [
    "f(uint8)", "f(uint32)", "f(uint128)", "f(uint160)", "f(uint256)",
    "f(int8)", "f(int64)", "f(int256)",
    "f(address)", "f(bool)",
    "f(bytes1)", "f(bytes20)", "f(bytes32)",
]


@pytest.mark.parametrize("text", BASIC_CASES)
@pytest.mark.parametrize("vis", [Visibility.PUBLIC, Visibility.EXTERNAL])
def test_basic_types(text, vis):
    sig = FunctionSignature.parse(text, vis)
    assert roundtrip(text, vis) == sig.param_list()


ARRAY_CASES = [
    "f(uint256[3])", "f(uint8[2][3])", "f(bool[4])",
    "f(uint256[])", "f(uint8[2][])", "f(address[])",
    "f(int16[3][])",
]


@pytest.mark.parametrize("text", ARRAY_CASES)
@pytest.mark.parametrize("vis", [Visibility.PUBLIC, Visibility.EXTERNAL])
def test_arrays(text, vis):
    sig = FunctionSignature.parse(text, vis)
    assert roundtrip(text, vis) == sig.param_list()


@pytest.mark.parametrize("text", ["f(bytes)", "f(string)", "f(bytes,string)"])
@pytest.mark.parametrize("vis", [Visibility.PUBLIC, Visibility.EXTERNAL])
def test_blobs(text, vis):
    sig = FunctionSignature.parse(text, vis)
    assert roundtrip(text, vis) == sig.param_list()


@pytest.mark.parametrize(
    "text",
    ["f(uint8[][])", "f(uint256[][][])", "f((uint256,uint256[]))",
     "f((address,bytes,uint8[]))"],
)
def test_nested_and_struct(text):
    sig = FunctionSignature.parse(text)
    assert roundtrip(text, Visibility.EXTERNAL) == sig.param_list()


def test_multi_param_ordering():
    text = "f(uint8,bytes,address[],bool,string)"
    for vis in (Visibility.PUBLIC, Visibility.EXTERNAL):
        sig = FunctionSignature.parse(text, vis)
        assert roundtrip(text, vis) == sig.param_list()


def test_optimization_does_not_break_recovery():
    for text in ["f(uint8,address)", "f(uint256[],bytes)"]:
        sig = FunctionSignature.parse(text)
        assert roundtrip(text, optimize=True) == sig.param_list()


VYPER_CASES = [
    "f(address)", "f(bool)", "f(int128)", "f(fixed168x10)",
    "f(uint256)", "f(bytes32)", "f(uint256[3])", "f(int128[2][2])",
]


@pytest.mark.parametrize("text", VYPER_CASES)
def test_vyper_types(text):
    sig = FunctionSignature.parse(text, Visibility.PUBLIC, Language.VYPER)
    assert roundtrip(text, Visibility.PUBLIC, Language.VYPER) == sig.param_list()


@pytest.mark.parametrize(
    "param,expected",
    [(BoundedBytesType(50), "bytes"), (BoundedStringType(33), "string")],
)
def test_vyper_bounded_blobs(param, expected):
    sig = FunctionSignature("f", (param,), Visibility.PUBLIC, Language.VYPER)
    contract = compile_contract([sig], CodegenOptions(language=Language.VYPER))
    out = SigRec().recover(contract.bytecode)
    assert out[0].param_list == expected


def test_no_params():
    sig = FunctionSignature.parse("ping()")
    contract = compile_contract([sig])
    out = SigRec().recover_map(contract.bytecode)
    rec = out[int.from_bytes(sig.selector, "big")]
    assert rec.param_list == ""


def test_rule_tracker_accumulates():
    tool = SigRec()
    contract = compile_contract([FunctionSignature.parse("f(uint8,bytes)")])
    tool.recover(contract.bytecode)
    assert tool.tracker.total() > 0
    assert tool.tracker.counts["R1"] >= 1  # the bytes parameter
    assert tool.tracker.counts["R4"] >= 1  # the uint8 parameter


def test_recovered_signature_str():
    contract = compile_contract([FunctionSignature.parse("f(uint8)")])
    rec = SigRec().recover(contract.bytecode)[0]
    assert rec.selector_hex.startswith("0x")
    assert "uint8" in str(rec)
    assert rec.canonical("guess") == "guess(uint8)"


def test_timing_populated():
    contract = compile_contract([FunctionSignature.parse("f(uint8)")])
    rec = SigRec().recover(contract.bytecode)[0]
    assert rec.elapsed_seconds >= 0


def test_extract_function_ids_static():
    sigs = [FunctionSignature.parse("a(uint256)"), FunctionSignature.parse("b()")]
    contract = compile_contract(sigs)
    ids = SigRec.extract_function_ids(contract.bytecode)
    assert ids == sorted(int.from_bytes(s.selector, "big") for s in sigs)


def test_explain_reuses_engine_result_after_recover(monkeypatch):
    """`explain` right after `recover` must not re-run TASE from scratch."""
    import repro.sigrec.api as api_module

    contract = compile_contract([FunctionSignature.parse("f(uint8)")])
    tool = SigRec()
    recovered = tool.recover(contract.bytecode)

    def boom(*args, **kwargs):
        raise AssertionError("TASEEngine re-constructed after recover")

    monkeypatch.setattr(api_module, "TASEEngine", boom)
    text = tool.explain(contract.bytecode, recovered[0].selector)
    assert "rules fired" in text


def test_explain_runs_engine_for_unseen_bytecode():
    contract = compile_contract([FunctionSignature.parse("f(uint8)")])
    tool = SigRec()
    selector = int.from_bytes(
        FunctionSignature.parse("f(uint8)").selector, "big"
    )
    assert "rules fired" in tool.explain(contract.bytecode, selector)


def test_options_round_trip():
    tool = SigRec(loop_bound=99, coarse_only=True)
    clone = SigRec(**tool.options())
    assert clone.options() == tool.options()
    assert clone.coarse_only is True
