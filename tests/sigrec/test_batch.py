"""Batch recovery with bytecode deduplication."""

import time

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.sigrec.api import SigRec


def _codes():
    a = compile_contract([FunctionSignature.parse("a(uint8)")]).bytecode
    b = compile_contract([FunctionSignature.parse("b(bytes)")]).bytecode
    return a, b


def test_batch_results_match_individual():
    a, b = _codes()
    tool = SigRec()
    batch = tool.recover_batch([a, b, a])
    assert len(batch) == 3
    assert batch[0] == batch[2]  # deduplicated: same analysis outcome
    assert [s.param_list for s in batch[0]] == ["uint8"]
    assert [s.param_list for s in batch[1]] == ["bytes"]


def test_batch_duplicates_do_not_alias():
    """Regression: duplicated bytecodes used to share one list object,
    so mutating one caller's result silently corrupted the others."""
    a, _ = _codes()
    batch = SigRec().recover_batch([a, a])
    assert batch[0] is not batch[1]
    batch[0].append("sentinel")
    assert len(batch[1]) == 1


def test_batch_without_dedup():
    a, _ = _codes()
    tool = SigRec()
    batch = tool.recover_batch([a, a], deduplicate=False)
    assert batch[0] is not batch[1]
    assert [s.param_list for s in batch[0]] == [s.param_list for s in batch[1]]


def test_dedup_is_dramatically_faster_on_duplicates():
    a, _ = _codes()
    codes = [a] * 300
    start = time.perf_counter()
    SigRec().recover_batch(codes)
    dedup_time = time.perf_counter() - start
    start = time.perf_counter()
    SigRec().recover_batch(codes, deduplicate=False)
    full_time = time.perf_counter() - start
    assert dedup_time * 5 < full_time


def test_empty_batch():
    assert SigRec().recover_batch([]) == []
