"""TASE engine: dispatcher exploration, events, memory, limits."""

from repro.abi.signature import FunctionSignature, Visibility
from repro.compiler import CodegenOptions, compile_contract
from repro.compiler.options import DispatcherStyle
from repro.evm.asm import Assembler
from repro.sigrec.engine import SymMemory, TASEEngine
from repro.sigrec import expr as E


def _engine_for(sig_text, vis=Visibility.EXTERNAL, **opts):
    sig = FunctionSignature.parse(sig_text, vis)
    contract = compile_contract([sig], CodegenOptions(**opts))
    return TASEEngine(contract.bytecode), sig


def test_dispatcher_selectors_found_all_styles():
    for style in DispatcherStyle:
        sigs = [
            FunctionSignature.parse("a(uint256)"),
            FunctionSignature.parse("b(address)"),
            FunctionSignature.parse("c()"),
        ]
        contract = compile_contract(sigs, CodegenOptions(dispatcher=style))
        result = TASEEngine(contract.bytecode).run()
        expected = sorted(int.from_bytes(s.selector, "big") for s in sigs)
        assert result.selectors == expected


def test_calldataload_events_recorded():
    engine, sig = _engine_for("f(uint256,uint256)")
    result = engine.run()
    events = result.functions[int.from_bytes(sig.selector, "big")]
    locs = {l.loc.value for l in events.loads if l.loc.is_const}
    assert {4, 36} <= locs


def test_calldatacopy_event_for_public_array():
    engine, sig = _engine_for("f(uint256[2])", Visibility.PUBLIC)
    result = engine.run()
    events = result.functions[int.from_bytes(sig.selector, "big")]
    assert events.copies
    assert events.copies[0].length.is_const
    assert events.copies[0].length.value == 64


def test_mask_use_event():
    engine, sig = _engine_for("f(uint8)")
    result = engine.run()
    events = result.functions[int.from_bytes(sig.selector, "big")]
    masks = [u for u in events.uses if u.kind == "and_mask"]
    assert any(u.operand == 0xFF for u in masks)


def test_signextend_use_event():
    engine, sig = _engine_for("f(int16)")
    result = engine.run()
    events = result.functions[int.from_bytes(sig.selector, "big")]
    assert any(u.kind == "signextend" and u.operand == 1 for u in events.uses)


def test_bool_mask_event():
    engine, sig = _engine_for("f(bool)")
    result = engine.run()
    events = result.functions[int.from_bytes(sig.selector, "big")]
    assert any(u.kind == "bool_mask" for u in events.uses)


def test_vyper_markers_absent_in_solidity():
    engine, sig = _engine_for("f(uint8,bool,address)")
    result = engine.run()
    events = result.functions[int.from_bytes(sig.selector, "big")]
    assert events.vyper_markers == 0


def test_input_dependent_jump_stops_path():
    # JUMP to a calldata-derived target: the path must end, not crash.
    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").op("JUMP")
    asm.op("JUMPDEST").op("STOP")
    result = TASEEngine(asm.assemble()).run()
    assert result.selectors == []


def test_guards_carry_bound_checks():
    engine, sig = _engine_for("f(uint256[3])", Visibility.EXTERNAL)
    result = engine.run()
    events = result.functions[int.from_bytes(sig.selector, "big")]
    item_loads = [l for l in events.loads if not l.loc.is_const]
    assert item_loads
    assert any(load.guards for load in item_loads)


def test_engine_reentrant():
    engine, sig = _engine_for("f(uint256)")
    first = engine.run()
    second = engine.run()
    assert first.selectors == second.selectors


def test_path_budget_respected():
    engine, _ = _engine_for("f(uint8[],bytes,string)", Visibility.PUBLIC)
    engine.max_paths = 4
    result = engine.run()
    assert result.paths_explored <= 5


class TestSymMemory:
    def test_store_load_word(self):
        mem = SymMemory()
        value = E.env("v")
        mem.store(E.const(0x40), value)
        assert mem.load(E.const(0x40)) is value

    def test_region_read_is_labeled(self):
        mem = SymMemory()
        mem.add_region(99, E.const(0x80), E.const(64), frozenset({("cd", 4)}))
        out = mem.load(E.const(0x80))
        assert out.op == "mem"
        assert ("cdc", 99) in out.labels
        assert ("cd", 4) in out.labels

    def test_later_store_shadows_region(self):
        mem = SymMemory()
        mem.add_region(99, E.const(0x80), E.const(64), frozenset())
        value = E.env("v")
        mem.store(E.const(0x80), value)
        assert mem.load(E.const(0x80)) is value

    def test_later_region_shadows_store(self):
        mem = SymMemory()
        value = E.env("v")
        mem.store(E.const(0x80), value)
        mem.add_region(99, E.const(0x80), E.const(32), frozenset())
        assert mem.load(E.const(0x80)).op == "mem"

    def test_open_region_only_covers_its_start(self):
        mem = SymMemory()
        mem.add_region(99, E.const(0x80), E.env("len"), frozenset())
        assert mem.load(E.const(0x80)).op == "mem"
        # Offsets above the start are NOT claimed by an open region.
        assert mem.load(E.const(0x100)).op == "env"

    def test_unknown_load_is_fresh_env(self):
        mem = SymMemory()
        a = mem.load(E.const(0x20))
        b = mem.load(E.const(0x20))
        assert a.op == "env" and b.op == "env"
        assert a != b  # fresh each time: contents unknown

    def test_clone_isolation(self):
        mem = SymMemory()
        mem.store(E.const(0), E.env("a"))
        clone = mem.clone()
        clone.store(E.const(0), E.env("b"))
        assert mem.load(E.const(0)).val == "a"
