"""Rule registry, tracker and mask helpers."""

import pytest

from repro.sigrec.rules import (
    RULES,
    RuleTracker,
    high_mask_bytes,
    low_mask_bytes,
)


def test_all_31_rules_registered():
    assert len(RULES) == 31
    assert set(RULES) == {f"R{i}" for i in range(1, 32)}


def test_rule_categories():
    assert RULES["R1"].category == "CALLDATALOAD"
    assert RULES["R5"].category == "CALLDATACOPY"
    assert RULES["R11"].category == "OTHER"
    for rule in RULES.values():
        assert rule.category in ("CALLDATALOAD", "CALLDATACOPY", "OTHER")
        assert rule.summary


def test_tracker_counts():
    tracker = RuleTracker()
    tracker.fire("R4")
    tracker.fire("R4")
    tracker.fire("R9")
    assert tracker.counts["R4"] == 2
    assert tracker.counts["R9"] == 1
    assert tracker.total() == 3
    assert tracker.most_used() == "R4"


def test_tracker_rejects_unknown():
    with pytest.raises(KeyError):
        RuleTracker().fire("R99")


def test_tracker_merge():
    a, b = RuleTracker(), RuleTracker()
    a.fire("R1")
    b.fire("R1")
    b.fire("R2")
    a.merge(b)
    assert a.counts["R1"] == 2
    assert a.counts["R2"] == 1


def test_tracker_merge_accepts_plain_mapping():
    tracker = RuleTracker()
    tracker.fire("R4")
    tracker.merge({"R4": 2, "R11": 1})
    assert tracker.counts["R4"] == 3
    assert tracker.counts["R11"] == 1


def test_tracker_merge_rejects_unknown_rule():
    tracker = RuleTracker()
    with pytest.raises(KeyError):
        tracker.merge({"R99": 1})
    with pytest.raises(KeyError):
        tracker.conflict("R99")


def test_tracker_merge_folds_conflicts_from_tracker_only():
    a, b = RuleTracker(), RuleTracker()
    a.conflict("R15")
    b.conflict("R15", times=2)
    b.conflict("R18")
    a.merge(b)
    assert a.conflicts == {"R15": 3, "R18": 1}
    # A plain mapping carries fire counts only — conflicts untouched.
    a.merge({"R15": 5})
    assert a.conflicts == {"R15": 3, "R18": 1}
    assert a.counts["R15"] == 5


def test_low_mask_bytes():
    assert low_mask_bytes(0xFF) == 1
    assert low_mask_bytes(0xFFFF) == 2
    assert low_mask_bytes((1 << 160) - 1) == 20
    assert low_mask_bytes((1 << 256) - 1) == 32
    assert low_mask_bytes(0xFF00) == 0
    assert low_mask_bytes(0) == 0


def test_high_mask_bytes():
    assert high_mask_bytes(0xFF << 248) == 1
    assert high_mask_bytes(((1 << 32) - 1) << 224) == 4
    assert high_mask_bytes((1 << 256) - 1) == 32
    assert high_mask_bytes(0xFF) == 0
