"""Rule registry, tracker and mask helpers."""

import pytest

from repro.sigrec.rules import (
    RULES,
    RuleTracker,
    high_mask_bytes,
    low_mask_bytes,
)


def test_all_31_rules_registered():
    assert len(RULES) == 31
    assert set(RULES) == {f"R{i}" for i in range(1, 32)}


def test_rule_categories():
    assert RULES["R1"].category == "CALLDATALOAD"
    assert RULES["R5"].category == "CALLDATACOPY"
    assert RULES["R11"].category == "OTHER"
    for rule in RULES.values():
        assert rule.category in ("CALLDATALOAD", "CALLDATACOPY", "OTHER")
        assert rule.summary


def test_tracker_counts():
    tracker = RuleTracker()
    tracker.fire("R4")
    tracker.fire("R4")
    tracker.fire("R9")
    assert tracker.counts["R4"] == 2
    assert tracker.counts["R9"] == 1
    assert tracker.total() == 3
    assert tracker.most_used() == "R4"


def test_tracker_rejects_unknown():
    with pytest.raises(KeyError):
        RuleTracker().fire("R99")


def test_tracker_merge():
    a, b = RuleTracker(), RuleTracker()
    a.fire("R1")
    b.fire("R1")
    b.fire("R2")
    a.merge(b)
    assert a.counts["R1"] == 2
    assert a.counts["R2"] == 1


def test_low_mask_bytes():
    assert low_mask_bytes(0xFF) == 1
    assert low_mask_bytes(0xFFFF) == 2
    assert low_mask_bytes((1 << 160) - 1) == 20
    assert low_mask_bytes((1 << 256) - 1) == 32
    assert low_mask_bytes(0xFF00) == 0
    assert low_mask_bytes(0) == 0


def test_high_mask_bytes():
    assert high_mask_bytes(0xFF << 248) == 1
    assert high_mask_bytes(((1 << 32) - 1) << 224) == 4
    assert high_mask_bytes((1 << 256) - 1) == 32
    assert high_mask_bytes(0xFF) == 0
