"""The persistent result cache: round-trips, invalidation, robustness."""

import json
import os
from dataclasses import replace

import pytest

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.sigrec.api import RecoveredSignature, SigRec
from repro.sigrec.batch import BatchRecovery
from repro.sigrec.cache import ResultCache, options_fingerprint


def _code(signature="a(uint8)"):
    return compile_contract([FunctionSignature.parse(signature)]).bytecode


def _essence(results):
    return [
        [
            (s.selector, s.param_types, s.language, s.fired_rules, s.confidences)
            for s in contract
        ]
        for contract in results
    ]


def test_cache_round_trip(tmp_path):
    cache = ResultCache(str(tmp_path), SigRec().options())
    code = _code()
    signature = RecoveredSignature(
        selector=0xA9059CBB,
        param_types=("address", "uint256"),
        language="solidity",
        elapsed_seconds=0.25,
        fired_rules=("R4", "R16"),
        confidences=("high", "medium"),
    )
    assert cache.get(code) is None  # cold
    cache.put(code, [signature], {"R4": 1, "R16": 2})
    restored, counts = cache.get(code)
    # Everything round-trips except the timing: a cache hit does no
    # inference work, so elapsed_seconds is reported as zero rather than
    # replaying the original run's timing.
    assert restored == [replace(signature, elapsed_seconds=0.0)]
    assert counts == {"R4": 1, "R16": 2}
    assert cache.hits == 1 and cache.misses == 1
    assert cache.entry_count() == 1


def test_warm_run_hits_and_matches_cold(tmp_path):
    codes = [_code("a(uint8)"), _code("b(bytes)"), _code("a(uint8)")]
    cold_tool = SigRec()
    cold_runner = BatchRecovery(tool=cold_tool, workers=0, cache_dir=str(tmp_path))
    cold = cold_runner.recover_all(codes)
    assert cold_runner.stats.cache_misses == 2
    assert cold_runner.stats.cache_hits == 0

    warm_tool = SigRec()
    warm_runner = BatchRecovery(tool=warm_tool, workers=0, cache_dir=str(tmp_path))
    warm = warm_runner.recover_all(codes)
    assert warm_runner.stats.cache_hits == 2
    assert warm_runner.stats.cache_misses == 0
    assert warm_runner.stats.cache_hit_rate == 1.0
    assert warm_runner.stats.analyzed == 0
    assert _essence(warm) == _essence(cold)
    # Replayed per-bytecode counts reproduce the cold run's statistics.
    assert warm_tool.tracker.counts == cold_tool.tracker.counts


def test_engine_option_change_invalidates(tmp_path):
    code = _code()
    first = BatchRecovery(
        tool=SigRec(), workers=0, cache_dir=str(tmp_path)
    )
    first.recover_all([code])
    assert first.stats.cache_misses == 1

    changed = BatchRecovery(
        tool=SigRec(loop_bound=77), workers=0, cache_dir=str(tmp_path)
    )
    changed.recover_all([code])
    assert changed.stats.cache_misses == 1  # different fingerprint: no hit
    assert changed.stats.cache_hits == 0

    same = BatchRecovery(
        tool=SigRec(loop_bound=77), workers=0, cache_dir=str(tmp_path)
    )
    same.recover_all([code])
    assert same.stats.cache_hits == 1


def test_fingerprint_is_stable_and_option_sensitive():
    base = SigRec().options()
    assert options_fingerprint(base) == options_fingerprint(dict(base))
    changed = dict(base, loop_bound=7)
    assert options_fingerprint(base) != options_fingerprint(changed)


def test_corrupt_entry_is_a_miss_then_repaired(tmp_path):
    code = _code()
    cache = ResultCache(str(tmp_path), SigRec().options())
    cache.put(code, [], {})
    path = cache._entry_path(code)
    with open(path, "w") as handle:
        handle.write("{not json")
    assert cache.get(code) is None
    # A batch run treats it as a miss and rewrites a good entry.
    runner = BatchRecovery(tool=SigRec(), workers=0, cache_dir=str(tmp_path))
    runner.recover_all([code])
    assert runner.stats.cache_misses == 1
    with open(path) as handle:
        assert json.load(handle)["signatures"]


def test_entries_are_content_addressed(tmp_path):
    cache = ResultCache(str(tmp_path), SigRec().options())
    a, b = _code("a(uint8)"), _code("b(bytes)")
    cache.put(a, [], {})
    cache.put(b, [], {})
    assert cache.entry_count() == 2
    # Layout: <dir>/<fingerprint>/<sha[:2]>/<sha>.json
    root = os.path.join(str(tmp_path), cache.fingerprint)
    assert os.path.isdir(root)


def test_recover_batch_cache_dir_round_trip(tmp_path):
    codes = [_code("a(uint8)"), _code("a(uint8)")]
    first = SigRec().recover_batch(codes, cache_dir=str(tmp_path))
    second = SigRec().recover_batch(codes, cache_dir=str(tmp_path))
    assert _essence(first) == _essence(second)


def _bumped_pipeline(name="storage"):
    """The default pipeline with one pass's schema version bumped —
    semantics unchanged, version provenance changed."""
    from repro.analysis import framework

    bumped = next(
        p for p in framework.DEFAULT_PIPELINE if p.name == name
    )
    return framework.DEFAULT_PIPELINE.replace(
        **{name: replace(bumped, version=bumped.version + 1)}
    )


def test_pass_version_bump_invalidates_result_cache(tmp_path, monkeypatch):
    from repro.analysis import framework

    code = _code()
    runner = BatchRecovery(tool=SigRec(), workers=0, cache_dir=str(tmp_path))
    runner.recover_all([code])
    assert runner.stats.cache_misses == 1

    monkeypatch.setattr(framework, "DEFAULT_PIPELINE", _bumped_pipeline())
    bumped = BatchRecovery(tool=SigRec(), workers=0, cache_dir=str(tmp_path))
    bumped.recover_all([code])
    assert bumped.stats.cache_hits == 0  # the bump landed in a fresh tree
    assert bumped.stats.cache_misses == 1

    again = BatchRecovery(tool=SigRec(), workers=0, cache_dir=str(tmp_path))
    again.recover_all([code])
    assert again.stats.cache_hits == 1  # stable within the bumped world


def test_pass_version_bump_invalidates_function_memo(tmp_path, monkeypatch):
    from repro.analysis import framework
    from repro.sigrec.cache import FunctionMemo

    options = SigRec().options()
    before = FunctionMemo(options, directory=str(tmp_path))
    monkeypatch.setattr(framework, "DEFAULT_PIPELINE", _bumped_pipeline())
    after = FunctionMemo(options, directory=str(tmp_path))
    assert before.fingerprint != after.fingerprint


@pytest.mark.parametrize("name", ["reach", "mutability", "returns"])
def test_abi_pass_version_bumps_invalidate_both_tiers(
    tmp_path, monkeypatch, name
):
    """Each new ABI pass's version flows into the result-cache and
    function-memo fingerprints, exactly like the storage pass."""
    from repro.analysis import framework
    from repro.sigrec.cache import FunctionMemo

    options = SigRec().options()
    cold_fingerprint = options_fingerprint(options)
    memo_before = FunctionMemo(options, directory=str(tmp_path))

    monkeypatch.setattr(framework, "DEFAULT_PIPELINE", _bumped_pipeline(name))
    assert options_fingerprint(options) != cold_fingerprint
    memo_after = FunctionMemo(options, directory=str(tmp_path))
    assert memo_before.fingerprint != memo_after.fingerprint


def test_analysis_memo_shares_one_walk_per_bytecode(monkeypatch):
    import repro.sigrec.api as api_module

    code = _code()
    tool = SigRec()
    first = tool._analyze(code)
    assert tool._analyze(code) is first  # memo hit: same object

    # recover() and profile() ride the same memo: no fresh analyze().
    def boom(*args, **kwargs):
        raise AssertionError("analyze() re-ran despite the memo")

    monkeypatch.setattr(api_module, "analyze", boom)
    tool.recover(code)
    profile = tool.profile(code)
    assert profile.signatures


def test_analysis_memo_is_bounded():
    from repro.sigrec.api import _ANALYSIS_MEMO_SIZE

    tool = SigRec()
    codes = [
        _code(f"f{i}(uint8)") for i in range(_ANALYSIS_MEMO_SIZE + 4)
    ]
    for code in codes:
        tool._analyze(code)
    assert len(tool._analysis_memo) == _ANALYSIS_MEMO_SIZE
