"""Differential testing of the two value domains over one semantics table.

The symbolic replay (``repro.sigrec.differential``) runs the TASE
engine's value domain on fully concrete calldata; its folded terminal
state must match the concrete interpreter bit for bit.  Any mismatch is
a drift between ``ConcreteDomain`` and the symbolic fold tables.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abi.codec import encode_call
from repro.compiler import CodegenOptions, compile_contract
from repro.corpus.signatures import SignatureGenerator
from repro.evm.asm import Assembler
from repro.evm.interpreter import Interpreter
from repro.sigrec.differential import symbolic_replay


def _folded(result):
    """The comparable terminal state of one execution."""
    return (
        result.success,
        result.error,
        result.return_data,
        result.storage_writes,
        result.invalid_hit,
    )


def _assert_match(bytecode, calldata, **kwargs):
    concrete = Interpreter(bytecode, **kwargs).call(calldata)
    replay = symbolic_replay(bytecode, calldata, **kwargs)
    assert _folded(replay) == _folded(concrete), (
        f"drift on calldata {calldata.hex()}: "
        f"concrete={_folded(concrete)} replay={_folded(replay)}"
    )
    assert replay.steps == concrete.steps
    assert replay.gas_used == concrete.gas_used
    # The decode layer itself is under test: the pre-decoded stream
    # driver (the default above) and the historical per-opcode driver
    # must reach bit-identical terminal states on every input.
    legacy = symbolic_replay(bytecode, calldata, driver="legacy", **kwargs)
    assert _folded(legacy) == _folded(replay), (
        f"driver drift on calldata {calldata.hex()}: "
        f"legacy={_folded(legacy)} predecoded={_folded(replay)}"
    )
    assert legacy.steps == replay.steps
    assert legacy.gas_used == replay.gas_used
    assert legacy.pcs_executed == replay.pcs_executed


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    optimize=st.booleans(),
    n_params=st.integers(1, 4),
)
def test_replay_matches_concrete_on_typed_calldata(seed, optimize, n_params):
    gen = SignatureGenerator(seed=seed, struct_weight=0.0, nested_weight=0.0)
    sig = gen.signature(n_params=n_params)
    contract = compile_contract([sig], CodegenOptions(optimize=optimize))
    rng = random.Random(seed)
    values = [p.random_value(rng) for p in sig.params]
    calldata = encode_call(sig.selector, list(sig.params), values)
    _assert_match(contract.bytecode, calldata)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), data=st.binary(min_size=0, max_size=96))
def test_replay_matches_concrete_on_raw_calldata(seed, data):
    # Arbitrary byte sequences: wrong selectors, truncated arguments —
    # the revert/fallback paths must also fold identically.
    gen = SignatureGenerator(seed=seed, struct_weight=0.0, nested_weight=0.0)
    contract = compile_contract(gen.signatures(2))
    _assert_match(contract.bytecode, data)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_replay_matches_concrete_multifunction(seed):
    gen = SignatureGenerator(seed=seed, struct_weight=0.0, nested_weight=0.0)
    sigs = gen.signatures(3)
    contract = compile_contract(sigs)
    rng = random.Random(seed)
    for sig in sigs:
        values = [p.random_value(rng) for p in sig.params]
        calldata = encode_call(sig.selector, list(sig.params), values)
        _assert_match(contract.bytecode, calldata)


def test_replay_rejects_unknown_driver():
    import pytest

    with pytest.raises(ValueError, match="unknown replay driver"):
        symbolic_replay(b"\x00", b"", driver="fused")


def test_replay_covers_value_opcodes_directly():
    # A hand-assembled program hitting ops typed calldata rarely
    # exercises: signed division/modulo, SAR, SIGNEXTEND, BYTE,
    # ADDMOD/MULMOD, block context, SHA3 and storage round-trips.
    asm = Assembler()
    asm.push(0).op("CALLDATALOAD")  # x
    asm.push(3).op("DUP2").op("SDIV")  # x / 3 signed
    asm.push(5).op("DUP3").op("SMOD")  # x % 5 signed
    asm.op("ADD")
    asm.push(2).op("DUP3").op("SAR")
    asm.op("ADD")
    asm.push(0).op("DUP3").op("SIGNEXTEND")
    asm.op("ADD")
    asm.push(31).op("DUP3").op("BYTE")
    asm.op("ADD")
    asm.push(7).op("DUP3").push(11).op("ADDMOD")
    asm.op("ADD")
    asm.push(7).op("DUP3").push(13).op("MULMOD")
    asm.op("ADD")
    asm.op("TIMESTAMP").op("ADD").op("NUMBER").op("ADD")
    asm.op("COINBASE").op("ADD").op("CHAINID").op("ADD")
    asm.push(0).op("SSTORE")  # storage[0] = accumulated
    asm.push(0).op("SLOAD")
    asm.push(0).op("MSTORE")
    asm.push(32).push(0).op("SHA3")
    asm.push(1).op("SSTORE")  # storage[1] = keccak(accumulated)
    asm.push(32).push(0).op("RETURN")
    code = asm.assemble()
    for x in (0, 1, 5, (1 << 255) | 0xDEADBEEF, (1 << 256) - 3):
        _assert_match(code, x.to_bytes(32, "big"))
