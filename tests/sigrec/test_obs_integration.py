"""Observability wiring across engine, API, cache, and batch layers."""

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, SpanTracer
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery
from repro.sigrec.cache import ResultCache
from repro.sigrec.engine import TASEEngine


def _bytecode(*sigs):
    parsed = [FunctionSignature.parse(s) for s in sigs]
    return compile_contract(parsed).bytecode


def test_engine_publishes_run_counters():
    code = _bytecode("a(uint8)", "b(address,uint256)")
    registry = MetricsRegistry()
    result = TASEEngine(code, metrics=registry).run()
    values = registry.counter_values()
    assert values["tase.runs"] == 1
    assert values["tase.steps"] == result.total_steps > 0
    assert values["tase.paths"] == result.paths_explored > 0
    assert values["tase.functions"] == len(result.selectors) == 2
    assert "tase.truncations{reason=max_paths}" not in values


def test_engine_without_registry_publishes_nothing():
    code = _bytecode("a(uint8)")
    engine = TASEEngine(code)
    assert engine.metrics is NULL_REGISTRY
    engine.run()
    assert NULL_REGISTRY.to_dict()["counters"] == {}


def test_recover_emits_phase_spans_and_rule_counters():
    code = _bytecode("a(uint8)", "b(bool)")
    registry = MetricsRegistry()
    tracer = SpanTracer()
    tool = SigRec(metrics=registry, tracer=tracer)
    recovered = tool.recover(code)
    assert recovered
    values = registry.counter_values()
    assert values["recover.calls"] == 1
    assert values["recover.functions"] == len(recovered)
    assert any(key.startswith("rules.fired{rule=") for key in values)
    # Per-phase histograms, sampled only at phase boundaries.
    histogram_keys = set(registry.to_dict()["histograms"])
    for phase in ("recover", "static_analysis", "tase", "inference"):
        assert f"phase.seconds{{phase={phase}}}" in histogram_keys
    # The trace reconstructs the phase tree: recover is the root span.
    starts = [r for r in tracer.records if r["type"] == "span_start"]
    by_name = {r["name"]: r for r in starts}
    assert by_name["recover"]["parent"] is None
    for child in ("static_analysis", "tase", "inference"):
        assert by_name[child]["parent"] == by_name["recover"]["id"]


def test_metrics_do_not_perturb_options_fingerprint():
    plain = SigRec()
    instrumented = SigRec(metrics=MetricsRegistry(), tracer=SpanTracer())
    assert plain.options() == instrumented.options()


def test_max_paths_truncation_is_metered_and_diagnosed():
    """Satellite: a tiny path cap must be visible, not silent."""
    code = _bytecode("a(uint8)", "b(bool)", "c(address)", "d(uint256)")
    registry = MetricsRegistry()
    tool = SigRec(max_paths=1, metrics=registry)
    tool.recover(code)
    values = registry.counter_values()
    assert values.get("tase.truncations{reason=max_paths}", 0) >= 1
    kinds = [d.kind for d in tool.last_diagnostics]
    assert "tase-truncated-paths" in kinds
    truncated = next(
        d for d in tool.last_diagnostics if d.kind == "tase-truncated-paths"
    )
    assert "max_paths=1" in truncated.detail

    # The same contract under the default cap runs clean.
    clean_tool = SigRec(metrics=MetricsRegistry())
    clean_tool.recover(code)
    assert "tase-truncated-paths" not in [
        d.kind for d in clean_tool.last_diagnostics
    ]


def test_cache_metrics_distinguish_miss_hit_invalidation(tmp_path):
    registry = MetricsRegistry()
    options = SigRec().options()
    cache = ResultCache(str(tmp_path), options, metrics=registry)
    code = _bytecode("a(uint8)")
    tool = SigRec()
    assert cache.get(code) is None  # absent -> miss
    cache.put(code, tool.recover(code), dict(tool.tracker.counts))
    assert cache.get(code) is not None  # hit
    # Corrupt the entry in place: present-but-unreadable -> invalidation.
    entry_path = cache._entry_path(code)
    with open(entry_path, "w", encoding="utf-8") as handle:
        handle.write("garbage")
    assert cache.get(code) is None
    values = registry.counter_values()
    assert values["cache.misses"] == 2
    assert values["cache.hits"] == 1
    assert values["cache.invalidations"] == 1
    assert values["cache.writes"] == 1


def _aggregate(workers):
    codes = [
        _bytecode("a(uint8)"),
        _bytecode("b(bool,address)"),
        _bytecode("c(uint256)", "d(bytes)"),
        _bytecode("a(uint8)"),  # duplicate: one job, counted once
    ]
    registry = MetricsRegistry()
    runner = BatchRecovery(tool=SigRec(metrics=registry), workers=workers)
    results = runner.recover_all(codes)
    return registry, [
        [sig.param_types for sig in contract] for contract in results
    ]


def test_parallel_batch_merges_worker_registries_exactly():
    """Satellite: pool-worker metrics aggregate identically to serial."""
    serial_registry, serial_results = _aggregate(workers=0)
    parallel_registry, parallel_results = _aggregate(workers=2)
    assert parallel_results == serial_results
    # Counters are additive and timing-free, so the merged parallel
    # document must equal the serial one exactly.  Histograms carry
    # wall-clock sums and are excluded by design.
    assert (
        parallel_registry.counter_values() == serial_registry.counter_values()
    )
    values = serial_registry.counter_values()
    assert values["batch.contracts"] == 4
    assert values["batch.unique"] == 3
    assert values["batch.analyzed"] == 3
    assert values["tase.runs"] == 3
    assert values["recover.calls"] == 3


def test_batch_cache_hits_emit_trace_events(tmp_path):
    code = _bytecode("a(uint8)")
    for _round in range(2):
        tracer = SpanTracer()
        tool = SigRec(metrics=MetricsRegistry(), tracer=tracer)
        runner = BatchRecovery(
            tool=tool, workers=0, cache_dir=str(tmp_path)
        )
        runner.recover_all([code])
    events = [r for r in tracer.records if r["type"] == "event"]
    assert len(events) == 1
    assert events[0]["name"] == "contract"
    assert events[0]["attrs"]["cached"] is True


def test_uninstrumented_batch_stays_silent():
    runner = BatchRecovery(tool=SigRec(), workers=0)
    runner.recover_all([_bytecode("a(uint8)")])
    assert runner.metrics is NULL_REGISTRY
    assert runner.tracer is NULL_TRACER
    assert NULL_REGISTRY.to_dict()["counters"] == {}
