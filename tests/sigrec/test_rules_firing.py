"""One directed test per rule: R1-R31 each fires on its own pattern.

Each test compiles the minimal contract exhibiting the rule's accessing
pattern, recovers it, and asserts (a) that the rule fired and (b) that
the recovered type is the one the rule is for — the per-rule
counterpart to Fig. 13's decision tree.
"""

import pytest

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.abi.types import BoundedBytesType, BoundedStringType
from repro.compiler import CodegenOptions, compile_contract
from repro.sigrec.api import SigRec

PUB = Visibility.PUBLIC
EXT = Visibility.EXTERNAL


def recover(text_or_sig, vis=EXT, language=Language.SOLIDITY):
    if isinstance(text_or_sig, str):
        sig = FunctionSignature.parse(text_or_sig, vis, language)
    else:
        sig = text_or_sig
    options = CodegenOptions(language=language)
    contract = compile_contract([sig], options)
    tool = SigRec()
    out = tool.recover_map(contract.bytecode)
    rec = out[int.from_bytes(sig.selector, "big")]
    return rec, tool.tracker.counts, sig


def test_r1_offset_num_pair_marks_dynamic():
    rec, counts, sig = recover("f(uint256[])", PUB)
    assert counts["R1"] >= 1
    assert rec.param_list == "uint256[]"


def test_r2_external_dynamic_array():
    rec, counts, sig = recover("f(uint8[3][])", EXT)
    assert counts["R2"] >= 1
    assert rec.param_list == "uint8[3][]"


def test_r3_external_static_array():
    rec, counts, sig = recover("f(uint256[4][2])", EXT)
    assert counts["R3"] >= 1
    assert rec.param_list == "uint256[4][2]"


def test_r4_basic_defaults_to_uint256():
    rec, counts, sig = recover("f(uint256)", EXT)
    assert counts["R4"] >= 1
    assert rec.param_list == "uint256"


def test_r5_single_copy_dynamic_public():
    rec, counts, sig = recover("f(bool[])", PUB)
    assert counts["R5"] >= 1


def test_r6_one_dim_static_public():
    rec, counts, sig = recover("f(uint256[3])", PUB)
    assert counts["R6"] >= 1
    assert rec.param_list == "uint256[3]"


def test_r7_copy_length_num_times_32():
    rec, counts, sig = recover("f(int16[])", PUB)
    assert counts["R7"] >= 1
    assert rec.param_list == "int16[]"


def test_r8_rounded_copy_is_blob():
    rec, counts, sig = recover("f(bytes)", PUB)
    assert counts["R8"] >= 1
    assert rec.param_list == "bytes"


def test_r9_multidim_static_public():
    rec, counts, sig = recover("f(uint8[2][3])", PUB)
    assert counts["R9"] >= 1
    assert rec.param_list == "uint8[2][3]"


def test_r10_multidim_dynamic_public():
    rec, counts, sig = recover("f(uint256[2][])", PUB)
    assert counts["R10"] >= 1
    assert rec.param_list == "uint256[2][]"


def test_r11_low_mask_uint():
    rec, counts, sig = recover("f(uint32)", EXT)
    assert counts["R11"] >= 1
    assert rec.param_list == "uint32"


def test_r12_high_mask_bytes():
    rec, counts, sig = recover("f(bytes8)", EXT)
    assert counts["R12"] >= 1
    assert rec.param_list == "bytes8"


def test_r13_signextend_int():
    rec, counts, sig = recover("f(int24)", EXT)
    assert counts["R13"] >= 1
    assert rec.param_list == "int24"


def test_r14_double_iszero_bool():
    rec, counts, sig = recover("f(bool)", EXT)
    assert counts["R14"] >= 1
    assert rec.param_list == "bool"


def test_r15_signed_op_int256():
    rec, counts, sig = recover("f(int256)", EXT)
    assert counts["R15"] >= 1
    assert rec.param_list == "int256"


def test_r16_masked_no_math_address():
    rec, counts, sig = recover("f(address)", EXT)
    assert counts["R16"] >= 1
    assert rec.param_list == "address"


def test_r17_byte_access_bytes_not_string():
    rec, counts, sig = recover("f(bytes)", EXT)
    assert counts["R17"] >= 1
    assert rec.param_list == "bytes"


def test_r18_byte_on_word_bytes32():
    rec, counts, sig = recover("f(bytes32)", EXT)
    assert counts["R18"] >= 1
    assert rec.param_list == "bytes32"


def test_r19_struct_with_nested_array():
    rec, counts, sig = recover("f((uint8[][],uint256))", EXT)
    assert counts["R19"] >= 1
    assert rec.param_list == "(uint8[][],uint256)"


def test_r20_vyper_discriminated():
    rec, counts, sig = recover("f(address)", PUB, Language.VYPER)
    assert counts["R20"] >= 1
    assert rec.language == "vyper"


def test_r21_dynamic_struct():
    rec, counts, sig = recover("f((uint256,uint256[]))", EXT)
    assert counts["R21"] >= 1
    assert rec.param_list == "(uint256,uint256[])"


def test_r22_nested_array():
    rec, counts, sig = recover("f(uint8[][])", EXT)
    assert counts["R22"] >= 1
    assert rec.param_list == "uint8[][]"


def test_r23_vyper_bounded_copy():
    sig = FunctionSignature("f", (BoundedBytesType(40),), PUB, Language.VYPER)
    rec, counts, _ = recover(sig, PUB, Language.VYPER)
    assert counts["R23"] >= 1
    assert rec.param_list == "bytes"


def test_r24_vyper_fixed_list():
    rec, counts, sig = recover("f(int128[4])", PUB, Language.VYPER)
    assert counts["R24"] >= 1
    assert rec.param_list == "int128[4]"


def test_r25_vyper_basic_default():
    rec, counts, sig = recover("f(uint256,bool)", PUB, Language.VYPER)
    assert counts["R25"] >= 1


def test_r26_vyper_byte_array_byte_access():
    sig = FunctionSignature("f", (BoundedBytesType(12),), PUB, Language.VYPER)
    rec, counts, _ = recover(sig, PUB, Language.VYPER)
    assert counts["R26"] >= 1
    assert rec.param_list == "bytes"


def test_r26_absent_for_bounded_string():
    sig = FunctionSignature("f", (BoundedStringType(12),), PUB, Language.VYPER)
    rec, counts, _ = recover(sig, PUB, Language.VYPER)
    assert counts["R26"] == 0
    assert rec.param_list == "string"


def test_r27_vyper_address_clamp():
    rec, counts, sig = recover("f(address)", PUB, Language.VYPER)
    assert counts["R27"] >= 1
    assert rec.param_list == "address"


def test_r28_vyper_int128_clamp():
    rec, counts, sig = recover("f(int128,bool)", PUB, Language.VYPER)
    assert counts["R28"] >= 1
    assert rec.param_list == "int128,bool"


def test_r29_vyper_decimal_clamp():
    rec, counts, sig = recover("f(fixed168x10,bool)", PUB, Language.VYPER)
    assert counts["R29"] >= 1
    assert rec.param_list == "fixed168x10,bool"


def test_r30_vyper_bool_clamp():
    rec, counts, sig = recover("f(bool)", PUB, Language.VYPER)
    assert counts["R30"] >= 1
    assert rec.param_list == "bool"


def test_r31_vyper_bytes32_byte_access():
    rec, counts, sig = recover("f(bytes32,bool)", PUB, Language.VYPER)
    assert counts["R31"] >= 1
    assert rec.param_list == "bytes32,bool"
