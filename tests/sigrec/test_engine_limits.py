"""Engine budgets, selector matching shapes, marker counting."""

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.compiler import CodegenOptions, compile_contract
from repro.sigrec import expr as E
from repro.sigrec.engine import TASEEngine, eval_const


class TestSelectorMatching:
    def _fid_div(self):
        return E.binop("div", E.calldata(E.const(0)), E.const(1 << 224))

    def _fid_shr(self):
        return E.binop("shr", E.const(224), E.calldata(E.const(0)))

    def test_div_style(self):
        cond = E.Expr("eq", (E.const(0xA9059CBB), self._fid_div()))
        assert TASEEngine._match_selector(cond) == 0xA9059CBB

    def test_shr_style(self):
        cond = E.Expr("eq", (E.const(0x1234ABCD), self._fid_shr()))
        assert TASEEngine._match_selector(cond) == 0x1234ABCD

    def test_div_and_style(self):
        masked = E.binop("and", E.const(0xFFFFFFFF), self._fid_div())
        cond = E.Expr("eq", (E.const(0xCAFE), masked))
        assert TASEEngine._match_selector(cond) == 0xCAFE

    def test_operand_order_irrelevant(self):
        cond = E.Expr("eq", (self._fid_shr(), E.const(0xBEEF)))
        assert TASEEngine._match_selector(cond) == 0xBEEF

    def test_wide_constant_rejected(self):
        cond = E.Expr("eq", (E.const(1 << 40), self._fid_shr()))
        assert TASEEngine._match_selector(cond) is None

    def test_non_fid_expr_rejected(self):
        cond = E.Expr("eq", (E.const(1), E.env("x")))
        assert TASEEngine._match_selector(cond) is None
        # calldata at nonzero offset is not the function id.
        wrong = E.binop("shr", E.const(224), E.calldata(E.const(4)))
        assert TASEEngine._match_selector(E.Expr("eq", (E.const(1), wrong))) is None


def test_hit_limits_flag_under_tiny_budget():
    sigs = [FunctionSignature.parse(f"f{i}(uint256[])") for i in range(4)]
    contract = compile_contract(sigs)
    engine = TASEEngine(contract.bytecode, max_total_steps=50)
    result = engine.run()
    assert result.hit_limits


def test_selectors_found_even_with_moderate_budget():
    sigs = [FunctionSignature.parse(f"g{i}(uint8)") for i in range(3)]
    contract = compile_contract(sigs)
    engine = TASEEngine(contract.bytecode, max_paths=64)
    result = engine.run()
    assert len(result.selectors) == 3


def test_vyper_markers_counted():
    sig = FunctionSignature.parse(
        "v(address,bool)", Visibility.PUBLIC, Language.VYPER
    )
    contract = compile_contract([sig], CodegenOptions(language=Language.VYPER))
    result = TASEEngine(contract.bytecode).run()
    events = result.functions[int.from_bytes(sig.selector, "big")]
    assert events.vyper_markers >= 2  # one clamp per parameter


def test_eval_const_handles_not_and_iszero():
    assert eval_const(E.Expr("iszero", (E.const(0),))) == 1
    assert eval_const(E.Expr("not", (E.const(0),))) == (1 << 256) - 1
    assert eval_const(E.env("x")) is None


def test_no_functions_in_dispatcherless_code():
    from repro.evm.asm import Assembler

    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").op("POP").op("STOP")
    result = TASEEngine(asm.assemble()).run()
    assert result.selectors == []


def test_branch_budget_resets_between_runs():
    sig = FunctionSignature.parse("f(uint256[])", Visibility.PUBLIC)
    contract = compile_contract([sig])
    engine = TASEEngine(contract.bytecode)
    first = engine.run()
    second = engine.run()
    assert first.selectors == second.selectors
    first_events = first.functions[first.selectors[0]]
    second_events = second.functions[second.selectors[0]]
    assert len(first_events.loads) == len(second_events.loads)

def test_max_path_steps_truncation_flag_and_diagnostic():
    """Satellite: the per-path step ceiling is a real option now.

    A tiny ``max_path_steps`` must cut exploration short *visibly*:
    ``truncated_steps`` on the result and the ``tase-truncated-steps``
    diagnostic on the tool, exactly like the per-run ceiling.
    """
    from repro.sigrec.api import SigRec

    sigs = [FunctionSignature.parse("f(uint256[])")]
    contract = compile_contract(sigs)
    result = TASEEngine(contract.bytecode, max_path_steps=10).run()
    assert result.hit_limits
    assert result.truncated_steps

    tool = SigRec(max_path_steps=10)
    tool.recover(contract.bytecode)
    assert "tase-truncated-steps" in [d.kind for d in tool.last_diagnostics]

    # The default ceiling runs the same contract clean.
    clean = TASEEngine(contract.bytecode).run()
    assert not clean.truncated_steps


def test_max_path_steps_is_part_of_the_options_fingerprint():
    from repro.sigrec.api import SigRec
    from repro.sigrec.cache import options_fingerprint

    default = options_fingerprint(SigRec().options())
    tiny = options_fingerprint(SigRec(max_path_steps=10).options())
    assert default != tiny
