"""Static selector extraction."""

from repro.abi.signature import FunctionSignature
from repro.compiler import CodegenOptions, compile_contract
from repro.compiler.options import DispatcherStyle
from repro.sigrec.selectors import extract_selectors


def test_extracts_all_selectors():
    sigs = [
        FunctionSignature.parse("transfer(address,uint256)"),
        FunctionSignature.parse("approve(address,uint256)"),
        FunctionSignature.parse("totalSupply()"),
    ]
    contract = compile_contract(sigs)
    found = extract_selectors(contract.bytecode)
    assert found == sorted(int.from_bytes(s.selector, "big") for s in sigs)


def test_styles_equivalent():
    sigs = [FunctionSignature.parse("f(uint256)")]
    per_style = {
        style: extract_selectors(compile_contract(sigs, CodegenOptions(dispatcher=style)).bytecode)
        for style in DispatcherStyle
    }
    values = list(per_style.values())
    assert all(v == values[0] for v in values)


def test_empty_bytecode():
    assert extract_selectors(b"") == []


def test_push4_without_eq_not_counted():
    # A PUSH4 used as a plain constant is not a dispatcher comparison.
    from repro.evm.asm import Assembler

    asm = Assembler()
    asm.push(0xAABBCCDD, width=4).op("POP").op("STOP")
    assert extract_selectors(asm.assemble()) == []
