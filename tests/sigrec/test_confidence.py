"""Per-parameter confidence scoring."""

from repro.abi.signature import FunctionSignature, Visibility
from repro.compiler import CodegenOptions, compile_contract
from repro.compiler.contract import FunctionSpec
from repro.sigrec.api import SigRec


def _recover(spec_or_text, vis=Visibility.EXTERNAL, options=None):
    if isinstance(spec_or_text, str):
        target = FunctionSignature.parse(spec_or_text, vis)
    else:
        target = spec_or_text
    contract = compile_contract([target], options)
    sig = contract.signatures[0]
    return SigRec().recover_map(contract.bytecode)[
        int.from_bytes(sig.selector, "big")
    ]


def test_refined_basic_types_are_high_confidence():
    rec = _recover("f(uint8,address,bool)")
    assert rec.confidences == ("high", "high", "high")


def test_byte_accessed_bytes_is_high():
    rec = _recover("f(bytes)")
    assert rec.param_types == ("bytes",)
    assert rec.confidences == ("high",)


def test_string_default_is_lower():
    # External strings are typed by the *absence* of byte access.
    rec = _recover("f(string)")
    assert rec.param_types == ("string",)
    assert rec.confidences[0] in ("low", "medium")


def test_bare_uint256_storage_ref_is_low():
    # Case 4's shadow: a single un-used word read.
    from repro.abi.types import UIntType

    base = FunctionSignature.parse("f(uint256[])")
    spec = FunctionSpec(base, body_params=(UIntType(256),))
    contract = compile_contract([spec])
    rec = SigRec().recover_map(contract.bytecode)[
        int.from_bytes(base.selector, "big")
    ]
    assert rec.param_types == ("uint256",)
    # The body only loads the word into arithmetic; without even that it
    # would be "low".  Either way it must not be "high".
    assert rec.confidences[0] != "high"


def test_arrays_with_item_uses_are_high():
    rec = _recover("f(uint8[3][])")
    assert rec.confidences == ("high",)


def test_confidence_parallel_to_types():
    rec = _recover("f(uint8,string,uint256[2])", Visibility.PUBLIC)
    assert len(rec.confidences) == len(rec.param_types) == 3
    assert all(c in ("high", "medium", "low") for c in rec.confidences)
