"""The inference layer in isolation: hand-built events, no codegen.

These tests pin the rules' behaviour independently of what the bundled
compiler happens to emit — the contract between the engine's event
vocabulary and the classifier.
"""

from repro.sigrec import expr as E
from repro.sigrec.engine import _cmp
from repro.sigrec.events import (
    CalldataCopyEvent,
    CalldataLoadEvent,
    FunctionEvents,
    Guard,
    UseEvent,
)
from repro.sigrec.inference import infer_function
from repro.sigrec.rules import RuleTracker


def _load(pc, loc, guards=()):
    return CalldataLoadEvent(pc, loc, E.calldata(loc), tuple(guards))


def _infer(events):
    return infer_function(events, RuleTracker())


def _head(pc, slot, guards=()):
    return _load(pc, E.const(slot), guards)


def test_single_basic_param():
    events = FunctionEvents(selector=1)
    events.add_load(_head(0x10, 4))
    inferred = _infer(events)
    assert inferred.param_types == ["uint256"]


def test_mask_use_refines_width():
    events = FunctionEvents(selector=1)
    head = _head(0x10, 4)
    events.add_load(head)
    events.add_use(UseEvent(0x12, "and_mask", head.result.labels, 0xFFFF))
    inferred = _infer(events)
    assert inferred.param_types == ["uint16"]


def test_param_order_follows_head_slots():
    events = FunctionEvents(selector=1)
    second = _head(0x20, 36)
    first = _head(0x30, 4)  # read later in code, earlier in the layout
    events.add_load(second)
    events.add_load(first)
    events.add_use(UseEvent(0x22, "bool_mask", second.result.labels))
    inferred = _infer(events)
    assert inferred.param_types == ["uint256", "bool"]


def test_offset_num_pair_without_items_defaults_string():
    events = FunctionEvents(selector=1)
    head = _head(0x10, 4)
    events.add_load(head)
    num_loc = E.binop("add", E.const(4), head.result)
    events.add_load(_load(0x14, num_loc))
    inferred = _infer(events)
    assert inferred.param_types == ["string"]


def test_strided_items_make_dynamic_array():
    events = FunctionEvents(selector=1)
    head = _head(0x10, 4)
    events.add_load(head)
    num_loc = E.binop("add", E.const(4), head.result)
    num_load = _load(0x14, num_loc)
    events.add_load(num_load)
    index = E.env("i")
    guard = Guard(_cmp("lt", index, num_load.result), True, 0x16)
    item_loc = E.binop(
        "add", E.const(36),
        E.binop("add", E.binop("mul", E.const(32), index), head.result),
    )
    events.add_load(_load(0x18, item_loc, (guard,)))
    inferred = _infer(events)
    assert inferred.param_types == ["uint256[]"]


def test_copy_with_rounded_length_is_blob():
    events = FunctionEvents(selector=1)
    head = _head(0x10, 4)
    events.add_load(head)
    num_loc = E.binop("add", E.const(4), head.result)
    num_load = _load(0x14, num_loc)
    events.add_load(num_load)
    rounded = E.binop(
        "and", E.bit_not(E.const(31)),
        E.binop("add", E.const(31), num_load.result),
    )
    events.add_copy(
        CalldataCopyEvent(
            0x18, E.const(0x80), E.binop("add", E.const(36), head.result),
            rounded, 0x18,
        )
    )
    inferred = _infer(events)
    assert inferred.param_types == ["string"]  # no byte access seen


def test_byte_use_turns_blob_into_bytes():
    events = FunctionEvents(selector=1)
    head = _head(0x10, 4)
    events.add_load(head)
    num_loc = E.binop("add", E.const(4), head.result)
    num_load = _load(0x14, num_loc)
    events.add_load(num_load)
    rounded = E.binop(
        "and", E.bit_not(E.const(31)),
        E.binop("add", E.const(31), num_load.result),
    )
    events.add_copy(
        CalldataCopyEvent(
            0x18, E.const(0x80), E.binop("add", E.const(36), head.result),
            rounded, 0x18,
        )
    )
    data_value = E.mem_read(0x18, E.const(0x80), frozenset())
    events.add_use(UseEvent(0x20, "byte", data_value.labels))
    inferred = _infer(events)
    assert inferred.param_types == ["bytes"]


def test_vyper_markers_flip_language_and_rules():
    events = FunctionEvents(selector=1)
    head = _head(0x10, 4)
    events.add_load(head)
    events.add_use(
        UseEvent(0x12, "lt_bound", head.result.labels, 1 << 160)
    )
    events.vyper_markers = 1
    inferred = _infer(events)
    assert inferred.language == "vyper"
    assert inferred.param_types == ["address"]
    assert "R20" in inferred.fired_rules
    assert "R27" in inferred.fired_rules


def test_coarse_only_skips_refinement():
    events = FunctionEvents(selector=1)
    head = _head(0x10, 4)
    events.add_load(head)
    events.add_use(UseEvent(0x12, "bool_mask", head.result.labels))
    inferred = infer_function(events, RuleTracker(), coarse_only=True)
    assert inferred.param_types == ["uint256"]


def test_function_id_slot_excluded():
    events = FunctionEvents(selector=1)
    events.add_load(_load(0x02, E.const(0)))  # the dispatcher's read
    events.add_load(_head(0x10, 4))
    inferred = _infer(events)
    assert len(inferred.param_types) == 1


def test_empty_events_is_parameterless():
    inferred = _infer(FunctionEvents(selector=7))
    assert inferred.param_types == []
