"""TASE pruning against the static analysis: same output, less work.

The pruned engine must be *observationally identical* to the unpruned
one — same selectors, same events, same path accounting — while
stepping measurably fewer instructions (silent-halt forks at bound
checks and clamps are suppressed instead of explored).
"""

from repro.abi.signature import FunctionSignature
from repro.analysis import analyze, cross_check
from repro.compiler import compile_contract
from repro.corpus.datasets import (
    build_closed_source_corpus,
    build_vyper_corpus,
)
from repro.sigrec.api import SigRec
from repro.sigrec.engine import TASEEngine


def _cases():
    for corpus in (
        build_closed_source_corpus(n_contracts=8, seed=7),
        build_vyper_corpus(n_contracts=4, seed=5),
    ):
        yield from corpus.cases


def _signature_key(signatures):
    # elapsed_seconds is wall-clock noise; everything else must match.
    return [
        (s.selector, s.param_types, s.language, s.fired_rules, s.confidences)
        for s in signatures
    ]


def test_pruned_engine_is_observationally_identical():
    for case in _cases():
        bytecode = case.contract.bytecode
        plain = TASEEngine(bytecode).run()
        pruned = TASEEngine(bytecode, analysis=analyze(bytecode)).run()
        assert plain.selectors == pruned.selectors
        assert plain.paths_explored == pruned.paths_explored
        assert plain.hit_limits == pruned.hit_limits
        for selector in plain.selectors:
            a = plain.functions[selector]
            b = pruned.functions[selector]
            assert a.loads == b.loads
            assert a.copies == b.copies
            assert a.uses == b.uses
            assert a.vyper_markers == b.vyper_markers


def test_pruning_saves_steps_on_corpus():
    plain_steps = pruned_steps = forks = 0
    for case in _cases():
        bytecode = case.contract.bytecode
        plain = TASEEngine(bytecode).run()
        pruned = TASEEngine(bytecode, analysis=analyze(bytecode)).run()
        assert pruned.total_steps <= plain.total_steps
        plain_steps += plain.total_steps
        pruned_steps += pruned.total_steps
        forks += pruned.pruned_forks
    assert forks > 0
    assert pruned_steps < plain_steps


def test_unpruned_engine_reports_no_pruned_forks():
    contract = compile_contract([FunctionSignature.parse("a(uint8)")])
    result = TASEEngine(contract.bytecode).run()
    assert result.pruned_forks == 0
    assert result.total_steps > 0


def test_sigrec_prune_option_yields_identical_signatures():
    for case in _cases():
        bytecode = case.contract.bytecode
        plain = SigRec(prune=False).recover(bytecode)
        pruned = SigRec(prune=True).recover(bytecode)
        assert _signature_key(plain) == _signature_key(pruned)


def test_no_diagnostics_on_corpus():
    tool = SigRec()
    for case in _cases():
        tool.recover(case.contract.bytecode)
        assert tool.last_diagnostics == ()


def test_static_check_off_produces_no_diagnostics():
    contract = compile_contract([FunctionSignature.parse("a(uint8)")])
    tool = SigRec(static_check=False)
    tool.recover(contract.bytecode)
    assert tool.last_diagnostics == ()


def test_cross_check_reports_divergence_both_ways():
    contract = compile_contract(
        [
            FunctionSignature.parse("a(uint8)"),
            FunctionSignature.parse("b(bool)"),
        ]
    )
    analysis = analyze(contract.bytecode)
    static = list(analysis.selectors)
    # TASE "missed" one selector and "invented" another.
    diags = cross_check(analysis, static[:1] + [0xDEADBEEF])
    kinds = {d.kind: d for d in diags}
    assert set(kinds) == {
        "selector-missed-by-tase", "selector-missed-statically",
    }
    assert kinds["selector-missed-by-tase"].selectors == (static[1],)
    assert kinds["selector-missed-statically"].selectors == (0xDEADBEEF,)
    assert "0xdeadbeef" in kinds["selector-missed-statically"].render()


def test_options_round_trip_includes_analysis_flags():
    tool = SigRec(static_check=False, prune=True)
    options = tool.options()
    assert options["static_check"] is False
    assert options["prune"] is True
    clone = SigRec(**options)
    assert clone.prune and not clone.static_check
