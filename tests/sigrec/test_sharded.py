"""Selector-sharded TASE + function-body memo: equivalence and reuse.

The contract behind the perf work: sharding and memoization may change
*how* a recovery is computed, never *what* it computes.  Sharded (and
sharded+memoized) recovery must be result-identical to the monolithic
engine on every codegen variant and corpus we can emit, the memo must
prove actual reuse on a clone-heavy corpus, and the monolithic walk
must remain the fallback whenever the dispatcher cannot be trusted.
"""

import pytest

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.compiler.contract import CodegenOptions, DispatcherStyle, Language
from repro.corpus.datasets import (
    build_clone_corpus,
    build_closed_source_corpus,
    build_obfuscated_corpus,
    build_vyper_corpus,
)
from repro.obs import MetricsRegistry
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery
from repro.sigrec.cache import FunctionMemo, FunctionRecord
from repro.sigrec.engine import TASEEngine, merge_tase_results

SIGS = [
    FunctionSignature.parse("transfer(address,uint256)"),
    FunctionSignature.parse("setData(bytes,uint256[3])"),
    FunctionSignature.parse("flag()"),
]

VARIANTS = [
    CodegenOptions(dispatcher=style, optimize=optimize, obfuscate=obfuscate)
    for style in DispatcherStyle
    for optimize in (False, True)
    for obfuscate in (False, True)
] + [
    CodegenOptions(language=Language.VYPER, version="0.2.8"),
]


def _key(sig):
    """Everything except the wall-clock timing (test_prune idiom)."""
    return (sig.selector, sig.param_types, sig.language,
            sig.fired_rules, sig.confidences)


def _assert_equivalent(bytecode):
    mono = SigRec(sharded=False, memo=False)
    shard = SigRec(sharded=True, memo=True)
    expected = [_key(s) for s in mono.recover(bytecode)]
    actual = [_key(s) for s in shard.recover(bytecode)]
    assert actual == expected
    assert shard.tracker.as_dict() == mono.tracker.as_dict()
    assert shard.tracker.conflicts == mono.tracker.conflicts
    assert shard.last_diagnostics == mono.last_diagnostics
    return shard.last_strategy


@pytest.mark.parametrize(
    "options", VARIANTS,
    ids=[
        f"{o.language.value}-{o.dispatcher.value}"
        f"{'-opt' if o.optimize else ''}{'-obf' if o.obfuscate else ''}"
        for o in VARIANTS
    ],
)
def test_sharded_equals_monolithic_on_every_codegen_variant(options):
    contract = compile_contract(SIGS, options)
    strategy = _assert_equivalent(contract.bytecode)
    # Our compilers always emit a statically resolvable dispatcher, so
    # the shard plan must actually engage — equivalence of a silent
    # fallback would prove nothing.
    assert strategy == "sharded"


def test_sharded_equals_monolithic_on_corpus():
    checked = sharded = 0
    for corpus in (
        build_closed_source_corpus(n_contracts=10, seed=7),
        build_vyper_corpus(n_contracts=5, seed=5),
        build_obfuscated_corpus(n_contracts=5, seed=9),
    ):
        for case in corpus.cases:
            strategy = _assert_equivalent(case.contract.bytecode)
            checked += 1
            sharded += strategy == "sharded"
    assert checked == 20
    assert sharded == checked


def test_monolithic_fallback_when_no_dispatcher():
    """Dispatcherless code must not be forced through the shard path."""
    from repro.evm.asm import Assembler

    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").op("POP").op("STOP")
    tool = SigRec()
    assert tool.recover(asm.assemble()) == []
    assert tool.last_strategy == "monolithic"

    forced = SigRec(sharded=False)
    forced.recover(compile_contract(SIGS).bytecode)
    assert forced.last_strategy == "monolithic"


def test_engine_shards_union_to_the_monolithic_result():
    """Engine-level: per-selector shards + residual == one global walk."""
    code = compile_contract(SIGS).bytecode
    mono = TASEEngine(code).run()
    engine = TASEEngine(code)
    known = frozenset(mono.selectors)
    parts = [engine.run_selector(s, known) for s in sorted(known)]
    parts.append(engine.run_residual(known))
    merged = merge_tase_results(parts)
    assert merged.selectors == mono.selectors
    for selector in mono.selectors:
        a, b = mono.functions[selector], merged.functions[selector]
        assert len(a.loads) == len(b.loads)
        assert len(a.copies) == len(b.copies)
        assert len(a.uses) == len(b.uses)
    assert merged.sharded and merged.shards == len(parts)


def test_only_exclude_partition_recovers_each_selector_once():
    code = compile_contract(SIGS).bytecode
    whole = {s.selector: _key(s) for s in SigRec().recover(code)}
    selectors = sorted(whole)
    first, rest = frozenset(selectors[:1]), frozenset(selectors[1:])

    tool = SigRec()
    part_a = tool.recover(code, only=first)
    part_b = tool.recover(code, only=None, exclude=first)
    got = {s.selector: _key(s) for s in part_a + part_b}
    assert got == whole
    assert {s.selector for s in part_a} == set(first)
    assert {s.selector for s in part_b} == set(rest)
    # Partial recoveries must not raise spurious cross-check findings.
    assert tool.last_diagnostics == ()


def test_memo_reuse_on_clone_corpus_is_proven_by_counters():
    """Satellite: >=50% shared bodies -> the memo hit counter shows it."""
    corpus = build_clone_corpus(n_families=4, clones_per_family=4, seed=11)
    codes = [case.contract.bytecode for case in corpus.cases]
    assert len(set(codes)) == len(codes)  # clones are distinct bytecodes

    expected = []
    for code in codes:
        baseline = SigRec(sharded=False, memo=False)
        expected.append([_key(s) for s in baseline.recover(code)])

    registry = MetricsRegistry()
    runner = BatchRecovery(tool=SigRec(metrics=registry), workers=0)
    results = runner.recover_all(codes)
    assert [[_key(s) for s in sigs] for sigs in results] == expected
    stats = runner.stats
    assert stats.memo_hits > 0
    # 4 clones per family share 3/4 of all bodies.
    assert stats.memo_hit_rate >= 0.5
    values = registry.counter_values()
    assert values.get("memo.hits{tier=memory}", 0) == stats.memo_hits


def test_memo_disk_tier_survives_processes(tmp_path):
    """A second cold process reuses the first run's on-disk records."""
    corpus = build_clone_corpus(n_families=2, clones_per_family=2, seed=13)
    codes = [case.contract.bytecode for case in corpus.cases]
    base = codes[0]

    first = SigRec(memo_dir=str(tmp_path))
    expected = [_key(s) for s in first.recover(base)]
    memo = first.function_memo()
    assert memo.writes > 0

    # Fresh tool, cold memory tier, same directory: disk hits only.
    second = SigRec(memo_dir=str(tmp_path), metrics=MetricsRegistry())
    assert [_key(s) for s in second.recover(base)] == expected
    values = second.metrics.counter_values()
    assert values.get("memo.hits{tier=disk}", 0) > 0
    assert second.tracker.as_dict() == first.tracker.as_dict()


def test_function_memo_round_trip_and_invalidation(tmp_path):
    record = FunctionRecord(
        selector=0xCAFE, param_types=("uint256",), language="solidity",
        fired_rules=("R4",), confidences=("high",),
        rule_counts={"R4": 1}, conflicts={"R15": 1},
    )
    options = SigRec().options()
    memo = FunctionMemo(options, directory=str(tmp_path))
    key = memo.key_for(b"region-bytes")
    assert memo.get(key) is None  # cold miss
    memo.put(key, record)
    assert memo.get(key) == record  # memory hit
    assert (memo.hits_memory, memo.misses, memo.writes) == (1, 1, 1)

    fresh = FunctionMemo(options, directory=str(tmp_path))
    assert fresh.get(key) == record  # disk hit
    assert fresh.hits_disk == 1
    replayed = fresh.get(key).to_signature()
    assert replayed.elapsed_seconds == 0.0
    assert replayed.param_types == ("uint256",)

    # A different options fingerprint must never see the entry.
    other = FunctionMemo(SigRec(loop_bound=7).options(), directory=str(tmp_path))
    assert other.key_for(b"region-bytes") != key
    assert other.get(other.key_for(b"region-bytes")) is None

    # Corrupt the on-disk entry: present-but-unreadable is a miss.
    entry = fresh._entry_path(key)
    with open(entry, "w", encoding="utf-8") as handle:
        handle.write("garbage")
    cold = FunctionMemo(options, directory=str(tmp_path))
    assert cold.get(key) is None


def test_function_memo_memory_tier_is_a_bounded_lru():
    memo = FunctionMemo(SigRec().options(), capacity=2)
    record = FunctionRecord(
        selector=1, param_types=(), language="solidity",
        fired_rules=(), confidences=(), rule_counts={}, conflicts={},
    )
    keys = [memo.key_for(bytes([i])) for i in range(3)]
    for key in keys:
        memo.put(key, record)
    assert memo.get(keys[0]) is None  # evicted
    assert memo.get(keys[2]) is not None


def test_batch_unit_split_matches_whole_contract_recovery():
    """A contract split across (contract, selector-group) units must
    reassemble to exactly the unsplit recovery, serial and parallel."""
    sigs = [FunctionSignature.parse(f"f{i}(uint{8 * (i % 4 + 1)})") for i in range(9)]
    sigs.append(FunctionSignature.parse("g(bytes,uint256[])"))
    code = compile_contract(sigs).bytecode
    baseline_tool = SigRec()
    baseline = [_key(s) for s in baseline_tool.recover(code)]
    assert len(baseline) == 10
    for workers in (0, 2):
        tool = SigRec()
        runner = BatchRecovery(tool=tool, workers=workers, unit_size=3)
        results = runner.recover_all([code])
        assert [_key(s) for s in results[0]] == baseline
        assert tool.tracker.as_dict() == baseline_tool.tracker.as_dict()
        assert runner.stats.units > 1
        assert runner.stats.split_contracts == 1
