"""The inference-memo tier: digest, round-trips, invalidation, replay.

Mirrors the function-memo suite in ``test_sharded.py`` /
``test_cache.py``: the memo may change how an inference result is
*obtained* (replayed instead of recomputed), never what it is — and a
schema bump must relocate every entry.
"""

import pytest

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.obs import MetricsRegistry
from repro.sigrec import expr as E
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery
from repro.sigrec.cache import (
    InferenceMemo,
    InferenceRecord,
    options_fingerprint,
)
from repro.sigrec.events import (
    CalldataLoadEvent,
    FunctionEvents,
    UseEvent,
    events_digest,
)


def _key(sig):
    return (sig.selector, sig.param_types, sig.language,
            sig.fired_rules, sig.confidences)


def _events(selector=1, base_pc=0x10, slot=4, mask=0xFFFF):
    events = FunctionEvents(selector=selector)
    loc = E.const(slot)
    head = CalldataLoadEvent(base_pc, loc, E.calldata(loc), ())
    events.add_load(head)
    events.add_use(UseEvent(base_pc + 2, "and_mask", head.result.labels, mask))
    return events


# -- the canonical digest ---------------------------------------------


def test_digest_is_deterministic_across_builds():
    assert events_digest(_events()) == events_digest(_events())


def test_digest_ignores_selector_and_uniform_pc_shifts():
    # The same access structure under a different selector, or the same
    # body laid out at different program counters, is the same work —
    # pcs are normalized to dense ranks and the selector is excluded.
    base = events_digest(_events(selector=1, base_pc=0x10))
    assert events_digest(_events(selector=0xDEADBEEF, base_pc=0x10)) == base
    assert events_digest(_events(selector=1, base_pc=0x90)) == base


def test_digest_sees_structural_differences():
    base = events_digest(_events())
    assert events_digest(_events(slot=36)) != base
    assert events_digest(_events(mask=0xFF)) != base
    marked = _events()
    marked.vyper_markers = 1
    assert events_digest(marked) != base


# -- memo round-trips (the FunctionMemo suite, mirrored) ---------------


def _record():
    return InferenceRecord(
        param_types=("uint16",), language="solidity",
        fired_rules=("R4", "R9"), confidences=("high",),
        rule_counts={"R4": 1, "R9": 1}, conflicts={"R15": 1},
    )


def test_inference_memo_round_trip_and_invalidation(tmp_path):
    options = SigRec().options()
    memo = InferenceMemo(options, directory=str(tmp_path))
    key = memo.key_for(events_digest(_events()))
    assert memo.get(key) is None  # cold miss
    memo.put(key, _record())
    assert memo.get(key) == _record()  # memory hit
    assert (memo.hits_memory, memo.misses, memo.writes) == (1, 1, 1)

    fresh = InferenceMemo(options, directory=str(tmp_path))
    assert fresh.get(key) == _record()  # disk hit
    assert fresh.hits_disk == 1
    replayed = fresh.get(key).to_signature(0xCAFE)
    assert replayed.selector == 0xCAFE
    assert replayed.elapsed_seconds == 0.0
    assert replayed.param_types == ("uint16",)

    # A different options fingerprint must never see the entry.
    other = InferenceMemo(
        SigRec(loop_bound=7).options(), directory=str(tmp_path)
    )
    assert other.key_for(events_digest(_events())) != key
    assert other.get(other.key_for(events_digest(_events()))) is None

    # Corrupt the on-disk entry: present-but-unreadable is a miss.
    entry = fresh._entry_path(key)
    with open(entry, "w", encoding="utf-8") as handle:
        handle.write("garbage")
    cold = InferenceMemo(options, directory=str(tmp_path))
    assert cold.get(key) is None


def test_inference_memo_memory_tier_is_a_bounded_lru():
    memo = InferenceMemo(SigRec().options(), capacity=2)
    keys = [memo.key_for(f"digest-{i}") for i in range(3)]
    for key in keys:
        memo.put(key, _record())
    assert memo.get(keys[0]) is None  # evicted
    assert memo.get(keys[2]) is not None


def test_schema_version_bump_invalidates_every_tier(
    tmp_path, monkeypatch
):
    """Bumping INFERENCE_MEMO_SCHEMA_VERSION relocates the memo (and,
    because it rides in options_fingerprint, every other tier too)."""
    from repro.sigrec import cache as cache_module

    options = SigRec().options()
    before_fingerprint = options_fingerprint(options)
    before = InferenceMemo(options, directory=str(tmp_path))
    key = before.key_for("digest")
    before.put(key, _record())

    monkeypatch.setattr(
        cache_module, "INFERENCE_MEMO_SCHEMA_VERSION",
        cache_module.INFERENCE_MEMO_SCHEMA_VERSION + 1,
    )
    assert options_fingerprint(options) != before_fingerprint
    after = InferenceMemo(options, directory=str(tmp_path))
    assert after.fingerprint != before.fingerprint
    assert after.get(after.key_for("digest")) is None


def test_digest_collides_for_real_clone_fleets():
    """Through the real pipeline: renamed functions (different
    selectors, different dispatch-guard constants, shifted pcs) with
    the same parameter structure share one digest."""
    from repro.sigrec.engine import TASEEngine

    digests = []
    for name in ("transfer", "send", "moveTo"):
        code = compile_contract([
            FunctionSignature.parse(f"{name}(address,uint256)"),
            FunctionSignature.parse(f"{name}Data(bytes,uint256[3])"),
        ]).bytecode
        result = TASEEngine(code).run()
        digests.append(sorted(
            events_digest(result.functions[s]) for s in result.selectors
        ))
    assert len(set(digests[0])) == 2  # the two shapes stay distinct
    assert digests[0] == digests[1] == digests[2]


# -- replay parity through the API -------------------------------------


def _code(signature="setData(bytes,uint256[3])"):
    return compile_contract([FunctionSignature.parse(signature)]).bytecode


def test_warm_run_replays_counts_and_reports_the_tier(tmp_path):
    """A second process over the same events replays inference from the
    memo: identical signatures, identical rule/conflict counters, and
    the run reports the ``inference-memo`` tier."""
    code = _code()
    cold = SigRec(memo=False, inference_memo_dir=str(tmp_path))
    expected = [_key(s) for s in cold.recover(code)]
    assert cold._last_inference_memo[0] == 0  # nothing to hit yet

    warm = SigRec(
        memo=False, inference_memo_dir=str(tmp_path),
        metrics=MetricsRegistry(),
    )
    assert [_key(s) for s in warm.recover(code)] == expected
    hits, misses = warm._last_inference_memo
    assert hits > 0 and misses == 0
    assert warm._last_tier == "inference-memo"
    assert warm.tracker.as_dict() == cold.tracker.as_dict()
    assert warm.tracker.conflicts == cold.tracker.conflicts
    values = warm.metrics.counter_values()
    assert values.get("infmemo.hits{tier=disk}", 0) > 0


def test_monolithic_path_also_replays(tmp_path):
    code = _code("transfer(address,uint256)")
    cold = SigRec(
        sharded=False, memo=False, inference_memo_dir=str(tmp_path)
    )
    expected = [_key(s) for s in cold.recover(code)]

    warm = SigRec(
        sharded=False, memo=False, inference_memo_dir=str(tmp_path)
    )
    assert [_key(s) for s in warm.recover(code)] == expected
    assert warm._last_tier == "inference-memo"
    assert warm.tracker.as_dict() == cold.tracker.as_dict()


def test_disabled_memo_never_probes(tmp_path):
    tool = SigRec(inference_memo=False, inference_memo_dir=str(tmp_path))
    tool.recover(_code())
    assert tool.inference_memo_tier() is None
    assert tool._last_inference_memo == (0, 0)


def test_function_memo_hit_outranks_inference_memo(tmp_path):
    """With both tiers warm the function memo wins (it also skips
    TASE), and the ledger tier stays ``memo``."""
    code = _code()
    cold = SigRec(
        memo_dir=str(tmp_path / "fn"),
        inference_memo_dir=str(tmp_path / "inf"),
    )
    expected = [_key(s) for s in cold.recover(code)]
    warm = SigRec(
        memo_dir=str(tmp_path / "fn"),
        inference_memo_dir=str(tmp_path / "inf"),
    )
    assert [_key(s) for s in warm.recover(code)] == expected
    assert warm._last_tier == "memo"
    assert warm._last_inference_memo == (0, 0)


def test_batch_counts_inference_memo_probes(tmp_path):
    """Batch workers share one inference memo per process; the stats
    carry its hit/miss deltas and the summary renders them."""
    codes = [_code(), _code("transfer(address,uint256)")]
    cache_dir = str(tmp_path)
    first = BatchRecovery(
        tool=SigRec(memo=False), workers=0, cache_dir=cache_dir
    )
    first.recover_all(codes)
    assert first.stats.inference_memo_misses > 0

    # Second run, cold result cache but warm inference-memo disk tier:
    # every function replays.  Layout: <dir>/<fingerprint>/... for the
    # result cache, <dir>/infmemo/ for the memo — dropping the former
    # forces the units to actually run.
    import os
    import shutil

    second = BatchRecovery(
        tool=SigRec(memo=False), workers=0, cache_dir=cache_dir
    )
    shutil.rmtree(
        os.path.join(cache_dir, second.cache.fingerprint),
        ignore_errors=True,
    )
    second.recover_all(codes)
    stats = second.stats
    assert stats.inference_memo_hits > 0
    assert stats.inference_memo_misses == 0
    assert stats.inference_memo_hit_rate == 1.0
    assert "infmemo" in stats.summary()


def test_batch_tool_flag_disables_the_tier(tmp_path):
    runner = BatchRecovery(
        tool=SigRec(memo=False, inference_memo=False),
        workers=0, cache_dir=str(tmp_path),
    )
    runner.recover_all([_code()])
    assert runner.stats.inference_memo_hits == 0
    assert runner.stats.inference_memo_misses == 0
    assert "infmemo" not in runner.stats.summary()
