"""Symbolic expression invariants: folding, normalization, labels."""

import pytest

from repro.sigrec import expr as E

WORD = 1 << 256


def test_const_folding_arithmetic():
    assert E.binop("add", E.const(2), E.const(3)).value == 5
    assert E.binop("mul", E.const(4), E.const(5)).value == 20
    assert E.binop("sub", E.const(2), E.const(3)).value == WORD - 1
    assert E.binop("div", E.const(7), E.const(2)).value == 3
    assert E.binop("div", E.const(7), E.const(0)).value == 0


def test_comparisons_not_folded_in_cmp_builder():
    # The engine builds comparisons unfolded so guards keep structure;
    # binop() does fold them, which eval_const relies on.
    from repro.sigrec.engine import _cmp, eval_const

    cmp_expr = _cmp("lt", E.const(1), E.const(2))
    assert not cmp_expr.is_const
    assert eval_const(cmp_expr) == 1


def test_commutative_normalization_const_first():
    x = E.env("x")
    assert E.binop("add", x, E.const(4)) == E.binop("add", E.const(4), x)
    assert E.binop("and", x, E.const(0xFF)) == E.binop("and", E.const(0xFF), x)


def test_nested_const_addition_collapses():
    x = E.env("x")
    inner = E.binop("add", E.const(4), x)
    outer = E.binop("add", E.const(32), inner)
    assert outer == E.binop("add", E.const(36), x)


def test_add_zero_mul_one_identity():
    x = E.env("x")
    assert E.binop("add", E.const(0), x) is x
    assert E.binop("mul", E.const(1), x) is x


def test_signextend_semantics():
    assert E.binop("signextend", E.const(0), E.const(0xFF)).value == WORD - 1
    assert E.binop("signextend", E.const(0), E.const(0x7F)).value == 0x7F
    assert E.binop("signextend", E.const(31), E.const(123)).value == 123


def test_labels_propagate():
    cd = E.calldata(E.const(4))
    assert ("cd", 4) in cd.labels
    masked = E.binop("and", E.const(0xFF), cd)
    assert ("cd", 4) in masked.labels
    summed = E.binop("add", masked, E.env("caller"))
    assert ("cd", 4) in summed.labels


def test_mem_read_labels():
    offset = E.const(0x80)
    value = E.mem_read(42, offset, frozenset({("cd", 4)}))
    assert ("cdc", 42) in value.labels
    assert ("cd", 4) in value.labels


def test_structural_equality_and_hash():
    a = E.calldata(E.binop("add", E.const(4), E.calldata(E.const(4))))
    b = E.calldata(E.binop("add", E.const(4), E.calldata(E.const(4))))
    assert a == b
    assert hash(a) == hash(b)


def test_contains():
    base = E.calldata(E.const(4))
    loc = E.binop("add", E.const(36), base)
    assert loc.contains(base)
    assert not base.contains(loc)
    assert loc.contains(loc)


def test_const_term():
    x = E.env("x")
    assert E.binop("add", E.const(36), E.binop("mul", E.const(32), x)).const_term() == 36
    assert E.const(7).const_term() == 7
    assert x.const_term() == 0


def test_immutability():
    node = E.const(1)
    with pytest.raises(AttributeError):
        node.op = "env"  # type: ignore[misc]


def test_iszero_folding():
    assert E.iszero(E.const(0)).value == 1
    assert E.iszero(E.const(5)).value == 0
    x = E.env("x")
    assert E.iszero(x).op == "iszero"


def test_eval_const_full_tree():
    from repro.sigrec.engine import eval_const

    expr = E.Expr("lt", (E.binop("add", E.const(1), E.const(1)), E.const(3)))
    assert eval_const(expr) == 1
    expr_sym = E.Expr("lt", (E.env("i"), E.const(3)))
    assert eval_const(expr_sym) is None
