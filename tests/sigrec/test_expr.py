"""Symbolic expression invariants: folding, normalization, labels."""

import pytest

from repro.sigrec import expr as E

WORD = 1 << 256


def test_const_folding_arithmetic():
    assert E.binop("add", E.const(2), E.const(3)).value == 5
    assert E.binop("mul", E.const(4), E.const(5)).value == 20
    assert E.binop("sub", E.const(2), E.const(3)).value == WORD - 1
    assert E.binop("div", E.const(7), E.const(2)).value == 3
    assert E.binop("div", E.const(7), E.const(0)).value == 0


def test_comparisons_not_folded_in_cmp_builder():
    # The engine builds comparisons unfolded so guards keep structure;
    # binop() does fold them, which eval_const relies on.
    from repro.sigrec.engine import _cmp, eval_const

    cmp_expr = _cmp("lt", E.const(1), E.const(2))
    assert not cmp_expr.is_const
    assert eval_const(cmp_expr) == 1


def test_commutative_normalization_const_first():
    x = E.env("x")
    assert E.binop("add", x, E.const(4)) == E.binop("add", E.const(4), x)
    assert E.binop("and", x, E.const(0xFF)) == E.binop("and", E.const(0xFF), x)


def test_nested_const_addition_collapses():
    x = E.env("x")
    inner = E.binop("add", E.const(4), x)
    outer = E.binop("add", E.const(32), inner)
    assert outer == E.binop("add", E.const(36), x)


def test_add_zero_mul_one_identity():
    x = E.env("x")
    assert E.binop("add", E.const(0), x) is x
    assert E.binop("mul", E.const(1), x) is x


def test_signextend_semantics():
    assert E.binop("signextend", E.const(0), E.const(0xFF)).value == WORD - 1
    assert E.binop("signextend", E.const(0), E.const(0x7F)).value == 0x7F
    assert E.binop("signextend", E.const(31), E.const(123)).value == 123


def test_labels_propagate():
    cd = E.calldata(E.const(4))
    assert ("cd", 4) in cd.labels
    masked = E.binop("and", E.const(0xFF), cd)
    assert ("cd", 4) in masked.labels
    summed = E.binop("add", masked, E.env("caller"))
    assert ("cd", 4) in summed.labels


def test_mem_read_labels():
    offset = E.const(0x80)
    value = E.mem_read(42, offset, frozenset({("cd", 4)}))
    assert ("cdc", 42) in value.labels
    assert ("cd", 4) in value.labels


def test_interning_shares_label_pure_compounds():
    # Constant-offset calldata masks are label-pure: interning makes
    # structural equality an identity check.
    a = E.binop("and", E.const(0xFF), E.calldata(E.const(4)))
    b = E.binop("and", E.const(0xFF), E.calldata(E.const(4)))
    assert a is b
    assert a.labels == frozenset({("cd", 4)})


def test_interning_does_not_leak_mem_labels():
    # Regression: two structurally-identical mem reads can carry
    # *different* engine-injected CALLDATACOPY source labels (which
    # __eq__/__hash__ ignore), so mask nodes over them must never be
    # interned — an earlier contract's taint would leak into a later one.
    m_from_4 = E.mem_read(0, E.const(0x80), frozenset({("cd", 4)}))
    m_from_36 = E.mem_read(0, E.const(0x80), frozenset({("cd", 36)}))
    assert m_from_4 == m_from_36  # structural equality ignores labels

    e_from_4 = E.binop("and", E.const(0xFF), m_from_4)
    e_from_36 = E.binop("and", E.const(0xFF), m_from_36)
    assert ("cd", 4) in e_from_4.labels
    assert ("cd", 36) not in e_from_4.labels
    assert ("cd", 36) in e_from_36.labels
    assert ("cd", 4) not in e_from_36.labels

    # Same hazard with the leaf on the left.
    f_from_4 = E.binop("div", m_from_4, E.const(2))
    f_from_36 = E.binop("div", m_from_36, E.const(2))
    assert ("cd", 36) not in f_from_4.labels
    assert ("cd", 4) not in f_from_36.labels


def test_interning_does_not_leak_symbolic_calldata_labels():
    # calldata at a symbolic location can transitively contain mem
    # nodes, so its labels are not structure-derived either.
    c_from_4 = E.calldata(E.mem_read(1, E.const(0), frozenset({("cd", 4)})))
    c_from_68 = E.calldata(E.mem_read(1, E.const(0), frozenset({("cd", 68)})))
    e_from_4 = E.binop("and", E.const(0xFF), c_from_4)
    e_from_68 = E.binop("and", E.const(0xFF), c_from_68)
    assert ("cd", 68) not in e_from_4.labels
    assert ("cd", 4) not in e_from_68.labels


def test_structural_equality_and_hash():
    a = E.calldata(E.binop("add", E.const(4), E.calldata(E.const(4))))
    b = E.calldata(E.binop("add", E.const(4), E.calldata(E.const(4))))
    assert a == b
    assert hash(a) == hash(b)


def test_contains():
    base = E.calldata(E.const(4))
    loc = E.binop("add", E.const(36), base)
    assert loc.contains(base)
    assert not base.contains(loc)
    assert loc.contains(loc)


def test_const_term():
    x = E.env("x")
    assert E.binop("add", E.const(36), E.binop("mul", E.const(32), x)).const_term() == 36
    assert E.const(7).const_term() == 7
    assert x.const_term() == 0


def test_immutability():
    node = E.const(1)
    with pytest.raises(AttributeError):
        node.op = "env"  # type: ignore[misc]


def test_iszero_folding():
    assert E.iszero(E.const(0)).value == 1
    assert E.iszero(E.const(5)).value == 0
    x = E.env("x")
    assert E.iszero(x).op == "iszero"


def test_eval_const_full_tree():
    from repro.sigrec.engine import eval_const

    expr = E.Expr("lt", (E.binop("add", E.const(1), E.const(1)), E.const(3)))
    assert eval_const(expr) == 1
    expr_sym = E.Expr("lt", (E.env("i"), E.const(3)))
    assert eval_const(expr_sym) is None
