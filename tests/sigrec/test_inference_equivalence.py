"""Indexed inference == reference inference, on everything we can emit.

The indexed path (derivation graph + label inverted index + memoized
predicates) is a pure lookup rewrite of the reference path's structural
rescans — it must be *byte-identical*, not merely accuracy-equivalent:
same parameter types, same confidences, same fired-rule multisets and
the same rule/conflict counters, on every input.  The reference path
(``indexed=False``) is retained in :mod:`repro.sigrec.inference`
precisely to serve as the oracle here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.compiler.contract import CodegenOptions, DispatcherStyle, Language
from repro.corpus.datasets import (
    build_closed_source_corpus,
    build_obfuscated_corpus,
    build_struct_nested_corpus,
    build_vyper_corpus,
)
from repro.corpus.signatures import SignatureGenerator
from repro.sigrec import expr as E
from repro.sigrec.engine import TASEEngine, _cmp
from repro.sigrec.events import (
    CalldataCopyEvent,
    CalldataLoadEvent,
    FunctionEvents,
    Guard,
    UseEvent,
)
from repro.sigrec.inference import PredicateMemo, infer_function
from repro.sigrec.rules import RuleTracker


def _run(events, indexed, memo=None):
    tracker = RuleTracker()
    inferred = infer_function(events, tracker, indexed=indexed, memo=memo)
    return inferred, tracker


def _assert_equivalent(events, memo=None):
    """One function's events through both paths; everything must match."""
    indexed, indexed_tracker = _run(events, True, memo=memo)
    reference, reference_tracker = _run(events, False)
    assert indexed.param_types == reference.param_types
    assert indexed.confidences == reference.confidences
    assert indexed.fired_rules == reference.fired_rules
    assert indexed.language == reference.language
    assert indexed_tracker.counts == reference_tracker.counts
    assert indexed_tracker.conflicts == reference_tracker.conflicts
    return indexed


def _assert_contract_equivalent(bytecode):
    result = TASEEngine(bytecode).run()
    memo = PredicateMemo()  # shared across the contract, like the API
    for selector in sorted(result.functions):
        _assert_equivalent(result.functions[selector], memo=memo)


# -- synthetic events: the event vocabulary, randomized ----------------


def _head(pc, slot, guards=()):
    loc = E.const(slot)
    return CalldataLoadEvent(pc, loc, E.calldata(loc), tuple(guards))


def _dyn_load(pc, loc, guards=()):
    return CalldataLoadEvent(pc, loc, E.calldata(loc), tuple(guards))


@st.composite
def _function_events(draw):
    """Randomized but well-formed FunctionEvents: a mix of basic
    parameters, masked uses, offset/num pairs, strided item loads and
    rounded-length copies — the shapes the rules actually dispatch on,
    with randomized pcs, widths, order and duplication."""
    events = FunctionEvents(selector=draw(st.integers(1, 0xFFFFFFFF)))
    n_params = draw(st.integers(1, 4))
    pc = draw(st.integers(0x10, 0x40))
    for position in range(n_params):
        slot = 4 + 32 * position
        kind = draw(st.sampled_from(
            ["basic", "masked", "bool", "string", "array", "copy"]
        ))
        head = _head(pc, slot)
        events.add_load(head)
        pc += draw(st.integers(2, 8))
        if kind == "masked":
            width = draw(st.sampled_from([0xFF, 0xFFFF, 0xFFFFFFFF]))
            events.add_use(
                UseEvent(pc, "and_mask", head.result.labels, width)
            )
        elif kind == "bool":
            events.add_use(UseEvent(pc, "bool_mask", head.result.labels))
        elif kind in ("string", "array", "copy"):
            num_loc = E.binop("add", E.const(4), head.result)
            num_load = _dyn_load(pc, num_loc)
            events.add_load(num_load)
            pc += draw(st.integers(2, 8))
            if kind == "array":
                index = E.env("i")
                guard = Guard(
                    _cmp("lt", index, num_load.result),
                    draw(st.booleans()),
                    pc,
                )
                item_loc = E.binop(
                    "add", E.const(36 + 32 * position),
                    E.binop(
                        "add", E.binop("mul", E.const(32), index),
                        head.result,
                    ),
                )
                events.add_load(_dyn_load(pc, item_loc, (guard,)))
            elif kind == "copy":
                rounded = E.binop(
                    "and", E.bit_not(E.const(31)),
                    E.binop("add", E.const(31), num_load.result),
                )
                events.add_copy(CalldataCopyEvent(
                    pc, E.const(0x80),
                    E.binop("add", E.const(36), head.result),
                    rounded, pc,
                ))
                if draw(st.booleans()):
                    data = E.mem_read(pc, E.const(0x80), frozenset())
                    events.add_use(UseEvent(pc + 1, "byte", data.labels))
        pc += draw(st.integers(2, 8))
    if draw(st.booleans()):
        # Duplicate re-reads of an existing head: the dedup in
        # FunctionEvents and the index construction must agree.
        events.add_load(_head(pc, 4))
    events.vyper_markers = draw(st.integers(0, 3))
    return events


@settings(max_examples=120, deadline=None)
@given(events=_function_events())
def test_indexed_equals_reference_on_random_events(events):
    _assert_equivalent(events)


@settings(max_examples=120, deadline=None)
@given(events=_function_events())
def test_shared_predicate_memo_never_changes_results(events):
    # One PredicateMemo shared across many *different* functions (the
    # per-engine-run sharing the API does) must be invisible.
    memo = PredicateMemo()
    _assert_equivalent(events, memo=memo)
    _assert_equivalent(events, memo=memo)


# -- real pipelines: compiled contracts through TASE -------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    optimize=st.booleans(),
    n_functions=st.integers(1, 4),
)
def test_indexed_equals_reference_on_random_contracts(
    seed, optimize, n_functions
):
    gen = SignatureGenerator(seed=seed, struct_weight=1, nested_weight=1)
    contract = compile_contract(
        gen.signatures(n_functions), CodegenOptions(optimize=optimize)
    )
    _assert_contract_equivalent(contract.bytecode)


VARIANTS = [
    CodegenOptions(dispatcher=style, optimize=optimize, obfuscate=obfuscate)
    for style in DispatcherStyle
    for optimize in (False, True)
    for obfuscate in (False, True)
] + [
    CodegenOptions(language=Language.VYPER, version="0.2.8"),
]

SIGS = [
    FunctionSignature.parse("transfer(address,uint256)"),
    FunctionSignature.parse("setData(bytes,uint256[3])"),
    FunctionSignature.parse("flag()"),
]


@pytest.mark.parametrize(
    "options", VARIANTS,
    ids=[
        f"{o.language.value}-{o.dispatcher.value}"
        f"{'-opt' if o.optimize else ''}{'-obf' if o.obfuscate else ''}"
        for o in VARIANTS
    ],
)
def test_indexed_equals_reference_on_every_codegen_variant(options):
    contract = compile_contract(SIGS, options)
    _assert_contract_equivalent(contract.bytecode)


def test_indexed_equals_reference_on_45_contract_corpus():
    """The differential corpus: 45 contracts across four builders."""
    checked = 0
    for corpus in (
        build_closed_source_corpus(n_contracts=15, seed=7),
        build_vyper_corpus(n_contracts=10, seed=5),
        build_obfuscated_corpus(n_contracts=10, seed=9),
        build_struct_nested_corpus(n_contracts=10, seed=3),
    ):
        for case in corpus.cases:
            _assert_contract_equivalent(case.contract.bytecode)
            checked += 1
    assert checked == 45
