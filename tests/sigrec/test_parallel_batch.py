"""Parallel batch recovery: worker-pool results must be byte-identical
to the serial path — same signatures, same merged rule-usage counts."""

from repro.abi.signature import FunctionSignature, Visibility
from repro.compiler import compile_contract
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery, BatchStats


def _codes():
    a = compile_contract([FunctionSignature.parse("a(uint8)")]).bytecode
    b = compile_contract([FunctionSignature.parse("b(bytes)")]).bytecode
    c = compile_contract(
        [FunctionSignature.parse("c(address,uint256)", Visibility.EXTERNAL)]
    ).bytecode
    return a, b, c


def _essence(results):
    """Everything except wall-clock timing, which varies run to run."""
    return [
        [
            (s.selector, s.param_types, s.language, s.fired_rules, s.confidences)
            for s in contract
        ]
        for contract in results
    ]


def test_parallel_matches_serial():
    a, b, c = _codes()
    codes = [a, b, a, c, b, a]

    serial_tool = SigRec()
    serial = serial_tool.recover_batch(codes, workers=0)
    parallel_tool = SigRec()
    parallel = parallel_tool.recover_batch(codes, workers=4)

    assert _essence(serial) == _essence(parallel)
    assert serial_tool.tracker.counts == parallel_tool.tracker.counts


def test_batch_recovery_matches_plain_recover_batch():
    a, b, _ = _codes()
    codes = [a, b, b]
    plain = SigRec().recover_batch(codes)
    runner_tool = SigRec()
    runner = BatchRecovery(tool=runner_tool, workers=0)
    assert _essence(runner.recover_all(codes)) == _essence(plain)


def test_parallel_preserves_order_and_expands_duplicates():
    a, b, _ = _codes()
    codes = [b, a, b, b, a]
    results = SigRec().recover_batch(codes, workers=2)
    assert len(results) == 5
    assert [s.param_list for s in results[0]] == ["bytes"]
    assert [s.param_list for s in results[1]] == ["uint8"]
    assert results[0] == results[2] == results[3]
    assert results[1] == results[4]
    # Per-entry copies: no aliasing between duplicated entries.
    results[2].append("sentinel")
    assert len(results[3]) == 1


def test_parallel_stats():
    a, b, _ = _codes()
    runner = BatchRecovery(tool=SigRec(), workers=2)
    runner.recover_all([a, a, b, a])
    stats = runner.stats
    assert stats.total == 4
    assert stats.unique == 2
    assert stats.analyzed == 2
    assert stats.workers == 2
    assert abs(stats.unique_ratio - 0.5) < 1e-9
    assert stats.cache_hits == 0 and stats.cache_misses == 0
    assert "4 contracts" in stats.summary()
    assert "cache off" in stats.summary()


def test_workers_default_uses_cpu_count():
    import os

    runner = BatchRecovery(tool=SigRec())
    assert runner.workers == (os.cpu_count() or 1)


def test_empty_batch_parallel():
    runner = BatchRecovery(tool=SigRec(), workers=2)
    assert runner.recover_all([]) == []
    assert runner.stats.total == 0
    assert runner.stats.unique == 0
    assert runner.stats.contracts_per_second == 0.0
    assert isinstance(runner.stats, BatchStats)


def test_warm_cache_throughput_renders_na_not_zero():
    """A run too fast to time meaningfully must say so, not mislead."""
    warm = BatchStats(total=5, elapsed_seconds=0.0)
    assert warm.contracts_per_second == 0.0  # numeric API unchanged
    assert "n/a contracts/s" in warm.summary()
    # Astronomic rates from sub-resolution timers are equally bogus.
    absurd = BatchStats(total=100_000, elapsed_seconds=1e-9)
    assert "n/a contracts/s" in absurd.summary()
    # A measurable run still reports the real figure.
    normal = BatchStats(total=10, elapsed_seconds=2.0)
    assert "5 contracts/s" in normal.summary()
