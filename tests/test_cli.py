"""CLI: every subcommand end to end."""

import random

import pytest

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Visibility
from repro.apps.parchecker import corrupt_calldata
from repro.cli import main
from repro.compiler import compile_contract

TRANSFER = FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL)


@pytest.fixture(scope="module")
def token_hex():
    contract = compile_contract(
        [TRANSFER, FunctionSignature.parse("pause(bool)", Visibility.PUBLIC)]
    )
    return contract.bytecode.hex()


def test_recover(token_hex, capsys):
    assert main(["recover", token_hex]) == 0
    out = capsys.readouterr().out
    assert "0xa9059cbb(address,uint256)" in out
    assert "(bool)" in out


def test_recover_verbose(token_hex, capsys):
    assert main(["recover", "-v", "0x" + token_hex]) == 0
    out = capsys.readouterr().out
    assert "solidity" in out
    assert "R16" in out  # the address rule fired


def test_recover_from_file(token_hex, tmp_path, capsys):
    path = tmp_path / "code.hex"
    path.write_text(token_hex + "\n")
    assert main(["recover", f"@{path}"]) == 0
    assert "0xa9059cbb" in capsys.readouterr().out


def test_recover_with_database_names(token_hex, tmp_path, capsys):
    from repro.baselines.efsd import SignatureDatabase

    db = SignatureDatabase()
    db.add(TRANSFER)
    path = tmp_path / "db.json"
    db.save(str(path))
    assert main(["recover", "--db", str(path), token_hex]) == 0
    out = capsys.readouterr().out
    assert "transfer(address,uint256)" in out  # the name was resolved
    assert "(bool)" in out  # the unknown function still prints typed


def test_ids(token_hex, capsys):
    assert main(["ids", token_hex]) == 0
    assert "0xa9059cbb" in capsys.readouterr().out


def test_disasm(token_hex, capsys):
    assert main(["disasm", token_hex]) == 0
    out = capsys.readouterr().out
    assert "CALLDATALOAD" in out
    assert "JUMPI" in out


def test_lift(token_hex, capsys):
    assert main(["lift", token_hex]) == 0
    assert "block_0x0:" in capsys.readouterr().out


def test_lift_plus(token_hex, capsys):
    assert main(["lift", "--plus", token_hex]) == 0
    out = capsys.readouterr().out
    assert "arg1: address" in out


def test_lift_structured(capsys):
    loopy = compile_contract(
        [FunctionSignature.parse("g(uint256[2][2])", Visibility.PUBLIC)]
    )
    assert main(["lift", "--structured", loopy.bytecode.hex()]) == 0
    out = capsys.readouterr().out
    assert "while not (" in out


def test_check_valid(token_hex, capsys):
    calldata = encode_call(TRANSFER.selector, list(TRANSFER.params), [0xAB, 5])
    assert main(["check", token_hex, calldata.hex()]) == 0
    assert "valid" in capsys.readouterr().out


def test_check_short_address_attack(token_hex, capsys):
    rng = random.Random(0)
    attack = corrupt_calldata(TRANSFER, [0xAB00, 1000], "short_address", rng)
    assert main(["check", token_hex, attack.hex()]) == 2
    assert "short address attack" in capsys.readouterr().out


def test_check_unknown_function(token_hex, capsys):
    assert main(["check", token_hex, "deadbeef" + "00" * 64]) == 0
    assert "unknown function id" in capsys.readouterr().out


def test_selector(capsys):
    assert main(["selector", "transfer(address,uint256)"]) == 0
    assert capsys.readouterr().out.strip() == "0xa9059cbb"


def test_decode_arguments(token_hex, capsys):
    calldata = encode_call(
        TRANSFER.selector, list(TRANSFER.params), [0xABCD, 5000]
    )
    assert main(["decode", token_hex, calldata.hex()]) == 0
    out = capsys.readouterr().out
    assert "address=0x000000000000000000000000000000000000abcd" in out
    assert "uint256=5000" in out


def test_decode_unknown_function(token_hex, capsys):
    assert main(["decode", token_hex, "deadbeef"]) == 1
    assert "unknown function" in capsys.readouterr().out


def test_decode_garbage_arguments(token_hex, capsys):
    assert main(["decode", token_hex, TRANSFER.selector.hex() + "01"]) == 2
    assert "cannot decode" in capsys.readouterr().out


def test_decode_dynamic_types(tmp_path, capsys):
    sig = FunctionSignature.parse("post(string,uint8[])", Visibility.PUBLIC)
    contract = compile_contract([sig])
    calldata = encode_call(sig.selector, list(sig.params), ["hi", [1, 2]])
    assert main(["decode", contract.bytecode.hex(), calldata.hex()]) == 0
    out = capsys.readouterr().out
    assert "'hi'" in out
    assert "[1, 2]" in out


def test_batch_from_file(token_hex, tmp_path, capsys):
    path = tmp_path / "corpus.txt"
    path.write_text(f"{token_hex}\n# a comment\n0x{token_hex}\n\n")
    assert main(["batch", str(path), "--workers", "0", "--time"]) == 0
    captured = capsys.readouterr()
    assert "contract 0: " in captured.out
    assert "contract 1: " in captured.out
    assert "0xa9059cbb(address,uint256)" in captured.out
    assert "2 contracts (1 unique, 50%)" in captured.err
    assert "contracts/s" in captured.err
    assert "workers=serial" in captured.err


def test_batch_from_directory_with_cache(token_hex, tmp_path, capsys):
    source = tmp_path / "corpus"
    source.mkdir()
    (source / "token.hex").write_text(token_hex)
    (source / "ignored.txt").write_text("not bytecode")
    cache_dir = tmp_path / "cache"
    args = [
        "batch", str(source),
        "--workers", "0", "--cache-dir", str(cache_dir), "--time",
    ]
    assert main(args) == 0
    assert "0 hits / 1 misses" in capsys.readouterr().err
    assert main(args) == 0  # warm: served entirely from the cache
    captured = capsys.readouterr()
    assert "1 hits / 0 misses (100% hit rate)" in captured.err
    assert "0xa9059cbb(address,uint256)" in captured.out


def test_batch_scheduler_flags(token_hex, tmp_path, capsys):
    path = tmp_path / "corpus.txt"
    path.write_text(f"{token_hex}\n")
    expected = "0xa9059cbb(address,uint256)"

    # --unit-size 1 splits the two-selector contract into two units.
    args = ["batch", str(path), "--workers", "0", "--unit-size", "1", "--time"]
    assert main(args) == 0
    captured = capsys.readouterr()
    assert expected in captured.out
    assert "2 units (1 contracts split)" in captured.err

    # The kill switches fall back to the monolithic engine, same output.
    assert main(["batch", str(path), "--workers", "0",
                 "--no-shard", "--no-memo"]) == 0
    assert expected in capsys.readouterr().out

    # The inference-memo kill switch: identical output, no infmemo line.
    assert main(["batch", str(path), "--workers", "0",
                 "--no-inference-memo", "--time"]) == 0
    captured = capsys.readouterr()
    assert expected in captured.out
    assert "infmemo" not in captured.err


def test_batch_inference_memo_summary(token_hex, tmp_path, capsys):
    """Clone bytecodes: the second unit replays inference from the
    per-process memo and the --time summary shows the probes."""
    path = tmp_path / "corpus.txt"
    path.write_text(f"{token_hex}\n{token_hex}\n")
    args = ["batch", str(path), "--workers", "0", "--no-memo", "--time",
            "--cache-dir", str(tmp_path / "cache")]
    assert main(args) == 0
    captured = capsys.readouterr()
    assert "0xa9059cbb(address,uint256)" in captured.out
    assert "infmemo" in captured.err


def test_batch_empty_source(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("\n")
    with pytest.raises(SystemExit):
        main(["batch", str(path)])


def test_batch_bad_hex(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("zz\n")
    with pytest.raises(SystemExit):
        main(["batch", str(path)])


def test_explain(token_hex, capsys):
    assert main(["explain", token_hex, "0xa9059cbb"]) == 0
    out = capsys.readouterr().out
    assert "call-data loads" in out
    assert "rules fired" in out
    assert "recovered: (address,uint256)" in out


def test_explain_unknown_function(token_hex, capsys):
    assert main(["explain", token_hex, "0xdeadbeef"]) == 0
    assert "not found" in capsys.readouterr().out


def test_explain_bad_function_id(token_hex):
    with pytest.raises(SystemExit):
        main(["explain", token_hex, "zz"])


def test_trace(token_hex, capsys):
    calldata = encode_call(TRANSFER.selector, list(TRANSFER.params), [0xA, 1])
    assert main(["trace", token_hex, calldata.hex()]) == 0
    out = capsys.readouterr().out
    assert "CALLDATALOAD" in out
    assert "=> success" in out


def test_trace_failing_call(token_hex, capsys):
    # 3 bytes of calldata: shorter than a selector, falls back to STOP
    # (success); a revert path needs the revert block.
    from repro.evm.asm import Assembler

    asm = Assembler()
    asm.push(0).push(0).op("REVERT")
    assert main(["trace", asm.assemble().hex(), "00"]) == 2
    assert "failed: revert" in capsys.readouterr().out


def test_export_corpus(tmp_path, capsys):
    target = str(tmp_path / "corpus")
    assert main(["export-corpus", target, "--contracts", "3"]) == 0
    out = capsys.readouterr().out
    assert "wrote 3 contracts" in out
    from repro.corpus.export import load_corpus

    corpus = load_corpus(target)
    assert len(corpus) == 3


def test_export_corpus_vyper(tmp_path):
    target = str(tmp_path / "vy")
    assert main(
        ["export-corpus", target, "--contracts", "2", "--language", "vyper"]
    ) == 0
    from repro.corpus.export import load_corpus

    assert load_corpus(target).language.value == "vyper"


def test_bad_hex_rejected():
    with pytest.raises(SystemExit):
        main(["recover", "zzzz"])


def test_recover_empty_bytecode(capsys):
    assert main(["recover", "00"]) == 1
    assert "no public/external functions" in capsys.readouterr().out


def test_lint_clean(token_hex, capsys):
    assert main(["lint", token_hex]) == 0
    out = capsys.readouterr().out
    assert "OK (0 errors" in out
    assert "selectors: 2" in out


def test_lint_json(token_hex, capsys):
    import json

    assert main(["lint", "--json", token_hex]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert "0xa9059cbb" in data["selectors"]


def test_lint_rejects_malformed(capsys):
    # A lone POP underflows the stack.
    assert main(["lint", "5000"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    assert "stack-underflow" in out


def test_profile_text(capsys):
    from repro.compiler.contract import FunctionSpec
    from repro.compiler.storage import StorageVariableSpec

    contract = compile_contract([
        FunctionSpec(
            TRANSFER,
            storage_ops=(
                ("read", StorageVariableSpec(0, "mapping", depth=1)),
                ("write", StorageVariableSpec(1, "value")),
            ),
        ),
    ])
    assert main(["profile", contract.bytecode.hex()]) == 0
    out = capsys.readouterr().out
    assert "0xa9059cbb(address,uint256)" in out
    assert "mapping(address => uint256)" in out
    assert "lint:" in out


def test_profile_json_validates_and_is_deterministic(token_hex, capsys):
    import json
    import os

    from repro.analysis.schema import validate

    assert main(["profile", "--json", token_hex]) == 0
    first = capsys.readouterr().out
    assert main(["profile", "--json", token_hex]) == 0
    assert capsys.readouterr().out == first

    schema_path = os.path.join(
        os.path.dirname(__file__), "..", "docs", "profile.schema.json"
    )
    with open(schema_path, encoding="utf-8") as handle:
        schema = json.load(handle)
    document = json.loads(first)
    assert validate(document, schema) == []
    assert "0xa9059cbb" in {s["selector"] for s in document["signatures"]}


def test_profile_static_only_skips_recovery(token_hex, capsys):
    import json

    assert main(["profile", "--json", "--static-only", token_hex]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["signatures"] == []
    assert document["dispatcher"]["selectors"]


def test_inspect(token_hex, capsys):
    assert main(["inspect", token_hex]) == 0
    out = capsys.readouterr().out
    assert "0xa9059cbb ->" in out
    assert "closed region" in out


def test_inspect_json(token_hex, capsys):
    import json

    assert main(["inspect", "--json", token_hex]) == 0
    data = json.loads(capsys.readouterr().out)
    selectors = {f["selector"] for f in data["functions"]}
    assert "0xa9059cbb" in selectors
    assert data["incomplete"] is False
    assert all(f["region_closed"] for f in data["functions"])


def test_inspect_disasm_annotations(token_hex, capsys):
    assert main(["inspect", "--disasm", token_hex]) == 0
    out = capsys.readouterr().out
    assert "; dispatcher" in out
    assert "; entry of 0xa9059cbb" in out


def test_batch_metrics_and_trace_out(token_hex, tmp_path, capsys):
    corpus = tmp_path / "corpus.txt"
    corpus.write_text(f"{token_hex}\n")
    metrics_path = tmp_path / "m.json"
    trace_path = tmp_path / "t.jsonl"
    args = [
        "batch", str(corpus), "--workers", "0",
        "--cache-dir", str(tmp_path / "cache"),
        "--metrics-out", str(metrics_path),
        "--trace-out", str(trace_path),
    ]
    assert main(args) == 0  # cold
    assert main(args) == 0  # warm: cache hits land in the same document
    captured = capsys.readouterr()
    assert f"metrics: {metrics_path}" in captured.err

    import json

    doc = json.loads(metrics_path.read_text())
    counters = doc["counters"]
    assert counters["tase.paths"] > 0
    assert counters["cache.misses"] == 1
    assert counters["cache.hits"] == 1
    assert any(k.startswith("rules.fired{rule=") for k in counters)
    # Pruning is the batch default, so suppressed forks are nonzero.
    assert counters["tase.forks_suppressed"] > 0

    from repro.obs.trace import read_trace

    records = read_trace(str(trace_path))
    batch_span = next(
        r for r in records
        if r["type"] == "span_start" and r["name"] == "batch"
    )
    events = [r for r in records if r["type"] == "event"]
    assert events and all(r["name"] == "contract" for r in events)
    assert all(r["parent"] == batch_span["id"] for r in events)
    # The warm rerun rewrote the trace: its sole contract was cached.
    assert events[0]["attrs"].get("cached") is True


def test_batch_no_prune_flag(token_hex, tmp_path, capsys):
    corpus = tmp_path / "corpus.txt"
    corpus.write_text(f"{token_hex}\n")
    metrics_path = tmp_path / "m.json"
    args = [
        "batch", str(corpus), "--workers", "0", "--no-prune",
        "--metrics-out", str(metrics_path),
    ]
    assert main(args) == 0
    capsys.readouterr()

    import json

    counters = json.loads(metrics_path.read_text())["counters"]
    assert counters["tase.forks_suppressed"] == 0


def test_stats_renders_metrics_document(token_hex, tmp_path, capsys):
    corpus = tmp_path / "corpus.txt"
    corpus.write_text(f"{token_hex}\n")
    metrics_path = tmp_path / "m.json"
    trace_path = tmp_path / "t.jsonl"
    assert main([
        "batch", str(corpus), "--workers", "0",
        "--metrics-out", str(metrics_path),
        "--trace-out", str(trace_path),
    ]) == 0
    capsys.readouterr()
    assert main(["stats", str(metrics_path), "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "engine" in out
    assert "rules (fired" in out
    assert "slowest contracts" in out
    assert main(["stats", str(metrics_path), "--prometheus"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE tase_paths counter" in out
    assert "tase_paths " in out


def test_stats_rejects_missing_document(tmp_path):
    with pytest.raises(SystemExit):
        main(["stats", str(tmp_path / "absent.json")])


def test_abi_command_emits_standard_abi_json(capsys):
    import json

    from repro.compiler.contract import FunctionSpec

    contract = compile_contract([
        FunctionSpec(FunctionSignature.parse("get()"), mutability="view",
                     returns=("uint256",)),
        FunctionSpec(FunctionSignature.parse("pay(uint256)"),
                     mutability="payable"),
    ])
    assert main(["abi", contract.bytecode.hex()]) == 0
    compact = capsys.readouterr().out
    assert compact.count("\n") == 1  # one compact line
    entries = json.loads(compact)
    assert {e["stateMutability"] for e in entries} == {"view", "payable"}

    assert main(["abi", "--pretty", contract.bytecode.hex()]) == 0
    pretty = capsys.readouterr().out
    assert json.loads(pretty) == entries
    assert pretty.count("\n") > 1


def test_passes_command_lists_pipeline(capsys):
    import json

    assert main(["passes"]) == 0
    out = capsys.readouterr().out
    assert "cfg v1" in out
    assert "mutability v1 <- jumps, dispatcher, reach" in out

    assert main(["passes", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    names = [entry["name"] for entry in doc]
    assert names == [
        "cfg", "jumps", "stack", "dispatcher", "storage",
        "reach", "mutability", "returns", "lint",
    ]
    assert all(entry["version"] >= 1 for entry in doc)


def _free_port():
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _poll_http(url, deadline=5.0):
    import time
    import urllib.error
    import urllib.request

    end = time.monotonic() + deadline
    while True:
        try:
            with urllib.request.urlopen(url, timeout=1) as response:
                return response.status, response.read()
        except (urllib.error.URLError, ConnectionError):
            if time.monotonic() >= end:
                raise
            time.sleep(0.05)


def test_batch_observability_outputs_feed_report(token_hex, tmp_path, capsys):
    import json

    corpus = tmp_path / "corpus.txt"
    corpus.write_text(f"{token_hex}\n")
    metrics_path = tmp_path / "m.json"
    ledger_path = tmp_path / "ledger.jsonl"
    slowlog_path = tmp_path / "slow.json"
    assert main([
        "batch", str(corpus), "--workers", "0",
        "--metrics-out", str(metrics_path),
        "--ledger-out", str(ledger_path),
        "--slowlog-out", str(slowlog_path), "--slowlog-k", "3",
        "--profile-hotspots", "count",
    ]) == 0
    captured = capsys.readouterr()
    assert f"ledger: {ledger_path} (1 records)" in captured.err
    assert f"slowlog: {slowlog_path}" in captured.err
    assert "hot superblocks" in captured.err

    with open(ledger_path, encoding="utf-8") as handle:
        (record,) = [json.loads(line) for line in handle if line.strip()]
    assert record["tier"] == "cold" and record["hotspots"]

    assert main([
        "report", "--metrics", str(metrics_path),
        "--ledger", str(ledger_path), "--slowlog", str(slowlog_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "phase time attribution" in out
    assert "run ledger: 1 records" in out
    assert "hot superblocks" in out
    assert "slow exemplars" in out

    assert main(["report", "--ledger", str(ledger_path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ledger"]["records"] == 1


def test_report_requires_a_source():
    with pytest.raises(SystemExit):
        main(["report"])


def test_report_check_perf_sets_the_exit_code(tmp_path, capsys):
    import json

    history = tmp_path / "history"
    history.mkdir()
    (history / "0001.json").write_text(json.dumps({
        "sequence": 1, "calibration": 0.0,
        "bench": {"sharded_memo": {"speedup": 3.0}},
    }))
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({"sharded_memo": {"speedup": 3.1}}))
    args = ["report", "--check-perf", "--bench", str(bench),
            "--history", str(history)]
    assert main(args) == 0
    assert "perf history: OK" in capsys.readouterr().out
    bench.write_text(json.dumps({"sharded_memo": {"speedup": 1.0}}))
    assert main(args) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_serve_metrics_requires_a_source():
    with pytest.raises(SystemExit):
        main(["serve-metrics"])


def test_serve_metrics_command_serves_saved_documents(
    token_hex, tmp_path, capsys
):
    import threading

    corpus = tmp_path / "corpus.txt"
    corpus.write_text(f"{token_hex}\n")
    metrics_path = tmp_path / "m.json"
    ledger_path = tmp_path / "ledger.jsonl"
    assert main([
        "batch", str(corpus), "--workers", "0",
        "--metrics-out", str(metrics_path),
        "--ledger-out", str(ledger_path),
    ]) == 0
    capsys.readouterr()
    port = _free_port()
    thread = threading.Thread(target=main, args=([
        "serve-metrics", "--metrics", str(metrics_path),
        "--ledger", str(ledger_path), "--port", str(port), "--hold", "3",
    ],))
    thread.start()
    try:
        status, body = _poll_http(f"http://127.0.0.1:{port}/healthz")
        assert (status, body) == (200, b"ok\n")
        status, body = _poll_http(f"http://127.0.0.1:{port}/metrics")
        assert status == 200 and b"tase_paths" in body
        from repro.obs import validate_exposition

        assert validate_exposition(body.decode("utf-8")) == []
        status, body = _poll_http(f"http://127.0.0.1:{port}/ledger/summary")
        import json

        assert json.loads(body)["records"] == 1
    finally:
        thread.join()


def test_batch_serve_metrics_holds_a_live_endpoint(token_hex, tmp_path):
    import threading

    corpus = tmp_path / "corpus.txt"
    corpus.write_text(f"{token_hex}\n")
    port = _free_port()
    thread = threading.Thread(target=main, args=([
        "batch", str(corpus), "--workers", "0",
        "--serve-metrics", str(port), "--serve-hold", "3",
    ],))
    thread.start()
    try:
        # The endpoint stays up through --serve-hold after the batch, so
        # the scrape observes the completed run's counters and ledger.
        status, body = _poll_http(f"http://127.0.0.1:{port}/metrics")
        assert status == 200
        deadline = 3.0
        import json
        import time

        end = time.monotonic() + deadline
        while b"recover_calls" not in body and time.monotonic() < end:
            time.sleep(0.05)
            _status, body = _poll_http(f"http://127.0.0.1:{port}/metrics")
        assert b"recover_calls 1" in body
        _status, summary = _poll_http(
            f"http://127.0.0.1:{port}/ledger/summary"
        )
        assert json.loads(summary)["records"] == 1
    finally:
        thread.join()


def test_batch_profiles_out_writes_one_document_per_contract(
    token_hex, tmp_path, capsys
):
    import json
    import os

    corpus = tmp_path / "corpus.txt"
    corpus.write_text(f"{token_hex}\n{token_hex}\n")
    out_dir = tmp_path / "profiles"
    assert main([
        "batch", str(corpus), "--workers", "0",
        "--profiles-out", str(out_dir),
    ]) == 0
    captured = capsys.readouterr()
    assert "profiles: wrote 2" in captured.err
    assert "contract 0: " in captured.out
    names = sorted(os.listdir(out_dir))
    assert len(names) == 2
    assert names[0].startswith("0000_") and names[1].startswith("0001_")
    docs = [json.loads((out_dir / name).read_text()) for name in names]
    # Identical bytecode -> byte-identical profile documents.
    assert docs[0] == docs[1]
    assert docs[0]["profile_schema"] == 2
    assert "0xa9059cbb" in docs[0]["abi"]
