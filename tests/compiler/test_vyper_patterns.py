"""Vyper codegen: §2.3.2's comparison-based patterns, executable."""

import pytest

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.abi.types import BoundedBytesType, BoundedStringType, DecimalType
from repro.compiler import CodegenOptions, compile_contract
from repro.evm.disasm import disassemble
from repro.evm.interpreter import Interpreter

VY = CodegenOptions(language=Language.VYPER)


def _compile(text_or_sig, vis=Visibility.PUBLIC):
    if isinstance(text_or_sig, str):
        sig = FunctionSignature.parse(text_or_sig, vis, Language.VYPER)
    else:
        sig = text_or_sig
    return sig, compile_contract([sig], VY)


def test_address_clamp_is_lt_comparison():
    _, contract = _compile("f(address)")
    ops = [i.op.name for i in disassemble(contract.bytecode)]
    assert "LT" in ops
    assert "AND" not in ops[8:]  # no mask after the dispatcher


def test_int128_clamp_uses_signed_comparisons():
    _, contract = _compile("f(int128)")
    ops = [i.op.name for i in disassemble(contract.bytecode)]
    assert "SLT" in ops and "SGT" in ops
    assert "SIGNEXTEND" not in ops


def test_decimal_clamp_bounds_differ_from_int128():
    from repro.sigrec.rules import VYPER_DECIMAL_HI, VYPER_INT128_HI

    _, dec = _compile("f(fixed168x10)")
    _, i128 = _compile("f(int128)")
    dec_consts = {i.operand for i in disassemble(dec.bytecode) if i.operand}
    i128_consts = {i.operand for i in disassemble(i128.bytecode) if i.operand}
    assert VYPER_DECIMAL_HI in dec_consts
    assert VYPER_INT128_HI in i128_consts
    assert VYPER_DECIMAL_HI not in i128_consts


@pytest.mark.parametrize(
    "text,good,bad",
    [
        ("f(bool)", [True], (2).to_bytes(32, "big")),
        ("f(address)", [123], (1 << 200).to_bytes(32, "big")),
        ("f(int128)", [-5], (1 << 200).to_bytes(32, "big")),
    ],
)
def test_clamps_enforce_ranges_at_runtime(text, good, bad):
    sig, contract = _compile(text)
    interp = Interpreter(contract.bytecode)
    ok = interp.call(encode_call(sig.selector, list(sig.params), good))
    assert ok.success
    out_of_range = interp.call(sig.selector + bad)
    assert not out_of_range.success


def test_fixed_list_items_are_clamped():
    sig, contract = _compile("f(bool[3])")
    interp = Interpreter(contract.bytecode)
    good = encode_call(sig.selector, list(sig.params), [[True, False, True]])
    assert interp.call(good).success
    # A 2 in the list violates the per-item clamp (when that item is the
    # one the body reads, which the env-derived index may or may not
    # select — so only assert the good case strictly).


def test_bounded_bytes_copies_num_plus_payload():
    sig = FunctionSignature("f", (BoundedBytesType(20),), Visibility.PUBLIC,
                            Language.VYPER)
    _, contract = _compile(sig)
    ops = [i.op.name for i in disassemble(contract.bytecode)]
    assert "CALLDATACOPY" in ops
    # No rounding mask: the copy length is a compile-time constant.
    interp = Interpreter(contract.bytecode)
    good = encode_call(sig.selector, [BoundedBytesType(20)], [b"hello"])
    assert interp.call(good).success


def test_bounded_string_reads_length_only():
    sig = FunctionSignature("f", (BoundedStringType(10),), Visibility.PUBLIC,
                            Language.VYPER)
    _, contract = _compile(sig)
    ops = [i.op.name for i in disassemble(contract.bytecode)]
    assert "BYTE" not in ops  # strings expose no byte access


def test_public_and_external_identical_bytecode():
    pub = compile_contract(
        [FunctionSignature.parse("f(address,bool)", Visibility.PUBLIC,
                                 Language.VYPER)], VY
    )
    ext = compile_contract(
        [FunctionSignature.parse("f(address,bool)", Visibility.EXTERNAL,
                                 Language.VYPER)], VY
    )
    # Vyper generates the same bytecode for both modes (§2.3.2).
    assert pub.bytecode == ext.bytecode


def test_vyper_struct_flattens():
    sig = FunctionSignature.parse("f((uint256,bool))", Visibility.PUBLIC,
                                  Language.VYPER)
    flat = FunctionSignature.parse("g(uint256,bool)", Visibility.PUBLIC,
                                   Language.VYPER)
    struct_contract = compile_contract([sig], VY)
    flat_contract = compile_contract([flat], VY)
    # Identical body layouts: only the dispatcher's selector differs.
    struct_ops = [i.op.name for i in disassemble(struct_contract.bytecode)]
    flat_ops = [i.op.name for i in disassemble(flat_contract.bytecode)]
    assert struct_ops == flat_ops
