"""Version catalogs (the stand-ins for Fig. 15/16's compiler lists)."""

from repro.abi.signature import Language
from repro.compiler.options import (
    CodegenOptions,
    DispatcherStyle,
    solidity_versions,
    vyper_versions,
)


def test_solidity_catalog_size_matches_paper_scale():
    catalog = solidity_versions()
    # The paper evaluates 155 Solidity compiler versions (counting
    # optimized and unoptimized separately).
    assert len(catalog) >= 150
    assert all(v.language is Language.SOLIDITY for v in catalog)


def test_vyper_catalog():
    catalog = vyper_versions()
    assert len(catalog) >= 17
    assert all(v.language is Language.VYPER for v in catalog)


def test_optimized_and_unoptimized_are_distinct_versions():
    catalog = solidity_versions()
    keys = [v.version_key for v in catalog]
    assert len(keys) == len(set(keys))
    assert any(k.endswith("+opt") for k in keys)


def test_old_versions_use_div_dispatch():
    catalog = solidity_versions()
    old = [v for v in catalog if v.version.startswith("0.4.")]
    new = [v for v in catalog if v.version.startswith("0.8.")]
    assert all(v.dispatcher is not DispatcherStyle.SHR for v in old)
    assert all(v.dispatcher is DispatcherStyle.SHR for v in new)


def test_options_frozen_and_defaults():
    opt = CodegenOptions()
    assert opt.memory_base == 0x80
    assert opt.calldatasize_check
    try:
        opt.optimize = True  # type: ignore[misc]
        raised = False
    except AttributeError:
        raised = True
    assert raised
