"""Every compiler output must pass the static bytecode verifier.

This is the compiler test hook the analysis layer provides: a codegen
bug that corrupts stack discipline or emits a bad jump fails here with
a pc-level finding, long before it surfaces as a wrong recovered type.
"""

import pytest

from repro.abi.signature import FunctionSignature
from repro.analysis import analyze
from repro.compiler import compile_contract
from repro.compiler.contract import CodegenOptions, DispatcherStyle, Language

SIG_SETS = [
    [FunctionSignature.parse("f()")],
    [FunctionSignature.parse("f(uint256,address,bool)")],
    [FunctionSignature.parse("f(bytes,string)"),
     FunctionSignature.parse("g(uint8[4])")],
    [FunctionSignature.parse(f"fn{i}(uint{8 * (i + 1)})") for i in range(6)],
]

SOLIDITY_VARIANTS = [
    CodegenOptions(dispatcher=style, optimize=optimize, obfuscate=obfuscate)
    for style in DispatcherStyle
    for optimize in (False, True)
    for obfuscate in (False, True)
]


@pytest.mark.parametrize("options", SOLIDITY_VARIANTS, ids=str)
@pytest.mark.parametrize("sigs", SIG_SETS, ids=["empty", "scalar", "dyn", "many"])
def test_solidity_output_passes_verifier(options, sigs):
    contract = compile_contract(sigs, options)
    analysis = analyze(contract.bytecode)
    errors = [f.render() for f in analysis.findings if f.severity == "error"]
    assert not errors, errors
    assert not analysis.cfg.incomplete


@pytest.mark.parametrize("sigs", SIG_SETS[:3], ids=["empty", "scalar", "dyn"])
def test_vyper_output_passes_verifier(sigs):
    contract = compile_contract(
        sigs, CodegenOptions(language=Language.VYPER, version="0.2.8")
    )
    analysis = analyze(contract.bytecode)
    errors = [f.render() for f in analysis.findings if f.severity == "error"]
    assert not errors, errors
