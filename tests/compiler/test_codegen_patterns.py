"""The emitted bytecode exhibits the paper's §2 accessing patterns.

These tests assert on *instruction sequences*, not recovery results:
the codegen is the evaluation substrate, so its output must contain the
exact structural markers SigRec's rules key on.
"""

import pytest

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.compiler import CodegenOptions, compile_contract
from repro.compiler.solidity import flatten_static_tuples, head_positions
from repro.evm.disasm import disassemble


def _ops(text, vis=Visibility.PUBLIC, language=Language.SOLIDITY, **opt):
    sig = FunctionSignature.parse(text, vis, language)
    contract = compile_contract([sig], CodegenOptions(language=language, **opt))
    return [i.op.name for i in disassemble(contract.bytecode)], contract


def test_uint_mask_is_and():
    ops, _ = _ops("f(uint8)")
    assert "AND" in ops
    assert "SIGNEXTEND" not in ops


def test_int_mask_is_signextend():
    ops, _ = _ops("f(int8)")
    assert "SIGNEXTEND" in ops


def test_bool_uses_double_iszero():
    ops, _ = _ops("f(bool)")
    pairs = [
        i for i in range(len(ops) - 1)
        if ops[i] == "ISZERO" and ops[i + 1] == "ISZERO"
    ]
    assert pairs, "two consecutive ISZEROs expected for bool masking"


def test_bytes32_uses_byte():
    ops, _ = _ops("f(bytes32)")
    assert "BYTE" in ops


def test_int256_uses_signed_op():
    ops, _ = _ops("f(int256)")
    assert "SDIV" in ops


def test_public_array_uses_calldatacopy():
    ops, _ = _ops("f(uint256[3])", Visibility.PUBLIC)
    assert "CALLDATACOPY" in ops
    assert "MLOAD" in ops


def test_external_array_uses_calldataload_and_bound_checks():
    ops, _ = _ops("f(uint256[3])", Visibility.EXTERNAL)
    assert "CALLDATACOPY" not in ops
    assert "LT" in ops  # the bound check


def test_optimized_constant_index_has_no_bound_check():
    from repro.compiler.contract import FunctionSpec

    sig = FunctionSignature.parse("f(uint256[3])", Visibility.EXTERNAL)
    contract = compile_contract(
        [FunctionSpec(sig, const_index=True)], CodegenOptions(optimize=True)
    )
    ops = [i.op.name for i in disassemble(contract.bytecode)]
    # Only the dispatcher's calldatasize LT remains.
    assert ops.count("LT") <= 1


def test_dynamic_array_reads_offset_then_num():
    ops, _ = _ops("f(uint256[])", Visibility.PUBLIC)
    # Two CALLDATALOADs before any CALLDATACOPY (offset + num), R1.
    copy_at = ops.index("CALLDATACOPY")
    loads_before = [o for o in ops[:copy_at] if o == "CALLDATALOAD"]
    assert len(loads_before) >= 3  # fid read + offset + num


def test_vyper_uses_comparisons_not_masks():
    ops, _ = _ops("f(address)", Visibility.PUBLIC, Language.VYPER)
    assert "LT" in ops
    assert "AND" not in ops[6:]  # no masking after the dispatcher


def test_solidity_address_uses_mask():
    ops, _ = _ops("f(address)", Visibility.PUBLIC)
    assert "AND" in ops


def test_dispatcher_div_vs_shr():
    from repro.compiler.options import DispatcherStyle

    ops_div, _ = _ops("f(uint8)", dispatcher=DispatcherStyle.DIV)
    ops_shr, _ = _ops("f(uint8)", dispatcher=DispatcherStyle.SHR)
    assert "DIV" in ops_div and "SHR" not in ops_div
    assert "SHR" in ops_shr


def test_flatten_static_tuples():
    sig = FunctionSignature.parse("f((uint256,bool),bytes)")
    flat = flatten_static_tuples(sig.params)
    assert [t.canonical() for t in flat] == ["uint256", "bool", "bytes"]


def test_head_positions():
    sig = FunctionSignature.parse("f(uint256,uint8[2],bytes)")
    positions = head_positions(list(sig.params))
    assert positions == [4, 36, 100]  # static array occupies two slots


def test_nested_struct_flattens_recursively():
    sig = FunctionSignature.parse("f(((uint8,bool),uint256))")
    flat = flatten_static_tuples(sig.params)
    assert [t.canonical() for t in flat] == ["uint8", "bool", "uint256"]
