"""Contract assembly: dispatcher, bodies, executability."""

import random

import pytest

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.compiler import CodegenOptions, compile_contract
from repro.compiler.contract import ContractBuildError, FunctionSpec
from repro.compiler.options import DispatcherStyle
from repro.evm.interpreter import Interpreter


def test_duplicate_selectors_rejected():
    sig = FunctionSignature.parse("f(uint256)")
    with pytest.raises(ContractBuildError):
        compile_contract([sig, sig])


def test_selector_map():
    sigs = [FunctionSignature.parse("a()"), FunctionSignature.parse("b(uint8)")]
    contract = compile_contract(sigs)
    assert set(contract.selector_map) == {
        int.from_bytes(s.selector, "big") for s in sigs
    }


@pytest.mark.parametrize("style", list(DispatcherStyle))
def test_dispatch_executes_correct_body(style):
    sigs = [
        FunctionSignature.parse("a(uint256)", Visibility.EXTERNAL),
        FunctionSignature.parse("b(bool)", Visibility.EXTERNAL),
    ]
    contract = compile_contract(sigs, CodegenOptions(dispatcher=style))
    interp = Interpreter(contract.bytecode)
    result = interp.call(encode_call(sigs[0].selector, list(sigs[0].params), [7]))
    assert result.success
    result = interp.call(encode_call(sigs[1].selector, list(sigs[1].params), [True]))
    assert result.success


def test_unknown_selector_falls_back_to_stop():
    contract = compile_contract([FunctionSignature.parse("a(uint256)")])
    result = Interpreter(contract.bytecode).call(b"\xde\xad\xbe\xef" + b"\x00" * 32)
    assert result.success  # fallback STOP


def test_short_calldata_hits_fallback():
    contract = compile_contract([FunctionSignature.parse("a(uint256)")])
    result = Interpreter(contract.bytecode).call(b"\x01\x02")
    assert result.success


def test_without_calldatasize_check():
    contract = compile_contract(
        [FunctionSignature.parse("a(uint256)")],
        CodegenOptions(calldatasize_check=False),
    )
    result = Interpreter(contract.bytecode).call(b"")
    assert result.success


@pytest.mark.parametrize(
    "text,values",
    [
        ("f(uint8,int16,bool)", [200, -5, True]),
        ("f(address,bytes4)", [0xABC, b"\x01\x02\x03\x04"]),
        ("f(uint256[2][2])", [[[1, 2], [3, 4]]]),
        ("f(uint256[])", [[1, 2, 3]]),
        ("f(bytes)", [b"hello"]),
        ("f(string)", ["hi there"]),
        ("f(uint8[][])", [[[1], [2, 3]]]),
        ("f((uint256,uint256[]))", [(5, [6, 7])]),
    ],
)
@pytest.mark.parametrize("vis", [Visibility.PUBLIC, Visibility.EXTERNAL])
def test_bodies_execute_on_wellformed_calldata(text, values, vis):
    """Differential check: generated bodies actually run in the EVM."""
    sig = FunctionSignature.parse(text, vis)
    contract = compile_contract([sig])
    calldata = encode_call(sig.selector, list(sig.params), values)
    result = Interpreter(contract.bytecode).call(calldata)
    # Bound-checked bodies may legitimately revert when the random env
    # index exceeds a short array; anything else must succeed.
    assert result.success or result.error == "revert"


def test_vyper_clamp_reverts_out_of_range():
    sig = FunctionSignature.parse("f(bool)", Visibility.PUBLIC, Language.VYPER)
    contract = compile_contract([sig], CodegenOptions(language=Language.VYPER))
    # bool encoded as 2: out of Vyper's clamp range -> revert.
    bad = sig.selector + (2).to_bytes(32, "big")
    result = Interpreter(contract.bytecode).call(bad)
    assert not result.success
    good = sig.selector + (1).to_bytes(32, "big")
    assert Interpreter(contract.bytecode).call(good).success


def test_function_spec_body_override():
    # Declared parameterless, body reads two words (quirk case 1).
    sig = FunctionSignature.parse("start()")
    from repro.abi.types import UIntType

    spec = FunctionSpec(sig, body_params=(UIntType(256), UIntType(256)))
    contract = compile_contract([spec])
    assert contract.quirks[0] == "case"
    result = Interpreter(contract.bytecode).call(sig.selector + b"\x00" * 64)
    assert result.success


def test_quirk_flags_recorded():
    sig = FunctionSignature.parse("g(uint256[3])", Visibility.EXTERNAL)
    contract = compile_contract([FunctionSpec(sig, const_index=True)])
    assert contract.quirks == ("case",)
    plain = compile_contract([sig])
    assert plain.quirks == ("",)
