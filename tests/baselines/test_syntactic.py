"""The syntactic pattern matcher: capable on idioms, blind to semantics."""

from repro.abi.signature import FunctionSignature, Visibility
from repro.baselines.syntactic import SyntacticMatcher
from repro.compiler import CodegenOptions, compile_contract
from repro.corpus.datasets import build_obfuscated_corpus, build_open_source_corpus
from repro.corpus.evaluate import evaluate_baseline


def _recover(text, vis=Visibility.EXTERNAL, **opt):
    sig = FunctionSignature.parse(text, vis)
    contract = compile_contract([sig], CodegenOptions(**opt))
    out = SyntacticMatcher().recover(contract.bytecode)
    return out.functions.get(int.from_bytes(sig.selector, "big"))


def test_matches_simple_masked_types():
    assert _recover("f(uint8)") == "uint8"
    assert _recover("f(address)") == "address"
    assert _recover("f(int16)") == "int16"
    assert _recover("f(uint256)") == "uint256"


def test_matches_multiple_basic_params():
    assert _recover("f(uint8,address)") == "uint8,address"


def test_blind_to_composites():
    # Dynamic arrays need the offset/num semantics: the matcher sees
    # the head load and calls it uint256.
    got = _recover("f(uint256[])")
    assert got != "uint256[]"


def test_blind_to_obfuscation():
    got = _recover("f(uint8)", obfuscate=True)
    assert got != "uint8"  # shift-pair mask defeats the literal window


def test_collapses_on_obfuscated_corpus():
    plain = build_open_source_corpus(n_contracts=15, seed=9, quirk_rate=0.0)
    obfuscated = build_obfuscated_corpus(n_contracts=15, seed=9)
    tool = SyntacticMatcher()
    plain_acc = evaluate_baseline(plain, tool).accuracy
    obf_acc = evaluate_baseline(obfuscated, tool).accuracy
    assert plain_acc > obf_acc + 0.1


def test_every_selector_gets_an_answer():
    sigs = [
        FunctionSignature.parse("a(uint8)"),
        FunctionSignature.parse("b(bool,bool)"),
        FunctionSignature.parse("c()"),
    ]
    contract = compile_contract(sigs)
    out = SyntacticMatcher().recover(contract.bytecode)
    assert len(out.functions) == 3
