"""EFSD persistence: the 4byte-style JSON interchange format."""

import json

import pytest

from repro.baselines.efsd import SignatureDatabase


def _sample_db():
    db = SignatureDatabase()
    db.add_text("transfer(address,uint256)")
    db.add_text("approve(address,uint256)")
    db.add_text("setName(string)")
    return db


def test_save_load_roundtrip(tmp_path):
    db = _sample_db()
    path = tmp_path / "efsd.json"
    db.save(str(path))
    loaded = SignatureDatabase.load(str(path))
    assert len(loaded) == len(db)
    assert loaded.entries() == db.entries()


def test_saved_format_is_4byte_style(tmp_path):
    db = _sample_db()
    path = tmp_path / "efsd.json"
    db.save(str(path))
    payload = json.loads(path.read_text())
    assert payload["0xa9059cbb"] == ["transfer(address,uint256)"]
    assert all(key.startswith("0x") and len(key) == 10 for key in payload)


def test_load_rejects_corrupt_entries(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"0xdeadbeef": ["transfer(address,uint256)"]}))
    with pytest.raises(ValueError):
        SignatureDatabase.load(str(path))


def test_load_hand_authored(tmp_path):
    path = tmp_path / "hand.json"
    path.write_text(
        json.dumps({"0x70a08231": ["balanceOf(address)"]})
    )
    db = SignatureDatabase.load(str(path))
    assert db.lookup_params(0x70A08231) == "address"


def test_entries_returns_copy():
    db = _sample_db()
    entries = db.entries()
    entries.clear()
    assert len(db) == 3
