"""Baseline tools: database semantics and error modes."""

from repro.abi.signature import FunctionSignature
from repro.baselines import (
    DatabaseTool,
    EveemLike,
    GigahorseLike,
    SignatureDatabase,
    build_efsd,
)
from repro.compiler import compile_contract
from repro.corpus.datasets import build_open_source_corpus, build_synthesized_dataset
from repro.corpus.evaluate import evaluate_baseline, evaluate_corpus


def test_database_add_and_lookup():
    db = SignatureDatabase()
    sig = FunctionSignature.parse("transfer(address,uint256)")
    db.add(sig)
    selector = int.from_bytes(sig.selector, "big")
    assert selector in db
    assert db.lookup(selector) == "transfer(address,uint256)"
    assert db.lookup_params(selector) == "address,uint256"
    assert db.lookup(0x12345678) is None


def test_database_dedupes():
    db = SignatureDatabase()
    db.add_text("f(uint256)")
    db.add_text("f(uint256)")
    assert len(db) == 1


def test_build_efsd_coverage():
    corpus = build_open_source_corpus(n_contracts=20, seed=1, quirk_rate=0.0)
    full = build_efsd([corpus], coverage=1.0)
    half = build_efsd([corpus], coverage=0.5)
    empty = build_efsd([corpus], coverage=0.0)
    assert len(empty) == 0
    assert 0 < len(half) < len(full)


def test_database_tool_answers_only_known():
    corpus = build_open_source_corpus(n_contracts=10, seed=2, quirk_rate=0.0)
    db = build_efsd([corpus], coverage=1.0)
    tool = DatabaseTool("OSD", db)
    report = evaluate_baseline(corpus, tool)
    assert report.accuracy > 0.9  # full coverage: near-perfect

    fresh = build_synthesized_dataset(30, seed=9)
    fresh_report = evaluate_baseline(fresh, tool)
    assert fresh_report.accuracy == 0.0  # nothing recorded
    assert fresh_report.no_answer == fresh_report.total


def test_eveem_beats_pure_database_on_misses():
    corpus = build_open_source_corpus(n_contracts=25, seed=3, quirk_rate=0.0)
    db = build_efsd([corpus], coverage=0.4)
    osd = evaluate_baseline(corpus, DatabaseTool("OSD", db))
    eveem = evaluate_baseline(corpus, EveemLike(db))
    assert eveem.accuracy >= osd.accuracy
    assert eveem.no_answer < osd.no_answer


def test_gigahorse_aborts_sometimes():
    corpus = build_open_source_corpus(n_contracts=60, seed=4, quirk_rate=0.0)
    db = build_efsd([corpus], coverage=0.5)
    tool = GigahorseLike(db, abort_rate=0.2, seed=5)
    report = evaluate_baseline(corpus, tool)
    assert report.aborted_contracts > 0
    assert report.abort_ratio > 0


def test_gigahorse_produces_catalogued_error_types():
    corpus = build_open_source_corpus(n_contracts=40, seed=5, quirk_rate=0.0)
    db = build_efsd([corpus], coverage=0.0)  # force the heuristic path
    tool = GigahorseLike(db, abort_rate=0.0, seed=6)
    report = evaluate_baseline(corpus, tool)
    # Both error classes of §5.6 appear: wrong counts and wrong types.
    assert report.wrong_param_count() > 0
    assert report.wrong_types_only() > 0
    # Nonexistent widths like uint2304 occur.
    all_answers = " ".join(o.recovered or "" for o in report.outcomes)
    assert "uint2304" in all_answers or "uint3228" in all_answers or "uint51" in all_answers


def test_sigrec_beats_all_baselines():
    corpus = build_open_source_corpus(n_contracts=25, seed=6, quirk_rate=0.0)
    db = build_efsd([corpus], coverage=0.5)
    sig_acc = evaluate_corpus(corpus).accuracy
    for tool in (DatabaseTool("OSD", db), EveemLike(db), GigahorseLike(db)):
        base_acc = evaluate_baseline(corpus, tool).accuracy
        assert sig_acc > base_acc + 0.2, tool.name
