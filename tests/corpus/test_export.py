"""Corpus export/import round-trip."""

import json
import os

from repro.corpus.datasets import build_open_source_corpus, build_vyper_corpus
from repro.corpus.evaluate import evaluate_corpus
from repro.corpus.export import export_corpus, load_corpus


def test_export_writes_manifest_and_hex(tmp_path):
    corpus = build_open_source_corpus(n_contracts=4, seed=1)
    manifest_path = export_corpus(corpus, str(tmp_path))
    assert os.path.exists(manifest_path)
    manifest = json.loads(open(manifest_path).read())
    assert len(manifest["contracts"]) == 4
    first = manifest["contracts"][0]
    hex_text = open(tmp_path / first["file"]).read().strip()
    assert bytes.fromhex(hex_text) == corpus.cases[0].contract.bytecode


def test_roundtrip_preserves_everything_evaluation_needs(tmp_path):
    corpus = build_open_source_corpus(n_contracts=6, seed=2, quirk_rate=0.3)
    export_corpus(corpus, str(tmp_path))
    loaded = load_corpus(str(tmp_path))
    assert len(loaded) == len(corpus)
    for original, reloaded in zip(corpus.cases, loaded.cases):
        assert reloaded.contract.bytecode == original.contract.bytecode
        assert [s.canonical() for s in reloaded.declared] == [
            s.canonical() for s in original.declared
        ]
        assert reloaded.quirks == original.quirks
        assert reloaded.options.version_key == original.options.version_key


def test_loaded_corpus_evaluates_identically(tmp_path):
    corpus = build_open_source_corpus(n_contracts=8, seed=3)
    original = evaluate_corpus(corpus)
    export_corpus(corpus, str(tmp_path))
    reloaded = evaluate_corpus(load_corpus(str(tmp_path)))
    assert reloaded.accuracy == original.accuracy
    assert reloaded.total == original.total


def test_vyper_corpus_roundtrip(tmp_path):
    corpus = build_vyper_corpus(n_contracts=3, seed=4)
    export_corpus(corpus, str(tmp_path))
    loaded = load_corpus(str(tmp_path))
    assert loaded.language.value == "vyper"
    assert all(
        sig.language.value == "vyper" for _, sig, _ in loaded.functions()
    )
