"""Signature generator: determinism, constraints, distributions."""

from repro.abi.signature import Language, Visibility
from repro.abi.types import ArrayType, BoundedBytesType, BoundedStringType, TupleType
from repro.corpus.signatures import SignatureGenerator


def test_deterministic_for_seed():
    a = SignatureGenerator(seed=5).signatures(20)
    b = SignatureGenerator(seed=5).signatures(20)
    assert [s.canonical() for s in a] == [s.canonical() for s in b]


def test_names_unique_and_wellformed():
    gen = SignatureGenerator(seed=1)
    sigs = gen.signatures(200)
    names = [s.name for s in sigs]
    assert len(set(names)) == len(names)
    assert all(len(n) == 5 and n.islower() for n in names)


def test_param_count_bounds():
    gen = SignatureGenerator(seed=2, max_params=5)
    for sig in gen.signatures(100):
        assert 1 <= len(sig.params) <= 5


def test_dimension_bounds():
    gen = SignatureGenerator(seed=3, max_dims=3, max_dim_size=5)
    for _ in range(300):
        arr = gen.array_type()
        dims = arr.dimensions
        assert len(dims) <= 3
        for d in dims:
            assert d is None or 1 <= d <= 5


def test_nested_arrays_are_all_dynamic():
    gen = SignatureGenerator(seed=4)
    for _ in range(50):
        nested = gen.nested_array_type()
        assert nested.is_nested_dynamic
        assert all(d is None for d in nested.dimensions)


def test_struct_always_has_dynamic_component():
    gen = SignatureGenerator(seed=5)
    for _ in range(50):
        struct = gen.struct_type()
        assert isinstance(struct, TupleType)
        assert struct.is_dynamic


def test_vyper_generator_emits_vyper_types():
    gen = SignatureGenerator(seed=6, language=Language.VYPER)
    sigs = gen.signatures(100)
    assert all(s.language is Language.VYPER for s in sigs)
    for sig in sigs:
        for param in sig.params:
            if isinstance(param, ArrayType):
                # Fixed-size lists only: every dimension static.
                assert all(d is not None for d in param.dimensions)
            elif isinstance(param, (BoundedBytesType, BoundedStringType)):
                assert 1 <= param.max_length <= 50


def test_visibility_mix():
    gen = SignatureGenerator(seed=7)
    sigs = gen.signatures(200)
    public = sum(1 for s in sigs if s.visibility is Visibility.PUBLIC)
    assert 40 < public < 160  # roughly half each


def test_weights_respected_when_zero():
    gen = SignatureGenerator(seed=8, struct_weight=0.0, nested_weight=0.0)
    for sig in gen.signatures(150):
        for param in sig.params:
            assert not isinstance(param, TupleType)
            if isinstance(param, ArrayType):
                assert not param.is_nested_dynamic
