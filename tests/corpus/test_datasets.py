"""Corpus builders and the evaluation harness."""

from repro.abi.signature import Language
from repro.corpus.datasets import (
    build_closed_source_corpus,
    build_open_source_corpus,
    build_struct_nested_corpus,
    build_synthesized_dataset,
    build_vyper_corpus,
)
from repro.corpus.evaluate import evaluate_corpus
from repro.sigrec.api import SigRec


def test_open_source_corpus_shape():
    corpus = build_open_source_corpus(n_contracts=10, seed=1)
    assert len(corpus) == 10
    assert corpus.function_count >= 10
    for case in corpus.cases:
        assert case.contract.bytecode
        assert len(case.declared) == len(case.quirks)


def test_corpus_deterministic():
    a = build_open_source_corpus(n_contracts=5, seed=3)
    b = build_open_source_corpus(n_contracts=5, seed=3)
    assert [c.contract.bytecode for c in a.cases] == [
        c.contract.bytecode for c in b.cases
    ]


def test_quirk_rate_zero_means_no_quirks():
    corpus = build_open_source_corpus(n_contracts=10, seed=2, quirk_rate=0.0)
    assert all(q is None for _, _, q in corpus.functions())


def test_quirk_rate_one_means_all_quirks():
    corpus = build_open_source_corpus(n_contracts=5, seed=2, quirk_rate=1.0)
    assert all(q is not None for _, _, q in corpus.functions())


def test_synthesized_dataset_counts():
    corpus = build_synthesized_dataset(n_functions=95, seed=4)
    assert corpus.function_count == 95
    # Dataset 2: 10 functions per contract.
    assert len(corpus) == 10


def test_vyper_corpus_language():
    corpus = build_vyper_corpus(n_contracts=5)
    assert corpus.language is Language.VYPER
    for _, sig, _ in corpus.functions():
        assert sig.language is Language.VYPER


def test_struct_nested_corpus_population():
    corpus = build_struct_nested_corpus(n_contracts=6)
    for _, sig, _ in corpus.functions():
        text = sig.param_list()
        assert "(" in text or "[][" in text or text.endswith("[]")


def test_evaluate_corpus_high_accuracy_without_quirks():
    corpus = build_open_source_corpus(n_contracts=12, seed=5, quirk_rate=0.0)
    report = evaluate_corpus(corpus)
    assert report.total == corpus.function_count
    assert report.accuracy >= 0.95


def test_evaluate_corpus_attributes_quirk_errors():
    corpus = build_open_source_corpus(n_contracts=20, seed=6, quirk_rate=0.5)
    report = evaluate_corpus(corpus)
    errors = report.errors_by_quirk()
    # Some quirks must have produced attributed errors.
    assert any(k.startswith("case") for k in errors)


def test_accuracy_by_version_buckets():
    corpus = build_open_source_corpus(n_contracts=15, seed=7, quirk_rate=0.0)
    report = evaluate_corpus(corpus)
    by_version = report.accuracy_by_version()
    assert by_version
    assert all(0.0 <= acc <= 1.0 for acc in by_version.values())


def test_closed_source_differs_from_open():
    open_corpus = build_open_source_corpus(n_contracts=5, seed=1)
    closed = build_closed_source_corpus(n_contracts=5, seed=2)
    assert [c.contract.bytecode for c in open_corpus.cases] != [
        c.contract.bytecode for c in closed.cases
    ]


def test_shared_tool_accumulates_rules_across_corpora():
    tool = SigRec()
    corpus = build_open_source_corpus(n_contracts=6, seed=8, quirk_rate=0.0)
    evaluate_corpus(corpus, tool)
    assert tool.tracker.total() > 0
