"""The evaluation harness itself: outcome accounting and reports."""

from repro.corpus.evaluate import (
    BaselineReport,
    EvalReport,
    FunctionOutcome,
)


def _outcome(declared, recovered, quirk=None, version="0.5.0"):
    return FunctionOutcome(
        selector=1, declared=declared, recovered=recovered,
        quirk=quirk, version_key=version,
    )


def test_outcome_correctness():
    assert _outcome("uint256", "uint256").correct
    assert not _outcome("uint256", "uint8").correct
    assert not _outcome("uint256", None).correct


def test_eval_report_accuracy():
    report = EvalReport(
        outcomes=[
            _outcome("a", "a"), _outcome("b", "b"), _outcome("c", "x"),
        ]
    )
    assert report.total == 3
    assert report.correct == 2
    assert abs(report.accuracy - 2 / 3) < 1e-9


def test_empty_report():
    assert EvalReport().accuracy == 0.0
    assert BaselineReport("t").accuracy == 0.0
    assert BaselineReport("t").abort_ratio == 0.0


def test_errors_by_quirk_only_counts_errors():
    report = EvalReport(
        outcomes=[
            _outcome("a", "a", quirk="case1"),  # correct despite quirk
            _outcome("b", "x", quirk="case2"),
            _outcome("c", "x", quirk=None),
        ]
    )
    assert report.errors_by_quirk() == {"case2": 1, "other": 1}


def test_accuracy_by_version_buckets():
    report = EvalReport(
        outcomes=[
            _outcome("a", "a", version="0.4.0"),
            _outcome("b", "x", version="0.4.0"),
            _outcome("c", "c", version="0.8.0"),
        ]
    )
    by_version = report.accuracy_by_version()
    assert by_version["0.4.0"] == 0.5
    assert by_version["0.8.0"] == 1.0


def test_baseline_wrong_count_vs_wrong_types():
    report = BaselineReport(
        "t",
        outcomes=[
            _outcome("uint256,bool", "uint256"),  # wrong count
            _outcome("uint256,bool", "uint256,uint8"),  # wrong types
            _outcome("uint256,bool", "uint256,bool"),  # correct
            _outcome("uint256,bool", None),  # no answer
        ],
    )
    assert report.wrong_param_count() == 1
    assert report.wrong_types_only() == 1
    assert report.no_answer == 1
    assert report.correct == 1


def test_evaluate_corpus_batch_path_matches_serial(tmp_path):
    from repro.corpus.datasets import build_open_source_corpus
    from repro.corpus.evaluate import evaluate_corpus

    corpus = build_open_source_corpus(n_contracts=6, seed=31)
    serial = evaluate_corpus(corpus)
    batched = evaluate_corpus(corpus, workers=2, cache_dir=str(tmp_path))

    def essence(report):
        return [
            (o.selector, o.declared, o.recovered, o.quirk, o.version_key)
            for o in report.outcomes
        ]

    assert essence(batched) == essence(serial)
    assert batched.accuracy == serial.accuracy
    # Warm cache: same accuracy again, zero engine executions inside.
    warm = evaluate_corpus(corpus, workers=0, cache_dir=str(tmp_path))
    assert essence(warm) == essence(serial)
