"""Quirk construction: each case builds a valid, divergent spec."""

import random

import pytest

from repro.abi.signature import FunctionSignature
from repro.compiler import compile_contract
from repro.corpus.quirks import QUIRK_NAMES, apply_quirk
from repro.evm.interpreter import Interpreter


@pytest.fixture()
def rng():
    return random.Random(123)


BASE = FunctionSignature.parse("f(uint256)")


def test_quirk_names_complete():
    assert QUIRK_NAMES == ("case1", "case2", "case3", "case4", "case5")


@pytest.mark.parametrize("quirk", QUIRK_NAMES)
def test_quirk_specs_compile_and_execute(quirk, rng):
    spec = apply_quirk(BASE, quirk, rng)
    contract = compile_contract([spec])
    # The selector always comes from the *declared* signature.
    assert contract.signatures[0].name == "f"
    result = Interpreter(contract.bytecode).call(
        spec.sig.selector + b"\x00" * 128
    )
    assert result.success or result.error == "revert"


def test_case1_preserves_name_empties_params(rng):
    spec = apply_quirk(BASE, "case1", rng)
    assert spec.sig.params == ()
    assert spec.body_params is not None
    assert len(spec.body_params) == 2


def test_case2_array_lengths_match(rng):
    spec = apply_quirk(BASE, "case2", rng)
    declared = spec.sig.params[0]
    body = spec.body_params[0]
    # Same static length, different item type: identical layout.
    assert declared.length == body.length
    assert declared.element.canonical() == "uint256"
    assert body.element.canonical() == "uint8"


def test_case3_layout_compatible(rng):
    spec = apply_quirk(BASE, "case3", rng)
    assert spec.sig.params[0].canonical() == "address"
    assert spec.body_params[0].canonical() == "uint160"


def test_case4_head_width_preserved(rng):
    spec = apply_quirk(BASE, "case4", rng)
    # A storage reference occupies one head word, same as the dynamic
    # array's offset word.
    assert spec.sig.params[0].head_size() == 32
    assert spec.body_params[0].head_size() == 32


def test_case5_variants_cycle(rng):
    kinds = set()
    for _ in range(30):
        spec = apply_quirk(BASE, "case5", rng)
        if spec.const_index:
            kinds.add("const_index")
        elif spec.no_byte_access:
            kinds.add("no_byte_access")
        else:
            kinds.add("static_struct")
    assert kinds == {"const_index", "no_byte_access", "static_struct"}


def test_unknown_quirk_raises(rng):
    with pytest.raises(ValueError):
        apply_quirk(BASE, "case99", rng)
