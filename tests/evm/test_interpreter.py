"""Concrete interpreter: semantics, control flow, failure modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evm.asm import Assembler, assemble
from repro.evm.interpreter import Interpreter
from repro.evm.keccak import keccak256

WORD = 1 << 256


def run(program, calldata=b"", **kw):
    return Interpreter(assemble(program), **kw).call(calldata)


def run_return_word(program, calldata=b""):
    """Run a program that leaves one value on the stack; RETURN it."""
    code = program + [("PUSH1", 0), "MSTORE", ("PUSH1", 32), ("PUSH1", 0), "RETURN"]
    result = run(code, calldata)
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


def test_stop_succeeds():
    assert run(["STOP"]).success


def test_add_wraps():
    value = run_return_word([("PUSH32", WORD - 1), ("PUSH1", 2), "ADD"])
    assert value == 1


def test_sub_order():
    # SUB computes top - second.
    value = run_return_word([("PUSH1", 3), ("PUSH1", 10), "SUB"])
    assert value == 7


def test_div_by_zero_is_zero():
    assert run_return_word([("PUSH1", 0), ("PUSH1", 10), "DIV"]) == 0


def test_sdiv_negative():
    minus_ten = WORD - 10
    value = run_return_word([("PUSH1", 3), ("PUSH32", minus_ten), "SDIV"])
    assert value == WORD - 3  # -10 // 3 -> -3 truncated toward zero


def test_smod_sign_follows_dividend():
    minus_ten = WORD - 10
    value = run_return_word([("PUSH1", 3), ("PUSH32", minus_ten), "SMOD"])
    assert value == WORD - 1  # -10 smod 3 == -1


def test_signextend():
    value = run_return_word([("PUSH1", 0xFF), ("PUSH1", 0), "SIGNEXTEND"])
    assert value == WORD - 1


def test_byte():
    value = run_return_word([("PUSH32", 0xAABB << 240), ("PUSH1", 1), "BYTE"])
    assert value == 0xBB


def test_shifts():
    assert run_return_word([("PUSH1", 1), ("PUSH1", 8), "SHL"]) == 0x100
    assert run_return_word([("PUSH2", 0x100), ("PUSH1", 8), "SHR"]) == 1
    minus_one = WORD - 1
    assert run_return_word([("PUSH32", minus_one), ("PUSH1", 8), "SAR"]) == minus_one


def test_comparisons():
    assert run_return_word([("PUSH1", 2), ("PUSH1", 1), "LT"]) == 1
    assert run_return_word([("PUSH1", 1), ("PUSH1", 2), "GT"]) == 1
    minus_one = WORD - 1
    assert run_return_word([("PUSH1", 0), ("PUSH32", minus_one), "SLT"]) == 1
    assert run_return_word([("PUSH1", 5), ("PUSH1", 5), "EQ"]) == 1
    assert run_return_word([("PUSH1", 0), "ISZERO"]) == 1


def test_calldataload_pads_with_zeros():
    value = run_return_word([("PUSH1", 0), "CALLDATALOAD"], calldata=b"\xAB")
    assert value == 0xAB << 248


def test_calldatacopy_and_mload():
    calldata = bytes(range(64))
    value = run_return_word(
        [
            ("PUSH1", 32),  # length
            ("PUSH1", 16),  # src offset
            ("PUSH1", 64),  # dst
            "CALLDATACOPY",
            ("PUSH1", 64),
            "MLOAD",
        ],
        calldata=calldata,
    )
    assert value == int.from_bytes(calldata[16:48], "big")


def test_mstore8():
    value = run_return_word(
        [("PUSH2", 0x1234), ("PUSH1", 31), "MSTORE8", ("PUSH1", 0), "MLOAD"]
    )
    assert value == 0x34  # only the low byte is stored, at offset 31


def test_storage_roundtrip():
    interp = Interpreter(
        assemble(
            [("PUSH1", 42), ("PUSH1", 7), "SSTORE", ("PUSH1", 7), "SLOAD",
             ("PUSH1", 0), "MSTORE", ("PUSH1", 32), ("PUSH1", 0), "RETURN"]
        )
    )
    result = interp.call(b"")
    assert int.from_bytes(result.return_data, "big") == 42
    assert interp.storage[7] == 42
    assert result.storage_writes == {7: 42}


def test_sha3_uses_keccak():
    result = run(
        [
            ("PUSH1", 0), ("PUSH1", 0), "MSTORE",  # 32 zero bytes at 0
            ("PUSH1", 32), ("PUSH1", 0), "SHA3",
            ("PUSH1", 0), "MSTORE", ("PUSH1", 32), ("PUSH1", 0), "RETURN",
        ]
    )
    assert result.return_data == keccak256(b"\x00" * 32)


def test_jump_and_jumpi():
    asm = Assembler()
    asm.push(1).push_label("yes").op("JUMPI")
    asm.op("INVALID")
    asm.label("yes").op("JUMPDEST").op("STOP")
    result = Interpreter(asm.assemble()).call(b"")
    assert result.success


def test_invalid_jump_fails():
    result = run([("PUSH1", 1), "JUMP", "JUMPDEST", "STOP"])
    assert not result.success
    assert result.error == "InvalidJump"


def test_stack_underflow():
    result = run(["POP"])
    assert result.error == "StackUnderflow"


def test_revert_carries_data():
    result = run(
        [("PUSH4", 0xDEADBEEF), ("PUSH1", 0), "MSTORE",
         ("PUSH1", 32), ("PUSH1", 0), "REVERT"]
    )
    assert not result.success
    assert result.error == "revert"
    assert result.return_data[28:] == bytes.fromhex("deadbeef")


def test_invalid_sets_bug_oracle():
    result = run(["INVALID"])
    assert not result.success
    assert result.invalid_hit


def test_step_limit():
    asm = Assembler()
    asm.label("loop").op("JUMPDEST").push_label("loop").op("JUMP")
    result = Interpreter(asm.assemble(), max_steps=1000).call(b"")
    assert result.error == "OutOfGas"


def test_call_stubs_push_success():
    result = run(
        ["GAS", ("PUSH1", 0), ("PUSH1", 0), ("PUSH1", 0), ("PUSH1", 0),
         ("PUSH1", 0), ("PUSH1", 0), "CALL",
         ("PUSH1", 0), "MSTORE", ("PUSH1", 32), ("PUSH1", 0), "RETURN"]
    )
    # Our CALL stub pushes 1 (success).
    assert int.from_bytes(result.return_data, "big") == 1


def test_pcs_executed_recorded():
    result = run([("PUSH1", 1), "POP", "STOP"])
    assert result.pcs_executed == {0, 2, 3}


def test_logs_captured():
    result = run(
        [("PUSH4", 0xCAFEBABE), ("PUSH1", 0), "MSTORE",
         ("PUSH1", 32), ("PUSH1", 0), "LOG0", "STOP"]
    )
    assert result.success
    assert len(result.logs) == 1
    assert result.logs[0][28:] == bytes.fromhex("cafebabe")


@settings(max_examples=60, deadline=None)
@given(a=st.integers(0, WORD - 1), b=st.integers(0, WORD - 1))
def test_arithmetic_matches_python(a, b):
    assert run_return_word([("PUSH32", b), ("PUSH32", a), "ADD"]) == (a + b) % WORD
    assert run_return_word([("PUSH32", b), ("PUSH32", a), "MUL"]) == (a * b) % WORD
    assert run_return_word([("PUSH32", b), ("PUSH32", a), "SUB"]) == (a - b) % WORD
    assert run_return_word([("PUSH32", b), ("PUSH32", a), "AND"]) == a & b
    assert run_return_word([("PUSH32", b), ("PUSH32", a), "XOR"]) == a ^ b
    if b:
        assert run_return_word([("PUSH32", b), ("PUSH32", a), "DIV"]) == a // b
        assert run_return_word([("PUSH32", b), ("PUSH32", a), "MOD"]) == a % b
