"""Execution tracer."""

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Visibility
from repro.compiler import compile_contract
from repro.evm.asm import assemble
from repro.evm.tracer import Tracer


def test_trace_records_every_step_in_order():
    code = assemble([("PUSH1", 1), ("PUSH1", 2), "ADD", "POP", "STOP"])
    trace = Tracer(code).trace(b"")
    assert [s.op for s in trace.steps] == ["PUSH1", "PUSH1", "ADD", "POP", "STOP"]
    assert trace.result.success


def test_stack_snapshots_are_pre_states():
    code = assemble([("PUSH1", 5), ("PUSH1", 7), "ADD", "POP", "STOP"])
    trace = Tracer(code).trace(b"")
    add_step = next(s for s in trace.steps if s.op == "ADD")
    assert add_step.stack_before == [5, 7]
    pop_step = next(s for s in trace.steps if s.op == "POP")
    assert pop_step.stack_before == [12]


def test_trace_through_dispatcher():
    sig = FunctionSignature.parse("f(uint8)", Visibility.EXTERNAL)
    contract = compile_contract([sig])
    calldata = encode_call(sig.selector, list(sig.params), [7])
    trace = Tracer(contract.bytecode).trace(calldata)
    ops = [s.op for s in trace.steps]
    assert "CALLDATALOAD" in ops
    assert "AND" in ops  # the uint8 mask executed
    assert trace.result.success


def test_trace_of_revert():
    code = assemble([("PUSH1", 0), ("PUSH1", 0), "REVERT"])
    trace = Tracer(code).trace(b"")
    assert not trace.result.success
    assert "failed: revert" in trace.render()


def test_render_truncates():
    from repro.evm.asm import Assembler

    asm = Assembler()
    asm.push(0)
    asm.label("loop").op("JUMPDEST").push(1).op("ADD")
    asm.op("DUP1").push(250).op("SWAP1").op("LT")
    asm.push_label("loop").op("JUMPI").op("STOP")
    trace = Tracer(asm.assemble(), max_steps=10_000).trace(b"")
    text = trace.render(limit=20)
    assert "more steps" in text


def test_snapshots_are_copies():
    code = assemble([("PUSH1", 1), ("PUSH1", 2), "POP", "POP", "STOP"])
    trace = Tracer(code).trace(b"")
    # Each snapshot reflects its own moment, not the final state.
    assert trace.steps[1].stack_before == [1]
    assert trace.steps[2].stack_before == [1, 2]


# ----------------------------------------------------------------------
# Symbolic tracing (the TASE engine's step_hook)
# ----------------------------------------------------------------------


def test_symbolic_trace_records_expr_stacks():
    from repro.evm.tracer import SymbolicTracer

    sig = FunctionSignature.parse("f(uint8)", Visibility.EXTERNAL)
    contract = compile_contract([sig])
    trace = SymbolicTracer(contract.bytecode).trace()
    ops = [s.op for s in trace.steps]
    assert "CALLDATALOAD" in ops
    # The selector comparison ran over a symbolic calldata expression.
    load_idx = ops.index("CALLDATALOAD")
    later_stacks = [s.stack_before for s in trace.steps[load_idx + 1 :]]
    assert any(
        any("calldata" in repr(v) for v in stack) for stack in later_stacks
    )
    # The engine result rides along: the function's selector was found.
    selector = int.from_bytes(sig.selector, "big")
    assert selector in trace.result.selectors


def test_symbolic_trace_interleaves_all_paths():
    from repro.evm.tracer import SymbolicTracer

    sigs = [
        FunctionSignature.parse("f(uint8)", Visibility.EXTERNAL),
        FunctionSignature.parse("g(address)", Visibility.EXTERNAL),
    ]
    contract = compile_contract(sigs)
    trace = SymbolicTracer(contract.bytecode).trace()
    assert trace.result.paths_explored > 1
    assert len(trace.steps) > 0
    text = trace.render(limit=40)
    assert "paths" in text


def test_symbolic_trace_render():
    from repro.evm.tracer import SymbolicTracer

    code = assemble([("PUSH1", 0), "CALLDATALOAD", "POP", "STOP"])
    trace = SymbolicTracer(code).trace()
    text = trace.render()
    assert "CALLDATALOAD" in text
    assert "=>" in text
