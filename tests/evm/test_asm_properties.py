"""Property tests: assembler/disassembler round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evm.asm import Assembler
from repro.evm.disasm import disassemble
from repro.evm.opcodes import OPCODES

# Plain (no-immediate) opcodes for random program generation.
_PLAIN_OPS = sorted(
    op.name for op in OPCODES.values() if not op.is_push and op.name != "UNKNOWN"
)

_program_items = st.one_of(
    st.sampled_from(_PLAIN_OPS).map(lambda name: ("op", name)),
    st.tuples(st.just("push"), st.integers(0, (1 << 256) - 1)),
)


@settings(max_examples=120, deadline=None)
@given(items=st.lists(_program_items, min_size=1, max_size=40))
def test_assemble_disassemble_roundtrip(items):
    asm = Assembler()
    expected = []
    for kind, payload in items:
        if kind == "op":
            asm.op(payload)
            expected.append((payload, None))
        else:
            asm.push(payload)
            size = max(1, (payload.bit_length() + 7) // 8)
            expected.append((f"PUSH{size}", payload))
    code = asm.assemble()
    decoded = [
        (ins.op.name, ins.operand) for ins in disassemble(code)
    ]
    assert decoded == expected


@settings(max_examples=60, deadline=None)
@given(
    n_labels=st.integers(1, 6),
    filler=st.integers(0, 50),
    seed=st.integers(0, 2**32),
)
def test_label_targets_always_land_on_jumpdest(n_labels, filler, seed):
    import random

    rng = random.Random(seed)
    asm = Assembler()
    names = [f"L{i}" for i in range(n_labels)]
    for name in names:
        asm.push_label(name).op("POP")
    for _ in range(filler):
        asm.op("JUMPDEST" if rng.random() < 0.2 else "PC")
    for name in names:
        asm.label(name).op("JUMPDEST")
    code = asm.assemble()
    instructions = disassemble(code)
    dests = {ins.pc for ins in instructions if ins.op.name == "JUMPDEST"}
    pushed = [
        ins.operand
        for ins in instructions[: 2 * n_labels]
        if ins.op.is_push
    ]
    assert len(pushed) == n_labels
    for target in pushed:
        assert target in dests
