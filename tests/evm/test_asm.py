"""Assembler: label resolution, widths, round-trips."""

import pytest

from repro.evm.asm import Assembler, AssemblyError, assemble
from repro.evm.disasm import disassemble


def test_simple_program():
    code = assemble([("PUSH1", 0), "CALLDATALOAD", "STOP"])
    assert code == bytes([0x60, 0x00, 0x35, 0x00])


def test_push_width_selection():
    asm = Assembler()
    asm.push(0x1234)
    assert asm.assemble() == bytes([0x61, 0x12, 0x34])


def test_push_fixed_width():
    asm = Assembler()
    asm.push(5, width=4)
    assert asm.assemble() == bytes([0x63, 0, 0, 0, 5])


def test_push_width_too_small():
    asm = Assembler()
    with pytest.raises(AssemblyError):
        asm.push(0x1234, width=1)


def test_label_forward_reference():
    asm = Assembler()
    asm.push_label("end").op("JUMP")
    asm.op("INVALID")
    asm.label("end").op("JUMPDEST").op("STOP")
    code = asm.assemble()
    # PUSH1 0x04 JUMP INVALID JUMPDEST STOP
    assert code == bytes([0x60, 0x04, 0x56, 0xFE, 0x5B, 0x00])


def test_label_backward_reference():
    asm = Assembler()
    asm.label("loop").op("JUMPDEST")
    asm.push_label("loop").op("JUMP")
    assert asm.assemble() == bytes([0x5B, 0x60, 0x00, 0x56])


def test_duplicate_label_rejected():
    asm = Assembler()
    asm.label("x").op("JUMPDEST")
    asm.label("x").op("JUMPDEST")
    with pytest.raises(AssemblyError):
        asm.assemble()


def test_undefined_label_rejected():
    asm = Assembler()
    asm.push_label("nowhere").op("JUMP")
    with pytest.raises(AssemblyError):
        asm.assemble()


def test_wide_program_label_width_growth():
    # Force a label address beyond 255 so its PUSH widens to 2 bytes.
    asm = Assembler()
    asm.push_label("far").op("JUMP")
    for _ in range(300):
        asm.op("JUMPDEST")
    asm.label("far").op("JUMPDEST").op("STOP")
    code = asm.assemble()
    ins = disassemble(code)
    assert ins[0].op.name == "PUSH2"
    target = ins[0].operand
    assert code[target] == 0x5B  # JUMPDEST at the resolved address


def test_fresh_labels_unique():
    asm = Assembler()
    names = {asm.fresh_label() for _ in range(100)}
    assert len(names) == 100


def test_raw_bytes_appended():
    asm = Assembler()
    asm.op("STOP").raw(b"\xde\xad")
    assert asm.assemble() == bytes([0x00, 0xDE, 0xAD])


def test_disassemble_roundtrip():
    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").push(0xE0).op("SHR")
    asm.op("DUP1").push(0xA9059CBB, width=4).op("EQ")
    asm.push_label("body").op("JUMPI").op("STOP")
    asm.label("body").op("JUMPDEST").op("STOP")
    code = asm.assemble()
    names = [i.op.name for i in disassemble(code)]
    assert names == [
        "PUSH1", "CALLDATALOAD", "PUSH1", "SHR", "DUP1", "PUSH4", "EQ",
        "PUSH1", "JUMPI", "STOP", "JUMPDEST", "STOP",
    ]
