"""Keccak-256 against published vectors and the hashlib-style API."""

import pytest

from repro.evm.keccak import Keccak256, keccak256, selector

# Published Keccak-256 (pre-NIST padding) test vectors.
VECTORS = [
    (b"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"),
    (b"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"),
    (
        b"The quick brown fox jumps over the lazy dog",
        "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
    ),
]


@pytest.mark.parametrize("data,expected", VECTORS)
def test_known_vectors(data, expected):
    assert keccak256(data).hex() == expected


def test_incremental_equals_one_shot():
    data = bytes(range(256)) * 5
    h = Keccak256()
    for i in range(0, len(data), 17):
        h.update(data[i : i + 17])
    assert h.digest() == keccak256(data)


def test_digest_is_repeatable():
    h = Keccak256(b"hello")
    first = h.digest()
    assert h.digest() == first
    assert h.hexdigest() == first.hex()


def test_update_after_digest_is_allowed_until_finalize():
    h = Keccak256(b"he")
    h.digest()
    h.update(b"llo")
    assert h.digest() == keccak256(b"hello")


@pytest.mark.parametrize(
    "sig,expected",
    [
        ("transfer(address,uint256)", "a9059cbb"),
        ("balanceOf(address)", "70a08231"),
        ("approve(address,uint256)", "095ea7b3"),
        ("transferFrom(address,address,uint256)", "23b872dd"),
        ("totalSupply()", "18160ddd"),
    ],
)
def test_erc20_selectors(sig, expected):
    assert selector(sig).hex() == expected


def test_long_input_spanning_many_blocks():
    data = b"x" * (136 * 3 + 55)
    # Compare incremental (exercises _absorb) with one-shot.
    h = Keccak256()
    h.update(data[:200])
    h.update(data[200:])
    assert h.digest() == keccak256(data)


def test_rate_boundary_padding():
    # 135 bytes forces the 0x01 ... 0x80 two-byte-plus padding;
    # 136-1 boundary is where pad_len == 1 uses the merged 0x81 byte.
    for size in (134, 135, 136, 137):
        digest = keccak256(b"a" * size)
        assert len(digest) == 32
        # Determinism check.
        assert keccak256(b"a" * size) == digest
