"""Interpreter edge semantics: modular ops, shifts, limits, stubs."""

from repro.evm.asm import Assembler, assemble
from repro.evm.interpreter import Interpreter

WORD = 1 << 256


def run_word(program, calldata=b""):
    code = program + [("PUSH1", 0), "MSTORE", ("PUSH1", 32), ("PUSH1", 0), "RETURN"]
    result = Interpreter(assemble(code)).call(calldata)
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


def test_addmod_mulmod():
    assert run_word([("PUSH1", 7), ("PUSH1", 5), ("PUSH1", 4), "ADDMOD"]) == 2
    assert run_word([("PUSH1", 7), ("PUSH1", 5), ("PUSH1", 4), "MULMOD"]) == 6
    # Modulus zero yields zero, not an exception.
    assert run_word([("PUSH1", 0), ("PUSH1", 5), ("PUSH1", 4), "ADDMOD"]) == 0
    assert run_word([("PUSH1", 0), ("PUSH1", 5), ("PUSH1", 4), "MULMOD"]) == 0


def test_exp_wraps():
    assert run_word([("PUSH1", 10), ("PUSH1", 2), "EXP"]) == 1024
    assert run_word([("PUSH2", 300), ("PUSH1", 2), "EXP"]) == pow(2, 300, WORD)


def test_signextend_k_31_and_beyond_is_identity():
    value = 0xDEADBEEF << 224
    assert run_word([("PUSH32", value), ("PUSH1", 31), "SIGNEXTEND"]) == value
    assert run_word([("PUSH32", value), ("PUSH1", 200), "SIGNEXTEND"]) == value


def test_byte_out_of_range_is_zero():
    assert run_word([("PUSH32", WORD - 1), ("PUSH1", 32), "BYTE"]) == 0
    assert run_word([("PUSH32", WORD - 1), ("PUSH2", 1000), "BYTE"]) == 0


def test_shift_by_256_or_more():
    assert run_word([("PUSH1", 1), ("PUSH2", 256), "SHL"]) == 0
    assert run_word([("PUSH1", 1), ("PUSH2", 300), "SHR"]) == 0
    minus_one = WORD - 1
    assert run_word([("PUSH32", minus_one), ("PUSH2", 256), "SAR"]) == minus_one
    assert run_word([("PUSH1", 4), ("PUSH2", 256), "SAR"]) == 0


def test_sar_positive_value():
    assert run_word([("PUSH1", 8), ("PUSH1", 2), "SAR"]) == 2


def test_not():
    assert run_word([("PUSH1", 0), "NOT"]) == WORD - 1


def test_codesize_and_codecopy():
    asm = Assembler()
    asm.op("CODESIZE").push(0).op("MSTORE")
    asm.push(32).push(0).op("RETURN")
    code = asm.assemble()
    result = Interpreter(code).call(b"")
    assert int.from_bytes(result.return_data, "big") == len(code)

    program = [("PUSH1", 3), ("PUSH1", 0), ("PUSH1", 0), "CODECOPY",
               ("PUSH1", 0), "MLOAD"]
    value = run_word(program)
    # First three code bytes land at the top of the word.
    assert value >> (8 * 29) == int.from_bytes(bytes([0x60, 0x03, 0x60]), "big")


def test_msize_tracks_memory_growth():
    value = run_word([("PUSH1", 1), ("PUSH1", 0x5F), "MSTORE8", "MSIZE"])
    assert value == 0x60


def test_selfdestruct_halts_successfully():
    result = Interpreter(assemble([("PUSH1", 0), "SELFDESTRUCT", "INVALID"])).call(b"")
    assert result.success
    assert not result.invalid_hit


def test_log_topics_are_consumed():
    result = Interpreter(
        assemble(
            [("PUSH1", 1), ("PUSH1", 2),  # two topics
             ("PUSH1", 0), ("PUSH1", 0), "LOG2", "STOP"]
        )
    ).call(b"")
    assert result.success
    assert len(result.logs) == 1


def test_environment_opcodes_push_values():
    result = Interpreter(
        assemble(["CALLER", ("PUSH1", 0), "MSTORE",
                  ("PUSH1", 32), ("PUSH1", 0), "RETURN"])
    ).call(b"", caller=0xABCDEF)
    assert int.from_bytes(result.return_data, "big") == 0xABCDEF


def test_callvalue():
    result = Interpreter(
        assemble(["CALLVALUE", ("PUSH1", 0), "MSTORE",
                  ("PUSH1", 32), ("PUSH1", 0), "RETURN"])
    ).call(b"", callvalue=77)
    assert int.from_bytes(result.return_data, "big") == 77


def test_gas_decreases():
    result = Interpreter(
        assemble(["GAS", ("PUSH1", 0), "MSTORE",
                  ("PUSH1", 32), ("PUSH1", 0), "RETURN"]),
        gas_limit=1000,
    ).call(b"")
    assert int.from_bytes(result.return_data, "big") < 1000


def test_stack_overflow():
    asm = Assembler()
    asm.label("loop").op("JUMPDEST").push(1).push_label("loop").op("JUMP")
    result = Interpreter(asm.assemble(), max_steps=10_000).call(b"")
    assert result.error in ("StackOverflow", "OutOfGas")


def test_running_off_code_end_halts_like_stop():
    result = Interpreter(assemble([("PUSH1", 1), "POP"])).call(b"")
    assert result.success


def test_storage_preloaded():
    interp = Interpreter(
        assemble([("PUSH1", 9), "SLOAD", ("PUSH1", 0), "MSTORE",
                  ("PUSH1", 32), ("PUSH1", 0), "RETURN"]),
        storage={9: 1234},
    )
    assert int.from_bytes(interp.call(b"").return_data, "big") == 1234
