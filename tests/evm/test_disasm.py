"""Disassembler behaviour, including malformed tails."""

from repro.evm.disasm import (
    disassemble,
    format_listing,
    instruction_index,
    jumpdests,
)


def test_basic_decoding():
    ins = disassemble(bytes([0x60, 0x2A, 0x50, 0x00]))
    assert [i.op.name for i in ins] == ["PUSH1", "POP", "STOP"]
    assert ins[0].operand == 0x2A
    assert ins[0].size == 2
    assert ins[1].pc == 2


def test_truncated_push_zero_extended():
    # PUSH4 with only 2 immediate bytes available.
    ins = disassemble(bytes([0x63, 0xAB, 0xCD]))
    assert ins[0].op.name == "PUSH4"
    assert ins[0].operand == 0xABCD0000


def test_invalid_bytes_become_unknown():
    ins = disassemble(bytes([0x00, 0x0C, 0x0D, 0x00]))
    assert [i.op.name for i in ins] == ["STOP", "UNKNOWN", "UNKNOWN", "STOP"]


def test_jumpdests():
    code = bytes([0x5B, 0x60, 0x5B, 0x5B])  # JUMPDEST, PUSH1 0x5b, JUMPDEST
    dests = jumpdests(disassemble(code))
    # The 0x5B inside the PUSH immediate is data, not a JUMPDEST.
    assert dests == frozenset({0, 3})


def test_instruction_index():
    ins = disassemble(bytes([0x60, 0x01, 0x00]))
    idx = instruction_index(ins)
    assert idx[0].op.name == "PUSH1"
    assert idx[2].op.name == "STOP"
    assert 1 not in idx  # inside the PUSH immediate


def test_empty_bytecode():
    assert disassemble(b"") == []


def test_format_listing():
    text = format_listing(disassemble(bytes([0x60, 0xFF, 0x00])))
    assert "PUSH1 0xff" in text
    assert "STOP" in text


def test_format_listing_annotations():
    instructions = disassemble(bytes([0x60, 0xFF, 0x00]))
    text = format_listing(instructions, annotations={0: "entry", 2: "halt"})
    lines = text.splitlines()
    assert lines[0].endswith("; entry")
    assert lines[1].endswith("; halt")
    # Unannotated listings are unchanged.
    assert format_listing(instructions, annotations={}) == format_listing(
        instructions
    )
