"""CFG recovery: blocks, edges, dynamic jumps."""

from repro.evm.asm import Assembler
from repro.evm.cfg import build_cfg


def _asm() -> Assembler:
    return Assembler()


def test_single_block():
    asm = _asm()
    asm.push(1).push(2).op("ADD").op("STOP")
    cfg = build_cfg(asm.assemble())
    assert len(cfg) == 1
    block = cfg.block_at(0)
    assert block is not None and block.successors == set()


def test_direct_jump_edge():
    asm = _asm()
    asm.push_label("target").op("JUMP")
    asm.label("target").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    entry = cfg.block_at(0)
    assert entry is not None
    (succ,) = entry.successors
    assert cfg.block_at(succ).terminator.op.name == "STOP"


def test_jumpi_has_two_successors():
    asm = _asm()
    asm.push(1).push_label("yes").op("JUMPI").op("STOP")
    asm.label("yes").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    entry = cfg.block_at(0)
    assert len(entry.successors) == 2


def test_dynamic_jump_flagged():
    asm = _asm()
    # Jump target comes from calldata: not statically resolvable.
    asm.push(0).op("CALLDATALOAD").op("JUMP")
    asm.op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    entry = cfg.block_at(0)
    assert entry.has_dynamic_jump
    assert entry.successors == set()


def test_fallthrough_edge():
    asm = _asm()
    asm.push(1).op("POP")
    asm.label("next").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    entry = cfg.block_at(0)
    assert len(entry.successors) == 1


def test_predecessors_symmetric():
    asm = _asm()
    asm.push(1).push_label("a").op("JUMPI").op("STOP")
    asm.label("a").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    for block in cfg.blocks.values():
        for succ in block.successors:
            assert block.start in cfg.blocks[succ].predecessors


def test_reachability():
    asm = _asm()
    asm.push_label("a").op("JUMP")
    asm.op("JUMPDEST").op("STOP")  # dead block (no label)
    asm.label("a").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    reachable = cfg.reachable_from(cfg.entry)
    assert cfg.entry in reachable
    # The unlabeled middle block is not reachable along static edges.
    assert len(reachable) < len(cfg)


def test_jump_to_invalid_dest_has_no_edge():
    asm = _asm()
    asm.push(1).op("JUMP")  # 1 is not a JUMPDEST
    asm.op("STOP")
    cfg = build_cfg(asm.assemble())
    assert cfg.block_at(0).successors == set()
