"""CFG recovery: blocks, edges, dynamic jumps."""

from repro.evm.asm import Assembler, assemble
from repro.evm.cfg import _leaders, build_cfg
from repro.evm.disasm import disassemble


def _asm() -> Assembler:
    return Assembler()


def test_single_block():
    asm = _asm()
    asm.push(1).push(2).op("ADD").op("STOP")
    cfg = build_cfg(asm.assemble())
    assert len(cfg) == 1
    block = cfg.block_at(0)
    assert block is not None and block.successors == set()


def test_direct_jump_edge():
    asm = _asm()
    asm.push_label("target").op("JUMP")
    asm.label("target").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    entry = cfg.block_at(0)
    assert entry is not None
    (succ,) = entry.successors
    assert cfg.block_at(succ).terminator.op.name == "STOP"


def test_jumpi_has_two_successors():
    asm = _asm()
    asm.push(1).push_label("yes").op("JUMPI").op("STOP")
    asm.label("yes").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    entry = cfg.block_at(0)
    assert len(entry.successors) == 2


def test_dynamic_jump_flagged():
    asm = _asm()
    # Jump target comes from calldata: not statically resolvable.
    asm.push(0).op("CALLDATALOAD").op("JUMP")
    asm.op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    entry = cfg.block_at(0)
    assert entry.has_dynamic_jump
    assert entry.successors == set()


def test_fallthrough_edge():
    asm = _asm()
    asm.push(1).op("POP")
    asm.label("next").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    entry = cfg.block_at(0)
    assert len(entry.successors) == 1


def test_predecessors_symmetric():
    asm = _asm()
    asm.push(1).push_label("a").op("JUMPI").op("STOP")
    asm.label("a").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    for block in cfg.blocks.values():
        for succ in block.successors:
            assert block.start in cfg.blocks[succ].predecessors


def test_reachability():
    asm = _asm()
    asm.push_label("a").op("JUMP")
    asm.op("JUMPDEST").op("STOP")  # dead block (no label)
    asm.label("a").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    reachable = cfg.reachable_from(cfg.entry)
    assert cfg.entry in reachable
    # The unlabeled middle block is not reachable along static edges.
    assert len(reachable) < len(cfg)


def test_jump_to_invalid_dest_has_no_edge():
    asm = _asm()
    asm.push(1).op("JUMP")  # 1 is not a JUMPDEST
    asm.op("STOP")
    cfg = build_cfg(asm.assemble())
    assert cfg.block_at(0).successors == set()


def test_jump_to_invalid_dest_flagged_not_dropped():
    asm = _asm()
    asm.push(1).op("JUMP")  # 1 is not a JUMPDEST: always throws
    asm.op("STOP")
    cfg = build_cfg(asm.assemble())
    entry = cfg.block_at(0)
    assert entry.invalid_static_jump
    assert not entry.has_dynamic_jump


def test_jumpi_to_invalid_dest_flagged_keeps_fallthrough():
    # PUSH1 1 (cond) PUSH1 0 (target: pc 0 is PUSH, not JUMPDEST) JUMPI STOP
    code = assemble([("PUSH1", 1), ("PUSH1", 0), "JUMPI", "STOP"])
    cfg = build_cfg(code)
    entry = cfg.block_at(0)
    assert entry.invalid_static_jump
    # The fall-through edge survives: the jump only throws when taken.
    assert entry.successors == {5}


def test_valid_static_jump_not_flagged():
    asm = _asm()
    asm.push_label("target").op("JUMP")
    asm.label("target").op("JUMPDEST").op("STOP")
    cfg = build_cfg(asm.assemble())
    assert not cfg.block_at(0).invalid_static_jump


def test_leader_set_pinned_on_fixture():
    # 0: PUSH1 6; 2: JUMP; 3: STOP; 4: PUSH1 0 (dead); 6: JUMPDEST; 7: STOP
    code = assemble(
        [("PUSH1", 6), "JUMP", "STOP", ("PUSH1", 0), "JUMPDEST", "STOP"]
    )
    instructions = disassemble(code)
    # Leaders: entry (0), after the JUMP terminator (3), after the STOP
    # terminator (4), and the JUMPDEST (6).  The pushed target 6 is a
    # leader *because* it is a JUMPDEST, with no extra rule needed.
    assert _leaders(instructions) == [0, 3, 4, 6]
    cfg = build_cfg(code)
    assert sorted(cfg.blocks) == [0, 3, 4, 6]
