"""The unified semantics table: coverage, arity, and block context.

The table in ``repro.evm.semantics`` is the single source of opcode
behaviour for every engine; these tests pin its completeness (no opcode
silently unhandled), its declared stack arities against the opcode
metadata, and the block-context opcodes that used to collapse to 0.
"""

import pytest

from repro.chain.chain import BLOCK_INTERVAL, Chain, Transaction
from repro.evm.asm import Assembler
from repro.evm.interpreter import BlockContext, Interpreter
from repro.evm.opcodes import OPCODES
from repro.evm.semantics import (
    DEFAULT_SELF_BALANCE,
    SEMANTICS,
    UNIMPLEMENTED,
    UNKNOWN_CODE,
    ConcreteDomain,
    dispatch_table,
)
from repro.sigrec.engine import SymbolicDomain


# ----------------------------------------------------------------------
# Coverage and arity
# ----------------------------------------------------------------------


def test_every_opcode_has_a_handler_or_is_declared_unimplemented():
    missing = [
        op.name
        for code, op in OPCODES.items()
        if code not in SEMANTICS and op.name not in UNIMPLEMENTED
    ]
    assert not missing, f"opcodes without semantics: {missing}"


def test_unimplemented_list_is_not_stale():
    # Everything declared unimplemented must actually lack a handler.
    stale = [
        name
        for name in UNIMPLEMENTED
        if any(e.name == name for e in SEMANTICS.values())
    ]
    assert not stale, f"declared unimplemented but registered: {stale}"


def test_declared_arity_matches_opcode_metadata():
    for code, entry in SEMANTICS.items():
        op = OPCODES[code]
        assert (entry.pops, entry.pushes) == (op.pops, op.pushes), (
            f"{op.name}: semantics declares ({entry.pops},{entry.pushes}), "
            f"opcode table says ({op.pops},{op.pushes})"
        )
        assert entry.name == op.name


@pytest.mark.parametrize("domain_cls", [ConcreteDomain, SymbolicDomain])
def test_dispatch_table_is_total(domain_cls):
    table = dispatch_table(domain_cls)
    assert set(table) == set(SEMANTICS) | {UNKNOWN_CODE}
    assert all(callable(h) for h in table.values())


def test_dispatch_table_is_cached_per_class():
    assert dispatch_table(ConcreteDomain) is dispatch_table(ConcreteDomain)
    assert dispatch_table(ConcreteDomain) is not dispatch_table(SymbolicDomain)


# ----------------------------------------------------------------------
# Block context (interpreter level)
# ----------------------------------------------------------------------


def _run_env_op(op_name, **interp_kwargs):
    asm = Assembler()
    asm.op(op_name)
    asm.push(0).op("MSTORE")
    asm.push(32).push(0).op("RETURN")
    result = Interpreter(asm.assemble(), **interp_kwargs).call(b"")
    assert result.success
    return int.from_bytes(result.return_data, "big")


DEFAULT = BlockContext()


@pytest.mark.parametrize(
    "op_name,expected",
    [
        ("COINBASE", DEFAULT.coinbase),
        ("TIMESTAMP", DEFAULT.timestamp),
        ("NUMBER", DEFAULT.number),
        ("DIFFICULTY", DEFAULT.difficulty),
        ("GASLIMIT", DEFAULT.gaslimit),
        ("CHAINID", DEFAULT.chainid),
        ("BASEFEE", DEFAULT.basefee),
        ("SELFBALANCE", DEFAULT_SELF_BALANCE),
    ],
)
def test_block_opcode_defaults_are_distinct_and_nonzero(op_name, expected):
    assert expected != 0  # the historical behaviour collapsed these to 0
    assert _run_env_op(op_name) == expected


def test_block_opcode_defaults_are_pairwise_distinct():
    values = [
        DEFAULT.coinbase, DEFAULT.timestamp, DEFAULT.number,
        DEFAULT.difficulty, DEFAULT.gaslimit, DEFAULT.chainid,
        DEFAULT.basefee, DEFAULT_SELF_BALANCE,
    ]
    assert len(set(values)) == len(values)


def test_custom_block_context_is_honoured():
    block = BlockContext(timestamp=1234, number=77, coinbase=0xAB, chainid=5)
    assert _run_env_op("TIMESTAMP", block=block) == 1234
    assert _run_env_op("NUMBER", block=block) == 77
    assert _run_env_op("COINBASE", block=block) == 0xAB
    assert _run_env_op("CHAINID", block=block) == 5


def test_custom_self_balance_is_honoured():
    assert _run_env_op("SELFBALANCE", self_balance=42) == 42
    assert _run_env_op("SELFBALANCE", self_balance=0) == 0


# ----------------------------------------------------------------------
# Block context (chain wiring)
# ----------------------------------------------------------------------


def _returns_env(op_name):
    asm = Assembler()
    asm.op(op_name)
    asm.push(0).op("MSTORE")
    asm.push(32).push(0).op("RETURN")
    return asm.assemble()


def test_chain_passes_advancing_number_and_timestamp():
    chain = Chain()
    sender = 0xFA0CE7
    chain.fund(sender, 10**18)
    number_at = chain.deploy(_returns_env("NUMBER"), sender=sender)
    time_at = chain.deploy(_returns_env("TIMESTAMP"), sender=sender)
    genesis = chain.genesis
    for mined in range(3):
        pending = len(chain.blocks)
        r_num = chain.call(number_at, b"")
        r_time = chain.call(time_at, b"")
        assert int.from_bytes(r_num.return_data, "big") == genesis.number + pending
        assert (
            int.from_bytes(r_time.return_data, "big")
            == genesis.timestamp + BLOCK_INTERVAL * pending
        )
        chain.mine()


def test_chain_honours_custom_genesis_context():
    genesis = BlockContext(number=100, timestamp=5_000, chainid=1337)
    chain = Chain(genesis=genesis)
    sender = 0xFA0CE7
    chain.fund(sender, 10**18)
    chain.mine()  # block 100 sealed; the pending block is 101
    addr = chain.deploy(_returns_env("NUMBER"), sender=sender)
    assert (
        int.from_bytes(chain.call(addr, b"").return_data, "big") == 101
    )
    chain_id_addr = chain.deploy(_returns_env("CHAINID"), sender=sender)
    assert (
        int.from_bytes(chain.call(chain_id_addr, b"").return_data, "big")
        == 1337
    )


def test_chain_selfbalance_reads_the_account_balance():
    chain = Chain()
    sender = 0xFA0CE7
    chain.fund(sender, 10**18)
    addr = chain.deploy(_returns_env("SELFBALANCE"), sender=sender)
    assert int.from_bytes(chain.call(addr, b"").return_data, "big") == 0
    receipt = chain.send(
        Transaction(sender=sender, to=addr, data=b"", value=12345)
    )
    assert receipt.success
    # The value transfer lands before execution: SELFBALANCE sees it.
    assert int.from_bytes(receipt.return_data, "big") == 12345
    assert int.from_bytes(chain.call(addr, b"").return_data, "big") == 12345
