"""Opcode-table invariants."""

import pytest

from repro.evm.opcodes import OPCODES, Op, is_valid_opcode, opcode_by_name, push_for_value


def test_table_covers_core_instructions():
    for name in [
        "STOP", "ADD", "MUL", "SUB", "DIV", "SDIV", "SIGNEXTEND",
        "LT", "GT", "SLT", "SGT", "EQ", "ISZERO", "AND", "OR", "XOR",
        "NOT", "BYTE", "SHL", "SHR", "SAR", "SHA3",
        "CALLDATALOAD", "CALLDATASIZE", "CALLDATACOPY",
        "MLOAD", "MSTORE", "MSTORE8", "SLOAD", "SSTORE",
        "JUMP", "JUMPI", "JUMPDEST", "RETURN", "REVERT", "INVALID",
    ]:
        assert opcode_by_name(name).name == name


def test_push_range():
    assert opcode_by_name("PUSH0").immediate_size == 0
    for n in range(1, 33):
        op = opcode_by_name(f"PUSH{n}")
        assert op.immediate_size == n
        assert op.is_push
        assert op.pushes == 1 and op.pops == 0


def test_dup_swap_stack_effects():
    for n in range(1, 17):
        dup = opcode_by_name(f"DUP{n}")
        swap = opcode_by_name(f"SWAP{n}")
        assert dup.is_dup and dup.pops == n and dup.pushes == n + 1
        assert swap.is_swap and swap.pops == n + 1 and swap.pushes == n + 1


def test_terminators():
    for name in ["STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT", "JUMP"]:
        assert opcode_by_name(name).is_terminator
    for name in ["JUMPI", "ADD", "JUMPDEST"]:
        assert not opcode_by_name(name).is_terminator


def test_codes_match_evm_spec_samples():
    assert opcode_by_name("CALLDATALOAD").code == 0x35
    assert opcode_by_name("CALLDATACOPY").code == 0x37
    assert opcode_by_name("SIGNEXTEND").code == 0x0B
    assert opcode_by_name("SHR").code == 0x1C
    assert opcode_by_name("JUMPDEST").code == 0x5B
    assert opcode_by_name("PUSH1").code == 0x60
    assert opcode_by_name("PUSH32").code == 0x7F
    assert opcode_by_name("REVERT").code == 0xFD


def test_is_valid_opcode():
    assert is_valid_opcode(0x01)
    assert not is_valid_opcode(0x0C)  # gap in the 0x00s range
    assert not is_valid_opcode(0x21)


def test_push_for_value():
    assert push_for_value(0).name == "PUSH1"
    assert push_for_value(0xFF).name == "PUSH1"
    assert push_for_value(0x100).name == "PUSH2"
    assert push_for_value((1 << 256) - 1).name == "PUSH32"
    with pytest.raises(ValueError):
        push_for_value(1 << 256)
    with pytest.raises(ValueError):
        push_for_value(-1)


def test_lookup_is_case_insensitive():
    assert opcode_by_name("calldataload") is opcode_by_name("CALLDATALOAD")


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        opcode_by_name("FROBNICATE")
