"""Property tests on the chain substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import Chain, Transaction


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32), n_transfers=st.integers(1, 25))
def test_value_is_conserved(seed, n_transfers):
    """Plain transfers never create or destroy wei."""
    rng = random.Random(seed)
    chain = Chain()
    accounts = [0xA0, 0xA1, 0xA2, 0xA3]
    initial_total = 0
    for account in accounts:
        amount = rng.randint(0, 10**6)
        chain.fund(account, amount)
        initial_total += amount
    for _ in range(n_transfers):
        sender, recipient = rng.sample(accounts, 2)
        value = rng.randint(0, 10**6)  # may exceed balance: must fail safely
        chain.send(Transaction(sender=sender, to=recipient, value=value))
    total = sum(chain.state.account(a).balance for a in accounts)
    assert total == initial_total


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32))
def test_failed_transfers_change_nothing(seed):
    rng = random.Random(seed)
    chain = Chain()
    chain.fund(0xA0, 100)
    receipt = chain.send(
        Transaction(sender=0xA0, to=0xA1, value=rng.randint(101, 10**9))
    )
    assert not receipt.success
    assert chain.state.account(0xA0).balance == 100
    assert chain.state.account(0xA1).balance == 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**32), n_blocks=st.integers(1, 5))
def test_block_numbers_monotonic_and_txs_partitioned(seed, n_blocks):
    rng = random.Random(seed)
    chain = Chain()
    chain.fund(0xA0, 10**12)
    sent = 0
    for _ in range(n_blocks):
        for _ in range(rng.randint(0, 4)):
            chain.send(Transaction(sender=0xA0, to=0xA1, value=1))
            sent += 1
        chain.mine()
    assert [b.number for b in chain.blocks] == list(range(n_blocks))
    assert sum(len(b.transactions) for b in chain.blocks) == sent
    assert chain.transaction_count == sent
