"""The chain: deployment, transactions, blocks."""

import pytest

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Visibility
from repro.chain import Chain, Transaction, make_init_code
from repro.compiler import compile_contract
from repro.evm.asm import Assembler
from repro.evm.interpreter import Interpreter
from repro.sigrec.api import SigRec

TRANSFER = FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL)


@pytest.fixture()
def chain():
    chain = Chain()
    chain.fund(0xAA, 10**18)
    return chain


def test_init_code_returns_runtime():
    runtime = bytes([0x60, 0x01, 0x50, 0x00])  # PUSH1 1 POP STOP
    init = make_init_code(runtime)
    result = Interpreter(init).call(b"")
    assert result.success
    assert result.return_data == runtime


def test_deploy_installs_code(chain):
    contract = compile_contract([TRANSFER])
    address = chain.deploy(contract.bytecode, sender=0xAA)
    assert chain.code_at(address) == contract.bytecode


def test_deploy_twice_gets_distinct_addresses(chain):
    contract = compile_contract([TRANSFER])
    a = chain.deploy(contract.bytecode, sender=0xAA)
    b = chain.deploy(contract.bytecode, sender=0xAA)
    assert a != b


def test_call_deployed_contract(chain):
    contract = compile_contract([TRANSFER])
    address = chain.deploy(contract.bytecode, sender=0xAA)
    calldata = encode_call(TRANSFER.selector, list(TRANSFER.params), [0xBB, 7])
    receipt = chain.call(address, calldata)
    assert receipt.success


def test_mine_seals_pending(chain):
    contract = compile_contract([TRANSFER])
    address = chain.deploy(contract.bytecode, sender=0xAA)
    chain.call(address, TRANSFER.selector + b"\x00" * 64)
    block = chain.mine()
    assert block.number == 0
    assert len(block.transactions) == 2  # deploy + call
    assert len(block.receipts) == 2
    assert chain.transaction_count == 2
    next_block = chain.mine()
    assert next_block.number == 1
    assert next_block.transactions == []


def test_value_transfer_transaction(chain):
    receipt = chain.send(Transaction(sender=0xAA, to=0xBB, value=123))
    assert receipt.success
    assert chain.state.account(0xBB).balance == 123


def test_reverting_init_code_installs_nothing(chain):
    asm = Assembler()
    asm.push(0).push(0).op("REVERT")
    receipt = chain.send(Transaction(sender=0xAA, to=None, data=asm.assemble()))
    assert not receipt.success
    assert receipt.contract_address is None


def test_recover_signatures_from_chain_code(chain):
    sigs = [
        TRANSFER,
        FunctionSignature.parse("mint(address,uint256,bool)", Visibility.PUBLIC),
    ]
    contract = compile_contract(sigs)
    address = chain.deploy(contract.bytecode, sender=0xAA)
    recovered = SigRec().recover_map(chain.code_at(address))
    for sig in sigs:
        selector = int.from_bytes(sig.selector, "big")
        assert recovered[selector].param_list == sig.param_list()


def test_receipts_carry_errors(chain):
    asm = Assembler()
    asm.push(0).push(0).op("REVERT")
    address = 0xDE
    chain.state.account(address).code = asm.assemble()
    receipt = chain.call(address, b"\x01\x02\x03\x04")
    assert not receipt.success
    assert receipt.error == "revert"
