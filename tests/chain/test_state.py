"""World state: accounts, transfers, snapshots, addresses."""

from repro.chain.state import Account, WorldState


def test_account_created_on_first_touch():
    state = WorldState()
    assert not state.exists(0xAB)
    account = state.account(0xAB)
    assert account.balance == 0
    assert state.exists(0xAB)


def test_address_masked_to_160_bits():
    state = WorldState()
    state.account(0xAB).balance = 7
    # High bits beyond 160 are ignored, as the EVM does.
    assert state.account((1 << 200) | 0xAB).balance == 7


def test_transfer():
    state = WorldState()
    state.account(1).balance = 100
    assert state.transfer(1, 2, 60)
    assert state.account(1).balance == 40
    assert state.account(2).balance == 60


def test_transfer_insufficient():
    state = WorldState()
    state.account(1).balance = 10
    assert not state.transfer(1, 2, 60)
    assert state.account(1).balance == 10
    assert state.account(2).balance == 0


def test_zero_transfer_always_succeeds():
    state = WorldState()
    assert state.transfer(1, 2, 0)


def test_snapshot_restore():
    state = WorldState()
    state.account(1).balance = 5
    state.account(1).storage[7] = 9
    snap = state.snapshot()
    state.account(1).balance = 999
    state.account(1).storage[7] = 0
    state.account(2).code = b"\x00"
    state.restore(snap)
    assert state.account(1).balance == 5
    assert state.account(1).storage[7] == 9
    assert not state.account(2).code


def test_snapshot_is_deep():
    state = WorldState()
    state.account(1).storage[1] = 1
    snap = state.snapshot()
    snap[1].storage[1] = 42  # mutating the snapshot must not leak
    assert state.account(1).storage[1] == 1


def test_contract_addresses_deterministic_and_fresh():
    a = WorldState()
    b = WorldState()
    first_a = a.new_contract_address(0xCC)
    first_b = b.new_contract_address(0xCC)
    assert first_a == first_b  # same creator + nonce -> same address
    second_a = a.new_contract_address(0xCC)
    assert second_a != first_a  # nonce bumped
    assert 0 < first_a < (1 << 160)


def test_account_copy_is_independent():
    account = Account(balance=1, storage={1: 2})
    clone = account.copy()
    clone.storage[1] = 99
    assert account.storage[1] == 2
