"""The message-call machine: real cross-contract semantics."""

import pytest

from repro.chain.chain import make_init_code
from repro.chain.machine import CallMachine, Message
from repro.chain.state import WorldState
from repro.evm.asm import Assembler


def _runtime_store_42():
    """SSTORE(1, 42); RETURN 32 bytes of 0x2a."""
    asm = Assembler()
    asm.push(42).push(1).op("SSTORE")
    asm.push(42).push(0).op("MSTORE")
    asm.push(32).push(0).op("RETURN")
    return asm.assemble()


def _runtime_revert():
    asm = Assembler()
    asm.push(99).push(5).op("SSTORE")  # a write that must roll back
    asm.push(0).push(0).op("REVERT")
    return asm.assemble()


def _runtime_call(target: int, then_sstore: bool = True):
    """CALL(target, no value, no data); store the success flag at 0."""
    asm = Assembler()
    asm.push(0).push(0).push(0).push(0)  # outSize outOff inSize inOff
    asm.push(0)  # value
    asm.push(target, width=20)
    asm.op("GAS").op("CALL")
    if then_sstore:
        asm.push(0).op("SSTORE")  # storage[0] = call success
    else:
        asm.op("POP")
    asm.op("STOP")
    return asm.assemble()


@pytest.fixture()
def state():
    world = WorldState()
    world.account(0xAA).balance = 10**18
    return world


def _install(state, address, runtime):
    state.account(address).code = runtime


def test_plain_value_transfer(state):
    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xAA, to=0xBB, value=500))
    assert result.success
    assert state.account(0xBB).balance == 500


def test_insufficient_balance(state):
    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xAA, to=0xBB, value=10**19))
    assert not result.success
    assert state.account(0xBB).balance == 0


def test_storage_commits_on_success(state):
    _install(state, 0xC1, _runtime_store_42())
    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xAA, to=0xC1))
    assert result.success
    assert state.account(0xC1).storage[1] == 42
    assert result.return_data[-1] == 42


def test_storage_rolls_back_on_revert(state):
    _install(state, 0xC2, _runtime_revert())
    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xAA, to=0xC2, value=100))
    assert not result.success
    assert 5 not in state.account(0xC2).storage
    # The value transfer rolled back too.
    assert state.account(0xC2).balance == 0
    assert state.account(0xAA).balance == 10**18


def test_cross_contract_call_executes_callee(state):
    _install(state, 0xC1, _runtime_store_42())
    _install(state, 0xD1, _runtime_call(0xC1))
    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xAA, to=0xD1))
    assert result.success
    assert state.account(0xC1).storage[1] == 42  # callee really ran
    assert state.account(0xD1).storage[0] == 1  # caller saw success


def test_failed_callee_reported_and_isolated(state):
    _install(state, 0xC2, _runtime_revert())
    _install(state, 0xD1, _runtime_call(0xC2))
    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xAA, to=0xD1))
    assert result.success  # the caller survives the callee's revert
    assert state.account(0xD1).storage[0] == 0  # and saw the failure
    assert 5 not in state.account(0xC2).storage  # callee rolled back


def test_reentrancy_bounded_by_depth(state):
    # A contract that calls itself forever.
    _install(state, 0xE1, _runtime_call(0xE1))
    machine = CallMachine(state, max_depth=8)
    result = machine.execute(Message(sender=0xAA, to=0xE1))
    assert result.success  # the outermost frame completes
    depths = [entry.depth for entry in machine.trace]
    assert max(depths) <= 8


def test_staticcall_does_not_mutate(state):
    _install(state, 0xC1, _runtime_store_42())
    asm = Assembler()
    asm.push(0).push(0).push(0).push(0)
    asm.push(0xC1, width=20).op("GAS").op("STATICCALL")
    asm.op("POP").op("STOP")
    _install(state, 0xD2, asm.assemble())
    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xAA, to=0xD2))
    assert result.success
    assert 1 not in state.account(0xC1).storage  # write rolled back


def test_create_from_transaction(state):
    machine = CallMachine(state)
    runtime = _runtime_store_42()
    result, address = machine.create(0xAA, 0, make_init_code(runtime))
    assert result.success
    assert state.account(address).code == runtime


def test_create_returns_address_to_creator(state):
    # A contract that CREATEs a child and stores the new address.
    runtime = _runtime_store_42()
    init = make_init_code(runtime)
    asm = Assembler()
    asm.push_label("init_end")  # length marker handled below
    # Store init code into memory via CODECOPY of our own tail.
    # Simpler: push the init code via PUSH chunks is messy — embed it
    # and CODECOPY from a known offset.
    asm = Assembler()
    asm.push(len(init)).push_label("payload").push(0).op("CODECOPY")
    asm.push(len(init)).push(0).push(0).op("CREATE")
    asm.push(0).op("SSTORE")  # storage[0] = child address
    asm.op("STOP")
    asm.label("payload").raw(init)
    _install(state, 0xF1, asm.assemble())
    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xAA, to=0xF1))
    assert result.success
    child = state.account(0xF1).storage[0]
    assert child != 0
    assert state.account(child).code == runtime


def test_call_trace_recorded(state):
    _install(state, 0xC1, _runtime_store_42())
    _install(state, 0xD1, _runtime_call(0xC1))
    machine = CallMachine(state)
    machine.execute(Message(sender=0xAA, to=0xD1))
    kinds = [entry.kind for entry in machine.trace]
    assert kinds.count("call") == 2  # inner + outer
