"""Fuzzer: bug oracle mechanics and the typed-vs-untyped gap."""

from repro.apps.fuzzer import ContractFuzzer, build_fuzz_targets
from repro.evm.interpreter import Interpreter


def test_targets_deterministic():
    a = build_fuzz_targets(n_contracts=5, seed=1)
    b = build_fuzz_targets(n_contracts=5, seed=1)
    assert [t.bytecode for t in a] == [t.bytecode for t in b]


def test_targets_execute():
    targets = build_fuzz_targets(n_contracts=3, seed=2)
    for target in targets:
        for fn in target.functions:
            calldata = fn.sig.selector + b"\x00" * 96
            result = Interpreter(target.bytecode).call(calldata)
            # All-zero args never satisfy the entropy condition, so the
            # bug must not fire spuriously.
            assert not result.invalid_hit


def test_typed_fuzzer_reaches_planted_bug():
    targets = build_fuzz_targets(n_contracts=8, seed=3)
    fuzzer = ContractFuzzer(typed=True, seed=4)
    report = fuzzer.fuzz_campaign(targets, budget_per_function=80)
    assert report.bug_count > 0
    assert report.executions > 0


def test_typed_finds_at_least_as_many_bugs():
    targets = build_fuzz_targets(n_contracts=20, seed=5)
    typed = ContractFuzzer(typed=True, seed=6).fuzz_campaign(targets)
    untyped = ContractFuzzer(typed=False, seed=6).fuzz_campaign(targets)
    assert typed.bug_count >= untyped.bug_count


def test_deep_bugs_resist_untyped_fuzzing():
    # All-deep targets: random byte sequences essentially never satisfy
    # the canonicality constraints.
    targets = build_fuzz_targets(
        n_contracts=10, seed=7, deep_ratio=1.0, all_deep_ratio=1.0
    )
    typed = ContractFuzzer(typed=True, seed=8).fuzz_campaign(
        targets, budget_per_function=60
    )
    untyped = ContractFuzzer(typed=False, seed=8).fuzz_campaign(
        targets, budget_per_function=60
    )
    assert typed.bug_count > untyped.bug_count * 2


def test_bug_oracle_is_invalid_instruction():
    targets = build_fuzz_targets(n_contracts=1, seed=9, deep_ratio=0.0,
                                 all_deep_ratio=0.0)
    target = targets[0]
    fn = target.functions[0]
    # Brute-force a triggering input via the typed generator.
    fuzzer = ContractFuzzer(typed=True, seed=10)
    interp = Interpreter(target.bytecode)
    hit = False
    for _ in range(200):
        result = interp.call(fuzzer._make_input(fn))
        if result.invalid_hit:
            hit = True
            break
    assert hit


def test_mutation_fuzzer_beats_generation_on_staged_bugs():
    from repro.apps.fuzzer import MutationFuzzer, build_staged_targets

    targets = build_staged_targets(8, seed=23)
    mutation = MutationFuzzer(seed=1).fuzz_campaign(targets, 250)
    generation = ContractFuzzer(typed=True, seed=1).fuzz_campaign(targets, 250)
    assert mutation.bug_count > generation.bug_count
    # Coverage feedback climbs the stages; blind generation is stuck at
    # the 2^-stages joint probability.
    assert mutation.bug_count >= 0.7 * sum(len(t.functions) for t in targets)


def test_mutation_operators_type_safe():
    import random as _random

    from repro.abi.codec import encode
    from repro.abi.types import BoolType, FixedBytesType, IntType, UIntType
    from repro.apps.fuzzer import MutationFuzzer

    fuzzer = MutationFuzzer(seed=3)
    rng = _random.Random(4)
    for param in (UIntType(8), UIntType(256), IntType(16), IntType(256),
                  BoolType(), FixedBytesType(4)):
        value = param.random_value(rng)
        for _ in range(50):
            value = fuzzer._mutate_value(param, value)
            # Every mutant must still encode: type-aware mutation never
            # produces out-of-range values.
            encode([param], [value])


def test_staged_targets_first_param_is_uint():
    from repro.apps.fuzzer import build_staged_targets

    for target in build_staged_targets(4, seed=5):
        for fn in target.functions:
            assert fn.sig.params[0].canonical() == "uint256"
            assert fn.bug_kind == "staged"


def test_untyped_inputs_are_random_bytes():
    targets = build_fuzz_targets(n_contracts=1, seed=11)
    fn = targets[0].functions[0]
    fuzzer = ContractFuzzer(typed=False, seed=12)
    data = fuzzer._make_input(fn)
    assert data[:4] == fn.sig.selector  # selector is known to both modes
    assert len(data) >= 36
