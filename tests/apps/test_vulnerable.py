"""The vulnerable-contract builders behave as labeled."""

from repro.apps.oracles import (
    dangerous_delegatecall,
    exception_disorder,
    reentrancy,
)
from repro.apps.vulnerable import (
    DEPOSIT_SELECTOR,
    build_always_revert,
    build_attacker,
    build_bank,
    build_delegate_proxy,
    build_unchecked_send,
)
from repro.chain import Chain, Transaction


def _attack(reentrant: bool):
    chain = Chain()
    chain.fund(0xA11CE, 10**9)
    chain.fund(0xEC0, 10**9)
    bank = chain.deploy(build_bank(reentrant=reentrant), sender=0xA11CE)
    attacker = chain.deploy(build_attacker(bank), sender=0xEC0)
    chain.state.account(attacker).storage[0] = 3
    deposit = DEPOSIT_SELECTOR.to_bytes(4, "big")
    chain.send(Transaction(sender=0xA11CE, to=bank, data=deposit, value=200))
    chain.fund(attacker, 100)
    chain.send(Transaction(sender=attacker, to=bank, data=deposit, value=100))
    chain.state.account(attacker).balance = 0
    receipt = chain.send(Transaction(sender=0xEC0, to=attacker, data=b""))
    return chain, attacker, receipt


def test_reentrant_bank_is_drained_and_flagged():
    chain, attacker, receipt = _attack(reentrant=True)
    assert receipt.success
    assert chain.state.account(attacker).balance == 300  # victim's funds too
    finding = reentrancy(chain._machine.trace)
    assert finding is not None
    assert "paid out 3 times" in finding.detail


def test_fixed_bank_pays_once_and_is_clean():
    chain, attacker, receipt = _attack(reentrant=False)
    assert receipt.success
    assert chain.state.account(attacker).balance == 100  # only the deposit
    assert reentrancy(chain._machine.trace) is None


def test_unchecked_send_triggers_exception_disorder():
    chain = Chain()
    chain.fund(0xE0A, 10**9)
    revert_addr = chain.deploy(build_always_revert(), sender=0xE0A)
    caller = chain.deploy(build_unchecked_send(revert_addr), sender=0xE0A)
    receipt = chain.call(caller, b"")
    assert receipt.success
    finding = exception_disorder(chain._machine.trace, receipt.success)
    assert finding is not None


def test_delegate_proxy_flagged_with_attacker_target():
    chain = Chain()
    chain.fund(0xE0A, 10**9)
    proxy = chain.deploy(build_delegate_proxy(), sender=0xE0A)
    evil = chain.deploy(build_always_revert(), sender=0xE0A)
    calldata = b"\xde\xad\xbe\xef" + evil.to_bytes(32, "big")
    receipt = chain.call(proxy, calldata)
    finding = dangerous_delegatecall(chain._machine.trace, calldata)
    assert finding is not None
    assert f"{evil:#x}" in finding.detail
