"""Control-flow structuring of lifted bytecode."""

from repro.abi.signature import FunctionSignature, Visibility
from repro.apps.structurer import Structurer
from repro.compiler import compile_contract
from repro.evm.asm import Assembler


def test_straight_line_has_no_loops_or_gotos_into_structure():
    sig = FunctionSignature.parse("f(uint8,bool)")
    contract = compile_contract([sig])
    structured = Structurer().structure(contract.bytecode)
    assert structured.loop_count == 0
    assert "STOP()" in structured.render()


def test_public_array_copy_loop_becomes_while():
    sig = FunctionSignature.parse("f(uint256[3][2])", Visibility.PUBLIC)
    contract = compile_contract([sig])
    structured = Structurer().structure(contract.bytecode)
    assert structured.loop_count == 1
    text = structured.render()
    assert "while not (" in text
    assert "continue" in text
    assert "CALLDATACOPY" in text


def test_nested_loops_both_recovered():
    sig = FunctionSignature.parse("f(uint8[2][3][4])", Visibility.PUBLIC)
    contract = compile_contract([sig])
    structured = Structurer().structure(contract.bytecode)
    # Three dimensions -> two loop levels.
    assert structured.loop_count == 2


def test_dispatcher_condition_becomes_if():
    sig = FunctionSignature.parse("f(uint8)")
    contract = compile_contract([sig])
    text = Structurer().structure(contract.bytecode).render()
    assert "if" in text


def test_indentation_reflects_nesting():
    sig = FunctionSignature.parse("f(uint256[2][2])", Visibility.PUBLIC)
    contract = compile_contract([sig])
    structured = Structurer().structure(contract.bytecode)
    loop_lines = [
        line for line in structured.lines if line.lstrip().startswith("while")
    ]
    assert loop_lines
    loop_indent = len(loop_lines[0]) - len(loop_lines[0].lstrip())
    body_index = structured.lines.index(loop_lines[0]) + 1
    body_indent = len(structured.lines[body_index]) - len(
        structured.lines[body_index].lstrip()
    )
    assert body_indent > loop_indent


def test_computed_jump_degrades_to_goto_star():
    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").op("JUMP")
    asm.op("JUMPDEST").op("STOP")
    structured = Structurer().structure(asm.assemble())
    assert "goto *" in structured.render()


def test_every_block_appears_once():
    sig = FunctionSignature.parse("f(uint256[2][2],bool)", Visibility.PUBLIC)
    contract = compile_contract([sig])
    structured = Structurer().structure(contract.bytecode)
    labels = [l.strip() for l in structured.lines if l.strip().startswith("loc_")]
    assert len(labels) == len(set(labels))
