"""Erays lifter and the Erays+ signature-aware enhancement."""

from repro.abi.signature import FunctionSignature, Visibility
from repro.apps.erays import Erays, EraysPlus
from repro.compiler import compile_contract
from repro.evm.asm import Assembler
from repro.sigrec.api import SigRec


def test_lift_simple_block():
    asm = Assembler()
    asm.push(1).push(2).op("ADD").push(0).op("MSTORE").op("STOP")
    lifted = Erays().lift(asm.assemble())
    text = lifted.render()
    assert "ADD(0x2, 0x1)" in text
    assert "MSTORE(0x0, v1)" in text
    assert "STOP()" in text


def test_dup_swap_do_not_emit_statements():
    asm = Assembler()
    asm.push(1).op("DUP1").op("SWAP1").op("ADD").op("POP").op("STOP")
    lifted = Erays().lift(asm.assemble())
    names = [s.op for b in lifted.blocks for s in b.statements]
    assert "DUP1" not in names and "SWAP1" not in names


def test_stack_underflow_becomes_in_symbols():
    # A block consuming values produced by a predecessor.
    asm = Assembler()
    asm.push(5).push_label("b").op("JUMP")
    asm.label("b").op("JUMPDEST").op("POP").op("STOP")
    lifted = Erays().lift(asm.assemble())
    text = lifted.render()
    assert "JUMP(" in text


def test_line_count_counts_statements():
    contract = compile_contract([FunctionSignature.parse("f(uint8,bool)")])
    lifted = Erays().lift(contract.bytecode)
    assert lifted.line_count > 5


def test_expression_folding_nests_pure_defs():
    sig = FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL)
    contract = compile_contract([sig])
    flat = Erays().lift(contract.bytecode)
    folded = Erays().lift(contract.bytecode, fold=True)
    assert folded.line_count < flat.line_count
    text = folded.render()
    # The dispatcher comparison folds into one nested expression.
    assert "EQ(0xa9059cbb, DIV(CALLDATALOAD(0x0)" in text


def test_folding_keeps_multi_use_defs():
    from repro.evm.asm import Assembler

    asm = Assembler()
    # v1 = CALLDATALOAD(0) used twice: must stay a named definition.
    asm.push(0).op("CALLDATALOAD")
    asm.op("DUP1").op("ADD")
    asm.push(0).op("MSTORE").op("STOP")
    folded = Erays().lift(asm.assemble(), fold=True)
    text = folded.render()
    assert "v1 = CALLDATALOAD(0x0)" in text
    assert "ADD(v1, v1)" in text


def test_folding_never_inlines_memory_reads():
    from repro.evm.asm import Assembler

    asm = Assembler()
    asm.push(7).push(0).op("MSTORE")
    asm.push(0).op("MLOAD")  # must not fold across the store boundary
    asm.push(1).op("ADD")
    asm.push(32).op("MSTORE").op("STOP")
    text = Erays().lift(asm.assemble(), fold=True).render()
    assert "MLOAD(0x0)" in text
    # The MLOAD keeps its own named definition.
    assert "= MLOAD" in text


def test_erays_plus_names_and_types_arguments():
    sig = FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL)
    contract = compile_contract([sig])
    recovered = SigRec().recover(contract.bytecode)
    result = EraysPlus(recovered).enhance(contract.bytecode)
    assert result.added_types == 2
    assert result.added_param_names == 2
    assert "arg1: address = calldata[0x4]" in result.text
    assert "arg2: uint256 = calldata[0x24]" in result.text


def test_erays_plus_removes_plumbing():
    sig = FunctionSignature.parse("f(uint8,int16,bytes4)", Visibility.EXTERNAL)
    contract = compile_contract([sig])
    recovered = SigRec().recover(contract.bytecode)
    result = EraysPlus(recovered).enhance(contract.bytecode)
    # The three mask lines are parameter-access plumbing.
    assert result.removed_lines >= 3
    plain = Erays().lift(contract.bytecode)
    enhanced_lines = result.text.count("\n")
    assert enhanced_lines < plain.render().count("\n")


def test_erays_plus_num_names_for_dynamic_params():
    sig = FunctionSignature.parse("g(uint256[])", Visibility.EXTERNAL)
    contract = compile_contract([sig])
    recovered = SigRec().recover(contract.bytecode)
    result = EraysPlus(recovered).enhance(contract.bytecode)
    assert result.added_num_names >= 1
    assert "num(" in result.text


def test_erays_plus_multifunction():
    sigs = [
        FunctionSignature.parse("a(uint256)"),
        FunctionSignature.parse("b(address,bool)"),
    ]
    contract = compile_contract(sigs)
    recovered = SigRec().recover(contract.bytecode)
    result = EraysPlus(recovered).enhance(contract.bytecode)
    assert result.added_param_names >= 3
