"""ParChecker: valid encodings pass, each malformation class is caught."""

import random

import pytest

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Visibility
from repro.apps.parchecker import (
    CORRUPTION_KINDS,
    ParChecker,
    corrupt_calldata,
)
from repro.compiler import compile_contract
from repro.sigrec.api import SigRec

TRANSFER = FunctionSignature.parse("transfer(address,uint256)", Visibility.EXTERNAL)


def _checker_for(*sigs):
    contract = compile_contract(list(sigs))
    recovered = SigRec().recover_map(contract.bytecode)
    return ParChecker({s: r.param_list for s, r in recovered.items()})


def test_valid_calldata_passes():
    checker = _checker_for(TRANSFER)
    calldata = encode_call(TRANSFER.selector, list(TRANSFER.params), [0xABC, 10_000])
    result = checker.check(calldata)
    assert result.valid
    assert result.known_function


def test_unknown_function_is_not_flagged():
    checker = _checker_for(TRANSFER)
    result = checker.check(b"\x12\x34\x56\x78" + b"\x00" * 64)
    assert result.valid
    assert not result.known_function


def test_too_short_calldata_invalid():
    checker = _checker_for(TRANSFER)
    assert not checker.check(b"\x12").valid


def test_short_address_attack_detected():
    checker = _checker_for(TRANSFER)
    rng = random.Random(0)
    attack = corrupt_calldata(TRANSFER, [0xAB00, 0x2710], "short_address", rng)
    result = checker.check(attack)
    assert not result.valid
    assert result.short_address_attack


def test_dirty_uint_padding_detected():
    sig = FunctionSignature.parse("f(uint8,bool)")
    checker = _checker_for(sig)
    rng = random.Random(1)
    bad = corrupt_calldata(sig, [5, True], "dirty_uint_padding", rng)
    result = checker.check(bad)
    assert not result.valid
    assert not result.short_address_attack


def test_dirty_bytes_padding_detected():
    sig = FunctionSignature.parse("f(bytes4)")
    checker = _checker_for(sig)
    rng = random.Random(2)
    bad = corrupt_calldata(sig, [b"abcd"], "dirty_bytes_padding", rng)
    assert not checker.check(bad).valid


def test_bad_bool_detected():
    sig = FunctionSignature.parse("f(bool)")
    checker = _checker_for(sig)
    rng = random.Random(3)
    bad = corrupt_calldata(sig, [True], "bad_bool", rng)
    assert not checker.check(bad).valid


def test_truncated_tail_detected():
    sig = FunctionSignature.parse("f(bytes)", Visibility.PUBLIC)
    checker = _checker_for(sig)
    rng = random.Random(4)
    bad = corrupt_calldata(sig, [b"x" * 40], "truncated_tail", rng)
    assert bad is not None
    assert not checker.check(bad).valid


def test_bad_offset_detected():
    sig = FunctionSignature.parse("f(uint256[])", Visibility.PUBLIC)
    checker = _checker_for(sig)
    rng = random.Random(5)
    bad = corrupt_calldata(sig, [[1, 2]], "bad_offset", rng)
    assert not checker.check(bad).valid


def test_corruptions_inapplicable_return_none():
    rng = random.Random(6)
    sig = FunctionSignature.parse("f(uint256)")
    assert corrupt_calldata(sig, [1], "short_address", rng) is None
    assert corrupt_calldata(sig, [1], "bad_bool", rng) is None
    assert corrupt_calldata(sig, [1], "truncated_tail", rng) is None


def test_unknown_corruption_kind_raises():
    rng = random.Random(7)
    with pytest.raises(ValueError):
        corrupt_calldata(TRANSFER, [1, 2], "nonsense", rng)


def test_scan_chain_pipeline():
    from repro.apps.parchecker import scan_chain
    from repro.chain import Chain, Transaction

    chain = Chain()
    chain.fund(0xAA, 10**18)
    contract = compile_contract([TRANSFER])
    address = chain.deploy(contract.bytecode, sender=0xAA)
    good = encode_call(TRANSFER.selector, list(TRANSFER.params), [0xB, 10])
    rng = random.Random(0)
    bad = corrupt_calldata(TRANSFER, [0xAB00, 1000], "short_address", rng)
    for data in (good, good, bad, good):
        chain.send(Transaction(sender=0xAA, to=address, data=data))
    chain.mine()

    recovered = SigRec().recover_map(chain.code_at(address))
    checker = ParChecker({s: r.param_list for s, r in recovered.items()})
    report = scan_chain(chain, checker)
    assert report.blocks_scanned == 1
    assert report.transactions_scanned == 4
    assert report.invalid == 1
    assert report.short_address_attacks == 1
    assert abs(report.invalid_ratio - 0.25) < 1e-9
    assert len(report.flagged) == 1


def test_all_kinds_catchable_on_suitable_signature():
    sig = FunctionSignature.parse("g(uint8,bytes4,bool,bytes)")
    checker = _checker_for(sig, TRANSFER)
    rng = random.Random(8)
    values = [7, b"abcd", True, b"payload!"]
    for kind in CORRUPTION_KINDS:
        target, vals = (sig, values)
        if kind == "short_address":
            target, vals = TRANSFER, [0xAB00, 0x2710]
        bad = corrupt_calldata(target, vals, kind, rng)
        if bad is None:
            continue
        assert not checker.check(bad).valid, kind
