"""Vulnerability oracles, exercised by real exploit transactions.

Builds the classic vulnerable-bank / attacker pair in EVM assembly,
runs the exploit on the chain substrate, and checks that the oracles
fire — and stay silent on benign traffic.
"""

import pytest

from repro.apps.oracles import (
    dangerous_delegatecall,
    exception_disorder,
    reentrancy,
    run_all_oracles,
)
from repro.chain.machine import CallMachine, CallTraceEntry, Message
from repro.chain.state import WorldState
from repro.evm.asm import Assembler
from repro.evm.keccak import selector

WITHDRAW = int.from_bytes(selector("withdraw()"), "big")


def _bank_runtime() -> bytes:
    """storage[caller] holds a balance; withdraw() sends it via CALL
    *before* zeroing the balance — the DAO bug."""
    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").push(0xE0).op("SHR")
    asm.op("DUP1").push(WITHDRAW, width=4).op("EQ")
    asm.push_label("withdraw").op("JUMPI")
    asm.op("STOP")

    asm.label("withdraw").op("JUMPDEST").op("POP")
    asm.op("CALLER").op("SLOAD")  # [bal]
    asm.op("DUP1").op("ISZERO").push_label("done").op("JUMPI")
    # CALL(gas, caller, bal, in=0/0, out=0/0)
    asm.push(0).push(0).push(0).push(0)  # outSize outOff inSize inOff
    asm.op("DUP5")  # value = bal
    asm.op("CALLER").op("GAS").op("CALL").op("POP")
    # The fatal ordering: the balance is cleared only now.
    asm.push(0).op("CALLER").op("SSTORE")
    asm.label("done").op("JUMPDEST").op("POP").op("STOP")
    return asm.assemble()


def _attacker_runtime(bank: int) -> bytes:
    """Re-enters the bank while storage[0] re-entry budget lasts."""
    asm = Assembler()
    asm.push(0).op("SLOAD")  # [cnt]
    asm.op("DUP1").op("ISZERO").push_label("stop").op("JUMPI")
    asm.push(1).op("SWAP1").op("SUB").push(0).op("SSTORE")  # cnt -= 1
    # memory[0..4] = withdraw() selector
    asm.push(WITHDRAW << 224, width=32).push(0).op("MSTORE")
    asm.push(0).push(0).push(4).push(0)  # outSize outOff inSize inOff
    asm.push(0)  # value
    asm.push(bank, width=20).op("GAS").op("CALL").op("POP")
    asm.op("STOP")
    asm.label("stop").op("JUMPDEST").op("POP").op("STOP")
    return asm.assemble()


BANK = 0xBA2C
ATTACKER = 0xA77AC2


@pytest.fixture()
def exploited_state():
    state = WorldState()
    state.account(BANK).code = _bank_runtime()
    state.account(BANK).balance = 300  # the bank holds everyone's funds
    state.account(BANK).storage[ATTACKER] = 100  # attacker's deposit
    state.account(ATTACKER).code = _attacker_runtime(BANK)
    state.account(ATTACKER).storage[0] = 3  # re-entry budget
    state.account(0xE0A).balance = 10**6
    return state


def test_reentrancy_exploit_drains_and_is_detected(exploited_state):
    machine = CallMachine(exploited_state)
    result = machine.execute(Message(sender=0xE0A, to=ATTACKER))
    assert result.success
    # The attacker withdrew its 100 multiple times.
    assert exploited_state.account(ATTACKER).balance > 100
    finding = reentrancy(machine.trace)
    assert finding is not None
    assert finding.oracle == "reentrancy"
    assert f"{BANK:#x}" in finding.detail


def test_fixed_bank_not_flagged(exploited_state):
    """Zeroing the balance *before* the send kills both the drain and
    the (value-bearing) re-entry report."""
    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").push(0xE0).op("SHR")
    asm.op("DUP1").push(WITHDRAW, width=4).op("EQ")
    asm.push_label("withdraw").op("JUMPI")
    asm.op("STOP")
    asm.label("withdraw").op("JUMPDEST").op("POP")
    asm.op("CALLER").op("SLOAD")
    asm.op("DUP1").op("ISZERO").push_label("done").op("JUMPI")
    asm.push(0).op("CALLER").op("SSTORE")  # clear FIRST
    asm.push(0).push(0).push(0).push(0)
    asm.op("DUP5").op("CALLER").op("GAS").op("CALL").op("POP")
    asm.label("done").op("JUMPDEST").op("POP").op("STOP")
    exploited_state.account(BANK).code = asm.assemble()

    machine = CallMachine(exploited_state)
    result = machine.execute(Message(sender=0xE0A, to=ATTACKER))
    assert result.success
    # Only the deposit comes out.
    assert exploited_state.account(ATTACKER).balance == 100


def test_exception_disorder_detected():
    state = WorldState()
    state.account(0xE0A).balance = 10**6
    # Callee always reverts.
    revert_asm = Assembler()
    revert_asm.push(0).push(0).op("REVERT")
    state.account(0xC0DE).code = revert_asm.assemble()
    # Caller ignores the failure and succeeds anyway.
    caller_asm = Assembler()
    caller_asm.push(0).push(0).push(0).push(0).push(0)
    caller_asm.push(0xC0DE, width=20).op("GAS").op("CALL").op("POP").op("STOP")
    state.account(0xD0).code = caller_asm.assemble()

    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xE0A, to=0xD0))
    finding = exception_disorder(machine.trace, result.success)
    assert finding is not None
    assert "failed but" in finding.detail


def test_exception_disorder_silent_when_propagated():
    trace = [CallTraceEntry("call", 1, 2, 0, 1, False)]
    # Root failed too: the failure was propagated, not swallowed.
    assert exception_disorder(trace, root_success=False) is None


def test_dangerous_delegatecall_detected():
    target = 0x1234
    trace = [CallTraceEntry("delegatecall", 1, target, 0, 1, True)]
    calldata = bytes.fromhex("aabbccdd") + target.to_bytes(32, "big")
    finding = dangerous_delegatecall(trace, calldata)
    assert finding is not None


def test_dangerous_delegatecall_silent_for_hardcoded_target():
    trace = [CallTraceEntry("delegatecall", 1, 0x9999, 0, 1, True)]
    calldata = bytes.fromhex("aabbccdd") + (0x1234).to_bytes(32, "big")
    assert dangerous_delegatecall(trace, calldata) is None


def test_run_all_oracles_aggregates(exploited_state):
    machine = CallMachine(exploited_state)
    result = machine.execute(Message(sender=0xE0A, to=ATTACKER))
    findings = run_all_oracles(machine.trace, result.success, b"")
    assert any(f.oracle == "reentrancy" for f in findings)


def test_benign_transfer_has_no_findings():
    state = WorldState()
    state.account(0xE0A).balance = 100
    machine = CallMachine(state)
    result = machine.execute(Message(sender=0xE0A, to=0xB0B, value=10))
    assert run_all_oracles(machine.trace, result.success, b"") == []
