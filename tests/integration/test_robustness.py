"""Robustness: the analyzers never crash on arbitrary bytecode.

Mainnet bytecode includes hand-written assembly, truncated pushes,
metadata trailers and plain garbage; every front-facing component must
degrade gracefully (empty or partial results), never raise.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.erays import Erays, EraysPlus
from repro.apps.structurer import Structurer
from repro.evm.cfg import build_cfg
from repro.evm.disasm import disassemble
from repro.evm.interpreter import Interpreter
from repro.sigrec.api import SigRec
from repro.sigrec.selectors import extract_selectors


@settings(max_examples=80, deadline=None)
@given(data=st.binary(min_size=0, max_size=400))
def test_sigrec_never_crashes_on_garbage(data):
    recovered = SigRec().recover(data)
    assert isinstance(recovered, list)


@settings(max_examples=80, deadline=None)
@given(data=st.binary(min_size=0, max_size=400))
def test_interpreter_never_crashes_on_garbage(data):
    result = Interpreter(data, max_steps=5_000).call(b"\x01\x02\x03\x04")
    assert result.success in (True, False)


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=300))
def test_lifter_and_structurer_never_crash(data):
    lifted = Erays().lift(data, fold=True)
    assert lifted.line_count >= 0
    structured = Structurer().structure(data)
    assert isinstance(structured.render(), str)


@settings(max_examples=60, deadline=None)
@given(data=st.binary(min_size=0, max_size=300))
def test_cfg_and_selectors_never_crash(data):
    build_cfg(data)
    extract_selectors(data)
    disassemble(data)


@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=0, max_size=200), seed=st.integers(0, 2**32))
def test_erays_plus_never_crashes(data, seed):
    # Recovered signatures from garbage are empty or partial; the IR
    # enhancer must cope either way.
    recovered = SigRec().recover(data)
    result = EraysPlus(recovered).enhance(data)
    assert isinstance(result.text, str)


def test_metadata_trailer_tolerated():
    """Solidity appends a CBOR metadata blob after the code."""
    from repro.abi.signature import FunctionSignature
    from repro.compiler import compile_contract

    sig = FunctionSignature.parse("f(uint8,address)")
    contract = compile_contract([sig])
    trailer = bytes.fromhex("a26469706673") + bytes(range(40)) + b"\x00\x33"
    recovered = SigRec().recover_map(contract.bytecode + trailer)
    selector = int.from_bytes(sig.selector, "big")
    assert recovered[selector].param_list == "uint8,address"


def test_fifty_function_contract():
    """Scale smoke: a contract at real-token dispatcher size."""
    from repro.corpus.signatures import SignatureGenerator
    from repro.compiler import compile_contract

    gen = SignatureGenerator(seed=77, struct_weight=0, nested_weight=0)
    sigs = gen.signatures(50)
    contract = compile_contract(sigs)
    recovered = SigRec().recover_map(contract.bytecode)
    correct = sum(
        1
        for sig in sigs
        if recovered.get(int.from_bytes(sig.selector, "big"))
        and recovered[int.from_bytes(sig.selector, "big")].param_list
        == sig.param_list()
    )
    assert correct >= 48  # near-perfect at dispatcher scale
