"""Exhaustive width coverage: every uintM, intM and bytesM round-trips.

§3.1 derives the rules from contracts covering *all possible widths*
(uint8..uint256, int8..int256, bytes1..bytes32); this suite checks the
final system the same way, in both visibilities.
"""

import pytest

from repro.abi.signature import FunctionSignature, Visibility
from repro.abi.types import FixedBytesType, IntType, UIntType
from repro.compiler import compile_contract
from repro.sigrec.api import SigRec

_TOOL = SigRec()


def _roundtrip(param, vis):
    sig = FunctionSignature("probe", (param,), vis)
    contract = compile_contract([sig])
    out = _TOOL.recover_map(contract.bytecode)
    return out[int.from_bytes(sig.selector, "big")].param_list


@pytest.mark.parametrize("bits", range(8, 257, 8))
@pytest.mark.parametrize("vis", [Visibility.PUBLIC, Visibility.EXTERNAL])
def test_every_uint_width(bits, vis):
    # uint160 stays uint160 (not address) because the generated body
    # uses it arithmetically — the R16 distinction.
    assert _roundtrip(UIntType(bits), vis) == f"uint{bits}"


@pytest.mark.parametrize("bits", range(8, 257, 8))
@pytest.mark.parametrize("vis", [Visibility.PUBLIC, Visibility.EXTERNAL])
def test_every_int_width(bits, vis):
    assert _roundtrip(IntType(bits), vis) == f"int{bits}"


@pytest.mark.parametrize("size", range(1, 33))
@pytest.mark.parametrize("vis", [Visibility.PUBLIC, Visibility.EXTERNAL])
def test_every_bytes_size(size, vis):
    assert _roundtrip(FixedBytesType(size), vis) == f"bytes{size}"


@pytest.mark.parametrize("items", range(1, 11))
def test_every_static_array_size(items):
    """§3.1 sets static dimension sizes from 1 to 10."""
    from repro.abi.types import ArrayType

    param = ArrayType(UIntType(256), items)
    assert _roundtrip(param, Visibility.EXTERNAL) == f"uint256[{items}]"
    assert _roundtrip(param, Visibility.PUBLIC) == f"uint256[{items}]"


@pytest.mark.parametrize("dims", range(1, 6))
def test_every_array_dimension(dims):
    """§3.1 sets array dimensions from 1 to 5."""
    from repro.abi.types import ArrayType

    param = UIntType(256)
    for _ in range(dims):
        param = ArrayType(param, 2)
    expected = "uint256" + "[2]" * dims
    assert _roundtrip(param, Visibility.EXTERNAL) == expected
