"""The central invariant, property-tested:

    recover(compile(sig)) == canonical(sig)

for randomly drawn *recoverable* signatures in all four
{Solidity, Vyper} x {optimized, unoptimized} modes.  "Recoverable"
excludes only the by-design indistinguishables (§5.2 case 5), which
have their own directed tests in test_quirk_cases.py.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.abi.types import TupleType
from repro.compiler import CodegenOptions, compile_contract
from repro.corpus.signatures import SignatureGenerator
from repro.sigrec.api import SigRec


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**31),
    optimize=st.booleans(),
    n_params=st.integers(1, 4),
)
def test_solidity_roundtrip(seed, optimize, n_params):
    gen = SignatureGenerator(seed=seed, struct_weight=0.0, nested_weight=0.0)
    sig = gen.signature(n_params=n_params)
    contract = compile_contract([sig], CodegenOptions(optimize=optimize))
    out = SigRec().recover_map(contract.bytecode)
    selector = int.from_bytes(sig.selector, "big")
    assert selector in out
    assert out[selector].param_list == sig.param_list(), (
        f"{sig.visibility.value} {sig.canonical()} "
        f"recovered as {out[selector].param_list}"
    )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), n_params=st.integers(1, 3))
def test_vyper_roundtrip(seed, n_params):
    gen = SignatureGenerator(seed=seed, language=Language.VYPER)
    sig = gen.signature(n_params=n_params)
    # Vyper structs are layout-identical to their flattened members —
    # a by-design indistinguishability (§2.3.2), excluded here and
    # covered by the quirk-case tests instead.
    assume(not any(isinstance(p, TupleType) for p in sig.params))
    contract = compile_contract([sig], CodegenOptions(language=Language.VYPER))
    out = SigRec().recover_map(contract.bytecode)
    selector = int.from_bytes(sig.selector, "big")
    assert selector in out
    assert out[selector].param_list == sig.param_list()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31), n_functions=st.integers(2, 6))
def test_multifunction_contracts(seed, n_functions):
    gen = SignatureGenerator(seed=seed, struct_weight=0.0, nested_weight=0.0)
    sigs = gen.signatures(n_functions)
    contract = compile_contract(sigs)
    out = SigRec().recover_map(contract.bytecode)
    for sig in sigs:
        selector = int.from_bytes(sig.selector, "big")
        assert selector in out
        assert out[selector].param_list == sig.param_list()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_struct_and_nested_roundtrip(seed):
    gen = SignatureGenerator(
        seed=seed, struct_weight=0.5, nested_weight=0.5, composite_weight=0.0
    )
    sig = gen.signature(n_params=1)
    contract = compile_contract([sig])
    out = SigRec().recover_map(contract.bytecode)
    selector = int.from_bytes(sig.selector, "big")
    assert selector in out
    assert out[selector].param_list == sig.param_list()
