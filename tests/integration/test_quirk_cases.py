"""The five documented inaccuracy cases behave as §5.2 describes."""

import random

import pytest

from repro.abi.signature import FunctionSignature, Visibility
from repro.compiler import CodegenOptions, compile_contract
from repro.compiler.contract import FunctionSpec
from repro.corpus.quirks import QUIRK_NAMES, apply_quirk
from repro.sigrec.api import SigRec


def _recover(spec_or_sig, options=None):
    contract = compile_contract([spec_or_sig], options)
    sig = contract.signatures[0]
    out = SigRec().recover_map(contract.bytecode)
    return sig, out.get(int.from_bytes(sig.selector, "big"))


def test_case1_inline_assembly_reads_extra_params():
    # Listing 10: start() reads two words via assembly; SigRec reports
    # what is actually read.
    rng = random.Random(0)
    spec = apply_quirk(FunctionSignature.parse("start()"), "case1", rng)
    sig, rec = _recover(spec)
    assert sig.param_list() == ""
    assert rec is not None
    assert rec.param_list == "uint256,uint256"


def test_case2_type_conversion_recovers_converted_type():
    # Listing 11: declared uint256[k], used as uint8 items.
    rng = random.Random(1)
    spec = apply_quirk(FunctionSignature.parse("setGen0Stat(uint256[6])"), "case2", rng)
    sig, rec = _recover(spec)
    assert sig.param_list().startswith("uint256[")
    assert rec is not None
    assert rec.param_list.startswith("uint8[")


def test_case3_address_in_arithmetic_becomes_uint160():
    rng = random.Random(2)
    spec = apply_quirk(FunctionSignature.parse("f(address)"), "case3", rng)
    sig, rec = _recover(spec)
    assert sig.param_list() == "address"
    assert rec is not None
    assert rec.param_list == "uint160"


def test_case4_storage_reference_recovers_uint256():
    rng = random.Random(3)
    spec = apply_quirk(FunctionSignature.parse("f(uint256[])"), "case4", rng)
    sig, rec = _recover(spec)
    assert sig.param_list() == "uint256[]"
    assert rec is not None
    assert rec.param_list == "uint256"


def test_case5_optimized_constant_index_static_array():
    # No bound checks -> no structure -> the array item reads look like
    # a basic parameter.
    sig = FunctionSignature.parse("f(uint256[3])", Visibility.EXTERNAL)
    spec = FunctionSpec(sig, const_index=True)
    _, rec = _recover(spec, CodegenOptions(optimize=True))
    assert rec is not None
    assert rec.param_list == "uint256"


def test_case5_unoptimized_constant_index_still_recoverable():
    # Without the optimizer the bound checks remain and the array is
    # recovered despite constant indices.
    sig = FunctionSignature.parse("f(uint256[3])", Visibility.EXTERNAL)
    spec = FunctionSpec(sig, const_index=True)
    _, rec = _recover(spec, CodegenOptions(optimize=False))
    assert rec is not None
    assert rec.param_list == "uint256[3]"


def test_case5_bytes_without_byte_access_is_string():
    sig = FunctionSignature.parse("f(bytes)", Visibility.PUBLIC)
    spec = FunctionSpec(sig, no_byte_access=True)
    _, rec = _recover(spec)
    assert rec is not None
    assert rec.param_list == "string"


def test_case5_static_struct_flattens():
    sig = FunctionSignature.parse("f((uint256,bool))")
    _, rec = _recover(sig)
    assert rec is not None
    assert rec.param_list == "uint256,bool"


@pytest.mark.parametrize("quirk", QUIRK_NAMES)
def test_every_quirk_produces_a_divergence(quirk):
    rng = random.Random(42)
    base = FunctionSignature.parse("f(uint256)")
    spec = apply_quirk(base, quirk, rng)
    options = CodegenOptions(optimize=True) if spec.const_index else None
    sig, rec = _recover(spec, options)
    assert rec is not None
    assert rec.param_list != sig.param_list()
