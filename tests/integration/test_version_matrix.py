"""Recovery across the full compiler-version catalog (Fig. 15's core).

A fixed, type-diverse signature set must recover under *every* codegen
version — DIV-era, SHR-era, either memory base, with and without the
calldatasize check — and under the optimizer for non-case-5 types.
"""

import pytest

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.compiler import compile_contract
from repro.compiler.options import solidity_versions, vyper_versions
from repro.sigrec.api import SigRec

FIXED_SET = [
    FunctionSignature.parse("a(uint8,address)", Visibility.EXTERNAL),
    FunctionSignature.parse("b(bytes,bool)", Visibility.PUBLIC),
    FunctionSignature.parse("c(uint256[2][])", Visibility.PUBLIC),
    FunctionSignature.parse("d(int32,bytes4,string)", Visibility.EXTERNAL),
]


@pytest.mark.parametrize(
    "options",
    solidity_versions()[::9],  # every 9th version: all eras represented
    ids=lambda o: o.version_key,
)
def test_fixed_set_recovers_under_version(options):
    contract = compile_contract(FIXED_SET, options)
    recovered = SigRec().recover_map(contract.bytecode)
    for sig in FIXED_SET:
        selector = int.from_bytes(sig.selector, "big")
        assert recovered[selector].param_list == sig.param_list(), (
            options.version_key
        )


def test_all_solidity_versions_smoke():
    """Every version compiles and recovers a simple signature."""
    sig = FunctionSignature.parse("ping(uint8,address)", Visibility.EXTERNAL)
    for options in solidity_versions():
        contract = compile_contract([sig], options)
        recovered = SigRec().recover_map(contract.bytecode)
        selector = int.from_bytes(sig.selector, "big")
        assert recovered[selector].param_list == "uint8,address", (
            options.version_key
        )


def test_all_vyper_versions_smoke():
    sig = FunctionSignature.parse(
        "ping(address,int128)", Visibility.PUBLIC, Language.VYPER
    )
    for options in vyper_versions():
        contract = compile_contract([sig], options)
        recovered = SigRec().recover_map(contract.bytecode)
        selector = int.from_bytes(sig.selector, "big")
        assert recovered[selector].param_list == "address,int128", (
            options.version_key
        )
