"""Obfuscated accessing patterns (the §7 extension).

The obfuscating codegen replaces every idiom with a semantically
equivalent but syntactically different sequence; SigRec's generalized
semantic rules must recover signatures regardless, the executable
semantics must be unchanged, and the strict (pre-generalization) rule
set must fail — otherwise the obfuscation isn't obfuscating anything.
"""

import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Visibility
from repro.compiler import CodegenOptions, compile_contract
from repro.corpus.signatures import SignatureGenerator
from repro.evm.disasm import disassemble
from repro.evm.interpreter import Interpreter
from repro.sigrec.api import SigRec

OBF = CodegenOptions(version="0.8.0", obfuscate=True)


@pytest.mark.parametrize(
    "text",
    [
        "f(uint8)", "f(uint160)", "f(address)", "f(bool)", "f(bytes4)",
        "f(uint256[3])", "f(uint8[2][2])", "f(uint256[])", "f(uint8[3][])",
        "f(bytes)", "f(string)", "f(uint8[][])", "f((uint256,uint8[]))",
    ],
)
@pytest.mark.parametrize("vis", [Visibility.PUBLIC, Visibility.EXTERNAL])
def test_obfuscated_recovery(text, vis):
    sig = FunctionSignature.parse(text, vis)
    contract = compile_contract([sig], OBF)
    out = SigRec().recover_map(contract.bytecode)
    selector = int.from_bytes(sig.selector, "big")
    assert out[selector].param_list == sig.param_list()


def test_obfuscated_bytecode_actually_differs():
    sig = FunctionSignature.parse("f(uint8,bool,address)")
    plain = compile_contract([sig]).bytecode
    obfuscated = compile_contract([sig], OBF).bytecode
    assert plain != obfuscated
    plain_ops = [i.op.name for i in disassemble(plain)]
    obf_ops = [i.op.name for i in disassemble(obfuscated)]
    # The masks changed family: AND disappears, shifts appear.
    assert "AND" in plain_ops
    assert "SHL" in obf_ops and "SHR" in obf_ops


def test_obfuscation_preserves_execution_semantics():
    rng = random.Random(5)
    sig = FunctionSignature.parse("f(uint8,bytes4,bool)", Visibility.PUBLIC)
    plain = compile_contract([sig])
    obfuscated = compile_contract([sig], OBF)
    for _ in range(20):
        values = [p.random_value(rng) for p in sig.params]
        calldata = encode_call(sig.selector, list(sig.params), values)
        a = Interpreter(plain.bytecode).call(calldata)
        b = Interpreter(obfuscated.bytecode).call(calldata)
        assert a.success == b.success


def test_strict_rules_fail_under_obfuscation():
    sig = FunctionSignature.parse("f(uint8,address,bool)")
    contract = compile_contract([sig], OBF)
    strict = SigRec(semantic_idioms=False).recover_map(contract.bytecode)
    general = SigRec().recover_map(contract.bytecode)
    selector = int.from_bytes(sig.selector, "big")
    assert general[selector].param_list == sig.param_list()
    assert strict[selector].param_list != sig.param_list()


def test_coarse_only_loses_refinement():
    sig = FunctionSignature.parse("f(uint8,address)")
    contract = compile_contract([sig])
    coarse = SigRec(coarse_only=True).recover_map(contract.bytecode)
    selector = int.from_bytes(sig.selector, "big")
    # Coarse inference defaults every basic type to uint256 (R4).
    assert coarse[selector].param_list == "uint256,uint256"


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31), n_params=st.integers(1, 3))
def test_obfuscated_roundtrip_property(seed, n_params):
    gen = SignatureGenerator(seed=seed, struct_weight=0.0, nested_weight=0.0)
    sig = gen.signature(n_params=n_params)
    contract = compile_contract([sig], OBF)
    out = SigRec().recover_map(contract.bytecode)
    selector = int.from_bytes(sig.selector, "big")
    assert selector in out
    assert out[selector].param_list == sig.param_list()
