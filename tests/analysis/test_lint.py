"""The linter verdict: severities, rendering, JSON shape."""

from repro.abi.signature import FunctionSignature
from repro.analysis import lint_bytecode
from repro.compiler import compile_contract
from repro.evm.asm import Assembler


def test_clean_contract_lints_ok():
    contract = compile_contract([FunctionSignature.parse("ping(uint8)")])
    report = lint_bytecode(contract.bytecode)
    assert report.ok
    assert report.counts()["error"] == 0
    assert "OK" in report.render_text()


def test_malformed_bytecode_fails_lint():
    a = Assembler()
    a.op("POP").op("STOP")
    report = lint_bytecode(a.assemble())
    assert not report.ok
    assert "FAIL" in report.render_text()
    assert any(f.kind == "stack-underflow" for f in report.findings)


def test_truncated_push_warns():
    # PUSH2 with only one immediate byte present.
    report = lint_bytecode(bytes([0x61, 0xFF]))
    kinds = {f.kind: f.severity for f in report.findings}
    assert kinds.get("truncated-push") == "warning"
    assert report.ok  # warnings don't fail the lint


def test_unresolved_jump_is_informational():
    a = Assembler()
    a.push(0).op("CALLDATALOAD").op("JUMP")
    a.op("JUMPDEST").op("STOP")
    report = lint_bytecode(a.assemble())
    notes = [f for f in report.findings if f.kind == "unresolved-jump"]
    assert len(notes) == 1
    assert notes[0].severity == "info"
    assert report.ok


def test_to_dict_shape():
    contract = compile_contract([FunctionSignature.parse("a(bool)")])
    data = lint_bytecode(contract.bytecode).to_dict()
    assert data["ok"] is True
    assert isinstance(data["blocks"], int)
    assert all(s.startswith("0x") and len(s) == 10 for s in data["selectors"])
    for finding in data["findings"]:
        assert set(finding) == {"kind", "pc", "severity", "detail"}


def test_findings_sorted_by_pc():
    a = Assembler()
    a.op("POP").op("POP").op("STOP")
    report = lint_bytecode(a.assemble())
    pcs = [f.pc for f in report.findings]
    assert pcs == sorted(pcs)
