"""The linter verdict: severities, rendering, JSON shape."""

from repro.abi.signature import FunctionSignature
from repro.analysis import lint_bytecode
from repro.compiler import compile_contract
from repro.evm.asm import Assembler


def test_clean_contract_lints_ok():
    contract = compile_contract([FunctionSignature.parse("ping(uint8)")])
    report = lint_bytecode(contract.bytecode)
    assert report.ok
    assert report.counts()["error"] == 0
    assert "OK" in report.render_text()


def test_malformed_bytecode_fails_lint():
    a = Assembler()
    a.op("POP").op("STOP")
    report = lint_bytecode(a.assemble())
    assert not report.ok
    assert "FAIL" in report.render_text()
    assert any(f.kind == "stack-underflow" for f in report.findings)


def test_truncated_push_warns():
    # PUSH2 with only one immediate byte present.
    report = lint_bytecode(bytes([0x61, 0xFF]))
    kinds = {f.kind: f.severity for f in report.findings}
    assert kinds.get("truncated-push") == "warning"
    assert report.ok  # warnings don't fail the lint


def test_unresolved_jump_is_informational():
    a = Assembler()
    a.push(0).op("CALLDATALOAD").op("JUMP")
    a.op("JUMPDEST").op("STOP")
    report = lint_bytecode(a.assemble())
    notes = [f for f in report.findings if f.kind == "unresolved-jump"]
    assert len(notes) == 1
    assert notes[0].severity == "info"
    assert report.ok


def test_to_dict_shape():
    contract = compile_contract([FunctionSignature.parse("a(bool)")])
    data = lint_bytecode(contract.bytecode).to_dict()
    assert data["ok"] is True
    assert isinstance(data["blocks"], int)
    assert all(s.startswith("0x") and len(s) == 10 for s in data["selectors"])
    for finding in data["findings"]:
        assert set(finding) == {"kind", "pc", "severity", "detail"}


def test_findings_sorted_by_pc():
    a = Assembler()
    a.op("POP").op("POP").op("STOP")
    report = lint_bytecode(a.assemble())
    pcs = [f.pc for f in report.findings]
    assert pcs == sorted(pcs)


def test_unresolved_storage_sites_surface_as_info_findings():
    """A symbolic slot (calldata-derived) is a layout blind spot: the
    lint pass must attribute it to the dispatched function."""
    from repro.analysis import analyze

    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").push(0xE0).op("SHR")
    asm.op("DUP1").push(0xA9059CBB, width=4).op("EQ")
    asm.push_label("body").op("JUMPI")
    asm.label("fallback").op("JUMPDEST").op("STOP")
    asm.label("body").op("JUMPDEST").op("POP")
    asm.push(4).op("CALLDATALOAD").op("SLOAD").op("POP").op("STOP")
    analysis = analyze(asm.assemble())

    assert analysis.storage.unresolved == 1
    blind = [
        f for f in analysis.lint_findings if f.kind == "storage-unresolved"
    ]
    assert len(blind) == 1
    assert blind[0].severity == "info"
    assert "0xa9059cbb" in blind[0].detail
    assert "1 storage access site(s)" in blind[0].detail


def test_resolved_storage_traffic_raises_no_blind_spot_findings():
    from repro.analysis import analyze
    from repro.compiler.contract import FunctionSpec
    from repro.compiler.storage import StorageVariableSpec

    contract = compile_contract([
        FunctionSpec(
            FunctionSignature.parse("f(uint8)"),
            storage_ops=(("read", StorageVariableSpec(0, "value")),),
        )
    ])
    analysis = analyze(contract.bytecode)
    assert analysis.storage.unresolved == 0
    assert not [
        f for f in analysis.lint_findings if f.kind == "storage-unresolved"
    ]
