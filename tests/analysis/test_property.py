"""Corpus-wide properties of the static analysis layer.

Two invariants over everything our compilers can emit:

* the stack verifier accepts every compiled contract (codegen never
  produces malformed stack discipline), and
* the static dispatcher walk recovers exactly the selector set the
  symbolic executor discovers — on every contract, every dispatcher
  style, optimized or not, obfuscated or not, Solidity or Vyper.
"""

import pytest

from repro.abi.signature import FunctionSignature
from repro.analysis import analyze, cross_check, lint_bytecode
from repro.compiler import compile_contract
from repro.compiler.contract import CodegenOptions, DispatcherStyle, Language
from repro.corpus.datasets import (
    build_closed_source_corpus,
    build_obfuscated_corpus,
    build_vyper_corpus,
)
from repro.sigrec.engine import TASEEngine

SIGS = [
    FunctionSignature.parse("transfer(address,uint256)"),
    FunctionSignature.parse("setData(bytes,uint256[3])"),
    FunctionSignature.parse("flag()"),
]

VARIANTS = [
    CodegenOptions(dispatcher=style, optimize=optimize, obfuscate=obfuscate)
    for style in DispatcherStyle
    for optimize in (False, True)
    for obfuscate in (False, True)
] + [
    CodegenOptions(language=Language.VYPER, version="0.2.8"),
]


@pytest.mark.parametrize(
    "options", VARIANTS,
    ids=[
        f"{o.language.value}-{o.dispatcher.value}"
        f"{'-opt' if o.optimize else ''}{'-obf' if o.obfuscate else ''}"
        for o in VARIANTS
    ],
)
def test_every_codegen_variant_analyzes_clean(options):
    contract = compile_contract(SIGS, options)
    report = lint_bytecode(contract.bytecode)
    errors = [f.render() for f in report.findings if f.severity == "error"]
    assert not errors, errors
    expected = {int.from_bytes(s.selector, "big") for s in contract.signatures}
    assert set(report.analysis.selectors) == expected


def _corpora():
    yield build_closed_source_corpus(n_contracts=10, seed=7)
    yield build_vyper_corpus(n_contracts=5, seed=5)
    yield build_obfuscated_corpus(n_contracts=5, seed=9)


def test_static_selectors_match_tase_on_corpus():
    checked = 0
    for corpus in _corpora():
        for case in corpus.cases:
            bytecode = case.contract.bytecode
            analysis = analyze(bytecode)
            result = TASEEngine(bytecode).run()
            assert list(analysis.selectors) == result.selectors, (
                f"static {analysis.selectors} != TASE {result.selectors}"
            )
            assert cross_check(analysis, result.selectors) == ()
            checked += 1
    assert checked == 20


def test_corpus_verifies_clean():
    for corpus in _corpora():
        for case in corpus.cases:
            analysis = analyze(case.contract.bytecode)
            errors = [f for f in analysis.findings if f.severity == "error"]
            assert not errors, [f.render() for f in errors]
