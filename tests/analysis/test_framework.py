"""The analysis pass manager: wiring, validation, versions, observability."""

import pytest

from repro.abi.signature import FunctionSignature
from repro.analysis import analyze
from repro.analysis import framework
from repro.analysis.framework import (
    CORE_PIPELINE,
    DEFAULT_PIPELINE,
    AnalysisContext,
    AnalysisPass,
    AnalysisPipeline,
    PipelineError,
    pass_versions,
    schema_aggregate,
)
from repro.compiler import compile_contract
from repro.obs import MetricsRegistry, SpanTracer


def _code(signature="f(uint8)"):
    return compile_contract([FunctionSignature.parse(signature)]).bytecode


def test_default_pipeline_runs_all_passes():
    context = DEFAULT_PIPELINE.run(_code())
    assert DEFAULT_PIPELINE.names() == (
        "cfg", "jumps", "stack", "dispatcher", "storage",
        "reach", "mutability", "returns", "lint",
    )
    for name in DEFAULT_PIPELINE.names():
        assert name in context
    assert context["jumps"].blocks


def test_core_pipeline_is_a_prefix():
    assert CORE_PIPELINE.names() == DEFAULT_PIPELINE.names()[:4]


def test_products_shared_not_recomputed():
    calls = []

    def provider(ctx):
        calls.append("base")
        return 41

    def consumer_a(ctx):
        return ctx["base"] + 1

    def consumer_b(ctx):
        return ctx["base"] + 2

    pipeline = AnalysisPipeline((
        AnalysisPass("base", 1, provider),
        AnalysisPass("a", 1, consumer_a, requires=("base",)),
        AnalysisPass("b", 1, consumer_b, requires=("base",)),
    ))
    context = pipeline.run(b"")
    assert calls == ["base"]
    assert context["a"] == 42 and context["b"] == 43


def test_duplicate_pass_name_rejected():
    p = AnalysisPass("x", 1, lambda ctx: None)
    with pytest.raises(PipelineError, match="duplicate"):
        AnalysisPipeline((p, p))


def test_unsatisfied_requirement_rejected():
    with pytest.raises(PipelineError, match="requires 'missing'"):
        AnalysisPipeline((
            AnalysisPass("x", 1, lambda ctx: None, requires=("missing",)),
        ))


def test_requirement_ordering_rejected():
    early = AnalysisPass("late_user", 1, lambda ctx: None, requires=("late",))
    late = AnalysisPass("late", 1, lambda ctx: None)
    with pytest.raises(PipelineError):
        AnalysisPipeline((early, late))
    AnalysisPipeline((late, early))  # the valid order constructs fine


def test_missing_product_raises_helpfully():
    context = AnalysisContext(b"")
    with pytest.raises(KeyError, match="not available"):
        context["nothing"]


def test_replace_swaps_one_pass():
    bumped = DEFAULT_PIPELINE.replace(
        storage=AnalysisPass(
            "storage", 7, framework._run_storage,
            requires=("jumps", "dispatcher"),
        )
    )
    assert bumped.versions()["storage"] == 7
    assert bumped.versions()["cfg"] == DEFAULT_PIPELINE.versions()["cfg"]
    with pytest.raises(PipelineError, match="no such pass"):
        DEFAULT_PIPELINE.replace(nope=AnalysisPass("nope", 1, lambda c: None))


def test_pass_versions_follow_monkeypatched_pipeline(monkeypatch):
    baseline = pass_versions()
    aggregate = schema_aggregate()
    assert aggregate == ";".join(
        f"{name}={baseline[name]}" for name in sorted(baseline)
    )
    bumped = DEFAULT_PIPELINE.replace(
        lint=AnalysisPass(
            "lint", 9, framework._run_lint,
            requires=("jumps", "stack", "dispatcher", "storage"),
        )
    )
    monkeypatch.setattr(framework, "DEFAULT_PIPELINE", bumped)
    assert pass_versions()["lint"] == 9
    assert schema_aggregate() != aggregate


def test_analyze_with_core_pipeline_omits_new_products():
    analysis = analyze(_code(), pipeline=CORE_PIPELINE)
    assert analysis.storage is None
    assert analysis.lint_findings is None
    assert analysis.reach is None
    assert analysis.mutability is None
    assert analysis.returns is None
    assert analysis.dispatcher.selectors


def test_analyze_default_carries_storage_and_lint():
    analysis = analyze(_code())
    assert analysis.storage is not None
    assert analysis.lint_findings is not None
    assert analysis.reach is not None
    assert analysis.mutability is not None
    assert analysis.returns is not None


def test_pass_spans_and_counters_when_observing():
    metrics = MetricsRegistry()
    tracer = SpanTracer()
    DEFAULT_PIPELINE.run(_code(), metrics=metrics, tracer=tracer)
    span_names = {
        record["name"] for record in tracer.records
        if record["type"] == "span_start"
    }
    for name in DEFAULT_PIPELINE.names():
        assert f"analysis.{name}" in span_names
    runs = metrics.counter("analysis.pass_runs", **{"pass": "storage"}).value
    assert runs == 1
