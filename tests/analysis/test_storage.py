"""Storage-layout recovery: idioms, classification, determinism."""

from repro.abi.signature import FunctionSignature
from repro.analysis import analyze, recover_storage_layout
from repro.analysis.dataflow import resolve_jumps
from repro.compiler import compile_contract
from repro.compiler.contract import FunctionSpec
from repro.compiler.storage import StorageVariableSpec, storage_ground_truth
from repro.corpus.datasets import build_storage_corpus
from repro.evm.asm import Assembler
from repro.evm.cfg import build_cfg


def _layout(asm: Assembler):
    return recover_storage_layout(resolve_jumps(build_cfg(asm.assemble())))


def _spec(signature, *ops):
    return FunctionSpec(FunctionSignature.parse(signature), storage_ops=ops)


def _one(layout, slot, offset=0):
    matches = [
        v for v in layout.variables if v.slot == slot and v.offset == offset
    ]
    assert len(matches) == 1, layout.variables
    return matches[0]


# -- hand-written idioms ------------------------------------------------


def test_plain_value_slot():
    asm = Assembler()
    asm.push(3).op("SLOAD").op("POP")
    asm.push(7).push(3).op("SSTORE").op("STOP")
    layout = _layout(asm)
    variable = _one(layout, 3)
    assert (variable.kind, variable.type) == ("value", "uint256")
    assert variable.reads == 1 and variable.writes == 1
    assert layout.unresolved == 0


def test_shr_and_mask_packed_read():
    asm = Assembler()
    asm.push(5).op("SLOAD")
    asm.push(64).op("SHR")
    asm.push(0xFFFF, width=2).op("AND").op("POP").op("STOP")
    variable = _one(_layout(asm), 5, offset=8)
    assert (variable.width, variable.type) == (2, "uint16")


def test_div_by_power_of_two_packed_read():
    asm = Assembler()
    asm.push(5).op("SLOAD")
    asm.push(1 << 160, width=21).op("SWAP1").op("DIV")
    asm.push((1 << 64) - 1, width=8).op("AND").op("POP").op("STOP")
    variable = _one(_layout(asm), 5, offset=20)
    assert (variable.width, variable.type) == (8, "uint64")


def test_signextend_marks_signed():
    asm = Assembler()
    asm.push(2).op("SLOAD")
    asm.push(1).op("SIGNEXTEND").op("POP").op("STOP")
    variable = _one(_layout(asm), 2)
    assert (variable.width, variable.type) == (2, "int16")


def test_rmw_clear_mask_is_a_packed_write():
    clear = ((1 << 256) - 1) ^ (0xFFFF << 64)
    asm = Assembler()
    asm.push(6).op("SLOAD")
    asm.push(clear, width=32).op("AND")
    asm.push(1 << 64, width=9).op("OR")
    asm.push(6).op("SSTORE").op("STOP")
    variable = _one(_layout(asm), 6, offset=8)
    assert (variable.width, variable.type) == (2, "uint16")


def test_caller_keyed_mapping():
    asm = Assembler()
    asm.op("CALLER").push(0).op("MSTORE")
    asm.push(7).push(0x20).op("MSTORE")
    asm.push(0x40).push(0).op("SHA3")
    asm.op("SLOAD").op("POP").op("STOP")
    variable = _one(_layout(asm), 7)
    assert (variable.kind, variable.depth) == ("mapping", 1)
    assert variable.type == "mapping(address => uint256)"


def test_nested_mapping_depth_two():
    asm = Assembler()
    asm.op("CALLER").push(0).op("MSTORE")
    asm.push(8).push(0x20).op("MSTORE")
    asm.push(0x40).push(0).op("SHA3")
    asm.op("CALLER").push(0).op("MSTORE")
    asm.push(0x20).op("MSTORE")
    asm.push(0x40).push(0).op("SHA3")
    asm.push(1).op("SWAP1").op("SSTORE").op("STOP")
    variable = _one(_layout(asm), 8)
    assert (variable.kind, variable.depth) == ("mapping", 2)
    assert variable.type == "mapping(address => mapping(address => uint256))"


def test_dynamic_array_element():
    asm = Assembler()
    asm.push(9).op("SLOAD").op("POP")  # length read
    asm.push(9).push(0).op("MSTORE")
    asm.push(0x20).push(0).op("SHA3")
    asm.push(2).op("ADD").op("SLOAD").op("POP").op("STOP")
    layout = _layout(asm)
    variable = _one(layout, 9)
    assert (variable.kind, variable.type) == ("dynamic_array", "uint256[]")
    assert variable.reads == 2  # length word + element


def test_unknown_slot_counts_unresolved():
    asm = Assembler()
    asm.op("CALLDATASIZE").op("SLOAD").op("POP").op("STOP")
    layout = _layout(asm)
    assert layout.unresolved == 1
    assert not layout.variables


def test_layout_render_text_mentions_slots():
    asm = Assembler()
    asm.push(3).op("SLOAD").op("POP").op("STOP")
    text = _layout(asm).render_text()
    assert "slot 3" in text and "uint256" in text


# -- through the codegen + full pipeline --------------------------------


def test_codegen_packed_slot_recovers_fields():
    contract = compile_contract([
        _spec(
            "f(uint8)",
            ("read", StorageVariableSpec(0, "packed", offset=0, width=20)),
            ("read", StorageVariableSpec(0, "packed", offset=20, width=2)),
            ("write", StorageVariableSpec(0, "packed", offset=22, width=1)),
        ),
    ])
    layout = analyze(contract.bytecode).storage
    by_key = {(v.offset, v.width): v.type for v in layout.variables_at(0)}
    assert by_key == {(0, 20): "address", (20, 2): "uint16", (22, 1): "uint8"}


def test_codegen_matches_ground_truth_on_archetypes():
    corpus = build_storage_corpus(n_contracts=3)  # the fixed archetypes
    for case in corpus.cases:
        layout = analyze(case.contract.bytecode).storage
        recovered = {
            (v.slot, v.offset, v.width):
                (v.kind, v.type, v.depth) for v in layout.variables
        }
        expected = {
            (t["slot"], t["offset"], t["width"]):
                (t["kind"], t["type"], t["depth"])
            for t in case.contract.storage
        }
        assert recovered == expected


def test_selector_attribution():
    read_spec = _spec("f()", ("read", StorageVariableSpec(0, "value")))
    write_spec = _spec("g()", ("write", StorageVariableSpec(1, "value")))
    contract = compile_contract([read_spec, write_spec])
    layout = analyze(contract.bytecode).storage
    selector_f = int.from_bytes(FunctionSignature.parse("f()").selector, "big")
    selector_g = int.from_bytes(FunctionSignature.parse("g()").selector, "big")
    assert _one(layout, 0).selectors == (selector_f,)
    assert _one(layout, 1).selectors == (selector_g,)


def test_layout_is_deterministic():
    corpus = build_storage_corpus(n_contracts=6)
    for case in corpus.cases:
        first = analyze(case.contract.bytecode).storage.to_dict()
        again = analyze(case.contract.bytecode).storage.to_dict()
        assert first == again


def test_ground_truth_write_only_signed_field_is_unsigned():
    signed = StorageVariableSpec(0, "packed", offset=0, width=8, signed=True)
    write_only = storage_ground_truth([[("write", signed)]])
    assert write_only[0]["type"] == "uint64"
    with_read = storage_ground_truth(
        [[("write", signed), ("read", signed)]]
    )
    assert with_read[0]["type"] == "int64"
