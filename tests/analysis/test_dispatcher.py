"""Static dispatcher extraction across every dispatcher shape."""

import pytest

from repro.abi.signature import FunctionSignature
from repro.analysis import analyze
from repro.compiler import compile_contract
from repro.compiler.contract import CodegenOptions, DispatcherStyle, Language

SIGS = [
    FunctionSignature.parse("transfer(address,uint256)"),
    FunctionSignature.parse("approve(address,uint256)"),
    FunctionSignature.parse("paused()"),
]


def _expected(contract):
    return {int.from_bytes(s.selector, "big") for s in contract.signatures}


@pytest.mark.parametrize("style", list(DispatcherStyle))
@pytest.mark.parametrize("optimize", [False, True])
def test_selectors_recovered_for_every_style(style, optimize):
    contract = compile_contract(
        SIGS, CodegenOptions(dispatcher=style, optimize=optimize)
    )
    analysis = analyze(contract.bytecode)
    assert set(analysis.selectors) == _expected(contract)


def test_entries_are_valid_jumpdests():
    contract = compile_contract(SIGS)
    analysis = analyze(contract.bytecode)
    for selector, entry in analysis.dispatcher.entries.items():
        assert entry in analysis.cfg.valid_jumpdests
        assert entry in analysis.dispatcher.regions[selector]


def test_binary_search_dispatcher():
    """Many functions force the GT-split binary-search dispatcher."""
    sigs = [FunctionSignature.parse(f"fn{i}(uint{8 * (i + 1)})") for i in range(8)]
    contract = compile_contract(sigs, CodegenOptions(optimize=True))
    analysis = analyze(contract.bytecode)
    assert set(analysis.selectors) == _expected(contract)


def test_vyper_dispatcher():
    contract = compile_contract(
        [
            FunctionSignature.parse("deposit(uint256)"),
            FunctionSignature.parse("owner()"),
        ],
        CodegenOptions(language=Language.VYPER, version="0.2.8"),
    )
    analysis = analyze(contract.bytecode)
    assert set(analysis.selectors) == _expected(contract)


def test_obfuscated_dispatcher():
    contract = compile_contract(SIGS, CodegenOptions(obfuscate=True))
    analysis = analyze(contract.bytecode)
    assert set(analysis.selectors) == _expected(contract)


def test_no_dispatcher_no_selectors():
    from repro.evm.asm import Assembler

    a = Assembler()
    a.push(0).push(0).op("RETURN")
    analysis = analyze(a.assemble())
    assert analysis.selectors == ()
    assert analysis.dispatcher.entries == {}


def test_unreachable_code_detected():
    from repro.evm.asm import Assembler

    a = Assembler()
    a.op("STOP")
    a.label("dead").op("JUMPDEST").op("STOP")  # nothing jumps here
    analysis = analyze(a.assemble())
    assert analysis.dispatcher.unreachable == frozenset({1})


def test_function_bodies_not_walked():
    """The dispatcher walk stops at selector matches: entry blocks are
    recorded but never visited."""
    contract = compile_contract(SIGS)
    analysis = analyze(contract.bytecode)
    entries = set(analysis.dispatcher.entries.values())
    assert entries
    assert not entries & analysis.dispatcher.dispatcher_blocks
