"""The stack-height verifier: accepts clean code, rejects malformed."""

from repro.abi.signature import FunctionSignature
from repro.analysis import analyze
from repro.analysis.dataflow import resolve_bytecode
from repro.analysis.stackcheck import STACK_LIMIT, verify_stack
from repro.compiler import compile_contract
from repro.evm.asm import Assembler


def _verify(bytecode: bytes):
    return verify_stack(resolve_bytecode(bytecode))


def _kinds(report):
    return {f.kind for f in report.findings if f.severity == "error"}


def test_compiled_contract_verifies_clean():
    contract = compile_contract(
        [FunctionSignature.parse("transfer(address,uint256)")]
    )
    report = _verify(contract.bytecode)
    assert report.ok, [f.render() for f in report.findings]
    assert report.entry_heights[0] == (0, 0)


def test_underflow_rejected():
    a = Assembler()
    a.op("POP").op("STOP")
    report = _verify(a.assemble())
    assert not report.ok
    assert _kinds(report) == {"stack-underflow"}


def test_underflow_mid_block_reports_exact_pc():
    a = Assembler()
    a.push(1).op("POP").op("POP").op("STOP")  # second POP underflows at pc 3
    report = _verify(a.assemble())
    (finding,) = [f for f in report.findings if f.kind == "stack-underflow"]
    assert finding.pc == 3


def test_unbalanced_join_rejected():
    """One path brings two operands to the join, the other only one."""
    a = Assembler()
    a.push(1).push(0)
    a.push_label("j").op("JUMPI")
    a.push(7)  # the extra operand only the fall path provides
    a.label("j").op("JUMPDEST").op("ADD").op("STOP")
    report = _verify(a.assemble())
    assert not report.ok
    assert _kinds(report) == {"unbalanced-join"}


def test_jump_to_non_jumpdest_rejected():
    a = Assembler()
    a.push(4).op("JUMP").op("STOP").op("STOP")
    report = _verify(a.assemble())
    assert not report.ok
    assert _kinds(report) == {"invalid-jump-target"}


def test_overflow_rejected():
    a = Assembler()
    for _ in range(STACK_LIMIT + 1):
        a.push(1)
    a.op("STOP")
    report = _verify(a.assemble())
    assert not report.ok
    assert "stack-overflow" in _kinds(report)


def test_shared_revert_block_at_many_heights_accepted():
    """A shared revert block legitimately joins different entry heights;
    mere imbalance without an underflow must not be an error."""
    a = Assembler()
    a.push(1)
    a.push_label("rev").op("JUMPI")          # height 0 at rev (cond consumed)
    a.push(5).push(6).push(1)
    a.push_label("rev").op("JUMPI")          # height 2 at rev
    a.op("STOP")
    a.label("rev").op("JUMPDEST")
    a.push(0).push(0).op("REVERT")
    report = _verify(a.assemble())
    assert report.ok, [f.render() for f in report.findings]
    rev = max(report.entry_heights)
    lo, hi = report.entry_heights[rev]
    assert (lo, hi) == (0, 2)


def test_analyze_surfaces_stack_findings():
    a = Assembler()
    a.op("POP").op("STOP")
    analysis = analyze(a.assemble())
    assert "stack-underflow" in {f.kind for f in analysis.findings}
