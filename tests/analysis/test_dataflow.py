"""Jump resolution via the push-constant stack dataflow."""

from repro.analysis.dataflow import (
    MAX_SET,
    _join_stacks,
    _join_values,
    resolve_bytecode,
)
from repro.evm.asm import Assembler


def test_adjacent_push_jump_resolved():
    a = Assembler()
    a.push_label("end").op("JUMP")
    a.label("end").op("JUMPDEST").op("STOP")
    rcfg = resolve_bytecode(a.assemble())
    assert not rcfg.incomplete
    assert not rcfg.unresolved_jumps
    (targets,) = rcfg.resolved_targets.values()
    assert targets == frozenset({3})


def test_separated_push_jump_resolved():
    """The base CFG only handles push+jump pairs; the dataflow tracks
    a target pushed early and shuffled below other operands."""
    a = Assembler()
    a.push_label("end")          # target, pushed first
    a.push(1).push(2).op("ADD").op("POP")
    a.op("JUMP")
    a.label("end").op("JUMPDEST").op("STOP")
    bytecode = a.assemble()
    rcfg = resolve_bytecode(bytecode)
    assert not rcfg.unresolved_jumps
    (targets,) = rcfg.resolved_targets.values()
    assert len(targets) == 1
    # The resolved edge is in the successor map too.
    (target,) = targets
    assert any(target in succ for succ in rcfg.successors.values())


def test_constant_folded_target():
    """A target computed as PUSH a; PUSH b; ADD still resolves."""
    a = Assembler()
    a.push(3).push(4).op("ADD")  # 7 = pc of the dest below
    a.op("JUMP")
    a.raw(b"\x00")               # padding so the dest lands at 7
    a.label("end").op("JUMPDEST").op("STOP")
    bytecode = a.assemble()
    assert bytecode[7] == 0x5B  # JUMPDEST where the fold should land
    rcfg = resolve_bytecode(bytecode)
    assert frozenset({7}) in rcfg.resolved_targets.values()


def test_return_address_dispatch_resolves_to_both_callers():
    """Two call sites pushing different return addresses into one shared
    block give that block's JUMP a two-target resolution."""
    a = Assembler()
    # call 1: push return address, jump to sub
    a.push_label("ret1").push_label("sub").op("JUMP")
    a.label("ret1").op("JUMPDEST")
    # call 2
    a.push_label("ret2").push_label("sub").op("JUMP")
    a.label("ret2").op("JUMPDEST").op("STOP")
    # the shared subroutine returns via the pushed address
    a.label("sub").op("JUMPDEST").op("JUMP")
    bytecode = a.assemble()
    rcfg = resolve_bytecode(bytecode)
    assert not rcfg.unresolved_jumps
    two_target = [t for t in rcfg.resolved_targets.values() if len(t) == 2]
    assert len(two_target) == 1


def test_input_dependent_jump_stays_unresolved():
    a = Assembler()
    a.push(0).op("CALLDATALOAD").op("JUMP")
    a.op("JUMPDEST").op("STOP")
    rcfg = resolve_bytecode(a.assemble())
    assert len(rcfg.unresolved_jumps) == 1
    assert not rcfg.resolved_targets


def test_constant_non_jumpdest_target_is_invalid():
    a = Assembler()
    a.push(2).push(2).op("MUL")  # 4: not a JUMPDEST
    a.op("JUMP")
    a.op("STOP").op("STOP")
    rcfg = resolve_bytecode(a.assemble())
    assert not rcfg.unresolved_jumps
    (bad,) = rcfg.invalid_targets.values()
    assert bad == frozenset({4})


def test_join_values_respects_set_cap():
    small = frozenset(range(MAX_SET // 2))
    assert _join_values(small, small) == small
    assert _join_values(small, None) is None
    big_a = frozenset(range(MAX_SET))
    big_b = frozenset(range(MAX_SET, 2 * MAX_SET))
    assert _join_values(big_a, big_b) is None


def test_join_stacks_aligns_at_top():
    a = (frozenset({1}), frozenset({2}), frozenset({3}))
    b = (frozenset({1}), frozenset({9}))
    joined = _join_stacks(a, b)
    assert len(joined) == 2
    assert joined[0] == frozenset({1})
    assert joined[1] == frozenset({2, 9})
