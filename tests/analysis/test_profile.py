"""Contract profiles: determinism, round-trips, schema validation."""

import json
import os

import pytest

from repro.abi.signature import FunctionSignature, Language
from repro.analysis import analyze
from repro.analysis.report import (
    PROFILE_SCHEMA_VERSION,
    ContractProfile,
    build_profile,
    profile_bytecode,
)
from repro.analysis.schema import SchemaError, validate, validate_or_raise
from repro.compiler import CodegenOptions, compile_contract
from repro.corpus.datasets import (
    build_abi_corpus,
    build_clone_corpus,
    build_open_source_corpus,
)
from repro.sigrec.api import SigRec
from repro.sigrec.batch import BatchRecovery

SCHEMA_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "docs", "profile.schema.json"
)


def _schema():
    with open(SCHEMA_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def _code(signature="transfer(address,uint256)", **options):
    return compile_contract(
        [FunctionSignature.parse(signature)], CodegenOptions(**options)
    ).bytecode


def _variant_bytecodes():
    """A spread of codegen shapes: eras, languages, obfuscation, clones."""
    out = [
        _code(),
        _code("f(uint8,bytes)", version="0.5.5", optimize=True),
        _code("g(int128)", language=Language.SOLIDITY, obfuscate=True),
    ]
    out.extend(
        case.contract.bytecode
        for case in build_clone_corpus(
            n_families=3, clones_per_family=2, seed=11, storage_rate=1.0
        ).cases
    )
    out.extend(
        case.contract.bytecode
        for case in build_open_source_corpus(n_contracts=4, seed=1).cases
    )
    out.extend(
        case.contract.bytecode
        for case in build_abi_corpus(n_contracts=4, seed=23).cases
    )
    return out


def test_profile_round_trips_exactly():
    profile = SigRec().profile(_code())
    clone = ContractProfile.from_dict(profile.to_dict())
    assert clone == profile
    assert clone.to_json() == profile.to_json()


def test_profile_repeated_runs_byte_identical():
    for code in _variant_bytecodes():
        first = SigRec().profile(code).to_json()
        again = SigRec().profile(code).to_json()
        assert first == again


def test_profile_serial_vs_workers_byte_identical(tmp_path):
    bytecodes = _variant_bytecodes()
    serial = BatchRecovery(tool=SigRec(), workers=0).profile_all(bytecodes)
    parallel = BatchRecovery(tool=SigRec(), workers=4).profile_all(bytecodes)
    assert [p.to_json() for p in serial] == [p.to_json() for p in parallel]

    # And through the persistent cache: the rehydrated document renders
    # byte-identically to the freshly built one.
    cold = BatchRecovery(
        tool=SigRec(), workers=0, cache_dir=str(tmp_path)
    ).profile_all(bytecodes)
    warm = BatchRecovery(
        tool=SigRec(), workers=0, cache_dir=str(tmp_path)
    ).profile_all(bytecodes)
    assert [p.to_json() for p in cold] == [p.to_json() for p in serial]
    assert [p.to_json() for p in warm] == [p.to_json() for p in serial]


def test_every_profile_validates_against_checked_in_schema():
    schema = _schema()
    tool = SigRec()
    for code in _variant_bytecodes():
        document = tool.profile(code).to_dict()
        assert validate(document, schema) == []


def test_profile_carries_signatures_and_storage():
    corpus = build_clone_corpus(
        n_families=2, clones_per_family=1, seed=11, storage_rate=1.0
    )
    case = corpus.cases[0]
    profile = SigRec().profile(case.contract.bytecode)
    assert profile.to_dict()["profile_schema"] == PROFILE_SCHEMA_VERSION
    selectors = {s["selector"] for s in profile.signatures}
    declared = {
        "0x" + sig.selector.hex() for sig in case.contract.signatures
    }
    assert selectors == declared
    assert profile.storage["variables"]
    assert profile.passes  # the pass-version provenance


def test_static_only_profile_skips_recovery():
    profile = SigRec().profile(_code(), signatures=[])
    assert profile.signatures == ()
    assert profile.dispatcher["selectors"]  # static facts still present


def test_profile_bytecode_helper_matches_build_profile():
    code = _code()
    helper = profile_bytecode(code)
    direct = build_profile(analyze(code), ())
    assert helper.to_json() == direct.to_json()


def test_render_text_mentions_sections():
    text = SigRec().profile(_code()).render_text()
    for fragment in ("contract", "functions", "storage", "lint"):
        assert fragment in text


# -- the subset schema validator ----------------------------------------


def test_validator_rejects_unknown_keyword():
    with pytest.raises(SchemaError, match="oneOf"):
        validate({}, {"oneOf": []})


def test_validator_type_and_required():
    schema = {
        "type": "object",
        "required": ["a"],
        "properties": {"a": {"type": "integer", "minimum": 2}},
        "additionalProperties": False,
    }
    assert validate({"a": 3}, schema) == []
    assert any("missing required" in e for e in validate({}, schema))
    assert any("minimum" in e for e in validate({"a": 1}, schema))
    assert any("unexpected" in e for e in validate({"a": 3, "b": 1}, schema))
    # bool is not a JSON integer even though Python says isinstance.
    assert any("expected integer" in e for e in validate({"a": True}, schema))


def test_validator_enum_pattern_const_items():
    schema = {
        "type": "array",
        "items": {"type": "string", "pattern": "^0x[0-9a-f]{2}$"},
    }
    assert validate(["0xab"], schema) == []
    assert any("does not match" in e for e in validate(["zz"], schema))
    assert any("enum" in e for e in validate("c", {"enum": ["a", "b"]}))
    assert validate(1, {"const": 1}) == []
    assert any("const" in e for e in validate(2, {"const": 1}))


def test_validator_pattern_properties():
    schema = {
        "type": "object",
        "patternProperties": {"^[a-z]+$": {"type": "integer"}},
        "additionalProperties": False,
    }
    assert validate({"abc": 1}, schema) == []
    assert any("unexpected" in e for e in validate({"ABC": 1}, schema))
    assert any(
        "expected integer" in e for e in validate({"abc": "x"}, schema)
    )


def test_validate_or_raise_lists_all_violations():
    schema = {
        "type": "object",
        "required": ["a", "b"],
        "additionalProperties": False,
    }
    with pytest.raises(ValueError, match="2 schema violation"):
        validate_or_raise({}, schema)


def test_checked_in_schema_stays_within_validator_subset():
    # The CI smoke step depends on the validator understanding every
    # keyword the schema uses; an unsupported keyword must surface as a
    # SchemaError here, not silently validate in CI.
    validate({}, _schema())
