"""Error paths of the subset JSON-schema validator.

The happy path runs constantly (CI validates every profile and ABI
document); these tests pin the *rejection* behaviour — each supported
keyword must produce a violation message anchored at the right path,
and malformed schemas must raise rather than validate vacuously.
"""

import pytest

from repro.analysis.schema import SchemaError, validate, validate_or_raise


def test_type_mismatch_reports_expected_and_actual():
    errors = validate("five", {"type": "integer"})
    assert errors == ["$: expected integer, got str"]


def test_type_mismatch_stops_cascading_structure_checks():
    # A non-object can't be missing properties: exactly one violation.
    schema = {"type": "object", "required": ["a"], "properties": {"a": {}}}
    errors = validate([1, 2], schema)
    assert len(errors) == 1
    assert "expected object" in errors[0]


def test_bool_is_not_an_integer():
    assert validate(True, {"type": "integer"})
    assert validate(True, {"type": "boolean"}) == []


def test_type_union_accepts_either_branch():
    schema = {"type": ["array", "null"]}
    assert validate(None, schema) == []
    assert validate([], schema) == []
    assert validate("nope", schema) == ["$: expected array/null, got str"]


def test_missing_required_key_names_the_property():
    schema = {
        "type": "object",
        "required": ["mutability", "returns"],
        "properties": {"mutability": {}, "returns": {}},
    }
    errors = validate({"mutability": "view"}, schema)
    assert errors == ["$: missing required property 'returns'"]


def test_unexpected_additional_property_rejected():
    schema = {
        "type": "object",
        "properties": {"known": {}},
        "additionalProperties": False,
    }
    errors = validate({"known": 1, "extra": 2}, schema)
    assert errors == ["$: unexpected property 'extra'"]


def test_pattern_properties_count_as_matched():
    schema = {
        "type": "object",
        "patternProperties": {"^0x[0-9a-f]{8}$": {"type": "integer"}},
        "additionalProperties": False,
    }
    assert validate({"0xa9059cbb": 7}, schema) == []
    errors = validate({"0xZZ": 7}, schema)
    assert errors == ["$: unexpected property '0xZZ'"]
    errors = validate({"0xa9059cbb": "seven"}, schema)
    assert errors == ["$.0xa9059cbb: expected integer, got str"]


def test_nested_array_item_failure_is_indexed():
    schema = {
        "type": "array",
        "items": {
            "type": "object",
            "required": ["name"],
            "properties": {
                "name": {"type": "string"},
                "tags": {"type": "array", "items": {"type": "string"}},
            },
        },
    }
    instance = [
        {"name": "ok", "tags": ["a"]},
        {"name": "bad", "tags": ["a", 3]},
        {"tags": []},
    ]
    errors = validate(instance, schema)
    assert "$[1].tags[1]: expected string, got int" in errors
    assert "$[2]: missing required property 'name'" in errors
    assert len(errors) == 2


def test_enum_const_pattern_and_bounds():
    assert validate("maybe", {"enum": ["yes", "no"]})
    assert validate(3, {"const": 2})
    assert validate("xyz", {"pattern": "^[0-9]+$"})
    assert validate(1, {"minimum": 2})
    assert validate(3, {"maximum": 2})
    assert validate(2, {"minimum": 2, "maximum": 2}) == []


def test_unknown_schema_keyword_raises_not_ignores():
    with pytest.raises(SchemaError, match="unsupported schema keyword"):
        validate({}, {"typo_keyword": True})


def test_unsupported_type_name_raises():
    with pytest.raises(SchemaError, match="unsupported type"):
        validate(1, {"type": "decimal"})


def test_validate_or_raise_lists_every_violation():
    schema = {
        "type": "object",
        "required": ["a", "b"],
        "properties": {"a": {}, "b": {}},
    }
    with pytest.raises(ValueError, match="2 schema violation"):
        validate_or_raise({}, schema)
    validate_or_raise({"a": 1, "b": 2}, schema)  # silent on success
