"""The ABI-completion passes: reachability, mutability, returns."""

import json
import os

import pytest

from repro.abi.signature import FunctionSignature
from repro.analysis import analyze
from repro.analysis.schema import validate
from repro.compiler import compile_contract
from repro.compiler.contract import ContractBuildError, FunctionSpec
from repro.compiler.options import CodegenOptions
from repro.compiler.storage import StorageVariableSpec
from repro.evm.asm import Assembler
from repro.sigrec.api import SigRec

_DOCS = os.path.join(os.path.dirname(__file__), "..", "..", "docs")


def _selector(sig):
    return int.from_bytes(sig.selector, "big")


def _compile(specs, **options):
    return compile_contract(specs, CodegenOptions(**options))


@pytest.mark.parametrize("obfuscate", [False, True])
@pytest.mark.parametrize(
    "mutability", ["payable", "nonpayable", "view", "pure"]
)
def test_mutability_recovered_per_declaration(mutability, obfuscate):
    sig = FunctionSignature.parse("f(uint256)")
    contract = _compile(
        [FunctionSpec(sig, mutability=mutability)], obfuscate=obfuscate
    )
    analysis = analyze(contract.bytecode)
    report = analysis.mutability.functions
    assert report[_selector(sig)] == mutability


def test_legacy_emission_reads_as_payable_with_no_outputs():
    sig = FunctionSignature.parse("f(uint8)")
    contract = _compile([FunctionSpec(sig)])
    analysis = analyze(contract.bytecode)
    selector = _selector(sig)
    assert analysis.mutability.functions[selector] == "payable"
    assert analysis.returns.functions[selector].shape == ()


def test_payable_value_read_is_not_a_guard():
    # `CALLVALUE POP` uses the opcode without branching on it — the
    # recognizer must not read presence as the guard idiom.
    sig = FunctionSignature.parse("deposit()")
    contract = _compile([FunctionSpec(sig, mutability="payable")])
    analysis = analyze(contract.bytecode)
    assert analysis.mutability.functions[_selector(sig)] == "payable"


def test_storage_traffic_forces_nonpayable_over_view():
    read = ("read", StorageVariableSpec(0, "value"))
    write = ("write", StorageVariableSpec(1, "value"))
    viewer = FunctionSpec(
        FunctionSignature.parse("peek()"), mutability="view",
        storage_ops=(read,),
    )
    writer = FunctionSpec(
        FunctionSignature.parse("poke()"), mutability="nonpayable",
        storage_ops=(write,),
    )
    analysis = analyze(_compile([viewer, writer]).bytecode)
    assert analysis.mutability.functions[_selector(viewer.sig)] == "view"
    assert analysis.mutability.functions[_selector(writer.sig)] == "nonpayable"


def test_contradictory_declarations_are_build_errors():
    read = ("read", StorageVariableSpec(0, "value"))
    write = ("write", StorageVariableSpec(1, "value"))
    with pytest.raises(ContractBuildError, match="pure"):
        _compile([
            FunctionSpec(FunctionSignature.parse("f()"), mutability="pure",
                         storage_ops=(read,))
        ])
    with pytest.raises(ContractBuildError, match="view"):
        _compile([
            FunctionSpec(FunctionSignature.parse("f()"), mutability="view",
                         storage_ops=(write,))
        ])


@pytest.mark.parametrize("shape", [
    ("uint256",),
    ("uint256", "uint256"),
    ("bytes",),
    ("string",),
    ("uint256", "bytes", "bool"),
    ("string", "uint256"),
])
def test_return_shapes_recovered(shape):
    from repro.compiler.effects import returns_skeleton

    sig = FunctionSignature.parse("f(uint8)")
    contract = _compile(
        [FunctionSpec(sig, mutability="nonpayable", returns=shape)]
    )
    analysis = analyze(contract.bytecode)
    recovered = analysis.returns.functions[_selector(sig)]
    assert recovered.shape == returns_skeleton(shape)
    assert recovered.sites


def test_reachability_regions_are_disjoint_on_bodies():
    a = FunctionSpec(FunctionSignature.parse("a(uint8)"), mutability="pure")
    b = FunctionSpec(
        FunctionSignature.parse("b(uint8)"), mutability="nonpayable"
    )
    analysis = analyze(_compile([a, b]).bytecode)
    reach = analysis.reach
    assert not reach.incomplete
    fa = reach.functions[_selector(a.sig)]
    fb = reach.functions[_selector(b.sig)]
    assert fa.complete and fb.complete
    # Different effect markers land in different regions: only b SSTOREs.
    assert "SSTORE" not in fa.ops
    assert "SSTORE" in fb.ops


def _unresolved_region_bytecode():
    """A dispatcher whose single body ends in a calldata-derived JUMP —
    the one shape the dataflow pass can never resolve."""
    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").push(0xE0).op("SHR")
    asm.op("DUP1").push(0xA9059CBB, width=4).op("EQ")
    asm.push_label("body").op("JUMPI")
    asm.label("fallback").op("JUMPDEST").op("STOP")
    asm.label("body").op("JUMPDEST").op("POP")
    asm.push(4).op("CALLDATALOAD").op("JUMP")
    return asm.assemble()


def test_incomplete_region_degrades_to_unknown_not_a_guess():
    analysis = analyze(_unresolved_region_bytecode())
    assert analysis.cfg.unresolved_jumps
    function = analysis.reach.functions[0xA9059CBB]
    assert not function.complete
    assert analysis.mutability.functions[0xA9059CBB] == "unknown"
    assert analysis.returns.functions[0xA9059CBB].shape is None


def test_profile_abi_section_keeps_honest_verdicts():
    sig = FunctionSignature.parse("f(uint8)")
    contract = _compile(
        [FunctionSpec(sig, mutability="view", returns=("uint256",))]
    )
    profile = SigRec().profile(contract.bytecode)
    entry = profile.abi[f"0x{_selector(sig):08x}"]
    assert entry == {"mutability": "view", "returns": ["uint256"]}

    schema = json.load(open(os.path.join(_DOCS, "profile.schema.json")))
    assert validate(profile.to_dict(), schema) == []


def test_profile_abi_honest_unknown_for_unresolved_region():
    profile = SigRec().profile(_unresolved_region_bytecode())
    entry = profile.abi["0xa9059cbb"]
    assert entry == {"mutability": "unknown", "returns": None}


def test_sigrec_abi_is_valid_standard_abi_json():
    specs = [
        FunctionSpec(FunctionSignature.parse("pay(uint256)"),
                     mutability="payable"),
        FunctionSpec(FunctionSignature.parse("get()"), mutability="view",
                     returns=("uint256",)),
        FunctionSpec(FunctionSignature.parse("name()"), mutability="pure",
                     returns=("string",)),
    ]
    abi = SigRec().abi(_compile(specs).bytecode)
    schema = json.load(open(os.path.join(_DOCS, "abi.schema.json")))
    assert validate(abi, schema) == []
    by_mutability = {e["stateMutability"] for e in abi}
    assert by_mutability == {"payable", "view", "pure"}
    named = {e["name"]: e for e in abi}
    get = named[f"func_{_selector(specs[1].sig):08x}"]
    assert [o["type"] for o in get["outputs"]] == ["uint256"]
    pay = named[f"func_{_selector(specs[0].sig):08x}"]
    assert [i["type"] for i in pay["inputs"]] == ["uint256"]


def test_sigrec_abi_degrades_unknown_to_nonpayable():
    abi = SigRec().abi(_unresolved_region_bytecode())
    entry = next(e for e in abi if e["name"] == "func_a9059cbb")
    assert entry["stateMutability"] == "nonpayable"
    assert entry["outputs"] == []
