"""Type system: canonical names, dynamism, parsing, sizes."""

import pytest

from repro.abi.types import (
    AbiTypeError,
    AddressType,
    ArrayType,
    BoolType,
    BoundedBytesType,
    BoundedStringType,
    BytesType,
    DecimalType,
    FixedBytesType,
    IntType,
    StringType,
    TupleType,
    UIntType,
    parse_type,
)


def test_canonical_names():
    assert UIntType(8).canonical() == "uint8"
    assert IntType(256).canonical() == "int256"
    assert AddressType().canonical() == "address"
    assert BoolType().canonical() == "bool"
    assert FixedBytesType(4).canonical() == "bytes4"
    assert BytesType().canonical() == "bytes"
    assert StringType().canonical() == "string"
    assert DecimalType().canonical() == "fixed168x10"


def test_invalid_widths_rejected():
    with pytest.raises(AbiTypeError):
        UIntType(7)
    with pytest.raises(AbiTypeError):
        UIntType(264)
    with pytest.raises(AbiTypeError):
        IntType(0)
    with pytest.raises(AbiTypeError):
        FixedBytesType(33)
    with pytest.raises(AbiTypeError):
        FixedBytesType(0)


def test_array_canonical_and_nesting():
    t = ArrayType(ArrayType(UIntType(256), 3), 2)
    assert t.canonical() == "uint256[3][2]"
    assert t.dimensions == [2, 3]
    assert t.base_element == UIntType(256)
    assert not t.is_dynamic
    assert t.static_size() == 6 * 32


def test_dynamic_array():
    t = ArrayType(UIntType(256), None)
    assert t.canonical() == "uint256[]"
    assert t.is_dynamic
    assert t.head_size() == 32
    with pytest.raises(AbiTypeError):
        t.static_size()


def test_nested_dynamic_detection():
    nested = ArrayType(ArrayType(UIntType(8), None), None)  # uint8[][]
    assert nested.is_nested_dynamic
    plain_dynamic = ArrayType(ArrayType(UIntType(8), 3), None)  # uint8[3][]
    assert not plain_dynamic.is_nested_dynamic
    static = ArrayType(ArrayType(UIntType(8), 3), 2)
    assert not static.is_nested_dynamic


def test_tuple_static_vs_dynamic():
    static = TupleType((UIntType(256), BoolType()))
    assert static.canonical() == "(uint256,bool)"
    assert not static.is_dynamic
    assert static.static_size() == 64
    dynamic = TupleType((UIntType(256), BytesType()))
    assert dynamic.is_dynamic
    assert dynamic.head_size() == 32


def test_empty_tuple_rejected():
    with pytest.raises(AbiTypeError):
        TupleType(())


def test_bounded_types_canonicalize_to_base():
    assert BoundedBytesType(50).canonical() == "bytes"
    assert BoundedBytesType(50).vyper_name() == "bytes[50]"
    assert BoundedStringType(10).canonical() == "string"
    assert BoundedStringType(10).vyper_name() == "string[10]"


@pytest.mark.parametrize(
    "text",
    [
        "uint256", "uint8", "int64", "address", "bool", "bytes4", "bytes32",
        "bytes", "string", "uint256[]", "uint8[3]", "uint256[3][2]",
        "uint8[][]", "bytes32[2][]", "(uint256,bool)", "(uint256,bytes)[]",
        "(uint256,(address,bytes))", "fixed168x10",
    ],
)
def test_parse_roundtrip(text):
    assert parse_type(text).canonical() == text


def test_parse_aliases():
    assert parse_type("uint").canonical() == "uint256"
    assert parse_type("int").canonical() == "int256"
    assert parse_type("decimal").canonical() == "fixed168x10"


@pytest.mark.parametrize("bad", ["", "foo", "uint7", "()", "(uint256", "bytes33"])
def test_parse_rejects_garbage(bad):
    with pytest.raises((AbiTypeError, ValueError)):
        parse_type(bad)


def test_random_values_are_well_typed():
    import random

    rng = random.Random(7)
    assert 0 <= UIntType(8).random_value(rng) < 256
    assert -(1 << 15) <= IntType(16).random_value(rng) < (1 << 15)
    assert isinstance(BoolType().random_value(rng), bool)
    assert len(FixedBytesType(4).random_value(rng)) == 4
    arr = ArrayType(UIntType(8), 3).random_value(rng)
    assert len(arr) == 3
    tup = TupleType((UIntType(8), BoolType())).random_value(rng)
    assert len(tup) == 2
    assert len(BoundedBytesType(5).random_value(rng)) <= 5
