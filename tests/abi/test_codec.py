"""ABI codec: layouts from the paper's figures, strictness, errors."""

import pytest

from repro.abi.codec import AbiCodecError, decode, encode, encode_call
from repro.abi.types import parse_type


def enc(type_text, value):
    return encode([parse_type(type_text)], [value])


def test_uint32_layout_fig3():
    # Fig. 3: uint32 0x11223344 is left-extended to 32 bytes.
    data = enc("uint32", 0x11223344)
    assert data == b"\x00" * 28 + bytes.fromhex("11223344")


def test_bytes4_layout_fig4():
    # Fig. 4: bytes4 'abcd' is right-extended.
    data = enc("bytes4", b"abcd")
    assert data == b"abcd" + b"\x00" * 28


def test_static_array_layout_fig5():
    # Fig. 5: uint256[3][2] items stored consecutively.
    value = [[1, 2, 3], [4, 5, 6]]
    data = enc("uint256[3][2]", value)
    assert len(data) == 6 * 32
    assert [int.from_bytes(data[i * 32 : (i + 1) * 32], "big") for i in range(6)] \
        == [1, 2, 3, 4, 5, 6]


def test_dynamic_array_layout_fig6():
    # Fig. 6: uint256[3][] with actual argument of 2 rows: offset, num, items.
    value = [[1, 2, 3], [4, 5, 6]]
    data = enc("uint256[3][]", value)
    assert int.from_bytes(data[0:32], "big") == 32  # offset field
    assert int.from_bytes(data[32:64], "big") == 2  # num field
    assert len(data) == 32 + 32 + 6 * 32


def test_nested_array_layout_fig7():
    # Fig. 7: uint[][] with [[1,2],[3]]: per-item offset and num fields.
    data = enc("uint256[][]", [[1, 2], [3]])
    offset1 = int.from_bytes(data[0:32], "big")
    assert offset1 == 32
    num1 = int.from_bytes(data[32:64], "big")
    assert num1 == 2
    # Two inner offsets relative to the start of the data area.
    off_a = int.from_bytes(data[64:96], "big")
    off_b = int.from_bytes(data[96:128], "big")
    base = 64  # data area begins after num1
    assert int.from_bytes(data[base + off_a : base + off_a + 32], "big") == 2
    assert int.from_bytes(data[base + off_b : base + off_b + 32], "big") == 1


def test_bytes_rounding():
    data = enc("bytes", b"abcd")
    assert int.from_bytes(data[32:64], "big") == 4  # num = un-padded length
    assert data[64:68] == b"abcd"
    assert len(data) == 32 + 32 + 32  # payload rounded up to 32


def test_struct_same_layout_as_flat_fig8():
    # Listing 2/3 + Fig. 8: (uint256,uint256) == two uint256 params.
    struct_data = encode([parse_type("(uint256,uint256)")], [(7, 9)])
    flat_data = encode([parse_type("uint256"), parse_type("uint256")], [7, 9])
    assert struct_data == flat_data


def test_dynamic_struct_layout_fig9():
    # Fig. 9: (uint[],uint) with ([1,2],3).
    data = enc("(uint256[],uint256)", ([1, 2], 3))
    offset1 = int.from_bytes(data[0:32], "big")
    assert offset1 == 32
    inner_off = int.from_bytes(data[32:64], "big")  # component 0's offset
    assert int.from_bytes(data[64:96], "big") == 3  # component 1 value
    num = int.from_bytes(data[32 + inner_off : 64 + inner_off], "big")
    assert num == 2


def test_roundtrip_various():
    cases = [
        ("uint8", 255),
        ("int16", -300),
        ("address", 0xDEADBEEF),
        ("bool", True),
        ("bytes4", b"\x01\x02\x03\x04"),
        ("bytes", b"hello world"),
        ("string", "smart contracts"),
        ("uint256[]", [1, 2, 3]),
        ("uint8[2][3]", [[1, 2], [3, 4], [5, 6]]),
        ("uint256[][]", [[1], [2, 3]]),
        ("(uint256,bytes,bool)", (5, b"xy", False)),
        ("(uint256,uint256[])", (1, [2, 3])),
    ]
    for text, value in cases:
        t = parse_type(text)
        decoded = decode([t], encode([t], [value]))[0]
        if isinstance(value, tuple):
            assert tuple(decoded) == value
        else:
            assert decoded == value


def test_encode_range_checks():
    with pytest.raises(AbiCodecError):
        enc("uint8", 256)
    with pytest.raises(AbiCodecError):
        enc("int8", 128)
    with pytest.raises(AbiCodecError):
        enc("address", 1 << 160)
    with pytest.raises(AbiCodecError):
        enc("bytes4", b"abc")  # wrong length
    with pytest.raises(AbiCodecError):
        enc("uint256", True)  # bool is not an int here
    with pytest.raises(AbiCodecError):
        enc("uint256[2]", [1])  # wrong count


def test_strict_decode_rejects_dirty_padding():
    t = parse_type("uint8")
    dirty = b"\x01" * 31 + b"\x05"
    with pytest.raises(AbiCodecError):
        decode([t], dirty)
    assert decode([t], dirty, strict=False)[0] == int.from_bytes(dirty, "big")


def test_strict_decode_rejects_bad_bool():
    t = parse_type("bool")
    with pytest.raises(AbiCodecError):
        decode([t], (2).to_bytes(32, "big"))


def test_strict_decode_rejects_dirty_bytes_tail():
    t = parse_type("bytes")
    data = bytearray(encode([t], [b"ab"]))
    data[-1] = 0xFF  # dirty padding byte after the 2-byte payload
    with pytest.raises(AbiCodecError):
        decode([t], bytes(data))


def test_decode_truncated_fails():
    t = parse_type("uint256")
    with pytest.raises(AbiCodecError):
        decode([t], b"\x00" * 31)


def test_decode_bad_offset_fails():
    t = parse_type("bytes")
    data = (10_000).to_bytes(32, "big")
    with pytest.raises(AbiCodecError):
        decode([t], data)


def test_encode_call_prepends_selector():
    t = parse_type("uint256")
    data = encode_call(bytes.fromhex("a9059cbb"), [t], [1])
    assert data[:4] == bytes.fromhex("a9059cbb")
    assert len(data) == 36
    with pytest.raises(AbiCodecError):
        encode_call(b"\x01", [t], [1])


def test_bounded_types_cap_enforced():
    from repro.abi.types import BoundedBytesType, BoundedStringType

    with pytest.raises(AbiCodecError):
        encode([BoundedBytesType(2)], [b"abc"])
    with pytest.raises(AbiCodecError):
        encode([BoundedStringType(2)], ["abc"])
    assert decode([BoundedBytesType(4)], encode([BoundedBytesType(4)], [b"ab"]))[0] == b"ab"
