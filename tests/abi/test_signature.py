"""Function signatures: parsing, canonical form, selectors."""

import pytest

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.abi.types import UIntType


def test_parse_and_canonical():
    sig = FunctionSignature.parse("transfer(address,uint256)")
    assert sig.name == "transfer"
    assert sig.canonical() == "transfer(address,uint256)"
    assert sig.param_list() == "address,uint256"


def test_selector_matches_known_ids():
    assert FunctionSignature.parse("transfer(address,uint256)").selector_hex == "0xa9059cbb"
    assert FunctionSignature.parse("balanceOf(address)").selector_hex == "0x70a08231"


def test_no_params():
    sig = FunctionSignature.parse("start()")
    assert sig.params == ()
    assert sig.canonical() == "start()"


def test_tuple_params_parse():
    sig = FunctionSignature.parse("f((uint256,bytes),address)")
    assert sig.param_list() == "(uint256,bytes),address"


def test_nested_array_in_tuple():
    sig = FunctionSignature.parse("g((uint8[],bool)[2])")
    assert sig.param_list() == "(uint8[],bool)[2]"


def test_malformed_signature_rejected():
    with pytest.raises(ValueError):
        FunctionSignature.parse("transfer(address,uint256")


def test_defaults_and_metadata():
    sig = FunctionSignature("f", (UIntType(256),), Visibility.EXTERNAL, Language.VYPER)
    assert sig.visibility is Visibility.EXTERNAL
    assert sig.language is Language.VYPER
    assert str(sig) == "f(uint256)"


def test_signatures_hashable_and_frozen():
    a = FunctionSignature.parse("f(uint256)")
    b = FunctionSignature.parse("f(uint256)")
    assert a == b
    assert hash(a) == hash(b)
    with pytest.raises(Exception):
        a.name = "g"  # type: ignore[misc]
