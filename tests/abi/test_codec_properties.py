"""Property-based tests: encode/decode round-trip over random types."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abi.codec import decode, encode
from repro.abi.types import (
    AddressType,
    ArrayType,
    BoolType,
    BytesType,
    FixedBytesType,
    IntType,
    StringType,
    TupleType,
    UIntType,
)

_basic = st.sampled_from(
    [
        UIntType(8), UIntType(32), UIntType(128), UIntType(256),
        IntType(8), IntType(128), IntType(256),
        AddressType(), BoolType(),
        FixedBytesType(1), FixedBytesType(20), FixedBytesType(32),
    ]
)

_leaf = st.one_of(_basic, st.sampled_from([BytesType(), StringType()]))


def _arrays(children):
    return st.builds(
        ArrayType,
        element=children,
        length=st.one_of(st.none(), st.integers(1, 3)),
    )


def _tuples(children):
    return st.builds(
        lambda comps: TupleType(tuple(comps)),
        st.lists(children, min_size=1, max_size=3),
    )


abi_types = st.recursive(_leaf, lambda c: st.one_of(_arrays(c), _tuples(c)), max_leaves=6)


def _normalize(value):
    """Tuples decode as tuples, lists as lists; compare structurally."""
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    return value


@settings(max_examples=150, deadline=None)
@given(types=st.lists(abi_types, min_size=1, max_size=4), seed=st.integers(0, 2**32))
def test_encode_decode_roundtrip(types, seed):
    rng = random.Random(seed)
    values = [t.random_value(rng) for t in types]
    data = encode(types, values)
    assert len(data) % 32 == 0
    decoded = decode(types, data)
    assert _normalize(decoded) == _normalize(values)


@settings(max_examples=80, deadline=None)
@given(types=st.lists(_basic, min_size=1, max_size=6), seed=st.integers(0, 2**32))
def test_static_encoding_is_head_only(types, seed):
    rng = random.Random(seed)
    values = [t.random_value(rng) for t in types]
    data = encode(types, values)
    assert len(data) == 32 * len(types)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**32), length=st.integers(0, 100))
def test_bytes_length_field_and_rounding(seed, length):
    rng = random.Random(seed)
    payload = bytes(rng.getrandbits(8) for _ in range(length))
    data = encode([BytesType()], [payload])
    assert int.from_bytes(data[32:64], "big") == length
    padded = (length + 31) // 32 * 32
    assert len(data) == 64 + padded
