"""A concrete EVM interpreter.

Executes runtime bytecode against a message call (calldata, caller,
value).  It implements the full computational core of the EVM — 256-bit
modular arithmetic, signed ops, memory/storage, control flow, SHA3 via
our own Keccak — with simplified gas accounting (a flat per-opcode cost,
enough to bound fuzzing runs) and stubbed cross-contract calls (CALL and
friends push success without executing a callee).

The interpreter powers the fuzzing application (§6.2 of the paper) and
the differential tests that validate the compiler substrate: bytecode
produced by ``repro.compiler`` is *run*, not just pattern-matched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.evm.disasm import Instruction, disassemble, instruction_index, jumpdests
from repro.evm.keccak import keccak256

_WORD = 1 << 256
_MASK = _WORD - 1
_SIGN_BIT = 1 << 255


class EVMException(Exception):
    """Base class for exceptional halts."""


class StackUnderflow(EVMException):
    pass


class StackOverflow(EVMException):
    pass


class InvalidJump(EVMException):
    pass


class OutOfGas(EVMException):
    pass


class InvalidInstruction(EVMException):
    pass


class Reverted(EVMException):
    """REVERT executed; carries the revert payload."""

    def __init__(self, data: bytes) -> None:
        super().__init__(f"reverted with {len(data)} bytes")
        self.data = data


def _to_signed(value: int) -> int:
    return value - _WORD if value & _SIGN_BIT else value


def _to_unsigned(value: int) -> int:
    return value & _MASK


@dataclass
class ExecutionResult:
    """Outcome of one message call."""

    success: bool
    return_data: bytes = b""
    error: Optional[str] = None
    gas_used: int = 0
    steps: int = 0
    pcs_executed: Set[int] = field(default_factory=set)
    storage_writes: Dict[int, int] = field(default_factory=dict)
    logs: List[bytes] = field(default_factory=list)
    invalid_hit: bool = False  # an INVALID opcode was reached (bug oracle)


class Memory:
    """Byte-addressed, zero-initialized, lazily grown EVM memory."""

    def __init__(self) -> None:
        self._data = bytearray()

    def _grow(self, size: int) -> None:
        if size > len(self._data):
            self._data.extend(b"\x00" * (size - len(self._data)))

    def load(self, offset: int, length: int = 32) -> bytes:
        self._grow(offset + length)
        return bytes(self._data[offset : offset + length])

    def store(self, offset: int, data: bytes) -> None:
        self._grow(offset + len(data))
        self._data[offset : offset + len(data)] = data

    def store_word(self, offset: int, value: int) -> None:
        self.store(offset, value.to_bytes(32, "big"))

    def load_word(self, offset: int) -> int:
        return int.from_bytes(self.load(offset, 32), "big")

    def size(self) -> int:
        return len(self._data)


class Interpreter:
    """Executes one contract's runtime bytecode."""

    def __init__(
        self,
        bytecode: bytes,
        storage: Optional[Dict[int, int]] = None,
        max_steps: int = 200_000,
        gas_limit: int = 10_000_000,
        call_handler: Optional[Callable] = None,
        step_hook: Optional[Callable] = None,
    ) -> None:
        """``call_handler``, when provided, executes CALL-family opcodes
        for real: it receives ``(kind, address, value, data)`` with kind
        in {"call", "callcode", "delegatecall", "staticcall", "create"}
        and returns ``(success: bool, return_data: bytes)`` (for create:
        ``(success, new_address_as_bytes32)``).  Without a handler the
        opcodes are stubbed (success, empty return data), which suffices
        for single-contract analysis."""
        self.bytecode = bytecode
        self.storage: Dict[int, int] = dict(storage or {})
        self.max_steps = max_steps
        self.gas_limit = gas_limit
        self.call_handler = call_handler
        # step_hook(pc, stack) fires before each instruction (tracing).
        self.step_hook = step_hook
        self._instructions = disassemble(bytecode)
        self._by_pc = instruction_index(self._instructions)
        self._jumpdests = jumpdests(self._instructions)

    # ------------------------------------------------------------------

    def call(
        self,
        calldata: bytes,
        caller: int = 0xCA11E4,
        callvalue: int = 0,
        address: int = 0xC0DE,
    ) -> ExecutionResult:
        """Run a message call and return its result.

        Exceptional halts (stack errors, invalid jumps, INVALID, out of
        gas/steps) are reported as ``success=False`` with an ``error``
        string; REVERT additionally carries return data.
        """
        stack: List[int] = []
        memory = Memory()
        result = ExecutionResult(success=False)
        return_buffer = b""
        pc = 0
        gas = self.gas_limit
        calldata_size = len(calldata)

        def cd_load(offset: int) -> int:
            chunk = calldata[offset : offset + 32]
            return int.from_bytes(chunk + b"\x00" * (32 - len(chunk)), "big")

        def pop() -> int:
            if not stack:
                raise StackUnderflow()
            return stack.pop()

        def push(value: int) -> None:
            if len(stack) >= 1024:
                raise StackOverflow()
            stack.append(value & _MASK)

        try:
            while True:
                result.steps += 1
                if result.steps > self.max_steps:
                    raise OutOfGas("step limit exceeded")
                ins = self._by_pc.get(pc)
                if ins is None:
                    # Running off the end of code halts like STOP.
                    result.success = True
                    break
                if self.step_hook is not None:
                    self.step_hook(pc, stack)
                result.pcs_executed.add(pc)
                op = ins.op
                gas -= op.gas
                if gas < 0:
                    raise OutOfGas("gas limit exceeded")
                name = op.name

                if op.is_push:
                    push(ins.operand or 0)
                elif op.is_dup:
                    n = op.code - 0x7F
                    if len(stack) < n:
                        raise StackUnderflow()
                    push(stack[-n])
                elif op.is_swap:
                    n = op.code - 0x8F
                    if len(stack) < n + 1:
                        raise StackUnderflow()
                    stack[-1], stack[-n - 1] = stack[-n - 1], stack[-1]
                elif name == "STOP":
                    result.success = True
                    break
                elif name == "ADD":
                    push(pop() + pop())
                elif name == "MUL":
                    push(pop() * pop())
                elif name == "SUB":
                    a, b = pop(), pop()
                    push(a - b)
                elif name == "DIV":
                    a, b = pop(), pop()
                    push(0 if b == 0 else a // b)
                elif name == "SDIV":
                    a, b = _to_signed(pop()), _to_signed(pop())
                    if b == 0:
                        push(0)
                    else:
                        quotient = abs(a) // abs(b)
                        push(_to_unsigned(-quotient if (a < 0) != (b < 0) else quotient))
                elif name == "MOD":
                    a, b = pop(), pop()
                    push(0 if b == 0 else a % b)
                elif name == "SMOD":
                    a, b = _to_signed(pop()), _to_signed(pop())
                    if b == 0:
                        push(0)
                    else:
                        remainder = abs(a) % abs(b)
                        push(_to_unsigned(-remainder if a < 0 else remainder))
                elif name == "ADDMOD":
                    a, b, n = pop(), pop(), pop()
                    push(0 if n == 0 else (a + b) % n)
                elif name == "MULMOD":
                    a, b, n = pop(), pop(), pop()
                    push(0 if n == 0 else (a * b) % n)
                elif name == "EXP":
                    a, b = pop(), pop()
                    push(pow(a, b, _WORD))
                elif name == "SIGNEXTEND":
                    k, value = pop(), pop()
                    if k < 31:
                        bit = (k + 1) * 8 - 1
                        if value & (1 << bit):
                            value |= _MASK ^ ((1 << (bit + 1)) - 1)
                        else:
                            value &= (1 << (bit + 1)) - 1
                    push(value)
                elif name == "LT":
                    push(1 if pop() < pop() else 0)
                elif name == "GT":
                    push(1 if pop() > pop() else 0)
                elif name == "SLT":
                    push(1 if _to_signed(pop()) < _to_signed(pop()) else 0)
                elif name == "SGT":
                    push(1 if _to_signed(pop()) > _to_signed(pop()) else 0)
                elif name == "EQ":
                    push(1 if pop() == pop() else 0)
                elif name == "ISZERO":
                    push(1 if pop() == 0 else 0)
                elif name == "AND":
                    push(pop() & pop())
                elif name == "OR":
                    push(pop() | pop())
                elif name == "XOR":
                    push(pop() ^ pop())
                elif name == "NOT":
                    push(~pop())
                elif name == "BYTE":
                    i, x = pop(), pop()
                    push((x >> (8 * (31 - i))) & 0xFF if i < 32 else 0)
                elif name == "SHL":
                    shift, value = pop(), pop()
                    push(0 if shift >= 256 else value << shift)
                elif name == "SHR":
                    shift, value = pop(), pop()
                    push(0 if shift >= 256 else value >> shift)
                elif name == "SAR":
                    shift, value = pop(), _to_signed(pop())
                    if shift >= 256:
                        push(_to_unsigned(-1 if value < 0 else 0))
                    else:
                        push(_to_unsigned(value >> shift))
                elif name == "SHA3":
                    offset, length = pop(), pop()
                    push(int.from_bytes(keccak256(memory.load(offset, length)), "big"))
                elif name == "ADDRESS":
                    push(address)
                elif name == "ORIGIN":
                    push(caller)
                elif name == "CALLER":
                    push(caller)
                elif name == "CALLVALUE":
                    push(callvalue)
                elif name == "CALLDATALOAD":
                    push(cd_load(pop()))
                elif name == "CALLDATASIZE":
                    push(calldata_size)
                elif name == "CALLDATACOPY":
                    dst, src, length = pop(), pop(), pop()
                    chunk = calldata[src : src + length]
                    memory.store(dst, chunk + b"\x00" * (length - len(chunk)))
                elif name == "CODESIZE":
                    push(len(self.bytecode))
                elif name == "CODECOPY":
                    dst, src, length = pop(), pop(), pop()
                    chunk = self.bytecode[src : src + length]
                    memory.store(dst, chunk + b"\x00" * (length - len(chunk)))
                elif name in ("BALANCE", "EXTCODESIZE", "EXTCODEHASH", "BLOCKHASH"):
                    pop()
                    push(0)
                elif name == "EXTCODECOPY":
                    pop(), pop(), pop(), pop()
                elif name == "RETURNDATASIZE":
                    push(len(return_buffer))
                elif name == "RETURNDATACOPY":
                    dst, src, length = pop(), pop(), pop()
                    chunk = return_buffer[src : src + length]
                    memory.store(dst, chunk + b"\x00" * (length - len(chunk)))
                elif name in (
                    "GASPRICE",
                    "COINBASE",
                    "TIMESTAMP",
                    "NUMBER",
                    "DIFFICULTY",
                    "GASLIMIT",
                    "CHAINID",
                    "SELFBALANCE",
                    "BASEFEE",
                    "MSIZE",
                    "PC",
                ):
                    push(memory.size() if name == "MSIZE" else (pc if name == "PC" else 0))
                elif name == "GAS":
                    push(max(gas, 0))
                elif name == "POP":
                    pop()
                elif name == "MLOAD":
                    push(memory.load_word(pop()))
                elif name == "MSTORE":
                    offset, value = pop(), pop()
                    memory.store_word(offset, value)
                elif name == "MSTORE8":
                    offset, value = pop(), pop()
                    memory.store(offset, bytes([value & 0xFF]))
                elif name == "SLOAD":
                    push(self.storage.get(pop(), 0))
                elif name == "SSTORE":
                    key, value = pop(), pop()
                    self.storage[key] = value
                    result.storage_writes[key] = value
                elif name == "JUMP":
                    target = pop()
                    if target not in self._jumpdests:
                        raise InvalidJump(f"jump to {target:#x}")
                    pc = target
                    continue
                elif name == "JUMPI":
                    target, condition = pop(), pop()
                    if condition:
                        if target not in self._jumpdests:
                            raise InvalidJump(f"jump to {target:#x}")
                        pc = target
                        continue
                elif name == "JUMPDEST":
                    pass
                elif name.startswith("LOG"):
                    topics = int(name[3])
                    offset, length = pop(), pop()
                    for _ in range(topics):
                        pop()
                    result.logs.append(memory.load(offset, length))
                elif name in ("CREATE", "CREATE2"):
                    if name == "CREATE":
                        value, offset, length = pop(), pop(), pop()
                        salt = None
                    else:
                        value, offset, length, salt = pop(), pop(), pop(), pop()
                    if self.call_handler is None:
                        push(0)
                    else:
                        init_code = memory.load(offset, length)
                        ok, payload = self.call_handler("create", salt or 0,
                                                        value, init_code)
                        push(int.from_bytes(payload, "big") if ok else 0)
                elif name in ("CALL", "CALLCODE", "DELEGATECALL", "STATICCALL"):
                    gas_arg = pop()
                    to = pop()
                    if name in ("CALL", "CALLCODE"):
                        value = pop()
                    else:
                        value = 0
                    in_off, in_size, out_off, out_size = pop(), pop(), pop(), pop()
                    if self.call_handler is None:
                        return_buffer = b""
                        push(1)  # stubbed: callee succeeds, returns nothing
                    else:
                        payload = memory.load(in_off, in_size)
                        ok, return_buffer = self.call_handler(
                            name.lower(), to, value, payload
                        )
                        if out_size:
                            chunk = return_buffer[:out_size]
                            memory.store(
                                out_off,
                                chunk + b"\x00" * (out_size - len(chunk)),
                            )
                        push(1 if ok else 0)
                elif name == "RETURN":
                    offset, length = pop(), pop()
                    result.return_data = memory.load(offset, length)
                    result.success = True
                    break
                elif name == "REVERT":
                    offset, length = pop(), pop()
                    raise Reverted(memory.load(offset, length))
                elif name == "INVALID" or name == "UNKNOWN":
                    result.invalid_hit = True
                    raise InvalidInstruction(f"INVALID at {pc:#x}")
                elif name == "SELFDESTRUCT":
                    pop()
                    result.success = True
                    break
                else:  # pragma: no cover - table and dispatch kept in sync
                    raise InvalidInstruction(f"unhandled opcode {name}")

                pc = ins.next_pc
        except Reverted as exc:
            result.error = "revert"
            result.return_data = exc.data
        except EVMException as exc:
            result.error = type(exc).__name__
            if isinstance(exc, InvalidInstruction):
                result.invalid_hit = result.invalid_hit or True

        result.gas_used = self.gas_limit - gas
        return result
