"""A concrete EVM interpreter.

Executes runtime bytecode against a message call (calldata, caller,
value).  The opcode semantics live in the unified table of
:mod:`repro.evm.semantics` — this module is only the *driver*: it walks
the dispatch table bound to :class:`~repro.evm.semantics.ConcreteDomain`
(Python ints mod 2^256, real memory/storage, SHA3 via our own Keccak),
with simplified gas accounting (a flat per-opcode cost, enough to bound
fuzzing runs) and stubbed cross-contract calls unless a
``call_handler`` is provided.

The interpreter powers the fuzzing application (§6.2 of the paper) and
the differential tests that validate the compiler substrate: bytecode
produced by ``repro.compiler`` is *run*, not just pattern-matched.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.evm.predecode import decode
from repro.evm.semantics import (
    DEFAULT_SELF_BALANCE,
    HALT,
    BlockContext,
    ConcreteDomain,
    EVMException,
    ExecutionResult,
    InvalidInstruction,
    InvalidJump,
    Memory,
    OutOfGas,
    Reverted,
    StackOverflow,
    StackUnderflow,
)

__all__ = [
    "Interpreter",
    "ExecutionResult",
    "Memory",
    "BlockContext",
    "EVMException",
    "StackUnderflow",
    "StackOverflow",
    "InvalidJump",
    "OutOfGas",
    "InvalidInstruction",
    "Reverted",
]


class Interpreter:
    """Executes one contract's runtime bytecode."""

    def __init__(
        self,
        bytecode: bytes,
        storage: Optional[Dict[int, int]] = None,
        max_steps: int = 200_000,
        gas_limit: int = 10_000_000,
        call_handler: Optional[Callable] = None,
        step_hook: Optional[Callable] = None,
        block: Optional[BlockContext] = None,
        self_balance: Optional[int] = None,
    ) -> None:
        """``call_handler``, when provided, executes CALL-family opcodes
        for real: it receives ``(kind, address, value, data, frame)``
        with kind in {"call", "callcode", "delegatecall", "staticcall",
        "create"} and returns ``(success: bool, return_data: bytes)``
        (for create: ``(success, new_address_as_bytes32)``).  ``frame``
        is the live :class:`ConcreteDomain` of the calling frame; its
        ``storage`` dict can be read and synced in place (re-entrancy).
        Without a handler the opcodes are stubbed (success, empty return
        data), which suffices for single-contract analysis.

        ``block`` supplies the block-context opcode values
        (COINBASE/TIMESTAMP/NUMBER/...); ``self_balance`` the value
        SELFBALANCE pushes.  Both default to the deterministic non-zero
        defaults in :mod:`repro.evm.semantics`.
        """
        self.bytecode = bytecode
        self.storage: Dict[int, int] = dict(storage or {})
        self.max_steps = max_steps
        self.gas_limit = gas_limit
        self.call_handler = call_handler
        # step_hook(pc, stack) fires before each instruction (tracing).
        self.step_hook = step_hook
        self.block = block if block is not None else BlockContext()
        self.self_balance = self_balance
        # One decode per (bytecode, domain class): repeated interpreter
        # constructions over the same code (a fuzzing loop) share the
        # instruction stream, handler bindings, gas table and
        # precomputed next-pcs.
        program = decode(bytecode, ConcreteDomain)
        self._program = program
        self._jumpdests = program.jumpdests
        # pc -> (instruction, handler, gas, next_pc): one dict lookup
        # per executed step instead of an ~80-branch string chain.
        self._dispatch = program.dispatch

    @property
    def _instructions(self):
        """The full instruction stream (lazy — diagnostic use only)."""
        return self._program.instructions

    @property
    def _by_pc(self):
        """pc -> instruction (lazy — tracing/diagnostic use only)."""
        return self._program.by_pc

    # ------------------------------------------------------------------

    def call(
        self,
        calldata: bytes,
        caller: int = 0xCA11E4,
        callvalue: int = 0,
        address: int = 0xC0DE,
    ) -> ExecutionResult:
        """Run a message call and return its result.

        Exceptional halts (stack errors, invalid jumps, INVALID, out of
        gas/steps) are reported as ``success=False`` with an ``error``
        string; REVERT additionally carries return data.
        """
        result = ExecutionResult(success=False)
        frame = ConcreteDomain(
            self.bytecode,
            calldata,
            self.storage,
            self._jumpdests,
            result,
            caller=caller,
            callvalue=callvalue,
            address=address,
            gas=self.gas_limit,
            call_handler=self.call_handler,
            block=self.block,
            self_balance=(
                DEFAULT_SELF_BALANCE
                if self.self_balance is None
                else self.self_balance
            ),
        )
        stack = frame.stack
        dispatch = self._dispatch
        hook = self.step_hook
        pcs = result.pcs_executed
        max_steps = self.max_steps
        pc = 0

        try:
            while True:
                result.steps += 1
                if result.steps > max_steps:
                    raise OutOfGas("step limit exceeded")
                entry = dispatch.get(pc)
                if entry is None:
                    # Running off the end of code halts like STOP.
                    result.success = True
                    break
                ins, handler, gas_cost, next_pc = entry
                if hook is not None:
                    hook(pc, stack)
                pcs.add(pc)
                frame.gas -= gas_cost
                if frame.gas < 0:
                    raise OutOfGas("gas limit exceeded")
                try:
                    control = handler(frame, ins)
                except IndexError:
                    raise StackUnderflow() from None
                if control is None:
                    pc = next_pc
                    if len(stack) > 1024:
                        raise StackOverflow()
                elif control is HALT:
                    break
                else:
                    pc = control
        except Reverted as exc:
            result.error = "revert"
            result.return_data = exc.data
        except EVMException as exc:
            result.error = type(exc).__name__
            if isinstance(exc, InvalidInstruction):
                result.invalid_hit = result.invalid_hit or True

        result.gas_used = self.gas_limit - frame.gas
        return result
