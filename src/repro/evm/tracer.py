"""Structured execution tracing.

Runs a message call step by step, recording each instruction with the
stack it saw — the debugging surface reverse engineers expect next to a
disassembler.  Built on the ``step_hook`` both drivers of the unified
semantics core expose: :class:`Tracer` records the concrete
interpreter (int stacks), :class:`SymbolicTracer` records the TASE
engine (``Expr`` stacks, all explored paths interleaved in exploration
order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.evm.disasm import disassemble, instruction_index
from repro.evm.interpreter import ExecutionResult, Interpreter


@dataclass
class TraceStep:
    """One executed instruction with its pre-state."""

    pc: int
    op: str
    operand: Optional[int]
    stack_before: List[int]

    def render(self, max_items: int = 4) -> str:
        shown = [f"{v:#x}" for v in self.stack_before[-max_items:][::-1]]
        stack_text = ", ".join(shown)
        if len(self.stack_before) > max_items:
            stack_text += ", ..."
        operand_text = f" {self.operand:#x}" if self.operand is not None else ""
        return f"{self.pc:#06x}  {self.op}{operand_text}  [{stack_text}]"


@dataclass
class Trace:
    steps: List[TraceStep] = field(default_factory=list)
    result: Optional[ExecutionResult] = None

    def render(self, limit: int = 200) -> str:
        lines = [step.render() for step in self.steps[:limit]]
        if len(self.steps) > limit:
            lines.append(f"... {len(self.steps) - limit} more steps")
        if self.result is not None:
            status = (
                "success"
                if self.result.success
                else f"failed: {self.result.error}"
            )
            lines.append(f"=> {status} ({len(self.steps)} steps)")
        return "\n".join(lines)

    def pcs(self) -> List[int]:
        return [step.pc for step in self.steps]


class Tracer:
    """Step-records one message call."""

    def __init__(self, bytecode: bytes, max_steps: int = 20_000) -> None:
        self.bytecode = bytecode
        self.max_steps = max_steps
        self._by_pc = instruction_index(disassemble(bytecode))

    def trace(self, calldata: bytes, **call_kwargs) -> Trace:
        trace = Trace()

        def hook(pc: int, stack: List[int]) -> None:
            ins = self._by_pc.get(pc)
            if ins is not None:
                trace.steps.append(
                    TraceStep(pc, ins.op.name, ins.operand, list(stack))
                )

        interpreter = Interpreter(
            self.bytecode, max_steps=self.max_steps, step_hook=hook
        )
        trace.result = interpreter.call(calldata, **call_kwargs)
        return trace


@dataclass
class SymbolicTraceStep:
    """One symbolically executed instruction with its pre-state.

    The stack holds :class:`repro.sigrec.expr.Expr` trees, rendered via
    their ``repr`` (``calldata(0x4)``, ``and(0xff,...)``, ...).
    """

    pc: int
    op: str
    operand: Optional[int]
    stack_before: List[object]

    def render(self, max_items: int = 4) -> str:
        shown = [repr(v) for v in self.stack_before[-max_items:][::-1]]
        stack_text = ", ".join(shown)
        if len(self.stack_before) > max_items:
            stack_text += ", ..."
        operand_text = f" {self.operand:#x}" if self.operand is not None else ""
        return f"{self.pc:#06x}  {self.op}{operand_text}  [{stack_text}]"


@dataclass
class SymbolicTrace:
    steps: List[SymbolicTraceStep] = field(default_factory=list)
    result: Optional[object] = None  # repro.sigrec.engine.TASEResult

    def render(self, limit: int = 200) -> str:
        lines = [step.render() for step in self.steps[:limit]]
        if len(self.steps) > limit:
            lines.append(f"... {len(self.steps) - limit} more steps")
        if self.result is not None:
            selectors = ", ".join(f"{s:#010x}" for s in self.result.selectors)
            lines.append(
                f"=> {self.result.paths_explored} paths, "
                f"selectors [{selectors}] ({len(self.steps)} steps)"
            )
        return "\n".join(lines)

    def pcs(self) -> List[int]:
        return [step.pc for step in self.steps]


class SymbolicTracer:
    """Step-records the TASE engine's path exploration of a contract."""

    def __init__(self, bytecode: bytes, **engine_kwargs) -> None:
        self.bytecode = bytecode
        self.engine_kwargs = engine_kwargs
        self._by_pc = instruction_index(disassemble(bytecode))

    def trace(self) -> SymbolicTrace:
        # Imported here: sigrec depends on repro.evm, not the reverse.
        from repro.sigrec.engine import TASEEngine

        trace = SymbolicTrace()

        def hook(pc: int, stack: List[object]) -> None:
            ins = self._by_pc.get(pc)
            if ins is not None:
                trace.steps.append(
                    SymbolicTraceStep(pc, ins.op.name, ins.operand, list(stack))
                )

        engine = TASEEngine(
            self.bytecode, step_hook=hook, **self.engine_kwargs
        )
        trace.result = engine.run()
        return trace
