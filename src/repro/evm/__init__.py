"""EVM substrate: opcodes, assembler, disassembler, CFG, Keccak,
semantics table, interpreter."""

from repro.evm.opcodes import Op, OPCODES, opcode_by_name
from repro.evm.asm import Assembler, assemble
from repro.evm.disasm import Instruction, disassemble
from repro.evm.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.evm.keccak import keccak256, selector
from repro.evm.semantics import (
    HALT,
    SEMANTICS,
    UNIMPLEMENTED,
    BlockContext,
    ConcreteDomain,
    Domain,
    dispatch_table,
)
from repro.evm.interpreter import (
    Interpreter,
    ExecutionResult,
    EVMException,
    StackUnderflow,
    StackOverflow,
    InvalidJump,
    OutOfGas,
    Reverted,
    InvalidInstruction,
)

__all__ = [
    "Op",
    "OPCODES",
    "opcode_by_name",
    "Assembler",
    "assemble",
    "Instruction",
    "disassemble",
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "keccak256",
    "selector",
    "HALT",
    "SEMANTICS",
    "UNIMPLEMENTED",
    "BlockContext",
    "ConcreteDomain",
    "Domain",
    "dispatch_table",
    "Interpreter",
    "ExecutionResult",
    "EVMException",
    "StackUnderflow",
    "StackOverflow",
    "InvalidJump",
    "OutOfGas",
    "Reverted",
    "InvalidInstruction",
]
