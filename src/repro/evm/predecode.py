"""Pre-decoded instruction streams and superblocks.

Every execution driver in this repository (the concrete interpreter,
the TASE engine, the differential replay) used to rebuild the same
per-pc dispatch dict — ``{pc: (Instruction, handler, ...)}`` — from the
disassembly on every construction, and then pay a dict lookup, a tuple
unpack and two property calls (``Instruction.next_pc``) per executed
step.  This module lowers bytecode **once** per ``(bytecode, domain
class)`` pair into a :class:`DecodedProgram`:

* one linear sweep decodes the stream and classifies every slot into a
  ``(kind, arg, handler, instruction)`` entry — ``kind``/``arg`` let
  fused drivers inline the pure stack-shuffle opcodes (PUSH/DUP/SWAP/
  POP, roughly half of all executed steps), ``handler`` is the
  pre-bound fallback the per-step drivers use;
* **superblocks** — maximal straight-line runs ending at the first
  control-transfer opcode — materialize lazily per entry pc as one
  C-speed ``bytearray.find`` plus a tuple slice of the shared entry
  list, so overlapping blocks (a JUMPDEST mid-run) share slot entries
  instead of re-decoding them;
* the per-pc index and legacy-shaped dispatch dict build on first use.

Superblock entries are the initial pc, JUMPDESTs and JUMPI
fall-throughs.  Repeated explorations — per-selector shards, replay
over a fuzz corpus — amortize everything after the first decode via
the module-level program cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.evm.disasm import _UNKNOWN, Instruction, instruction_index
from repro.evm.opcodes import OPCODES

#: Mnemonics whose handler may transfer control (return an int target
#: or the HALT sentinel).  Every other handler always returns None, so
#: a run of them executes straight-line — the superblock invariant.
CONTROL_OPS = frozenset(
    ["JUMP", "JUMPI", "STOP", "RETURN", "REVERT", "INVALID",
     "SELFDESTRUCT", "UNKNOWN"]
)

#: Instruction kinds precomputed per slot so a fused driver can inline
#: the pure stack-shuffle opcodes instead of paying a handler call for
#: them.  ``KIND_GENERIC`` ops go through the pre-bound handler; the
#: others carry their decoded argument (PUSH immediate, DUP/SWAP
#: depth) in the slot entry.
KIND_GENERIC = 0
KIND_PUSH = 1  # arg = immediate value (0 for PUSH0)
KIND_DUP = 2   # arg = n: push stack[-n]
KIND_SWAP = 3  # arg = n: swap stack[-1] and stack[-n-1]
KIND_POP = 4
KIND_UNOP = 5  # arg = domain method: push arg(dom, ins, pop())
KIND_BINOP = 6  # arg = domain method: push arg(dom, ins, pop(), pop())
KIND_NOP = 7  # JUMPDEST: no effect in every domain

#: byte -> (Op-or-UNKNOWN, immediate size, kind, arg, is control).
#: Everything derivable from the byte alone is resolved once at import
#: so the decode sweep in ``DecodedProgram.__init__`` is a single
#: table-indexed loop.
_BYTE_TABLE: List[Tuple] = []
for _byte in range(256):
    _op = OPCODES.get(_byte)
    if _op is None:
        _BYTE_TABLE.append((_UNKNOWN, 0, KIND_GENERIC, 0, True))
        continue
    if 0x5F <= _byte <= 0x7F:  # PUSH0..PUSH32
        _kind, _arg = KIND_PUSH, 0
    elif 0x80 <= _byte <= 0x8F:  # DUP1..DUP16
        _kind, _arg = KIND_DUP, _byte - 0x7F
    elif 0x90 <= _byte <= 0x9F:  # SWAP1..SWAP16
        _kind, _arg = KIND_SWAP, _byte - 0x8F
    elif _byte == 0x50:  # POP
        _kind, _arg = KIND_POP, 0
    else:
        _kind, _arg = KIND_GENERIC, 0
    _BYTE_TABLE.append(
        (_op, _op.immediate_size, _kind, _arg, _op.name in CONTROL_OPS)
    )
del _byte, _op, _kind, _arg

#: Per-domain-class fused decode tables:
#: byte -> (Op, imm, kind, arg, is_ctrl, handler).  Built once per
#: domain class — this is where GENERIC slots whose handler exposes an
#: ``inner`` domain method (the unop/binop wrappers in
#: repro.evm.semantics) are promoted to KIND_UNOP/KIND_BINOP with the
#: method as ``arg``, and JUMPDEST to KIND_NOP, so fused drivers skip
#: the wrapper frame entirely.
_DOMAIN_TABLES: Dict[Type, List[Tuple]] = {}


def _domain_table(domain_cls: Type) -> List[Tuple]:
    dtab = _DOMAIN_TABLES.get(domain_cls)
    if dtab is not None:
        return dtab
    from repro.evm.semantics import dispatch_table

    table = dispatch_table(domain_cls)
    dtab = []
    for byte in range(256):
        op, imm, kind, arg, ctrl = _BYTE_TABLE[byte]
        handler = table[op.code]
        if kind == KIND_GENERIC and not ctrl:
            if byte == 0x5B:  # JUMPDEST
                kind = KIND_NOP
            else:
                inner = getattr(handler, "inner", None)
                if inner is not None:
                    arity = handler.arity
                    if arity == 2:
                        kind, arg = KIND_BINOP, inner
                    elif arity == 1:
                        kind, arg = KIND_UNOP, inner
        dtab.append((op, imm, kind, arg, ctrl, handler))
    _DOMAIN_TABLES[domain_cls] = dtab
    return dtab


class SuperBlock:
    """One maximal straight-line run plus its terminating control op.

    ``pairs`` holds ``(kind, arg, handler, instruction)`` for the
    non-control prefix; ``ctrl``/``ctrl_ins`` the terminator (``None``
    when the instruction stream simply ends — running off the code
    halts like STOP); ``fall_pc`` the pc after the terminator (the
    JUMPI fall-through target).
    """

    __slots__ = ("pairs", "n", "ctrl", "ctrl_ins", "fall_pc")

    def __init__(
        self,
        pairs: Tuple,
        ctrl: Optional[object],
        ctrl_ins: Optional[Instruction],
        fall_pc: int,
    ) -> None:
        self.pairs = pairs
        self.n = len(pairs)
        self.ctrl = ctrl
        self.ctrl_ins = ctrl_ins
        self.fall_pc = fall_pc


class DecodedProgram:
    """One bytecode lowered against one domain class.

    The decode-and-classify sweep runs once in ``__init__``; per-pc
    views (``by_pc``, ``dispatch``) and superblocks materialize lazily
    and are cached on the program, which is itself shared by every
    engine over the same bytecode via the module decode cache.
    """

    __slots__ = (
        "bytecode", "domain_cls", "instructions", "jumpdests",
        "_entries", "_is_ctrl", "_pc_index",
        "_by_pc", "_dispatch", "_blocks",
    )

    def __init__(self, bytecode: bytes, domain_cls: Type) -> None:
        self.bytecode = bytecode
        self.domain_cls = domain_cls
        dtab = _domain_table(domain_cls)

        # One fused sweep: decode (same linear-sweep semantics as
        # ``disasm.disassemble``, truncated PUSH zero-extended) and
        # classify in the same loop — per-slot driver entries, a
        # control-op bitmap (so block building is a bytearray.find),
        # the pc -> slot index, and the JUMPDEST set.
        code = bytecode
        n = len(code)
        instructions: List[Instruction] = []
        entries: List[Tuple] = []
        is_ctrl = bytearray()
        pc_index: Dict[int, int] = {}
        dests: List[int] = []
        iapp = instructions.append
        eapp = entries.append
        capp = is_ctrl.append
        from_bytes = int.from_bytes
        pos = 0
        i = 0
        while pos < n:
            byte = code[pos]
            op, imm, kind, arg, ctrl, handler = dtab[byte]
            if imm:
                body = pos + 1
                end = body + imm
                raw = code[body:end]
                if end > n:
                    raw = raw + b"\x00" * (end - n)
                arg = from_bytes(raw, "big")
                ins = Instruction(pos, op, arg)
                pc_index[pos] = i
                iapp(ins)
                eapp((KIND_PUSH, arg, handler, ins))
                capp(0)
                pos = end
                i += 1
                continue
            ins = Instruction(pos, op)
            pc_index[pos] = i
            iapp(ins)
            eapp((kind, arg, handler, ins))
            capp(1 if ctrl else 0)
            if byte == 0x5B:
                dests.append(pos)
            pos += 1
            i += 1
        self.instructions = instructions
        self._entries = entries
        self._is_ctrl = is_ctrl
        self._pc_index = pc_index
        self.jumpdests = frozenset(dests)
        self._by_pc: Optional[Dict[int, Instruction]] = None
        self._dispatch: Optional[Dict[int, tuple]] = None
        self._blocks: Dict[int, Optional[SuperBlock]] = {}

    # -- lazily materialized per-pc views -------------------------------

    @property
    def handlers(self) -> List:
        """Pre-bound handler per instruction slot."""
        return [entry[2] for entry in self._entries]

    @property
    def by_pc(self) -> Dict[int, Instruction]:
        """pc -> instruction (lazy: only diagnostics walk it)."""
        index = self._by_pc
        if index is None:
            index = instruction_index(self.instructions)
            self._by_pc = index
        return index

    @property
    def dispatch(self) -> Dict[int, tuple]:
        """Per-pc dispatch: ``pc -> (ins, handler, gas, next_pc)``.

        The shape the per-step drivers (concrete interpreter, legacy
        TASE driver, differential replay) consume; built once per
        program on first use.
        """
        table = self._dispatch
        if table is None:
            table = {
                entry[3].pc: (
                    entry[3], entry[2], entry[3].op.gas, entry[3].next_pc
                )
                for entry in self._entries
            }
            self._dispatch = table
        return table

    # -- superblocks ----------------------------------------------------

    def block(self, pc: int) -> Optional[SuperBlock]:
        """The superblock starting at ``pc`` (lazily built, cached).

        Returns ``None`` when ``pc`` is not an instruction start —
        past the end of code, or inside a PUSH immediate — which a
        driver treats exactly like the legacy dispatch-miss: the path
        ends as if running off the code.
        """
        blocks = self._blocks
        block = blocks.get(pc, _UNBUILT)
        if block is not _UNBUILT:
            return block
        i = self._pc_index.get(pc)
        if i is None:
            blocks[pc] = None
            return None
        entries = self._entries
        j = self._is_ctrl.find(1, i)
        if j == -1:
            block = SuperBlock(tuple(entries[i:]), None, None, -1)
        else:
            ctrl_ins = entries[j][3]
            block = SuperBlock(
                tuple(entries[i:j]), entries[j][2], ctrl_ins,
                ctrl_ins.next_pc,
            )
        blocks[pc] = block
        return block


_UNBUILT = object()

#: Decode cache: ``(bytecode, domain class) -> DecodedProgram``.
#: Bounded FIFO — batch runs over large corpora must not pin every
#: bytecode in memory forever.
_PROGRAM_CACHE: Dict[Tuple[bytes, Type], DecodedProgram] = {}
_PROGRAM_CACHE_MAX = 128


def decode(bytecode: bytes, domain_cls: Type) -> DecodedProgram:
    """The cached :class:`DecodedProgram` for ``(bytecode, domain_cls)``.

    Engines over the same bytecode and domain share one decode: the
    sharded TASE walks, repeated interpreter constructions in a fuzzing
    loop, and the differential replay all skip the sweep and every
    lazily-built artifact after the first call.
    """
    key = (bytecode, domain_cls)
    program = _PROGRAM_CACHE.get(key)
    if program is None:
        program = DecodedProgram(bytecode, domain_cls)
        if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_MAX:
            _PROGRAM_CACHE.pop(next(iter(_PROGRAM_CACHE)))
        _PROGRAM_CACHE[key] = program
    return program


def clear_program_cache() -> None:
    """Drop every cached decode (benchmarks measuring cold cost)."""
    _PROGRAM_CACHE.clear()
