"""Basic-block recovery and control-flow graph construction.

SigRec's front end (paper §4.1) disassembles the bytecode and recognizes
basic blocks before running TASE.  Block boundaries are the standard
ones: JUMPDEST starts a block; JUMP/JUMPI/terminators end one.  Edges
for direct jumps (``PUSH addr; JUMP``) are resolved statically; computed
jumps are left for the symbolic executor to resolve, so the CFG exposes
both static successors and an ``has_dynamic_jump`` flag per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.evm.disasm import Instruction, disassemble, jumpdests


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int
    instructions: List[Instruction] = field(default_factory=list)
    successors: Set[int] = field(default_factory=set)
    predecessors: Set[int] = field(default_factory=set)
    has_dynamic_jump: bool = False
    # The terminator is a JUMP/JUMPI whose statically-known PUSH target
    # is not a valid JUMPDEST: taking that jump always throws.  The
    # block keeps no (taken) successor, but the defect is recorded
    # instead of silently dropped.
    invalid_static_jump: bool = False

    @property
    def end(self) -> int:
        last = self.instructions[-1]
        return last.pc + last.size

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.start:#x}..{self.end:#x}, succ={sorted(self.successors)})"


@dataclass
class ControlFlowGraph:
    """CFG over the basic blocks of one runtime bytecode."""

    blocks: Dict[int, BasicBlock]
    entry: int
    valid_jumpdests: FrozenSet[int]

    def block_at(self, pc: int) -> Optional[BasicBlock]:
        return self.blocks.get(pc)

    def reachable_from(self, start: int) -> Set[int]:
        """Block starts reachable from ``start`` along static edges."""
        seen: Set[int] = set()
        work = [start]
        while work:
            current = work.pop()
            if current in seen or current not in self.blocks:
                continue
            seen.add(current)
            work.extend(self.blocks[current].successors)
        return seen

    def __len__(self) -> int:
        return len(self.blocks)


def _leaders(instructions: List[Instruction]) -> List[int]:
    """Block-leader pcs: the first instruction, every JUMPDEST, and every
    instruction following a control transfer.

    Valid JUMPDESTs need no separate treatment as jump *targets*: being
    JUMPDESTs already makes them leaders.
    """
    leaders: Set[int] = set()
    if instructions:
        leaders.add(instructions[0].pc)
    for i, ins in enumerate(instructions):
        name = ins.op.name
        if name == "JUMPDEST":
            leaders.add(ins.pc)
        if name in ("JUMP", "JUMPI") or ins.op.is_terminator or name == "UNKNOWN":
            if i + 1 < len(instructions):
                leaders.add(instructions[i + 1].pc)
    return sorted(leaders)


def build_cfg(bytecode: bytes) -> ControlFlowGraph:
    """Disassemble ``bytecode`` and build its CFG.

    Static edges cover fall-through, JUMPI both-ways when the target is a
    ``PUSH`` immediately preceding the jump, and direct JUMPs.  Jumps
    whose target is not a preceding PUSH set ``has_dynamic_jump``; a
    pushed target that is *not* a valid JUMPDEST sets
    ``invalid_static_jump`` (the jump always throws at runtime).
    """
    instructions = disassemble(bytecode)
    dests = jumpdests(instructions)
    leaders = _leaders(instructions)
    leader_set = set(leaders)

    blocks: Dict[int, BasicBlock] = {}
    current: Optional[BasicBlock] = None
    for ins in instructions:
        if ins.pc in leader_set:
            current = BasicBlock(start=ins.pc)
            blocks[ins.pc] = current
        assert current is not None
        current.instructions.append(ins)

    for block in blocks.values():
        last = block.terminator
        name = last.op.name
        prev = block.instructions[-2] if len(block.instructions) >= 2 else None
        static_target = (
            prev.operand
            if prev is not None and prev.op.is_push and prev.operand is not None
            else None
        )
        if name == "JUMP":
            if static_target is not None and static_target in dests:
                block.successors.add(static_target)
            elif static_target is None:
                block.has_dynamic_jump = True
            else:
                block.invalid_static_jump = True
        elif name == "JUMPI":
            if static_target is not None and static_target in dests:
                block.successors.add(static_target)
            elif static_target is None:
                block.has_dynamic_jump = True
            else:
                block.invalid_static_jump = True
            if last.next_pc in blocks:
                block.successors.add(last.next_pc)
        elif not last.op.is_terminator and name != "UNKNOWN":
            if last.next_pc in blocks:
                block.successors.add(last.next_pc)

    for block in blocks.values():
        for succ in block.successors:
            if succ in blocks:
                blocks[succ].predecessors.add(block.start)

    entry = instructions[0].pc if instructions else 0
    return ControlFlowGraph(blocks=blocks, entry=entry, valid_jumpdests=dests)
