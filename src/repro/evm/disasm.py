"""EVM disassembler.

Linear-sweep disassembly of runtime bytecode into a list of
:class:`Instruction` records.  Bytes that are not valid opcodes (data
embedded after code, e.g. the Solidity metadata trailer) are kept as
``INVALID``-like placeholder instructions so that the instruction stream
always covers the whole byte range, matching how Geth's disassembler
behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.evm.opcodes import OPCODES, Op


_UNKNOWN = Op(-1, "UNKNOWN", 0, 0, 0, 0)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction at a concrete program counter."""

    pc: int
    op: Op
    operand: Optional[int] = None  # immediate value of PUSHn

    @property
    def size(self) -> int:
        return 1 + self.op.immediate_size

    @property
    def next_pc(self) -> int:
        return self.pc + self.size

    def __str__(self) -> str:
        if self.operand is not None:
            return f"{self.pc:#06x}: {self.op.name} {self.operand:#x}"
        return f"{self.pc:#06x}: {self.op.name}"


def disassemble(bytecode: bytes) -> List[Instruction]:
    """Decode ``bytecode`` into instructions by linear sweep.

    A truncated PUSH at the end of the code (its immediate running past
    the bytecode) is decoded with the available bytes zero-extended, as
    the EVM itself does.
    """
    instructions: List[Instruction] = []
    pc = 0
    length = len(bytecode)
    while pc < length:
        byte = bytecode[pc]
        op = OPCODES.get(byte)
        if op is None:
            instructions.append(Instruction(pc, _UNKNOWN))
            pc += 1
            continue
        operand: Optional[int] = None
        if op.immediate_size:
            raw = bytecode[pc + 1 : pc + 1 + op.immediate_size]
            raw = raw + b"\x00" * (op.immediate_size - len(raw))
            operand = int.from_bytes(raw, "big")
        instructions.append(Instruction(pc, op, operand))
        pc += 1 + op.immediate_size
    return instructions


def instruction_index(instructions: List[Instruction]) -> Dict[int, Instruction]:
    """Map each pc to its instruction."""
    return {ins.pc: ins for ins in instructions}


def jumpdests(instructions: List[Instruction]) -> frozenset:
    """The set of valid JUMPDEST program counters."""
    return frozenset(ins.pc for ins in instructions if ins.op.name == "JUMPDEST")


def format_listing(
    instructions: List[Instruction],
    annotations: Optional[Dict[int, str]] = None,
) -> str:
    """Human-readable disassembly listing.

    ``annotations`` maps pcs to short notes rendered as right-hand
    comments (``repro inspect`` uses this to mark dispatcher blocks,
    function entries and dead code).
    """
    if not annotations:
        return "\n".join(str(ins) for ins in instructions)
    lines = []
    width = max((len(str(ins)) for ins in instructions), default=0)
    for ins in instructions:
        text = str(ins)
        note = annotations.get(ins.pc)
        if note:
            text = f"{text:<{width}}  ; {note}"
        lines.append(text)
    return "\n".join(lines)
