"""EVM disassembler.

Linear-sweep disassembly of runtime bytecode into a list of
:class:`Instruction` records.  Bytes that are not valid opcodes (data
embedded after code, e.g. the Solidity metadata trailer) are kept as
``INVALID``-like placeholder instructions so that the instruction stream
always covers the whole byte range, matching how Geth's disassembler
behaves.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.evm.opcodes import OPCODES, Op


_UNKNOWN = Op(-1, "UNKNOWN", 0, 0, 0, 0)


class Instruction:
    """One decoded instruction at a concrete program counter.

    A plain slotted record — disassembly creates one per byte of code,
    so construction cost is the dominant decode cost, and the frozen
    dataclass this used to be paid one ``object.__setattr__`` per
    field.  ``size`` and ``next_pc`` are precomputed at decode time so
    the execution drivers read attributes instead of calling
    properties.  Treat instances as immutable.
    """

    __slots__ = ("pc", "op", "operand", "size", "next_pc")

    def __init__(self, pc: int, op: Op, operand: Optional[int] = None) -> None:
        self.pc = pc
        self.op = op
        self.operand = operand  # immediate value of PUSHn
        size = 1 + op.immediate_size
        self.size = size
        self.next_pc = pc + size

    def __repr__(self) -> str:
        return f"Instruction(pc={self.pc}, op={self.op!r}, operand={self.operand!r})"

    def __str__(self) -> str:
        if self.operand is not None:
            return f"{self.pc:#06x}: {self.op.name} {self.operand:#x}"
        return f"{self.pc:#06x}: {self.op.name}"


#: byte value -> (Op, immediate size), with invalid bytes pre-resolved
#: to the UNKNOWN placeholder: one list index per decoded instruction
#: instead of a dict probe plus None-check plus attribute chase.
_DECODE_TABLE: List = [
    (op, op.immediate_size) if op is not None else (_UNKNOWN, 0)
    for op in (OPCODES.get(byte) for byte in range(256))
]


def disassemble(bytecode: bytes) -> List[Instruction]:
    """Decode ``bytecode`` into instructions by linear sweep.

    A truncated PUSH at the end of the code (its immediate running past
    the bytecode) is decoded with the available bytes zero-extended, as
    the EVM itself does.
    """
    instructions: List[Instruction] = []
    append = instructions.append
    table = _DECODE_TABLE
    from_bytes = int.from_bytes
    pc = 0
    length = len(bytecode)
    while pc < length:
        op, imm = table[bytecode[pc]]
        if imm:
            body = pc + 1
            end = body + imm
            raw = bytecode[body:end]
            if end > length:
                raw = raw + b"\x00" * (end - length)
            append(Instruction(pc, op, from_bytes(raw, "big")))
            pc = end
        else:
            append(Instruction(pc, op))
            pc += 1
    return instructions


def instruction_index(instructions: List[Instruction]) -> Dict[int, Instruction]:
    """Map each pc to its instruction."""
    return {ins.pc: ins for ins in instructions}


def jumpdests(instructions: List[Instruction]) -> frozenset:
    """The set of valid JUMPDEST program counters."""
    return frozenset(ins.pc for ins in instructions if ins.op.name == "JUMPDEST")


def format_listing(
    instructions: List[Instruction],
    annotations: Optional[Dict[int, str]] = None,
) -> str:
    """Human-readable disassembly listing.

    ``annotations`` maps pcs to short notes rendered as right-hand
    comments (``repro inspect`` uses this to mark dispatcher blocks,
    function entries and dead code).
    """
    if not annotations:
        return "\n".join(str(ins) for ins in instructions)
    lines = []
    width = max((len(str(ins)) for ins in instructions), default=0)
    for ins in instructions:
        text = str(ins)
        note = annotations.get(ins.pc)
        if note:
            text = f"{text:<{width}}  ; {note}"
        lines.append(text)
    return "\n".join(lines)
