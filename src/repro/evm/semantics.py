"""Unified table-driven EVM semantics.

One opcode table drives every execution engine in this repository: the
concrete interpreter (:mod:`repro.evm.interpreter`), the symbolic TASE
engine (:mod:`repro.sigrec.engine`) and the concrete-replay drift
detector (:mod:`repro.sigrec.differential`).  Each opcode has exactly
one *handler*, registered by opcode byte with its stack arity declared
and checked against the :mod:`repro.evm.opcodes` metadata.  The handler
encodes the stack discipline (how many values are popped, in which
order, and what is pushed back) **once**; the *meaning* of each
operation is delegated to a value-domain object implementing the
:class:`Domain` protocol.

Two domains ship with the repository:

* :class:`ConcreteDomain` (this module) — values are Python ints mod
  2^256, memory is a byte array, storage is a dict; bit-for-bit the
  behaviour of the historical hand-written interpreter loop.
* ``SymbolicDomain`` (:mod:`repro.sigrec.engine`) — values are
  taint-labelled ``Expr`` trees, CALLDATALOAD symbolizes, JUMPI forks,
  and type-revealing uses emit events for the inference rules.

Opcodes whose behaviour genuinely diverges between engines (JUMPI
forking, CALLDATALOAD symbolization, SHA3, SLOAD freshness, ...)
diverge in the domain *methods*; everything structural — arithmetic
arity, DUP/SWAP/PUSH/POP, operand order, memory/calldata bookkeeping —
is written once here.  Adding an opcode is a one-place change: register
the handler, implement (or inherit) the domain ops it calls.

Dispatch is resolved per domain *class*: :func:`dispatch_table` binds
each handler to the class's method implementations ahead of time, so a
step costs one dict lookup plus one call instead of the ~80 string
comparisons of the legacy ``if name == ...`` chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional, Set, Tuple, Type

from repro.evm.disasm import Instruction
from repro.evm.keccak import keccak256
from repro.evm.opcodes import OPCODES, opcode_by_name

_WORD = 1 << 256
_MASK = _WORD - 1
_SIGN_BIT = 1 << 255

#: Sentinel returned by a handler to end the current frame or path.
HALT = object()

#: The disassembler's placeholder code for bytes that are not opcodes.
UNKNOWN_CODE = -1

#: Opcode mnemonics deliberately left without a semantics handler.
#: Empty today — every opcode in the table executes — but the coverage
#: test (``tests/evm/test_semantics.py``) enforces that any future gap
#: is declared here instead of failing silently at run time.
UNIMPLEMENTED: frozenset = frozenset()


class EVMException(Exception):
    """Base class for exceptional halts."""


class StackUnderflow(EVMException):
    pass


class StackOverflow(EVMException):
    pass


class InvalidJump(EVMException):
    pass


class OutOfGas(EVMException):
    pass


class InvalidInstruction(EVMException):
    pass


class Reverted(EVMException):
    """REVERT executed; carries the revert payload."""

    def __init__(self, data: bytes) -> None:
        super().__init__(f"reverted with {len(data)} bytes")
        self.data = data


def _to_signed(value: int) -> int:
    return value - _WORD if value & _SIGN_BIT else value


def _to_unsigned(value: int) -> int:
    return value & _MASK


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BlockContext:
    """Block-level environment values for concrete execution.

    Defaults are deterministic and *distinct* so that a contract
    branching on (or returning) any of them is observably exercised —
    the historical interpreter collapsed all of these to 0.
    ``repro.chain`` passes real per-block values.
    """

    coinbase: int = 0xC0FFEE00C0FFEE
    timestamp: int = 1_609_459_200  # 2021-01-01T00:00:00Z
    number: int = 12_965_000  # the London fork block
    difficulty: int = 131_072  # the minimum difficulty, 2^17
    gaslimit: int = 30_000_000
    chainid: int = 1
    basefee: int = 1_000_000_000  # 1 gwei
    gasprice: int = 0  # legacy default: GASPRICE still reads 0


DEFAULT_BLOCK = BlockContext()

#: Default SELFBALANCE for a standalone interpreter: 1 ether, distinct
#: from every :class:`BlockContext` default.  ``repro.chain.machine``
#: passes the account's real balance.
DEFAULT_SELF_BALANCE = 10**18


@dataclass
class ExecutionResult:
    """Outcome of one message call."""

    success: bool
    return_data: bytes = b""
    error: Optional[str] = None
    gas_used: int = 0
    steps: int = 0
    pcs_executed: Set[int] = field(default_factory=set)
    storage_writes: Dict[int, int] = field(default_factory=dict)
    logs: List[bytes] = field(default_factory=list)
    invalid_hit: bool = False  # an INVALID opcode was reached (bug oracle)


class Memory:
    """Byte-addressed, zero-initialized, lazily grown EVM memory."""

    def __init__(self) -> None:
        self._data = bytearray()

    def _grow(self, size: int) -> None:
        if size > len(self._data):
            self._data.extend(b"\x00" * (size - len(self._data)))

    def load(self, offset: int, length: int = 32) -> bytes:
        self._grow(offset + length)
        return bytes(self._data[offset : offset + length])

    def store(self, offset: int, data: bytes) -> None:
        self._grow(offset + len(data))
        self._data[offset : offset + len(data)] = data

    def store_word(self, offset: int, value: int) -> None:
        self.store(offset, value.to_bytes(32, "big"))

    def load_word(self, offset: int) -> int:
        return int.from_bytes(self.load(offset, 32), "big")

    def size(self) -> int:
        return len(self._data)


# ----------------------------------------------------------------------
# The value-domain protocol
# ----------------------------------------------------------------------


class Domain:
    """The value-domain protocol the semantics table is written against.

    A domain owns a ``stack`` (a plain list; handlers pop and push on it
    directly, and an :class:`IndexError` from an underflowing pop is the
    driver's signal of a malformed path) and implements one method per
    operation class.  Value-op methods receive the current
    :class:`~repro.evm.disasm.Instruction` (for its pc — event emission,
    the PC opcode) followed by the operands **in stack order**: the
    first argument is the value that was on top of the stack.

    Control-flow methods (``jump``/``jumpi``/``halt_*``) return a
    *control* value interpreted by the driver: ``None`` falls through to
    the next instruction, an ``int`` transfers to that pc, and
    :data:`HALT` ends the frame or path.
    """

    __slots__ = ("stack",)

    def __init__(self) -> None:
        self.stack: list = []

    # -- values --------------------------------------------------------
    def const(self, value):
        raise NotImplementedError

    # binary: (ins, a, b) with a popped first (stack top)
    def add(self, ins, a, b):
        raise NotImplementedError

    def mul(self, ins, a, b):
        raise NotImplementedError

    def sub(self, ins, a, b):
        raise NotImplementedError

    def div(self, ins, a, b):
        raise NotImplementedError

    def sdiv(self, ins, a, b):
        raise NotImplementedError

    def mod(self, ins, a, b):
        raise NotImplementedError

    def smod(self, ins, a, b):
        raise NotImplementedError

    def exp(self, ins, a, b):
        raise NotImplementedError

    def signextend(self, ins, k, value):
        raise NotImplementedError

    def lt(self, ins, a, b):
        raise NotImplementedError

    def gt(self, ins, a, b):
        raise NotImplementedError

    def slt(self, ins, a, b):
        raise NotImplementedError

    def sgt(self, ins, a, b):
        raise NotImplementedError

    def eq(self, ins, a, b):
        raise NotImplementedError

    def and_(self, ins, a, b):
        raise NotImplementedError

    def or_(self, ins, a, b):
        raise NotImplementedError

    def xor(self, ins, a, b):
        raise NotImplementedError

    def byte(self, ins, index, value):
        raise NotImplementedError

    def shl(self, ins, shift, value):
        raise NotImplementedError

    def shr(self, ins, shift, value):
        raise NotImplementedError

    def sar(self, ins, shift, value):
        raise NotImplementedError

    # unary / ternary
    def iszero(self, ins, a):
        raise NotImplementedError

    def not_(self, ins, a):
        raise NotImplementedError

    def addmod(self, ins, a, b, n):
        raise NotImplementedError

    def mulmod(self, ins, a, b, n):
        raise NotImplementedError

    # -- data access ---------------------------------------------------
    def sha3(self, ins, offset, length):
        raise NotImplementedError

    def calldataload(self, ins, loc):
        raise NotImplementedError

    def calldatasize(self, ins):
        raise NotImplementedError

    def calldatacopy(self, ins, dst, src, length):
        raise NotImplementedError

    def codecopy(self, ins, dst, src, length):
        raise NotImplementedError

    def returndatacopy(self, ins, dst, src, length):
        raise NotImplementedError

    def extcodecopy(self, ins, addr, dst, src, length):
        raise NotImplementedError

    def mload(self, ins, offset):
        raise NotImplementedError

    def mstore(self, ins, offset, value):
        raise NotImplementedError

    def mstore8(self, ins, offset, value):
        raise NotImplementedError

    def sload(self, ins, key):
        raise NotImplementedError

    def sstore(self, ins, key, value):
        raise NotImplementedError

    # -- environment ---------------------------------------------------
    def env0(self, ins, name):
        """Zero-operand environment read (CALLER, TIMESTAMP, PC, ...)."""
        raise NotImplementedError

    def env1(self, ins, name, arg):
        """One-operand environment read (BALANCE, BLOCKHASH, ...)."""
        raise NotImplementedError

    # -- system --------------------------------------------------------
    def log(self, ins, offset, length, topics):
        raise NotImplementedError

    def create(self, ins, value, offset, length, salt):
        """CREATE/CREATE2 (salt is None for CREATE); returns the pushed value."""
        raise NotImplementedError

    def call_op(self, ins, kind, gas, to, value, in_off, in_size, out_off, out_size):
        """CALL-family opcode (kind in call/callcode/delegatecall/
        staticcall; value is None for the no-value kinds); returns the
        pushed status value."""
        raise NotImplementedError

    # -- control flow --------------------------------------------------
    def jump(self, ins, target):
        raise NotImplementedError

    def jumpi(self, ins, target, cond):
        raise NotImplementedError

    def halt_stop(self, ins):
        raise NotImplementedError

    def halt_return(self, ins, offset, length):
        raise NotImplementedError

    def halt_revert(self, ins, offset, length):
        raise NotImplementedError

    def halt_invalid(self, ins):
        raise NotImplementedError

    def halt_selfdestruct(self, ins, beneficiary):
        raise NotImplementedError


# ----------------------------------------------------------------------
# The semantics table
# ----------------------------------------------------------------------

#: handler(dom, ins) -> None (fall through) | int (jump target) | HALT
Handler = Callable[[Domain, Instruction], object]

#: maker(domain_cls) -> Handler, with the domain's methods resolved once.
Maker = Callable[[Type[Domain]], Handler]


class SemOp(NamedTuple):
    """One registered opcode: handler factory plus declared stack arity."""

    name: str
    pops: int
    pushes: int
    make: Maker


#: The semantics table: opcode byte -> :class:`SemOp`.
SEMANTICS: Dict[int, SemOp] = {}


def _register(name: str, pops: int, pushes: int, make: Maker) -> None:
    op = opcode_by_name(name)
    if (pops, pushes) != (op.pops, op.pushes):
        raise AssertionError(
            f"{name}: handler declares arity ({pops},{pushes}), "
            f"opcode table says ({op.pops},{op.pushes})"
        )
    SEMANTICS[op.code] = SemOp(name, pops, pushes, make)


def _value0(method: str, pushes_name: Optional[str] = None) -> Maker:
    """Push ``dom.<method>(ins)``."""

    def make(cls):
        fn = getattr(cls, method)

        def handler(dom, ins):
            dom.stack.append(fn(dom, ins))

        return handler

    return make


def _unop(method: str) -> Maker:
    def make(cls):
        fn = getattr(cls, method)

        def handler(dom, ins):
            s = dom.stack
            s.append(fn(dom, ins, s.pop()))

        # Fused drivers inline the pop/push shuffle and call the domain
        # method directly, skipping this wrapper frame (see
        # repro.evm.predecode KIND_UNOP/KIND_BINOP).
        handler.inner = fn
        handler.arity = 1
        return handler

    return make


def _binop(method: str) -> Maker:
    def make(cls):
        fn = getattr(cls, method)

        def handler(dom, ins):
            s = dom.stack
            s.append(fn(dom, ins, s.pop(), s.pop()))

        handler.inner = fn
        handler.arity = 2
        return handler

    return make


def _ternop(method: str) -> Maker:
    def make(cls):
        fn = getattr(cls, method)

        def handler(dom, ins):
            s = dom.stack
            s.append(fn(dom, ins, s.pop(), s.pop(), s.pop()))

        return handler

    return make


def _env0(name: str) -> Maker:
    def make(cls):
        fn = cls.env0

        def handler(dom, ins):
            dom.stack.append(fn(dom, ins, name))

        return handler

    return make


def _env1(name: str) -> Maker:
    def make(cls):
        fn = cls.env1

        def handler(dom, ins):
            s = dom.stack
            s.append(fn(dom, ins, name, s.pop()))

        return handler

    return make


def _build_semantics() -> None:
    # -- halts and control flow ---------------------------------------
    def make_stop(cls):
        fn = cls.halt_stop
        return lambda dom, ins: fn(dom, ins)

    _register("STOP", 0, 0, make_stop)

    def make_return(cls):
        fn = cls.halt_return

        def handler(dom, ins):
            s = dom.stack
            return fn(dom, ins, s.pop(), s.pop())

        return handler

    _register("RETURN", 2, 0, make_return)

    def make_revert(cls):
        fn = cls.halt_revert

        def handler(dom, ins):
            s = dom.stack
            return fn(dom, ins, s.pop(), s.pop())

        return handler

    _register("REVERT", 2, 0, make_revert)

    def make_invalid(cls):
        fn = cls.halt_invalid
        return lambda dom, ins: fn(dom, ins)

    _register("INVALID", 0, 0, make_invalid)

    def make_selfdestruct(cls):
        fn = cls.halt_selfdestruct

        def handler(dom, ins):
            return fn(dom, ins, dom.stack.pop())

        return handler

    _register("SELFDESTRUCT", 1, 0, make_selfdestruct)

    def make_jump(cls):
        fn = cls.jump

        def handler(dom, ins):
            return fn(dom, ins, dom.stack.pop())

        return handler

    _register("JUMP", 1, 0, make_jump)

    def make_jumpi(cls):
        fn = cls.jumpi

        def handler(dom, ins):
            s = dom.stack
            return fn(dom, ins, s.pop(), s.pop())

        return handler

    _register("JUMPI", 2, 0, make_jumpi)

    def make_jumpdest(cls):
        def handler(dom, ins):
            return None

        return handler

    _register("JUMPDEST", 0, 0, make_jumpdest)

    # -- arithmetic, comparison, bitwise ------------------------------
    for name, method in [
        ("ADD", "add"), ("MUL", "mul"), ("SUB", "sub"), ("DIV", "div"),
        ("SDIV", "sdiv"), ("MOD", "mod"), ("SMOD", "smod"), ("EXP", "exp"),
        ("SIGNEXTEND", "signextend"), ("LT", "lt"), ("GT", "gt"),
        ("SLT", "slt"), ("SGT", "sgt"), ("EQ", "eq"), ("AND", "and_"),
        ("OR", "or_"), ("XOR", "xor"), ("BYTE", "byte"), ("SHL", "shl"),
        ("SHR", "shr"), ("SAR", "sar"),
    ]:
        _register(name, 2, 1, _binop(method))
    _register("ISZERO", 1, 1, _unop("iszero"))
    _register("NOT", 1, 1, _unop("not_"))
    _register("ADDMOD", 3, 1, _ternop("addmod"))
    _register("MULMOD", 3, 1, _ternop("mulmod"))
    _register("SHA3", 2, 1, _binop("sha3"))

    # -- environment ---------------------------------------------------
    for name in [
        "ADDRESS", "ORIGIN", "CALLER", "CALLVALUE", "GASPRICE", "COINBASE",
        "TIMESTAMP", "NUMBER", "DIFFICULTY", "GASLIMIT", "CHAINID",
        "SELFBALANCE", "BASEFEE", "PC", "MSIZE", "GAS", "CODESIZE",
        "RETURNDATASIZE",
    ]:
        _register(name, 0, 1, _env0(name))
    for name in ["BALANCE", "EXTCODESIZE", "EXTCODEHASH", "BLOCKHASH"]:
        _register(name, 1, 1, _env1(name))

    # -- calldata, code, returndata, memory, storage ------------------
    _register("CALLDATALOAD", 1, 1, _unop("calldataload"))
    _register("CALLDATASIZE", 0, 1, _value0("calldatasize"))

    def copy3(method: str) -> Maker:
        def make(cls):
            fn = getattr(cls, method)

            def handler(dom, ins):
                s = dom.stack
                fn(dom, ins, s.pop(), s.pop(), s.pop())

            return handler

        return make

    _register("CALLDATACOPY", 3, 0, copy3("calldatacopy"))
    _register("CODECOPY", 3, 0, copy3("codecopy"))
    _register("RETURNDATACOPY", 3, 0, copy3("returndatacopy"))

    def make_extcodecopy(cls):
        fn = cls.extcodecopy

        def handler(dom, ins):
            s = dom.stack
            fn(dom, ins, s.pop(), s.pop(), s.pop(), s.pop())

        return handler

    _register("EXTCODECOPY", 4, 0, make_extcodecopy)

    _register("MLOAD", 1, 1, _unop("mload"))

    def make_mstore(method: str) -> Maker:
        def make(cls):
            fn = getattr(cls, method)

            def handler(dom, ins):
                s = dom.stack
                fn(dom, ins, s.pop(), s.pop())

            return handler

        return make

    _register("MSTORE", 2, 0, make_mstore("mstore"))
    _register("MSTORE8", 2, 0, make_mstore("mstore8"))
    _register("SLOAD", 1, 1, _unop("sload"))
    _register("SSTORE", 2, 0, make_mstore("sstore"))

    # -- stack ---------------------------------------------------------
    def make_pop(cls):
        def handler(dom, ins):
            dom.stack.pop()

        return handler

    _register("POP", 1, 0, make_pop)

    def make_push(cls):
        fn = cls.const

        def handler(dom, ins):
            dom.stack.append(fn(dom, ins.operand or 0))

        return handler

    for n in range(0, 33):
        _register(f"PUSH{n}", 0, 1, make_push)

    def make_dup(n: int) -> Maker:
        def make(cls):
            def handler(dom, ins):
                s = dom.stack
                s.append(s[-n])

            return handler

        return make

    def make_swap(n: int) -> Maker:
        def make(cls):
            def handler(dom, ins):
                s = dom.stack
                s[-1], s[-n - 1] = s[-n - 1], s[-1]

            return handler

        return make

    for n in range(1, 17):
        _register(f"DUP{n}", n, n + 1, make_dup(n))
        _register(f"SWAP{n}", n + 1, n + 1, make_swap(n))

    # -- logs ----------------------------------------------------------
    def make_log(n: int) -> Maker:
        def make(cls):
            fn = cls.log

            def handler(dom, ins):
                s = dom.stack
                offset, length = s.pop(), s.pop()
                topics = tuple(s.pop() for _ in range(n))
                fn(dom, ins, offset, length, topics)

            return handler

        return make

    for n in range(5):
        _register(f"LOG{n}", 2 + n, 0, make_log(n))

    # -- system --------------------------------------------------------
    def make_create(with_salt: bool) -> Maker:
        def make(cls):
            fn = cls.create

            def handler(dom, ins):
                s = dom.stack
                value, offset, length = s.pop(), s.pop(), s.pop()
                salt = s.pop() if with_salt else None
                s.append(fn(dom, ins, value, offset, length, salt))

            return handler

        return make

    _register("CREATE", 3, 1, make_create(False))
    _register("CREATE2", 4, 1, make_create(True))

    def make_call(kind: str, with_value: bool) -> Maker:
        def make(cls):
            fn = cls.call_op

            def handler(dom, ins):
                s = dom.stack
                gas, to = s.pop(), s.pop()
                value = s.pop() if with_value else None
                in_off, in_size = s.pop(), s.pop()
                out_off, out_size = s.pop(), s.pop()
                s.append(
                    fn(dom, ins, kind, gas, to, value,
                       in_off, in_size, out_off, out_size)
                )

            return handler

        return make

    _register("CALL", 7, 1, make_call("call", True))
    _register("CALLCODE", 7, 1, make_call("callcode", True))
    _register("DELEGATECALL", 6, 1, make_call("delegatecall", False))
    _register("STATICCALL", 6, 1, make_call("staticcall", False))


_build_semantics()


def _make_unknown(cls: Type[Domain]) -> Handler:
    """Handler for bytes that decode to no opcode: behaves like INVALID."""
    fn = cls.halt_invalid
    return lambda dom, ins: fn(dom, ins)


_DISPATCH_CACHE: Dict[Type[Domain], Dict[int, Handler]] = {}


def dispatch_table(domain_cls: Type[Domain]) -> Dict[int, Handler]:
    """The merged dispatch table for ``domain_cls``: opcode byte -> handler.

    Handlers are bound to the class's (possibly overridden) domain
    methods once, so per-step dispatch is a single dict lookup.  Tables
    are cached per class.
    """
    table = _DISPATCH_CACHE.get(domain_cls)
    if table is None:
        table = {code: entry.make(domain_cls) for code, entry in SEMANTICS.items()}
        table[UNKNOWN_CODE] = _make_unknown(domain_cls)
        _DISPATCH_CACHE[domain_cls] = table
    return table


# ----------------------------------------------------------------------
# The concrete domain
# ----------------------------------------------------------------------


class ConcreteDomain(Domain):
    """Python-int semantics: one message call's live frame.

    This is the value domain of the concrete interpreter; it also serves
    as the *frame* object handed to ``call_handler`` so that a host (the
    call machine) can observe and sync in-flight storage without the
    closure-cell hack the machine historically used.
    """

    __slots__ = (
        "memory", "storage", "calldata", "caller", "callvalue", "address",
        "gas", "return_buffer", "result", "bytecode", "call_handler",
        "jumpdests", "_env", "_calldata_size",
    )

    def __init__(
        self,
        bytecode: bytes,
        calldata: bytes,
        storage: Dict[int, int],
        jumpdests: frozenset,
        result: ExecutionResult,
        caller: int = 0xCA11E4,
        callvalue: int = 0,
        address: int = 0xC0DE,
        gas: int = 10_000_000,
        call_handler: Optional[Callable] = None,
        block: BlockContext = DEFAULT_BLOCK,
        self_balance: int = DEFAULT_SELF_BALANCE,
    ) -> None:
        super().__init__()
        self.memory = Memory()
        self.storage = storage
        self.calldata = calldata
        self._calldata_size = len(calldata)
        self.caller = caller
        self.callvalue = callvalue
        self.address = address
        self.gas = gas
        self.return_buffer = b""
        self.result = result
        self.bytecode = bytecode
        self.call_handler = call_handler
        self.jumpdests = jumpdests
        self._env = {
            "ADDRESS": address,
            "ORIGIN": caller,
            "CALLER": caller,
            "CALLVALUE": callvalue,
            "GASPRICE": block.gasprice,
            "COINBASE": block.coinbase,
            "TIMESTAMP": block.timestamp,
            "NUMBER": block.number,
            "DIFFICULTY": block.difficulty,
            "GASLIMIT": block.gaslimit,
            "CHAINID": block.chainid,
            "SELFBALANCE": self_balance,
            "BASEFEE": block.basefee,
            "CODESIZE": len(bytecode),
        }

    # -- values --------------------------------------------------------

    def const(self, value):
        return value

    def add(self, ins, a, b):
        return (a + b) & _MASK

    def mul(self, ins, a, b):
        return (a * b) & _MASK

    def sub(self, ins, a, b):
        return (a - b) & _MASK

    def div(self, ins, a, b):
        return 0 if b == 0 else a // b

    def sdiv(self, ins, a, b):
        sa, sb = _to_signed(a), _to_signed(b)
        if sb == 0:
            return 0
        quotient = abs(sa) // abs(sb)
        return _to_unsigned(-quotient if (sa < 0) != (sb < 0) else quotient)

    def mod(self, ins, a, b):
        return 0 if b == 0 else a % b

    def smod(self, ins, a, b):
        sa, sb = _to_signed(a), _to_signed(b)
        if sb == 0:
            return 0
        remainder = abs(sa) % abs(sb)
        return _to_unsigned(-remainder if sa < 0 else remainder)

    def exp(self, ins, a, b):
        return pow(a, b, _WORD)

    def signextend(self, ins, k, value):
        if k < 31:
            bit = (k + 1) * 8 - 1
            if value & (1 << bit):
                value |= _MASK ^ ((1 << (bit + 1)) - 1)
            else:
                value &= (1 << (bit + 1)) - 1
        return value

    def lt(self, ins, a, b):
        return 1 if a < b else 0

    def gt(self, ins, a, b):
        return 1 if a > b else 0

    def slt(self, ins, a, b):
        return 1 if _to_signed(a) < _to_signed(b) else 0

    def sgt(self, ins, a, b):
        return 1 if _to_signed(a) > _to_signed(b) else 0

    def eq(self, ins, a, b):
        return 1 if a == b else 0

    def and_(self, ins, a, b):
        return a & b

    def or_(self, ins, a, b):
        return a | b

    def xor(self, ins, a, b):
        return a ^ b

    def byte(self, ins, index, value):
        return (value >> (8 * (31 - index))) & 0xFF if index < 32 else 0

    def shl(self, ins, shift, value):
        return 0 if shift >= 256 else (value << shift) & _MASK

    def shr(self, ins, shift, value):
        return 0 if shift >= 256 else value >> shift

    def sar(self, ins, shift, value):
        signed = _to_signed(value)
        if shift >= 256:
            return _to_unsigned(-1 if signed < 0 else 0)
        return _to_unsigned(signed >> shift)

    def iszero(self, ins, a):
        return 1 if a == 0 else 0

    def not_(self, ins, a):
        return (~a) & _MASK

    def addmod(self, ins, a, b, n):
        return 0 if n == 0 else (a + b) % n

    def mulmod(self, ins, a, b, n):
        return 0 if n == 0 else (a * b) % n

    # -- data access ---------------------------------------------------

    def sha3(self, ins, offset, length):
        return int.from_bytes(keccak256(self.memory.load(offset, length)), "big")

    def calldataload(self, ins, loc):
        chunk = self.calldata[loc : loc + 32]
        return int.from_bytes(chunk + b"\x00" * (32 - len(chunk)), "big")

    def calldatasize(self, ins):
        return self._calldata_size

    def calldatacopy(self, ins, dst, src, length):
        chunk = self.calldata[src : src + length]
        self.memory.store(dst, chunk + b"\x00" * (length - len(chunk)))

    def codecopy(self, ins, dst, src, length):
        chunk = self.bytecode[src : src + length]
        self.memory.store(dst, chunk + b"\x00" * (length - len(chunk)))

    def returndatacopy(self, ins, dst, src, length):
        chunk = self.return_buffer[src : src + length]
        self.memory.store(dst, chunk + b"\x00" * (length - len(chunk)))

    def extcodecopy(self, ins, addr, dst, src, length):
        pass  # external code is not modelled at the single-contract level

    def mload(self, ins, offset):
        return self.memory.load_word(offset)

    def mstore(self, ins, offset, value):
        self.memory.store_word(offset, value)

    def mstore8(self, ins, offset, value):
        self.memory.store(offset, bytes([value & 0xFF]))

    def sload(self, ins, key):
        return self.storage.get(key, 0)

    def sstore(self, ins, key, value):
        self.storage[key] = value
        self.result.storage_writes[key] = value

    # -- environment ---------------------------------------------------

    def env0(self, ins, name):
        if name == "PC":
            return ins.pc
        if name == "MSIZE":
            return self.memory.size()
        if name == "GAS":
            return max(self.gas, 0)
        if name == "RETURNDATASIZE":
            return len(self.return_buffer)
        return self._env.get(name, 0)

    def env1(self, ins, name, arg):
        return 0  # external accounts are not modelled

    # -- system --------------------------------------------------------

    def log(self, ins, offset, length, topics):
        self.result.logs.append(self.memory.load(offset, length))

    def create(self, ins, value, offset, length, salt):
        if self.call_handler is None:
            return 0
        init_code = self.memory.load(offset, length)
        ok, payload = self.call_handler(
            "create", salt or 0, value, init_code, self
        )
        return int.from_bytes(payload, "big") if ok else 0

    def call_op(self, ins, kind, gas, to, value, in_off, in_size, out_off, out_size):
        if value is None:
            value = 0
        if self.call_handler is None:
            self.return_buffer = b""
            return 1  # stubbed: callee succeeds, returns nothing
        payload = self.memory.load(in_off, in_size)
        ok, self.return_buffer = self.call_handler(kind, to, value, payload, self)
        if out_size:
            chunk = self.return_buffer[:out_size]
            self.memory.store(out_off, chunk + b"\x00" * (out_size - len(chunk)))
        return 1 if ok else 0

    # -- control flow --------------------------------------------------

    def jump(self, ins, target):
        if target not in self.jumpdests:
            raise InvalidJump(f"jump to {target:#x}")
        return target

    def jumpi(self, ins, target, cond):
        if cond:
            if target not in self.jumpdests:
                raise InvalidJump(f"jump to {target:#x}")
            return target
        return None

    def halt_stop(self, ins):
        self.result.success = True
        return HALT

    def halt_return(self, ins, offset, length):
        self.result.return_data = self.memory.load(offset, length)
        self.result.success = True
        return HALT

    def halt_revert(self, ins, offset, length):
        raise Reverted(self.memory.load(offset, length))

    def halt_invalid(self, ins):
        self.result.invalid_hit = True
        raise InvalidInstruction(f"INVALID at {ins.pc:#x}")

    def halt_selfdestruct(self, ins, beneficiary):
        self.result.success = True
        return HALT
