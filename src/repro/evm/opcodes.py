"""The EVM instruction set.

A single authoritative table of every opcode this reproduction supports,
covering the Frontier-through-Shanghai instruction set that Solidity and
Vyper codegen uses (including SHR/SHL/SAR from Constantinople and PUSH0
from Shanghai).  Each entry records the mnemonic, how many stack items the
instruction pops and pushes, the size of its immediate operand (only
PUSH1..PUSH32 carry one), and a base gas cost used by the concrete
interpreter.  Gas accounting here is deliberately simple — enough to bound
fuzzing runs, not a consensus implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class Op:
    """Static description of one EVM opcode."""

    code: int
    name: str
    pops: int
    pushes: int
    immediate_size: int = 0
    gas: int = 3

    @property
    def is_push(self) -> bool:
        return 0x5F <= self.code <= 0x7F

    @property
    def is_dup(self) -> bool:
        return 0x80 <= self.code <= 0x8F

    @property
    def is_swap(self) -> bool:
        return 0x90 <= self.code <= 0x9F

    @property
    def is_terminator(self) -> bool:
        """True when control flow never falls through this instruction."""
        return self.name in _TERMINATORS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op(0x{self.code:02x} {self.name})"


_TERMINATORS = frozenset(
    ["STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT", "JUMP"]
)


def _build_table() -> Dict[int, Op]:
    table: Dict[int, Op] = {}

    def op(code: int, name: str, pops: int, pushes: int, gas: int = 3) -> None:
        table[code] = Op(code, name, pops, pushes, 0, gas)

    # 0x00s: arithmetic
    op(0x00, "STOP", 0, 0, 0)
    op(0x01, "ADD", 2, 1)
    op(0x02, "MUL", 2, 1, 5)
    op(0x03, "SUB", 2, 1)
    op(0x04, "DIV", 2, 1, 5)
    op(0x05, "SDIV", 2, 1, 5)
    op(0x06, "MOD", 2, 1, 5)
    op(0x07, "SMOD", 2, 1, 5)
    op(0x08, "ADDMOD", 3, 1, 8)
    op(0x09, "MULMOD", 3, 1, 8)
    op(0x0A, "EXP", 2, 1, 10)
    op(0x0B, "SIGNEXTEND", 2, 1, 5)

    # 0x10s: comparison & bitwise
    op(0x10, "LT", 2, 1)
    op(0x11, "GT", 2, 1)
    op(0x12, "SLT", 2, 1)
    op(0x13, "SGT", 2, 1)
    op(0x14, "EQ", 2, 1)
    op(0x15, "ISZERO", 1, 1)
    op(0x16, "AND", 2, 1)
    op(0x17, "OR", 2, 1)
    op(0x18, "XOR", 2, 1)
    op(0x19, "NOT", 1, 1)
    op(0x1A, "BYTE", 2, 1)
    op(0x1B, "SHL", 2, 1)
    op(0x1C, "SHR", 2, 1)
    op(0x1D, "SAR", 2, 1)

    # 0x20s
    op(0x20, "SHA3", 2, 1, 30)

    # 0x30s: environment
    op(0x30, "ADDRESS", 0, 1, 2)
    op(0x31, "BALANCE", 1, 1, 100)
    op(0x32, "ORIGIN", 0, 1, 2)
    op(0x33, "CALLER", 0, 1, 2)
    op(0x34, "CALLVALUE", 0, 1, 2)
    op(0x35, "CALLDATALOAD", 1, 1)
    op(0x36, "CALLDATASIZE", 0, 1, 2)
    op(0x37, "CALLDATACOPY", 3, 0)
    op(0x38, "CODESIZE", 0, 1, 2)
    op(0x39, "CODECOPY", 3, 0)
    op(0x3A, "GASPRICE", 0, 1, 2)
    op(0x3B, "EXTCODESIZE", 1, 1, 100)
    op(0x3C, "EXTCODECOPY", 4, 0, 100)
    op(0x3D, "RETURNDATASIZE", 0, 1, 2)
    op(0x3E, "RETURNDATACOPY", 3, 0)
    op(0x3F, "EXTCODEHASH", 1, 1, 100)

    # 0x40s: block
    op(0x40, "BLOCKHASH", 1, 1, 20)
    op(0x41, "COINBASE", 0, 1, 2)
    op(0x42, "TIMESTAMP", 0, 1, 2)
    op(0x43, "NUMBER", 0, 1, 2)
    op(0x44, "DIFFICULTY", 0, 1, 2)
    op(0x45, "GASLIMIT", 0, 1, 2)
    op(0x46, "CHAINID", 0, 1, 2)
    op(0x47, "SELFBALANCE", 0, 1, 5)
    op(0x48, "BASEFEE", 0, 1, 2)

    # 0x50s: stack, memory, storage, flow
    op(0x50, "POP", 1, 0, 2)
    op(0x51, "MLOAD", 1, 1)
    op(0x52, "MSTORE", 2, 0)
    op(0x53, "MSTORE8", 2, 0)
    op(0x54, "SLOAD", 1, 1, 100)
    op(0x55, "SSTORE", 2, 0, 100)
    op(0x56, "JUMP", 1, 0, 8)
    op(0x57, "JUMPI", 2, 0, 10)
    op(0x58, "PC", 0, 1, 2)
    op(0x59, "MSIZE", 0, 1, 2)
    op(0x5A, "GAS", 0, 1, 2)
    op(0x5B, "JUMPDEST", 0, 0, 1)

    # PUSH0..PUSH32
    table[0x5F] = Op(0x5F, "PUSH0", 0, 1, 0, 2)
    for n in range(1, 33):
        table[0x5F + n] = Op(0x5F + n, f"PUSH{n}", 0, 1, n, 3)

    # DUP1..DUP16 / SWAP1..SWAP16
    for n in range(1, 17):
        table[0x7F + n] = Op(0x7F + n, f"DUP{n}", n, n + 1, 0, 3)
        table[0x8F + n] = Op(0x8F + n, f"SWAP{n}", n + 1, n + 1, 0, 3)

    # LOG0..LOG4
    for n in range(5):
        table[0xA0 + n] = Op(0xA0 + n, f"LOG{n}", 2 + n, 0, 0, 375)

    # 0xF0s: system
    op(0xF0, "CREATE", 3, 1, 32000)
    op(0xF1, "CALL", 7, 1, 100)
    op(0xF2, "CALLCODE", 7, 1, 100)
    op(0xF3, "RETURN", 2, 0, 0)
    op(0xF4, "DELEGATECALL", 6, 1, 100)
    op(0xF5, "CREATE2", 4, 1, 32000)
    op(0xFA, "STATICCALL", 6, 1, 100)
    op(0xFD, "REVERT", 2, 0, 0)
    op(0xFE, "INVALID", 0, 0, 0)
    op(0xFF, "SELFDESTRUCT", 1, 0, 5000)

    return table


OPCODES: Dict[int, Op] = _build_table()

_BY_NAME: Dict[str, Op] = {op.name: op for op in OPCODES.values()}


def opcode_by_name(name: str) -> Op:
    """Look up an opcode by mnemonic (case-insensitive).

    Raises KeyError for unknown mnemonics.
    """
    return _BY_NAME[name.upper()]


def is_valid_opcode(byte: int) -> bool:
    return byte in OPCODES


def push_for_value(value: int) -> Op:
    """The smallest PUSHn able to encode ``value``."""
    if value < 0:
        raise ValueError("PUSH operands are unsigned")
    size = max(1, (value.bit_length() + 7) // 8)
    if size > 32:
        raise ValueError(f"value does not fit in 32 bytes: {value:#x}")
    return _BY_NAME[f"PUSH{size}"]
