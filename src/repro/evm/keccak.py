"""Pure-Python Keccak-256.

Ethereum uses the original Keccak padding (0x01), not the NIST SHA-3
padding (0x06), so ``hashlib.sha3_256`` gives different digests and no
Keccak library is available offline.  This module implements
Keccak-f[1600] from the reference specification: 5x5 lanes of 64 bits,
24 rounds of theta / rho / pi / chi / iota, rate 1088 bits (136 bytes)
for the 256-bit variant.

Verified against the published empty-string digest and the ERC-20
selector corpus (see tests/evm/test_keccak.py).
"""

from __future__ import annotations

from typing import List

_MASK64 = (1 << 64) - 1

_ROUND_CONSTANTS = [
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
]

# Rotation offsets, indexed [x][y].
_ROTATIONS = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
]

_RATE_BYTES = 136  # 1088-bit rate for Keccak-256


def _rotl(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (64 - shift))) & _MASK64


def _keccak_f(lanes: List[List[int]]) -> None:
    """Apply Keccak-f[1600] in place to a 5x5 lane matrix."""
    for round_constant in _ROUND_CONSTANTS:
        # theta
        c = [
            lanes[x][0] ^ lanes[x][1] ^ lanes[x][2] ^ lanes[x][3] ^ lanes[x][4]
            for x in range(5)
        ]
        d = [c[(x - 1) % 5] ^ _rotl(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                lanes[x][y] ^= d[x]

        # rho + pi
        b = [[0] * 5 for _ in range(5)]
        for x in range(5):
            for y in range(5):
                b[y][(2 * x + 3 * y) % 5] = _rotl(lanes[x][y], _ROTATIONS[x][y])

        # chi
        for x in range(5):
            for y in range(5):
                lanes[x][y] = b[x][y] ^ ((~b[(x + 1) % 5][y]) & b[(x + 2) % 5][y])

        # iota
        lanes[0][0] ^= round_constant


class Keccak256:
    """Incremental Keccak-256 hasher mirroring the hashlib interface."""

    digest_size = 32

    def __init__(self, data: bytes = b"") -> None:
        self._lanes: List[List[int]] = [[0] * 5 for _ in range(5)]
        self._buffer = bytearray()
        self._finalized = False
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Keccak256":
        if self._finalized:
            raise ValueError("cannot update a finalized hasher")
        self._buffer.extend(data)
        while len(self._buffer) >= _RATE_BYTES:
            self._absorb(bytes(self._buffer[:_RATE_BYTES]))
            del self._buffer[:_RATE_BYTES]
        return self

    def _absorb(self, block: bytes) -> None:
        for i in range(_RATE_BYTES // 8):
            lane = int.from_bytes(block[i * 8 : i * 8 + 8], "little")
            x, y = i % 5, i // 5
            self._lanes[x][y] ^= lane
        _keccak_f(self._lanes)

    def digest(self) -> bytes:
        # Pad a copy so that digest() can be called repeatedly.
        lanes = [list(col) for col in self._lanes]
        padded = bytearray(self._buffer)
        pad_len = _RATE_BYTES - len(padded)
        if pad_len == 1:
            padded.append(0x81)
        else:
            padded.append(0x01)
            padded.extend(b"\x00" * (pad_len - 2))
            padded.append(0x80)
        for offset in range(0, len(padded), _RATE_BYTES):
            block = bytes(padded[offset : offset + _RATE_BYTES])
            for i in range(_RATE_BYTES // 8):
                lane = int.from_bytes(block[i * 8 : i * 8 + 8], "little")
                x, y = i % 5, i // 5
                lanes[x][y] ^= lane
            _keccak_f(lanes)
        out = bytearray()
        for i in range(4):  # 4 lanes = 32 bytes
            x, y = i % 5, i // 5
            out.extend(lanes[x][y].to_bytes(8, "little"))
        return bytes(out)

    def hexdigest(self) -> str:
        return self.digest().hex()


def keccak256(data: bytes) -> bytes:
    """One-shot Keccak-256 digest of ``data``."""
    return Keccak256(data).digest()


def selector(signature: str) -> bytes:
    """The 4-byte function id of a canonical signature string.

    >>> selector("transfer(address,uint256)").hex()
    'a9059cbb'
    """
    return keccak256(signature.encode("ascii"))[:4]
