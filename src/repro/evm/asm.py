"""A small EVM assembler with label support.

The compiler substrate emits instruction streams symbolically (labels for
jump targets) and this module resolves them to concrete bytecode.  Because
PUSH widths depend on target addresses, label resolution iterates to a
fixed point, always widening (a target address never shrinks once widened),
so the loop terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.evm.opcodes import Op, opcode_by_name


@dataclass(frozen=True)
class Label:
    """A symbolic jump target."""

    name: str


@dataclass
class _Item:
    """One assembler item: an opcode, optionally with an immediate."""

    op: Optional[Op] = None
    immediate: Optional[int] = None
    push_label: Optional[str] = None  # PUSH of a label address
    label: Optional[str] = None  # label definition (zero width)


class AssemblyError(Exception):
    """Raised for malformed assembly programs."""


class Assembler:
    """Builds EVM bytecode from mnemonics, immediates and labels.

    Usage::

        a = Assembler()
        a.push(0).op("CALLDATALOAD")
        a.push_label("body").op("JUMP")
        a.label("body").op("JUMPDEST").op("STOP")
        bytecode = a.assemble()
    """

    def __init__(self) -> None:
        self._items: List[_Item] = []
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Emission API
    # ------------------------------------------------------------------

    def op(self, name: str) -> "Assembler":
        """Emit a plain opcode by mnemonic."""
        self._items.append(_Item(op=opcode_by_name(name)))
        return self

    def push(self, value: int, width: Optional[int] = None) -> "Assembler":
        """Emit the smallest PUSHn for ``value`` (or a fixed ``width``)."""
        if value < 0:
            raise AssemblyError(f"PUSH operand must be unsigned, got {value}")
        size = max(1, (value.bit_length() + 7) // 8)
        if width is not None:
            if width < size:
                raise AssemblyError(f"value {value:#x} does not fit in {width} bytes")
            size = width
        if size > 32:
            raise AssemblyError(f"PUSH operand too wide: {value:#x}")
        self._items.append(_Item(op=opcode_by_name(f"PUSH{size}"), immediate=value))
        return self

    def push_label(self, name: str) -> "Assembler":
        """Emit a PUSH whose immediate is the resolved address of a label."""
        self._items.append(_Item(push_label=name))
        return self

    def label(self, name: str) -> "Assembler":
        """Define a label at the current position."""
        self._items.append(_Item(label=name))
        return self

    def fresh_label(self, stem: str = "L") -> str:
        """Generate a unique label name."""
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def raw(self, data: bytes) -> "Assembler":
        """Append raw bytes (e.g. embedded data)."""
        for byte in data:
            self._items.append(_Item(op=None, immediate=byte))
        return self

    def extend(self, other: "Assembler") -> "Assembler":
        """Append all items of another assembler (labels must not clash)."""
        self._items.extend(other._items)
        return self

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def assemble(self) -> bytes:
        """Resolve labels and produce final bytecode."""
        widths = self._fix_label_widths()
        addresses = self._layout(widths)
        out = bytearray()
        for item in self._items:
            if item.label is not None:
                continue
            if item.push_label is not None:
                address = addresses[item.push_label]
                width = widths[item.push_label]
                out.append(opcode_by_name(f"PUSH{width}").code)
                out.extend(address.to_bytes(width, "big"))
            elif item.op is not None:
                out.append(item.op.code)
                if item.op.immediate_size:
                    if item.immediate is None:
                        raise AssemblyError(f"{item.op.name} missing immediate")
                    out.extend(item.immediate.to_bytes(item.op.immediate_size, "big"))
            else:
                out.append(item.immediate or 0)
        return bytes(out)

    def _fix_label_widths(self) -> Dict[str, int]:
        """Iterate PUSH widths for label references to a fixed point."""
        labels = [item.label for item in self._items if item.label is not None]
        if len(set(labels)) != len(labels):
            raise AssemblyError("duplicate label definition")
        widths = {name: 1 for name in labels}
        for item in self._items:
            if item.push_label is not None and item.push_label not in widths:
                raise AssemblyError(f"undefined label: {item.push_label}")
        while True:
            addresses = self._layout(widths)
            changed = False
            for name, address in addresses.items():
                needed = max(1, (address.bit_length() + 7) // 8)
                if needed > widths[name]:
                    widths[name] = needed
                    changed = True
            if not changed:
                return widths

    def _layout(self, widths: Dict[str, int]) -> Dict[str, int]:
        """Compute label addresses for given PUSH widths."""
        addresses: Dict[str, int] = {}
        pc = 0
        for item in self._items:
            if item.label is not None:
                addresses[item.label] = pc
            elif item.push_label is not None:
                pc += 1 + widths[item.push_label]
            elif item.op is not None:
                pc += 1 + item.op.immediate_size
            else:
                pc += 1
        return addresses


def assemble(program: List[Union[str, Tuple[str, int]]]) -> bytes:
    """Assemble a simple list program without labels.

    Each element is a mnemonic string or a ``(mnemonic, immediate)`` pair
    for PUSH instructions::

        assemble([("PUSH1", 0), "CALLDATALOAD", "STOP"])
    """
    asm = Assembler()
    for element in program:
        if isinstance(element, str):
            asm.op(element)
        else:
            name, value = element
            op = opcode_by_name(name)
            if not op.is_push:
                raise AssemblyError(f"{name} takes no immediate")
            asm._items.append(_Item(op=op, immediate=value))
    return asm.assemble()
