"""The five documented inaccuracy cases (paper §5.2).

Each quirk transforms a clean :class:`FunctionSpec` into one whose
bytecode legitimately disagrees with the declared signature, in exactly
the way the paper's error analysis describes:

* **case1** — the function declares no parameter but reads two with
  inline assembly (Listing 10): SigRec reports the *read* parameters.
* **case2** — the body force-converts the declared type before use
  (Listing 11, ``uint256[6]`` used as ``uint8`` items): SigRec reports
  the converted type.
* **case3** — a declared ``address`` is used in arithmetic, so it is
  recovered as ``uint160`` (the R16 distinction in reverse).
* **case4** — a parameter with the ``storage`` modifier passes a slot
  reference, recovered as ``uint256`` whatever the declared type.
* **case5** — rule blind spots: optimized constant-index static arrays
  (no bound checks), ``bytes`` never byte-accessed (= ``string``), and
  static structs (layout identical to flattened members).
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.abi.signature import FunctionSignature, Visibility
from repro.abi.types import (
    AddressType,
    ArrayType,
    BoolType,
    BytesType,
    TupleType,
    UIntType,
)
from repro.compiler.contract import FunctionSpec

QUIRK_NAMES = ("case1", "case2", "case3", "case4", "case5")


def apply_quirk(
    sig: FunctionSignature, quirk: str, rng: random.Random
) -> FunctionSpec:
    """Build the quirked spec for ``sig``; the declared signature (and
    hence the selector) is preserved — only the body diverges."""
    if quirk == "case1":
        # Declared parameterless; the body reads two words via inline
        # assembly (calldataload(4), calldataload(36)).
        bare = FunctionSignature(sig.name, (), sig.visibility, sig.language)
        return FunctionSpec(bare, body_params=(UIntType(256), UIntType(256)))
    if quirk == "case2":
        # Declared uint256[k]; every item is down-cast to uint8 on use.
        k = rng.randint(2, 6)
        declared = FunctionSignature(
            sig.name, (ArrayType(UIntType(256), k),), sig.visibility, sig.language
        )
        return FunctionSpec(declared, body_params=(ArrayType(UIntType(8), k),))
    if quirk == "case3":
        # Declared address; used in arithmetic -> uint160.
        declared = FunctionSignature(
            sig.name, (AddressType(),), sig.visibility, sig.language
        )
        return FunctionSpec(declared, body_params=(UIntType(160),))
    if quirk == "case4":
        # Declared with a storage reference; the body reads one word.
        declared = FunctionSignature(
            sig.name, (ArrayType(UIntType(256), None),), sig.visibility, sig.language
        )
        return FunctionSpec(declared, body_params=(UIntType(256),))
    if quirk == "case5":
        variant = rng.randrange(3)
        if variant == 0:
            # Optimized constant-index static array: no bound checks.
            declared = FunctionSignature(
                sig.name,
                (ArrayType(UIntType(256), rng.randint(2, 5)),),
                Visibility.EXTERNAL,
                sig.language,
            )
            return FunctionSpec(declared, const_index=True)
        if variant == 1:
            # bytes whose individual bytes are never accessed.
            declared = FunctionSignature(
                sig.name, (BytesType(),), sig.visibility, sig.language
            )
            return FunctionSpec(declared, no_byte_access=True)
        # Static struct: identical layout to its flattened members.
        declared = FunctionSignature(
            sig.name,
            (TupleType((UIntType(256), BoolType())),),
            sig.visibility,
            sig.language,
        )
        return FunctionSpec(declared)
    raise ValueError(f"unknown quirk: {quirk}")
