"""Accuracy evaluation harness shared by the RQ benchmarks.

A recovered signature is *correct* iff the function id, the number and
order of parameters, and every parameter type match the declared
ground truth exactly (the paper's §5.2 criterion).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.corpus.datasets import Corpus
from repro.obs import NULL_REGISTRY, NULL_TRACER
from repro.sigrec.api import SigRec


@dataclass
class FunctionOutcome:
    selector: int
    declared: str  # declared canonical parameter list
    recovered: Optional[str]  # None when the tool produced nothing
    quirk: Optional[str]
    version_key: str
    elapsed_seconds: float = 0.0

    @property
    def correct(self) -> bool:
        return self.recovered == self.declared


@dataclass
class EvalReport:
    outcomes: List[FunctionOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def correct(self) -> int:
        return sum(1 for o in self.outcomes if o.correct)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.outcomes else 0.0

    def accuracy_by_version(self) -> Dict[str, float]:
        buckets: Dict[str, List[FunctionOutcome]] = defaultdict(list)
        for outcome in self.outcomes:
            buckets[outcome.version_key].append(outcome)
        return {
            version: sum(o.correct for o in outs) / len(outs)
            for version, outs in buckets.items()
        }

    def errors_by_quirk(self) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for outcome in self.outcomes:
            if not outcome.correct:
                counts[outcome.quirk or "other"] += 1
        return dict(counts)

    def timing_seconds(self) -> List[float]:
        return [o.elapsed_seconds for o in self.outcomes]


@dataclass
class BaselineReport:
    """Per-function outcomes of one baseline tool over a corpus."""

    tool_name: str
    outcomes: List[FunctionOutcome] = field(default_factory=list)
    aborted_contracts: int = 0
    total_contracts: int = 0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def correct(self) -> int:
        return sum(1 for o in self.outcomes if o.correct)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.outcomes else 0.0

    @property
    def abort_ratio(self) -> float:
        return (
            self.aborted_contracts / self.total_contracts
            if self.total_contracts
            else 0.0
        )

    @property
    def no_answer(self) -> int:
        return sum(1 for o in self.outcomes if o.recovered is None)

    def wrong_param_count(self) -> int:
        """Functions where the number of parameters is wrong."""
        wrong = 0
        for o in self.outcomes:
            if o.recovered is None or o.correct:
                continue
            declared_n = len(o.declared.split(",")) if o.declared else 0
            recovered_n = len(o.recovered.split(",")) if o.recovered else 0
            if declared_n != recovered_n:
                wrong += 1
        return wrong

    def wrong_types_only(self) -> int:
        """Wrong answers that at least got the parameter count right."""
        wrong = 0
        for o in self.outcomes:
            if o.recovered is None or o.correct:
                continue
            declared_n = len(o.declared.split(",")) if o.declared else 0
            recovered_n = len(o.recovered.split(",")) if o.recovered else 0
            if declared_n == recovered_n:
                wrong += 1
        return wrong


def evaluate_baseline(corpus: Corpus, tool) -> BaselineReport:
    """Run a baseline tool over the corpus against ground truth.

    Splitting parameter lists at top-level commas is deliberately naive
    here (tuples contain commas) — baseline tools do not produce tuple
    types, so the count comparison stays meaningful.
    """
    report = BaselineReport(tool_name=tool.name)
    for case in corpus.cases:
        report.total_contracts += 1
        output = tool.recover(case.contract.bytecode)
        if output.aborted:
            report.aborted_contracts += 1
        for sig, quirk in zip(case.declared, case.quirks):
            selector = int.from_bytes(sig.selector, "big")
            recovered = None if output.aborted else output.functions.get(selector)
            report.outcomes.append(
                FunctionOutcome(
                    selector=selector,
                    declared=sig.param_list(),
                    recovered=recovered,
                    quirk=quirk,
                    version_key=case.options.version_key,
                )
            )
    return report


def evaluate_corpus(
    corpus: Corpus,
    tool: Optional[SigRec] = None,
    workers: int = 0,
    cache_dir: Optional[str] = None,
) -> EvalReport:
    """Run SigRec over every contract, compare against ground truth.

    ``workers`` / ``cache_dir`` route the recovery through the batch
    executor (process pool, persistent cache); accuracy is identical to
    the serial path, only wall-clock changes.  In batch mode the whole
    corpus is timed at once, so per-function ``elapsed_seconds`` is the
    batch average rather than a per-contract measurement.

    When the tool carries observability backends (``SigRec(metrics=...,
    tracer=...)``), every contract additionally produces an
    ``eval.{contracts,functions,correct}`` counter update and one
    ``contract_eval`` trace event recording its outcome.
    """
    tool = tool or SigRec()
    report = EvalReport()
    metrics, tracer = tool.metrics, tool.tracer
    observing = metrics is not NULL_REGISTRY or tracer is not NULL_TRACER
    if workers or cache_dir is not None:
        from repro.sigrec.batch import BatchRecovery

        runner = BatchRecovery(tool=tool, workers=workers, cache_dir=cache_dir)
        bytecodes = [case.contract.bytecode for case in corpus.cases]
        batch_results = runner.recover_all(bytecodes)
        total_functions = max(
            1, sum(len(case.declared) for case in corpus.cases)
        )
        per_function = runner.stats.elapsed_seconds / total_functions
        for index, (case, recovered_list) in enumerate(
            zip(corpus.cases, batch_results)
        ):
            recovered = {sig.selector: sig for sig in recovered_list}
            functions, correct = _append_case_outcomes(
                report, case, recovered, per_function
            )
            if observing:
                _record_case(
                    metrics, tracer, index, functions, correct, elapsed=None
                )
        return report
    for index, case in enumerate(corpus.cases):
        start = time.perf_counter()
        recovered = tool.recover_map(case.contract.bytecode)
        contract_elapsed = time.perf_counter() - start
        n_functions = max(1, len(case.declared))
        functions, correct = _append_case_outcomes(
            report, case, recovered, contract_elapsed / n_functions
        )
        if observing:
            _record_case(
                metrics, tracer, index, functions, correct, contract_elapsed
            )
    return report


def _record_case(
    metrics, tracer, index: int, functions: int, correct: int,
    elapsed: Optional[float],
) -> None:
    """One contract's evaluation outcome, as counters and a trace event."""
    metrics.counter("eval.contracts").inc()
    metrics.counter("eval.functions").inc(functions)
    metrics.counter("eval.correct").inc(correct)
    attrs = {"index": index, "functions": functions, "correct": correct}
    if elapsed is not None:
        metrics.histogram("eval.contract_seconds").observe(elapsed)
        attrs["elapsed"] = elapsed
    tracer.event("contract_eval", **attrs)


def _append_case_outcomes(
    report: EvalReport, case, recovered: Dict[int, object], per_function: float
) -> "Tuple[int, int]":
    """Append one case's outcomes; returns (functions, correct)."""
    functions = correct = 0
    for sig, quirk in zip(case.declared, case.quirks):
        selector = int.from_bytes(sig.selector, "big")
        got = recovered.get(selector)
        outcome = FunctionOutcome(
            selector=selector,
            declared=sig.param_list(),
            recovered=got.param_list if got is not None else None,
            quirk=quirk,
            version_key=case.options.version_key,
            elapsed_seconds=per_function,
        )
        report.outcomes.append(outcome)
        functions += 1
        correct += outcome.correct
    return functions, correct
