"""Corpus builders standing in for the paper's datasets.

* ``build_open_source_corpus`` — ground-truth contracts across many
  compiler versions with the five inaccuracy cases injected at a low
  rate (the paper's 119,404 Etherscan contracts).
* ``build_closed_source_corpus`` — same construction, but treated as
  closed source by the baselines (the 368,679 unique deployed
  bytecodes of dataset 1).
* ``build_synthesized_dataset`` — dataset 2's recipe: 100 contracts x
  10 functions with random 5-letter names, 1-5 random parameters,
  Solidity 0.5.5, optimizer on with probability 50%.
* ``build_vyper_corpus`` — the 278-contract Vyper set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Tuple

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.compiler.contract import CompiledContract, FunctionSpec, compile_contract
from repro.compiler.options import CodegenOptions, solidity_versions, vyper_versions
from repro.compiler.storage import StorageVariableSpec
from repro.corpus.quirks import QUIRK_NAMES, apply_quirk
from repro.corpus.signatures import SignatureGenerator


@dataclass
class ContractCase:
    """One compiled contract with its ground truth and quirk tags."""

    contract: CompiledContract
    options: CodegenOptions
    declared: Tuple[FunctionSignature, ...]
    quirks: Tuple[Optional[str], ...]  # parallel to ``declared``

    def __post_init__(self) -> None:
        assert len(self.declared) == len(self.quirks)


@dataclass
class Corpus:
    """A list of contract cases plus iteration helpers."""

    cases: List[ContractCase] = field(default_factory=list)
    language: Language = Language.SOLIDITY

    def __len__(self) -> int:
        return len(self.cases)

    @property
    def function_count(self) -> int:
        return sum(len(case.declared) for case in self.cases)

    def functions(self) -> Iterator[Tuple[ContractCase, FunctionSignature, Optional[str]]]:
        for case in self.cases:
            for sig, quirk in zip(case.declared, case.quirks):
                yield case, sig, quirk


def _weighted_version(rng: random.Random, catalog: List[CodegenOptions]) -> CodegenOptions:
    """Later compiler versions are (much) more common on mainnet."""
    weights = [1 + i * i for i in range(len(catalog))]
    return rng.choices(catalog, weights=weights, k=1)[0]


#: The storage shapes ``_random_storage_ops`` draws from; each maker
#: gets a disjoint slot range so ground-truth layouts never conflict.
_STORAGE_SHAPES = (
    lambda base, rng: StorageVariableSpec(base, "value"),
    lambda base, rng: StorageVariableSpec(
        base + 1, "packed",
        offset=rng.choice((0, 4, 20)),
        width=rng.choice((1, 2, 8)),
        signed=rng.random() < 0.3,
    ),
    lambda base, rng: StorageVariableSpec(
        base + 2, "mapping", depth=rng.randint(1, 3)
    ),
    lambda base, rng: StorageVariableSpec(base + 3, "dynamic_array"),
)


def _random_storage_ops(
    rng: random.Random, slot_base: int
) -> Tuple[Tuple[str, StorageVariableSpec], ...]:
    """1-3 read/write accesses over variables in this function's slots."""
    ops = []
    for _ in range(rng.randint(1, 3)):
        spec = rng.choice(_STORAGE_SHAPES)(slot_base, rng)
        ops.append((rng.choice(("read", "write")), spec))
    return tuple(ops)


_MUTABILITIES = ("payable", "nonpayable", "view", "pure")
_RETURN_TYPES = ("uint256", "address", "bool", "bytes", "string")


def _reconcile_mutability(
    mutability: str, storage_ops: Tuple
) -> str:
    """Downgrade a drawn mutability so it never contradicts the body.

    ``pure`` with storage traffic and ``view`` with storage writes are
    build errors; resolve them deterministically (no RNG draws) so the
    knobs stay stream-stable.
    """
    if mutability == "pure" and storage_ops:
        mutability = "view"
    if mutability == "view" and any(
        kind == "write" for kind, _v in storage_ops
    ):
        mutability = "nonpayable"
    return mutability


def _build_contract_case(
    gen: SignatureGenerator,
    rng: random.Random,
    options: CodegenOptions,
    n_functions: int,
    quirk_rate: float,
    storage_rate: float = 0.0,
    mutability_rate: float = 0.0,
    returns_rate: float = 0.0,
) -> ContractCase:
    specs: List[FunctionSpec] = []
    declared: List[FunctionSignature] = []
    quirks: List[Optional[str]] = []
    force_optimize = False
    for index in range(n_functions):
        sig = gen.signature()
        # Guard on the rate BEFORE drawing so existing corpora (rate 0)
        # consume the exact same RNG stream as before this knob existed.
        storage_ops: Tuple = ()
        if storage_rate and rng.random() < storage_rate:
            storage_ops = _random_storage_ops(rng, index * 4)
        if rng.random() < quirk_rate:
            quirk = rng.choice(QUIRK_NAMES)
            spec = apply_quirk(sig, quirk, rng)
            if storage_ops:
                spec = replace(spec, storage_ops=storage_ops)
            if spec.const_index:
                force_optimize = True
        else:
            spec = FunctionSpec(sig, storage_ops=storage_ops)
            quirk = None
        if mutability_rate and rng.random() < mutability_rate:
            mutability = _reconcile_mutability(
                rng.choice(_MUTABILITIES), storage_ops
            )
            spec = replace(spec, mutability=mutability)
        if returns_rate and rng.random() < returns_rate:
            shape = tuple(
                rng.choice(_RETURN_TYPES)
                for _ in range(rng.randint(1, 3))
            )
            spec = replace(spec, returns=shape)
        specs.append(spec)
        declared.append(spec.sig)
        quirks.append(quirk)
    if force_optimize and not options.optimize:
        options = CodegenOptions(
            language=options.language,
            version=options.version,
            optimize=True,
            dispatcher=options.dispatcher,
            calldatasize_check=options.calldatasize_check,
            memory_base=options.memory_base,
        )
    contract = compile_contract(specs, options)
    return ContractCase(contract, options, tuple(declared), tuple(quirks))


def build_open_source_corpus(
    n_contracts: int = 200,
    seed: int = 1,
    quirk_rate: float = 0.02,
    max_functions: int = 6,
) -> Corpus:
    """Ground-truth Solidity corpus across the version catalog."""
    rng = random.Random(seed)
    gen = SignatureGenerator(seed=seed + 1)
    catalog = solidity_versions()
    corpus = Corpus(language=Language.SOLIDITY)
    for _ in range(n_contracts):
        options = _weighted_version(rng, catalog)
        corpus.cases.append(
            _build_contract_case(
                gen, rng, options, rng.randint(1, max_functions), quirk_rate
            )
        )
    return corpus


def build_closed_source_corpus(
    n_contracts: int = 200, seed: int = 2, quirk_rate: float = 0.02
) -> Corpus:
    """Closed-source corpus (dataset 1): same construction, different
    population; baselines only see the bytecode."""
    return build_open_source_corpus(n_contracts, seed=seed, quirk_rate=quirk_rate)


def build_synthesized_dataset(
    n_functions: int = 1000, seed: int = 3
) -> Corpus:
    """Dataset 2: 100 contracts x 10 synthesized functions, Solidity
    0.5.5, optimizer on with probability 50%."""
    rng = random.Random(seed)
    gen = SignatureGenerator(
        seed=seed + 1, max_params=5, max_dims=3, max_dim_size=5,
        struct_weight=0.0, nested_weight=0.0,
    )
    corpus = Corpus(language=Language.SOLIDITY)
    per_contract = 10
    n_contracts = (n_functions + per_contract - 1) // per_contract
    for i in range(n_contracts):
        remaining = min(per_contract, n_functions - i * per_contract)
        options = CodegenOptions(version="0.5.5", optimize=rng.random() < 0.5)
        sigs = gen.signatures(remaining)
        # A small fraction of bodies index arrays with constants; under
        # the optimizer this removes the bound checks and produces the
        # paper's case-5 errors (8/1000 in their run).
        specs = [
            FunctionSpec(sig, const_index=rng.random() < 0.06) for sig in sigs
        ]
        contract = compile_contract(specs, options)
        quirk_tags = tuple(
            "case5" if (spec.const_index and options.optimize) else None
            for spec in specs
        )
        corpus.cases.append(ContractCase(contract, options, tuple(sigs), quirk_tags))
    return corpus


def build_vyper_corpus(
    n_contracts: int = 60, seed: int = 4, max_functions: int = 4
) -> Corpus:
    """Vyper corpus across the Vyper version catalog."""
    from repro.abi.types import TupleType as _Tup

    rng = random.Random(seed)
    gen = SignatureGenerator(seed=seed + 1, language=Language.VYPER)
    catalog = vyper_versions()
    corpus = Corpus(language=Language.VYPER)
    for _ in range(n_contracts):
        options = _weighted_version(rng, catalog)
        sigs = gen.signatures(rng.randint(1, max_functions))
        contract = compile_contract(sigs, options)
        # Vyper structs share their flattened members' layout: a known
        # indistinguishability (case 5).
        quirks = tuple(
            "case5" if any(isinstance(p, _Tup) for p in sig.params) else None
            for sig in sigs
        )
        corpus.cases.append(ContractCase(contract, options, tuple(sigs), quirks))
    return corpus


def build_obfuscated_corpus(
    n_contracts: int = 50, seed: int = 9, quirk_rate: float = 0.0
) -> Corpus:
    """An adversarial corpus (§7): every contract compiled with the
    obfuscating codegen — shift-pair masks, EQ-zero bools, inverted
    loop guards, shifted strides, split constants."""
    rng = random.Random(seed)
    gen = SignatureGenerator(seed=seed + 1)
    corpus = Corpus(language=Language.SOLIDITY)
    for _ in range(n_contracts):
        options = CodegenOptions(version="0.8.0", obfuscate=True)
        corpus.cases.append(
            _build_contract_case(gen, rng, options, rng.randint(1, 5), quirk_rate)
        )
    return corpus


def build_struct_nested_corpus(
    n_contracts: int = 80, seed: int = 5, hard_ratio: float = 0.38
) -> Corpus:
    """Functions taking structs or nested arrays (Table 4's population).

    A ``hard_ratio`` fraction of declarations are the ambiguous shapes
    responsible for the paper's 61.3% ceiling (all its misses are case
    5): static structs (layout identical to flattened members), mixed
    nested arrays with static middle dimensions, and string-typed
    struct components indistinguishable from bytes.
    """
    from repro.abi.types import (
        ArrayType as _Arr,
        BoolType as _Bool,
        StringType as _Str,
        TupleType as _Tup,
        UIntType as _U,
    )

    rng = random.Random(seed)
    gen = SignatureGenerator(seed=seed + 1, struct_weight=0.5, nested_weight=0.5,
                             composite_weight=0.0)
    corpus = Corpus(language=Language.SOLIDITY)
    for _ in range(n_contracts):
        options = CodegenOptions(version="0.6.0")
        sigs: List[FunctionSignature] = []
        quirks: List[Optional[str]] = []
        for _ in range(rng.randint(1, 3)):
            if rng.random() < hard_ratio:
                variant = rng.randrange(3)
                if variant == 0:
                    # Static struct: flattened by layout (case 5).
                    param = _Tup((_U(256), _Bool()))
                elif variant == 1:
                    # Mixed nested array with a static middle dimension.
                    param = _Arr(_Arr(_Arr(_U(8), None), rng.randint(2, 4)), None)
                else:
                    # string component: no byte-access discriminator.
                    param = _Tup((_Str(), _U(256)))
                sigs.append(
                    FunctionSignature(gen.fresh_name(), (param,),
                                      rng.choice(list(Visibility)))
                )
                quirks.append("case5")
            else:
                sigs.append(gen.signature(n_params=1))
                quirks.append(None)
        contract = compile_contract(sigs, options)
        corpus.cases.append(
            ContractCase(contract, options, tuple(sigs), tuple(quirks))
        )
    return corpus


def build_clone_corpus(
    n_families: int = 8,
    clones_per_family: int = 4,
    seed: int = 11,
    max_functions: int = 5,
    quirk_rate: float = 0.0,
    storage_rate: float = 0.0,
) -> Corpus:
    """A proxy/factory-clone corpus: distinct bytecodes, shared bodies.

    Mainnet's *unique* bytecodes still overwhelmingly share function
    bodies (proxies, OpenZeppelin mixins, factory clones differing only
    in an immutable constant or a metadata trailer).  Each family here
    is one compiled contract plus ``clones_per_family - 1`` variants
    with growing zero-byte trailers — the metadata-hash analogue: every
    variant hashes differently (so the content-addressed contract cache
    misses) while every function's dispatcher spine and code region is
    byte-identical (so the function-body memo hits).  With the default
    4 clones per family, 75% of function bodies are shared.

    ``storage_rate`` makes that fraction of function bodies carry
    real storage traffic (value slots, packed fields, mappings, dynamic
    arrays), with the expected layout recorded on the compiled
    contract.  It defaults to 0.0 so throughput baselines and memo-hit
    gates keep their exact historical bytecodes.
    """
    from dataclasses import replace as _replace

    rng = random.Random(seed)
    gen = SignatureGenerator(seed=seed + 1)
    catalog = solidity_versions()
    corpus = Corpus(language=Language.SOLIDITY)
    for _ in range(n_families):
        options = _weighted_version(rng, catalog)
        base = _build_contract_case(
            gen, rng, options, rng.randint(1, max_functions), quirk_rate,
            storage_rate=storage_rate,
        )
        corpus.cases.append(base)
        for clone in range(1, clones_per_family):
            padded = _replace(
                base.contract,
                bytecode=base.contract.bytecode + b"\x00" * clone,
            )
            corpus.cases.append(
                ContractCase(padded, options, base.declared, base.quirks)
            )
    return corpus


def build_storage_corpus(
    n_contracts: int = 12,
    seed: int = 21,
    max_functions: int = 4,
) -> Corpus:
    """A storage-heavy corpus for evaluating layout recovery.

    Every function body carries storage traffic, and the first three
    contracts are fixed archetypes exercising the shapes the
    layout-recovery pass must nail: a fully packed slot (four fields,
    one signed), a mapping-of-mapping bank, and a dynamic-array queue.
    The rest draw random shapes at ``storage_rate=1.0``.  Expected
    layouts live on ``case.contract.storage``.
    """
    rng = random.Random(seed)
    gen = SignatureGenerator(seed=seed + 1)
    catalog = solidity_versions()
    corpus = Corpus(language=Language.SOLIDITY)

    archetypes: List[Tuple[Tuple[str, StorageVariableSpec], ...]] = [
        (  # packed slot: address + uint16 + int8 + uint8 in slot 0
            ("read", StorageVariableSpec(0, "packed", offset=0, width=20)),
            ("read", StorageVariableSpec(0, "packed", offset=20, width=2)),
            ("read", StorageVariableSpec(0, "packed", offset=22, width=1,
                                         signed=True)),
            ("write", StorageVariableSpec(0, "packed", offset=23, width=1)),
            ("write", StorageVariableSpec(1, "value")),
        ),
        (  # bank: balances + nested allowances + a plain total
            ("read", StorageVariableSpec(0, "mapping", depth=1)),
            ("write", StorageVariableSpec(1, "mapping", depth=2)),
            ("read", StorageVariableSpec(2, "mapping", depth=3)),
            ("read", StorageVariableSpec(3, "value")),
        ),
        (  # queue: two dynamic arrays + a cursor
            ("read", StorageVariableSpec(0, "dynamic_array")),
            ("write", StorageVariableSpec(1, "dynamic_array")),
            ("write", StorageVariableSpec(2, "value")),
        ),
    ]
    for ops in archetypes:
        options = CodegenOptions(version="0.8.0")
        sigs = gen.signatures(2)
        specs = [FunctionSpec(sig, storage_ops=ops) for sig in sigs]
        contract = compile_contract(specs, options)
        corpus.cases.append(
            ContractCase(contract, options, tuple(sigs), (None,) * len(sigs))
        )

    for _ in range(max(0, n_contracts - len(archetypes))):
        options = _weighted_version(rng, catalog)
        corpus.cases.append(
            _build_contract_case(
                gen, rng, options, rng.randint(1, max_functions),
                quirk_rate=0.0, storage_rate=1.0,
            )
        )
    return corpus


def build_abi_corpus(
    n_contracts: int = 14,
    seed: int = 23,
    max_functions: int = 4,
) -> Corpus:
    """An ABI-completeness corpus for mutability/returns recovery.

    The first three contracts are fixed archetypes: one function per
    mutability (CALLVALUE-guard prologue for everything but payable), a
    return-shape sampler (single word, single dynamic tail, mixed
    three-word head, string+word), and the same guard set compiled with
    the obfuscating codegen (raw-polarity CALLVALUE JUMPI).  The rest
    draw random mutabilities and return shapes at full rate on top of
    moderate storage traffic, so the declared mutability survives the
    deterministic downgrade rules (pure never alongside storage ops,
    view never alongside writes).  Ground truth lives on
    ``case.contract.mutability`` / ``case.contract.returns``.
    """
    rng = random.Random(seed)
    gen = SignatureGenerator(seed=seed + 1)
    catalog = solidity_versions()
    corpus = Corpus(language=Language.SOLIDITY)

    mutability_archetype = [
        FunctionSpec(gen.signature(), mutability=m) for m in _MUTABILITIES
    ]
    returns_archetype = [
        FunctionSpec(gen.signature(), mutability="nonpayable",
                     returns=shape)
        for shape in (
            ("uint256",),
            ("bytes",),
            ("uint256", "bytes", "bool"),
            ("string", "uint256"),
        )
    ]
    obfuscated_archetype = [
        FunctionSpec(gen.signature(), mutability=m,
                     returns=("uint256",) if m in ("view", "pure") else ())
        for m in _MUTABILITIES
    ]
    fixtures = [
        (mutability_archetype, CodegenOptions(version="0.8.0")),
        (returns_archetype, CodegenOptions(version="0.8.0")),
        (obfuscated_archetype,
         CodegenOptions(version="0.8.0", obfuscate=True)),
    ]
    for specs, options in fixtures:
        contract = compile_contract(specs, options)
        corpus.cases.append(
            ContractCase(
                contract, options,
                tuple(spec.sig for spec in specs),
                (None,) * len(specs),
            )
        )

    for _ in range(max(0, n_contracts - len(fixtures))):
        options = _weighted_version(rng, catalog)
        corpus.cases.append(
            _build_contract_case(
                gen, rng, options, rng.randint(1, max_functions),
                quirk_rate=0.0, storage_rate=0.3,
                mutability_rate=1.0, returns_rate=0.7,
            )
        )
    return corpus
