"""Workload substrate: deterministic pseudo-random contract corpora.

Replaces the paper's Etherscan / mainnet datasets with generated ones
that preserve the evaluation's *structure*: a ground-truth "open-source"
corpus, a "closed-source" corpus, the 1,000-synthesized-functions set of
dataset 2, and injection of the five documented inaccuracy cases at
calibrated rates.
"""

from repro.corpus.signatures import SignatureGenerator
from repro.corpus.quirks import QUIRK_NAMES, apply_quirk
from repro.corpus.datasets import (
    ContractCase,
    Corpus,
    build_abi_corpus,
    build_clone_corpus,
    build_storage_corpus,
    build_closed_source_corpus,
    build_open_source_corpus,
    build_synthesized_dataset,
    build_vyper_corpus,
)

__all__ = [
    "SignatureGenerator",
    "QUIRK_NAMES",
    "apply_quirk",
    "ContractCase",
    "Corpus",
    "build_abi_corpus",
    "build_open_source_corpus",
    "build_closed_source_corpus",
    "build_clone_corpus",
    "build_storage_corpus",
    "build_synthesized_dataset",
    "build_vyper_corpus",
]
