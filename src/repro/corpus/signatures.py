"""Random function-signature generation (dataset-2 style).

The paper's dataset 2 builds 1,000 synthesized functions: 5-letter
random names, 1-5 parameters of randomly selected types, arrays of at
most 3 dimensions with at most 5 items per static dimension, public or
external at random.  This generator reproduces that recipe and also
serves the larger open/closed-source corpora with weights approximating
real-world frequency (basic types dominate; struct/nested arrays are
the paper's 0.5% tail).
"""

from __future__ import annotations

import random
import string
from typing import List, Optional

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.abi.types import (
    AbiType,
    AddressType,
    ArrayType,
    BoolType,
    BoundedBytesType,
    BoundedStringType,
    BytesType,
    DecimalType,
    FixedBytesType,
    IntType,
    StringType,
    TupleType,
    UIntType,
)

_UINT_WIDTHS = [8, 16, 32, 64, 128, 160, 256]
_INT_WIDTHS = [8, 16, 32, 64, 128, 256]
_BYTES_SIZES = [1, 2, 4, 8, 16, 20, 32]


class SignatureGenerator:
    """Draws random signatures with controllable type distribution."""

    def __init__(
        self,
        seed: int = 0,
        language: Language = Language.SOLIDITY,
        max_params: int = 5,
        max_dims: int = 3,
        max_dim_size: int = 5,
        composite_weight: float = 0.35,
        struct_weight: float = 0.02,
        nested_weight: float = 0.02,
    ) -> None:
        self.rng = random.Random(seed)
        self.language = language
        self.max_params = max_params
        self.max_dims = max_dims
        self.max_dim_size = max_dim_size
        self.composite_weight = composite_weight
        self.struct_weight = struct_weight
        self.nested_weight = nested_weight
        self._names: set = set()

    # ------------------------------------------------------------------

    def fresh_name(self, length: int = 5) -> str:
        """A unique random function name of lowercase letters."""
        while True:
            name = "".join(self.rng.choice(string.ascii_lowercase) for _ in range(length))
            if name not in self._names:
                self._names.add(name)
                return name

    def basic_type(self) -> AbiType:
        rng = self.rng
        if self.language is Language.VYPER:
            return rng.choice(
                [
                    UIntType(256),
                    IntType(128),
                    AddressType(),
                    BoolType(),
                    FixedBytesType(32),
                    DecimalType(),
                ]
            )
        roll = rng.random()
        if roll < 0.30:
            return UIntType(rng.choice(_UINT_WIDTHS))
        if roll < 0.45:
            return AddressType()
        if roll < 0.58:
            return IntType(rng.choice(_INT_WIDTHS))
        if roll < 0.72:
            return BoolType()
        if roll < 0.86:
            return FixedBytesType(rng.choice(_BYTES_SIZES))
        return UIntType(256)

    def array_type(self) -> ArrayType:
        """A static or (top-)dynamic array, lower dimensions static."""
        rng = self.rng
        base = self.basic_type()
        dims = rng.randint(1, self.max_dims)
        current: AbiType = base
        for _ in range(dims - 1):
            current = ArrayType(current, rng.randint(1, self.max_dim_size))
        top: Optional[int] = (
            None if rng.random() < 0.5 else rng.randint(1, self.max_dim_size)
        )
        return ArrayType(current, top)

    def nested_array_type(self) -> ArrayType:
        """All-dynamic nested array of depth 2-3."""
        depth = self.rng.randint(2, 3)
        current: AbiType = self.basic_type()
        for _ in range(depth):
            current = ArrayType(current, None)
        return current

    def struct_type(self) -> TupleType:
        """A dynamic struct of 2-3 simple components.

        Occasionally one component is itself a nested array, producing
        the struct-with-nested-array shape rule R19 recognizes.
        """
        rng = self.rng
        components: List[AbiType] = []
        n = rng.randint(2, 3)
        has_dynamic = False
        for _ in range(n):
            roll = rng.random()
            if roll < 0.4:
                components.append(self.basic_type())
            elif roll < 0.75:
                components.append(ArrayType(self.basic_type(), None))
                has_dynamic = True
            elif roll < 0.9:
                components.append(BytesType())
                has_dynamic = True
            else:
                components.append(ArrayType(ArrayType(self.basic_type(), None), None))
                has_dynamic = True
        if not has_dynamic:
            components[-1] = ArrayType(UIntType(256), None)
        return TupleType(tuple(components))

    def param_type(self) -> AbiType:
        rng = self.rng
        roll = rng.random()
        if self.language is Language.VYPER:
            if roll < 0.012:
                # A Vyper struct: same layout as its flattened members
                # (§2.3.2 item 5) — declared as a tuple, recovered flat.
                return TupleType((self.basic_type(), self.basic_type()))
            if roll < 0.60:
                return self.basic_type()
            if roll < 0.78:
                # fixed-size list
                base = self.basic_type()
                dims = rng.randint(1, 2)
                current: AbiType = base
                for _ in range(dims):
                    current = ArrayType(current, rng.randint(1, self.max_dim_size))
                return current
            if roll < 0.90:
                return BoundedBytesType(rng.randint(1, 50))
            return BoundedStringType(rng.randint(1, 50))
        if roll < self.struct_weight:
            return self.struct_type()
        if roll < self.struct_weight + self.nested_weight:
            return self.nested_array_type()
        if roll < self.struct_weight + self.nested_weight + self.composite_weight:
            composite_roll = rng.random()
            if composite_roll < 0.55:
                return self.array_type()
            if composite_roll < 0.80:
                return BytesType()
            return StringType()
        return self.basic_type()

    def signature(self, n_params: Optional[int] = None) -> FunctionSignature:
        rng = self.rng
        if n_params is None:
            n_params = rng.randint(1, self.max_params)
        params = tuple(self.param_type() for _ in range(n_params))
        visibility = (
            Visibility.PUBLIC if rng.random() < 0.5 else Visibility.EXTERNAL
        )
        return FunctionSignature(self.fresh_name(), params, visibility, self.language)

    def signatures(self, count: int, **kw) -> List[FunctionSignature]:
        return [self.signature(**kw) for _ in range(count)]
