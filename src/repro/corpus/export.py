"""Corpus export/import: a shareable bytecode benchmark on disk.

Writes a corpus as plain files — one hex bytecode per contract plus a
ground-truth manifest — so that *other* tools (or future versions of
this one) can be evaluated against exactly the same inputs.  The format
is deliberately boring:

    <dir>/
      manifest.json        {"contracts": [{"file": "0001.hex",
                             "version": "0.5.5+opt",
                             "functions": [{"signature": ...,
                                            "visibility": ...,
                                            "quirk": ...}, ...]}, ...]}
      0001.hex             runtime bytecode, hex, one line
      ...
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.compiler.contract import CompiledContract
from repro.compiler.options import CodegenOptions
from repro.corpus.datasets import ContractCase, Corpus


def export_corpus(corpus: Corpus, directory: str) -> str:
    """Write ``corpus`` under ``directory``; returns the manifest path."""
    os.makedirs(directory, exist_ok=True)
    manifest = {"language": corpus.language.value, "contracts": []}
    for index, case in enumerate(corpus.cases, start=1):
        filename = f"{index:04d}.hex"
        with open(os.path.join(directory, filename), "w") as handle:
            handle.write(case.contract.bytecode.hex() + "\n")
        manifest["contracts"].append(
            {
                "file": filename,
                "version": case.options.version_key,
                "functions": [
                    {
                        "signature": sig.canonical(),
                        "visibility": sig.visibility.value,
                        "language": sig.language.value,
                        "quirk": quirk,
                    }
                    for sig, quirk in zip(case.declared, case.quirks)
                ],
            }
        )
    manifest_path = os.path.join(directory, "manifest.json")
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=1)
    return manifest_path


def load_corpus(directory: str) -> Corpus:
    """Read a corpus written by :func:`export_corpus`.

    Codegen options are reconstructed only as far as the version label
    (the bytecode itself carries everything evaluation needs).
    """
    with open(os.path.join(directory, "manifest.json")) as handle:
        manifest = json.load(handle)
    language = Language(manifest.get("language", "solidity"))
    corpus = Corpus(language=language)
    for entry in manifest["contracts"]:
        with open(os.path.join(directory, entry["file"])) as handle:
            bytecode = bytes.fromhex(handle.read().strip())
        declared: List[FunctionSignature] = []
        quirks: List[Optional[str]] = []
        for fn in entry["functions"]:
            declared.append(
                FunctionSignature.parse(
                    fn["signature"],
                    Visibility(fn["visibility"]),
                    Language(fn.get("language", "solidity")),
                )
            )
            quirks.append(fn.get("quirk"))
        version_key = entry.get("version", "0.5.0")
        optimize = version_key.endswith("+opt")
        options = CodegenOptions(
            language=language,
            version=version_key[:-4] if optimize else version_key,
            optimize=optimize,
        )
        contract = CompiledContract(
            bytecode=bytecode,
            signatures=tuple(declared),
            options=options,
        )
        corpus.cases.append(
            ContractCase(contract, options, tuple(declared), tuple(quirks))
        )
    return corpus
