"""Jump-target resolution via push-constant stack dataflow.

The base CFG (:mod:`repro.evm.cfg`) only resolves jumps whose ``PUSH``
target immediately precedes them; everything else is left to the
symbolic executor.  This pass closes most of that gap statically: it
runs a fixpoint over the CFG with an abstract stack whose values are
small *sets of constants* (or unknown), executing PUSH/DUP/SWAP/POP and
constant-foldable arithmetic exactly.  A jump whose abstract target is a
constant set becomes a set of static edges — including the
return-address dispatch of internal calls, where several callers push
different return targets into one shared block.

The result is a :class:`ResolvedCFG`: the base CFG plus the augmented
edge set, a per-jump resolution table, and the jumps that remain
genuinely input-dependent.  Soundness: an abstract value is either the
exact set of every constant that can occupy that slot, or unknown —
operations the fold does not model always produce unknown, so a
resolved target set over-approximates nothing and misses nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.evm.cfg import BasicBlock, ControlFlowGraph, build_cfg

#: An abstract stack slot: a frozenset of possible constants, or None
#: for "any value".
AbsValue = Optional[FrozenSet[int]]

#: Constant sets wider than this collapse to unknown.
MAX_SET = 8
#: Abstract stacks deeper than this drop their bottom entries.
MAX_STACK = 64
#: Fixpoint safety valve: worklist pops before the pass gives up and
#: reports itself incomplete (monotone lattice ⇒ normally unreachable).
_MAX_VISITS_PER_BLOCK = 4 * (MAX_SET + 2) * MAX_STACK

_WORD = 1 << 256
_MASK = _WORD - 1

_FOLD = {
    "ADD": lambda a, b: (a + b) & _MASK,
    "SUB": lambda a, b: (a - b) & _MASK,
    "MUL": lambda a, b: (a * b) & _MASK,
    "DIV": lambda a, b: (a // b) & _MASK if b else 0,
    "MOD": lambda a, b: (a % b) & _MASK if b else 0,
    "EXP": lambda a, b: pow(a, b, _WORD),
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "SHL": lambda a, b: (b << a) & _MASK if a < 256 else 0,
    "SHR": lambda a, b: b >> a if a < 256 else 0,
}


@dataclass
class ResolvedCFG:
    """The base CFG with dataflow-resolved jump edges layered on top."""

    base: ControlFlowGraph
    #: Block start -> full successor set (static + resolved edges).
    successors: Dict[int, FrozenSet[int]]
    #: Jump pc -> the valid-JUMPDEST targets the dataflow proved.
    resolved_targets: Dict[int, FrozenSet[int]]
    #: Jump pcs whose target remains input-dependent after the pass.
    unresolved_jumps: FrozenSet[int]
    #: Jump pc -> constant targets that are *not* valid JUMPDESTs
    #: (taking the jump with one of these always throws).
    invalid_targets: Dict[int, FrozenSet[int]]
    #: True when the fixpoint hit its safety valve; resolution data is
    #: then a partial under-approximation and must not drive pruning.
    incomplete: bool = False

    @property
    def blocks(self) -> Dict[int, BasicBlock]:
        return self.base.blocks

    @property
    def entry(self) -> int:
        return self.base.entry

    @property
    def valid_jumpdests(self) -> FrozenSet[int]:
        return self.base.valid_jumpdests

    def reachable_from(self, start: int) -> FrozenSet[int]:
        """Block starts reachable from ``start`` along resolved edges."""
        seen: Set[int] = set()
        work = [start]
        blocks = self.base.blocks
        while work:
            current = work.pop()
            if current in seen or current not in blocks:
                continue
            seen.add(current)
            work.extend(self.successors.get(current, ()))
        return frozenset(seen)


def _join_values(a: AbsValue, b: AbsValue) -> AbsValue:
    if a is None or b is None:
        return None
    union = a | b
    return union if len(union) <= MAX_SET else None


def _join_stacks(
    a: Tuple[AbsValue, ...], b: Tuple[AbsValue, ...]
) -> Tuple[AbsValue, ...]:
    """Elementwise join, aligned at the stack top (index 0)."""
    depth = min(len(a), len(b))
    return tuple(_join_values(a[i], b[i]) for i in range(depth))


def _cross_fold(fold, a: FrozenSet[int], b: FrozenSet[int]) -> AbsValue:
    out: Set[int] = set()
    for x in a:
        for y in b:
            out.add(fold(x, y))
            if len(out) > MAX_SET:
                return None
    return frozenset(out)


class _BlockFlow:
    """Transfer-function output for one block under one in-state."""

    __slots__ = ("out_stack", "jump_targets", "jump_pc")

    def __init__(self) -> None:
        self.out_stack: Tuple[AbsValue, ...] = ()
        self.jump_targets: AbsValue = None
        self.jump_pc: Optional[int] = None


def _transfer(block: BasicBlock, in_stack: Tuple[AbsValue, ...]) -> _BlockFlow:
    """Abstractly execute ``block`` from ``in_stack`` (top-first)."""
    stack: List[AbsValue] = list(in_stack)

    def pop() -> AbsValue:
        return stack.pop(0) if stack else None

    def push(value: AbsValue) -> None:
        stack.insert(0, value)
        if len(stack) > MAX_STACK:
            del stack[MAX_STACK:]

    flow = _BlockFlow()
    for ins in block.instructions:
        op = ins.op
        name = op.name
        if op.is_push:
            push(frozenset((ins.operand or 0,)))
        elif op.is_dup:
            depth = op.code - 0x7F
            push(stack[depth - 1] if depth <= len(stack) else None)
        elif op.is_swap:
            depth = op.code - 0x8F
            while len(stack) < depth + 1:
                stack.append(None)
            stack[0], stack[depth] = stack[depth], stack[0]
        elif name in ("JUMP", "JUMPI"):
            flow.jump_pc = ins.pc
            flow.jump_targets = pop()
            if name == "JUMPI":
                pop()
        elif name in _FOLD:
            a, b = pop(), pop()
            if a is not None and b is not None:
                push(_cross_fold(_FOLD[name], a, b))
            else:
                push(None)
        elif name == "NOT":
            a = pop()
            push(
                frozenset((~x) & _MASK for x in a) if a is not None else None
            )
        else:
            for _ in range(op.pops):
                pop()
            for _ in range(op.pushes):
                push(None)
    flow.out_stack = tuple(stack)
    return flow


def resolve_jumps(cfg: ControlFlowGraph) -> ResolvedCFG:
    """Run the push-constant dataflow and return the augmented CFG."""
    blocks = cfg.blocks
    dests = cfg.valid_jumpdests

    in_states: Dict[int, Tuple[AbsValue, ...]] = {cfg.entry: ()}
    resolved: Dict[int, Set[int]] = {}
    invalid: Dict[int, Set[int]] = {}
    unresolved: Set[int] = set()
    successors: Dict[int, Set[int]] = {
        start: set(block.successors) for start, block in blocks.items()
    }

    visits: Dict[int, int] = {}
    incomplete = False
    work: List[int] = [cfg.entry] if cfg.entry in blocks else []
    on_work: Set[int] = set(work)

    def propagate(target: int, out_stack: Tuple[AbsValue, ...]) -> None:
        if target not in blocks:
            return
        current = in_states.get(target)
        joined = out_stack if current is None else _join_stacks(current, out_stack)
        if current is None or joined != current:
            in_states[target] = joined
            if target not in on_work:
                work.append(target)
                on_work.add(target)

    while work:
        start = work.pop()
        on_work.discard(start)
        count = visits.get(start, 0) + 1
        visits[start] = count
        if count > _MAX_VISITS_PER_BLOCK:
            incomplete = True
            continue
        block = blocks[start]
        flow = _transfer(block, in_states.get(start, ()))
        terminator = block.terminator
        name = terminator.op.name

        if flow.jump_pc is not None:
            if flow.jump_targets is None:
                unresolved.add(flow.jump_pc)
            else:
                unresolved.discard(flow.jump_pc)
                good = resolved.setdefault(flow.jump_pc, set())
                bad = invalid.setdefault(flow.jump_pc, set())
                for target in flow.jump_targets:
                    (good if target in dests else bad).add(target)
                for target in good:
                    if target not in successors[start]:
                        successors[start].add(target)
                    propagate(target, flow.out_stack)
                if not bad:
                    invalid.pop(flow.jump_pc, None)
        if name == "JUMPI" or (
            flow.jump_pc is None
            and not terminator.op.is_terminator
            and name != "UNKNOWN"
        ):
            propagate(terminator.next_pc, flow.out_stack)

    # A jump that stayed unresolved on every visit but also never saw a
    # constant is input-dependent; one resolved on a later visit leaves
    # the unresolved set above.  Jumps in blocks the fixpoint never
    # reached (dead code) are reported as neither.
    return ResolvedCFG(
        base=cfg,
        successors={s: frozenset(v) for s, v in successors.items()},
        resolved_targets={pc: frozenset(v) for pc, v in resolved.items()},
        unresolved_jumps=frozenset(unresolved),
        invalid_targets={pc: frozenset(v) for pc, v in invalid.items()},
        incomplete=incomplete,
    )


def resolve_bytecode(bytecode: bytes) -> ResolvedCFG:
    """Convenience: CFG construction plus jump resolution."""
    return resolve_jumps(build_cfg(bytecode))
