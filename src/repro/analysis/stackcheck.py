"""Stack-height verification: a bytecode sanitizer.

Abstract interpretation over the resolved CFG with the interval domain
on stack depth: every block gets the ``[lo, hi]`` range of heights it
can be entered with, and every instruction is checked against the EVM's
two hard limits — popping below zero and growing past 1024 items.

Join points may legitimately merge different heights (a shared revert
block is entered from arbitrary mid-expression stacks), so a mere
``lo != hi`` is not an error.  What *is* rejected:

* ``stack-underflow`` — an instruction pops below empty on **every**
  incoming height;
* ``unbalanced-join`` — an instruction pops below empty only on *some*
  incoming heights: the paths into the block disagree in a way the
  block's own code cannot tolerate;
* ``stack-overflow`` — some incoming height pushes the stack past 1024;
* ``invalid-jump-target`` — a statically-known jump target that is not
  a JUMPDEST (from the base CFG flag or the dataflow pass).

The verifier runs over everything our own compilers emit (see
``tests/compiler/test_verifier.py``): codegen bugs that corrupt the
stack surface here before they surface as wrong recovered types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.analysis.dataflow import ResolvedCFG

#: The EVM's hard stack-size limit.
STACK_LIMIT = 1024


@dataclass(frozen=True)
class Finding:
    """One analysis finding, shared by every pass and the linter."""

    kind: str
    pc: int
    detail: str
    severity: str = "error"  # "error" | "warning" | "info"

    def render(self) -> str:
        return f"{self.severity}: {self.kind} at {self.pc:#06x}: {self.detail}"


@dataclass
class StackReport:
    """Verifier output: per-block entry-height intervals plus findings."""

    entry_heights: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    findings: Tuple[Finding, ...] = ()

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)


def _block_effect(block) -> Tuple[int, int, int, List[Tuple[int, int, int]]]:
    """(net, min_rel, max_rel, [(pc, pops_at, rel_before)]) for a block.

    ``min_rel`` is the lowest ``rel_before - pops`` over the block —
    the entry height must be at least ``-min_rel``.  ``max_rel`` is the
    highest height relative to entry reached inside the block.
    """
    rel = 0
    min_rel = 0
    max_rel = 0
    per_ins: List[Tuple[int, int, int]] = []
    for ins in block.instructions:
        per_ins.append((ins.pc, ins.op.pops, rel))
        low = rel - ins.op.pops
        if low < min_rel:
            min_rel = low
        rel = low + ins.op.pushes
        if rel > max_rel:
            max_rel = rel
    return rel, min_rel, max_rel, per_ins


def verify_stack(rcfg: ResolvedCFG) -> StackReport:
    """Verify stack discipline over all code reachable from the entry."""
    blocks = rcfg.blocks
    findings: List[Finding] = []
    seen_keys: Set[Tuple[str, int]] = set()

    def report(kind: str, pc: int, detail: str, severity: str = "error") -> None:
        key = (kind, pc)
        if key not in seen_keys:
            seen_keys.add(key)
            findings.append(Finding(kind, pc, detail, severity))

    # Statically invalid jump targets, wherever they were discovered.
    for start, block in sorted(blocks.items()):
        if block.invalid_static_jump:
            report(
                "invalid-jump-target",
                block.terminator.pc,
                "pushed jump target is not a JUMPDEST",
            )
    for pc, targets in sorted(rcfg.invalid_targets.items()):
        shown = ", ".join(f"{t:#x}" for t in sorted(targets))
        report(
            "invalid-jump-target", pc,
            f"resolved jump target(s) {shown} are not JUMPDESTs",
        )

    if rcfg.entry not in blocks:
        return StackReport(entry_heights={}, findings=tuple(findings))

    effects = {start: _block_effect(block) for start, block in blocks.items()}
    intervals: Dict[int, Tuple[int, int]] = {rcfg.entry: (0, 0)}
    work: List[int] = [rcfg.entry]
    on_work: Set[int] = {rcfg.entry}

    while work:
        start = work.pop()
        on_work.discard(start)
        lo, hi = intervals[start]
        net, min_rel, max_rel, per_ins = effects[start]

        broken = False
        for pc, pops, rel_before in per_ins:
            if pops and hi + rel_before - pops < 0:
                report(
                    "stack-underflow", pc,
                    f"pops {pops} with at most {hi + rel_before} on the stack",
                )
                broken = True
                break
            if pops and lo + rel_before - pops < 0:
                report(
                    "unbalanced-join", pc,
                    f"pops {pops}, but some path enters block {start:#x} "
                    f"with only {lo + rel_before} on the stack "
                    f"(heights {lo}..{hi})",
                )
                # Keep going with the surviving (higher) heights.
                lo = pops - rel_before
        if broken:
            continue  # garbage heights downstream would cascade
        if hi + max_rel > STACK_LIMIT:
            report(
                "stack-overflow",
                block_pc_of_max(blocks[start], max_rel),
                f"stack grows to {hi + max_rel} (> {STACK_LIMIT})",
            )
            continue

        out = (lo + net, hi + net)
        for succ in rcfg.successors.get(start, ()):
            if succ not in blocks:
                continue
            slo, shi = out
            # The jump/jumpi operands are already popped in `net`.
            current = intervals.get(succ)
            joined = (
                (slo, shi)
                if current is None
                else (min(current[0], slo), max(current[1], shi))
            )
            if joined != current:
                intervals[succ] = joined
                if succ not in on_work:
                    work.append(succ)
                    on_work.add(succ)

    return StackReport(entry_heights=intervals, findings=tuple(findings))


def block_pc_of_max(block, max_rel: int) -> int:
    """The pc at which the block first reaches its peak relative height."""
    rel = 0
    for ins in block.instructions:
        rel += ins.op.pushes - ins.op.pops
        if rel >= max_rel:
            return ins.pc
    return block.terminator.pc
