"""Bytecode linting: the analysis passes as a single verifier verdict.

:func:`lint_findings` is the **lint pass** of the analysis pipeline:
it folds the stack/dispatcher findings with the linter-only checks
(truncated trailing PUSH, unresolved jumps, unreachable code) into one
sorted finding tuple.  ``lint_bytecode`` runs the pipeline and wraps
the result in a :class:`LintReport` with text and JSON renderings for
the ``repro lint`` CLI command.

Severity semantics:

* ``error`` — the bytecode violates EVM stack/jump discipline on some
  statically reachable path; our own compiler output must never
  produce one (that is the sanitizer contract).
* ``warning`` — suspicious but not provably broken (a truncated PUSH,
  a conflicting dispatcher entry).
* ``info`` — facts worth surfacing (unreachable blocks, jumps only the
  symbolic executor can resolve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.dataflow import ResolvedCFG
from repro.analysis.dispatcher import DispatcherReport
from repro.analysis.report import ContractAnalysis, analyze
from repro.analysis.stackcheck import Finding, StackReport
from repro.analysis.storage import StorageLayout, _selector_index


@dataclass
class LintReport:
    """The linter verdict for one runtime bytecode."""

    analysis: ContractAnalysis
    findings: Tuple[Finding, ...] = ()

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            out[finding.severity] = out.get(finding.severity, 0) + 1
        return out

    def render_text(self) -> str:
        cfg = self.analysis.cfg
        lines = [
            f"blocks: {len(cfg.blocks)}  "
            f"selectors: {len(self.analysis.selectors)}  "
            f"resolved jumps: {len(cfg.resolved_targets)}  "
            f"unresolved: {len(cfg.unresolved_jumps)}"
        ]
        for finding in self.findings:
            lines.append(finding.render())
        counts = self.counts()
        lines.append(
            ("OK" if self.ok else "FAIL")
            + f" ({counts['error']} errors, {counts['warning']} warnings, "
            + f"{counts['info']} notes)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        cfg = self.analysis.cfg
        return {
            "ok": self.ok,
            "blocks": len(cfg.blocks),
            "selectors": [f"0x{s:08x}" for s in self.analysis.selectors],
            "resolved_jumps": len(cfg.resolved_targets),
            "unresolved_jumps": sorted(cfg.unresolved_jumps),
            "findings": [
                {
                    "kind": f.kind,
                    "pc": f.pc,
                    "severity": f.severity,
                    "detail": f.detail,
                }
                for f in self.findings
            ],
        }


def _truncated_push(bytecode: bytes, rcfg: ResolvedCFG) -> List[Finding]:
    instructions = []
    for block in rcfg.blocks.values():
        instructions.extend(block.instructions)
    if not instructions:
        return []
    last = max(instructions, key=lambda ins: ins.pc)
    if last.op.is_push and last.pc + last.size > len(bytecode):
        return [
            Finding(
                "truncated-push",
                last.pc,
                f"{last.op.name} immediate runs {last.pc + last.size - len(bytecode)} "
                "byte(s) past the end of the code",
                severity="warning",
            )
        ]
    return []


def _storage_blind_spots(
    rcfg: ResolvedCFG,
    dispatcher: DispatcherReport,
    storage: StorageLayout,
) -> List[Finding]:
    """Per-selector unresolved storage-access counts as info findings.

    Sites whose slot expression stayed symbolic are exactly where the
    recovered layout is blind; surfacing them on ``repro lint --json``
    lets a consumer see *which* functions the blind spots live in.
    """
    unresolved_pcs = sorted({
        access.pc for access in storage.accesses if access.expr is None
    })
    if not unresolved_pcs:
        return []
    selector_of_pc = _selector_index(rcfg, dispatcher)
    per_selector: Dict[int, List[int]] = {}
    unattributed: List[int] = []
    for pc in unresolved_pcs:
        selectors = selector_of_pc.get(pc, ())
        if selectors:
            for selector in selectors:
                per_selector.setdefault(selector, []).append(pc)
        else:
            unattributed.append(pc)
    findings = [
        Finding(
            "storage-unresolved", min(pcs),
            f"{len(pcs)} storage access site(s) reachable from "
            f"0x{selector:08x} have unresolved slot expressions",
            severity="info",
        )
        for selector, pcs in sorted(per_selector.items())
    ]
    if unattributed:
        findings.append(
            Finding(
                "storage-unresolved", unattributed[0],
                f"{len(unattributed)} storage access site(s) outside any "
                "dispatched function have unresolved slot expressions",
                severity="info",
            )
        )
    return findings


def lint_findings(
    bytecode: bytes,
    rcfg: ResolvedCFG,
    stack: StackReport,
    dispatcher: DispatcherReport,
    storage: Optional[StorageLayout] = None,
) -> Tuple[Finding, ...]:
    """The lint pass: all findings for one bytecode, sorted by pc.

    Takes the upstream pass products directly so the pipeline can run
    it without a :class:`ContractAnalysis` wrapper.  ``storage`` (when
    available) adds per-selector unresolved-site blind-spot notes.
    """
    findings: List[Finding] = list(stack.findings) + list(dispatcher.findings)
    findings.extend(_truncated_push(bytecode, rcfg))
    if storage is not None:
        findings.extend(_storage_blind_spots(rcfg, dispatcher, storage))
    for pc in sorted(rcfg.unresolved_jumps):
        findings.append(
            Finding(
                "unresolved-jump", pc,
                "target is input-dependent; only symbolic execution can "
                "resolve it",
                severity="info",
            )
        )
    unreachable = dispatcher.unreachable
    if unreachable:
        first = min(unreachable)
        findings.append(
            Finding(
                "unreachable-code", first,
                f"{len(unreachable)} block(s) unreachable from the entry "
                "(dead code or trailing data)",
                severity="info",
            )
        )
    findings.sort(key=lambda f: (f.pc, f.kind))
    return tuple(findings)


def lint_analysis(analysis: ContractAnalysis) -> LintReport:
    """Fold an existing analysis into a lint verdict.

    Reuses the lint pass's product when the analysis carries one (the
    default pipeline always does); re-derives it otherwise.
    """
    findings = analysis.lint_findings
    if findings is None:
        findings = lint_findings(
            analysis.bytecode, analysis.cfg, analysis.stack,
            analysis.dispatcher, storage=analysis.storage,
        )
    return LintReport(analysis=analysis, findings=tuple(findings))


def lint_bytecode(bytecode: bytes) -> LintReport:
    """Analyze and lint ``bytecode`` in one call."""
    return lint_analysis(analyze(bytecode))
