"""Bytecode linting: the analysis passes as a single verifier verdict.

``lint_bytecode`` runs :func:`repro.analysis.report.analyze` and folds
its findings — plus a few linter-only checks (truncated trailing PUSH,
unresolved jumps, unreachable code) — into one :class:`LintReport` with
text and JSON renderings for the ``repro lint`` CLI command.

Severity semantics:

* ``error`` — the bytecode violates EVM stack/jump discipline on some
  statically reachable path; our own compiler output must never
  produce one (that is the sanitizer contract).
* ``warning`` — suspicious but not provably broken (a truncated PUSH,
  a conflicting dispatcher entry).
* ``info`` — facts worth surfacing (unreachable blocks, jumps only the
  symbolic executor can resolve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import ContractAnalysis, analyze
from repro.analysis.stackcheck import Finding


@dataclass
class LintReport:
    """The linter verdict for one runtime bytecode."""

    analysis: ContractAnalysis
    findings: Tuple[Finding, ...] = ()

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            out[finding.severity] = out.get(finding.severity, 0) + 1
        return out

    def render_text(self) -> str:
        cfg = self.analysis.cfg
        lines = [
            f"blocks: {len(cfg.blocks)}  "
            f"selectors: {len(self.analysis.selectors)}  "
            f"resolved jumps: {len(cfg.resolved_targets)}  "
            f"unresolved: {len(cfg.unresolved_jumps)}"
        ]
        for finding in self.findings:
            lines.append(finding.render())
        counts = self.counts()
        lines.append(
            ("OK" if self.ok else "FAIL")
            + f" ({counts['error']} errors, {counts['warning']} warnings, "
            + f"{counts['info']} notes)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        cfg = self.analysis.cfg
        return {
            "ok": self.ok,
            "blocks": len(cfg.blocks),
            "selectors": [f"0x{s:08x}" for s in self.analysis.selectors],
            "resolved_jumps": len(cfg.resolved_targets),
            "unresolved_jumps": sorted(cfg.unresolved_jumps),
            "findings": [
                {
                    "kind": f.kind,
                    "pc": f.pc,
                    "severity": f.severity,
                    "detail": f.detail,
                }
                for f in self.findings
            ],
        }


def _truncated_push(analysis: ContractAnalysis) -> List[Finding]:
    instructions = []
    for block in analysis.cfg.blocks.values():
        instructions.extend(block.instructions)
    if not instructions:
        return []
    last = max(instructions, key=lambda ins: ins.pc)
    if last.op.is_push and last.pc + last.size > len(analysis.bytecode):
        return [
            Finding(
                "truncated-push",
                last.pc,
                f"{last.op.name} immediate runs {last.pc + last.size - len(analysis.bytecode)} "
                "byte(s) past the end of the code",
                severity="warning",
            )
        ]
    return []


def lint_analysis(analysis: ContractAnalysis) -> LintReport:
    """Fold an existing analysis into a lint verdict."""
    findings: List[Finding] = list(analysis.findings)
    findings.extend(_truncated_push(analysis))
    for pc in sorted(analysis.cfg.unresolved_jumps):
        findings.append(
            Finding(
                "unresolved-jump", pc,
                "target is input-dependent; only symbolic execution can "
                "resolve it",
                severity="info",
            )
        )
    unreachable = analysis.dispatcher.unreachable
    if unreachable:
        first = min(unreachable)
        findings.append(
            Finding(
                "unreachable-code", first,
                f"{len(unreachable)} block(s) unreachable from the entry "
                "(dead code or trailing data)",
                severity="info",
            )
        )
    findings.sort(key=lambda f: (f.pc, f.kind))
    return LintReport(analysis=analysis, findings=tuple(findings))


def lint_bytecode(bytecode: bytes) -> LintReport:
    """Analyze and lint ``bytecode`` in one call."""
    return lint_analysis(analyze(bytecode))
