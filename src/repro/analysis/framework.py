"""The analysis pass manager: many clients, one pipeline.

The static layer started life with a single client (TASE fork pruning)
and a single hard-wired call chain.  It now serves several — pruning,
selector cross-checking, function-body memo keys, storage-layout
recovery, linting, contract profiles — so the chain is generalized into
an :class:`AnalysisPipeline` of declared :class:`AnalysisPass` steps:

* each pass names the products it **requires** and the one it
  **provides**, and the pipeline validates at construction time that
  every requirement is produced by an earlier pass (no hidden ordering
  assumptions);
* passes share one :class:`AnalysisContext` per bytecode, so a product
  is computed exactly once however many downstream passes read it;
* each pass carries its own **schema version**.  What a pass *means*
  determines what the engine may prune and what a cached recovery
  contains, so the per-pass versions are folded into the persistent
  cache / function-memo fingerprint (:func:`pass_versions`,
  :mod:`repro.sigrec.cache`) — bumping one pass invalidates exactly the
  results that could depend on it;
* every pass runs under a :func:`repro.obs.phase_span`
  (``analysis.<name>`` spans and ``phase.seconds`` histograms), so a
  trace shows where static-analysis time goes per pass, not as one
  opaque blob.

The default pipeline (:data:`DEFAULT_PIPELINE`) is::

    cfg ──► jumps ──► stack
              ├─────► dispatcher ──► storage
              │           ├────────► reach ──► mutability
              │           │            └─────► returns
              └───────────┴──────────┴─────────────────► lint

Adding a pass is three steps: write ``run(ctx)`` reading its inputs via
``ctx["name"]``, wrap it in an :class:`AnalysisPass` with a version and
its requirements, and insert it into the pipeline (tests:
``tests/analysis/test_framework.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, SpanTracer, phase_span


class AnalysisContext:
    """Shared per-bytecode state: the input bytes plus pass products."""

    __slots__ = ("bytecode", "products")

    def __init__(self, bytecode: bytes) -> None:
        self.bytecode = bytecode
        self.products: Dict[str, object] = {}

    def __getitem__(self, name: str) -> object:
        try:
            return self.products[name]
        except KeyError:
            raise KeyError(
                f"analysis product {name!r} not available; was the pass "
                "registered before its consumers?"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.products


@dataclass(frozen=True)
class AnalysisPass:
    """One static-analysis pass.

    ``version`` is the pass's schema version: bump it whenever the
    pass's semantics change in a way that affects what the engine may
    prune, what the linter reports, or what a profile contains.  The
    per-pass versions reach the persistent result cache and the
    function-body memo through :func:`pass_versions`, so a bump lands
    cached recoveries in a fresh tree instead of silently reusing stale
    ones.
    """

    name: str
    version: int
    run: Callable[[AnalysisContext], object]
    requires: Tuple[str, ...] = ()


class PipelineError(Exception):
    """A malformed pipeline: duplicate names or unsatisfied requires."""


class AnalysisPipeline:
    """An ordered, dependency-checked sequence of analysis passes."""

    def __init__(self, passes: Tuple[AnalysisPass, ...]) -> None:
        seen: set = set()
        for pass_ in passes:
            if pass_.name in seen:
                raise PipelineError(f"duplicate pass name {pass_.name!r}")
            for requirement in pass_.requires:
                if requirement not in seen:
                    raise PipelineError(
                        f"pass {pass_.name!r} requires {requirement!r}, "
                        "which no earlier pass provides"
                    )
            seen.add(pass_.name)
        self.passes: Tuple[AnalysisPass, ...] = tuple(passes)

    def __iter__(self) -> Iterator[AnalysisPass]:
        return iter(self.passes)

    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def versions(self) -> Dict[str, int]:
        """Pass name -> schema version, for cache fingerprints."""
        return {p.name: p.version for p in self.passes}

    def replace(self, **overrides: AnalysisPass) -> "AnalysisPipeline":
        """A new pipeline with named passes swapped out (tests use this
        to bump a single pass version or stub a pass)."""
        unknown = set(overrides) - set(self.names())
        if unknown:
            raise PipelineError(f"no such pass to replace: {sorted(unknown)}")
        return AnalysisPipeline(
            tuple(overrides.get(p.name, p) for p in self.passes)
        )

    def run(
        self,
        bytecode: bytes,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> AnalysisContext:
        """Run every pass in order over one shared context."""
        metrics = metrics if metrics is not None else NULL_REGISTRY
        tracer = tracer if tracer is not None else NULL_TRACER
        context = AnalysisContext(bytecode)
        observing = metrics is not NULL_REGISTRY or tracer is not NULL_TRACER
        for pass_ in self.passes:
            if observing:
                with phase_span(metrics, tracer, f"analysis.{pass_.name}"):
                    context.products[pass_.name] = pass_.run(context)
                metrics.counter(
                    "analysis.pass_runs", **{"pass": pass_.name}
                ).inc()
            else:
                context.products[pass_.name] = pass_.run(context)
        return context


# ----------------------------------------------------------------------
# The default passes.  Import order matters: the pass bodies live in
# their own modules; this module only declares the wiring.

def _run_cfg(ctx: AnalysisContext):
    from repro.evm.cfg import build_cfg

    return build_cfg(ctx.bytecode)


def _run_jumps(ctx: AnalysisContext):
    from repro.analysis.dataflow import resolve_jumps

    return resolve_jumps(ctx["cfg"])


def _run_stack(ctx: AnalysisContext):
    from repro.analysis.stackcheck import verify_stack

    return verify_stack(ctx["jumps"])


def _run_dispatcher(ctx: AnalysisContext):
    from repro.analysis.dispatcher import extract_dispatch

    return extract_dispatch(ctx["jumps"])


def _run_storage(ctx: AnalysisContext):
    from repro.analysis.storage import recover_storage_layout

    return recover_storage_layout(ctx["jumps"], ctx["dispatcher"])


def _run_reach(ctx: AnalysisContext):
    from repro.analysis.reachability import compute_reachability

    return compute_reachability(ctx["jumps"], ctx["dispatcher"])


def _run_mutability(ctx: AnalysisContext):
    from repro.analysis.mutability import classify_mutability

    return classify_mutability(ctx["jumps"], ctx["dispatcher"], ctx["reach"])


def _run_returns(ctx: AnalysisContext):
    from repro.analysis.returns import recover_returns

    return recover_returns(ctx["jumps"], ctx["dispatcher"], ctx["reach"])


def _run_lint(ctx: AnalysisContext):
    from repro.analysis.lint import lint_findings

    return lint_findings(
        ctx.bytecode, ctx["jumps"], ctx["stack"], ctx["dispatcher"],
        storage=ctx["storage"],
    )


#: The standard pass set, in dependency order.
DEFAULT_PIPELINE = AnalysisPipeline((
    AnalysisPass("cfg", 1, _run_cfg),
    AnalysisPass("jumps", 1, _run_jumps, requires=("cfg",)),
    AnalysisPass("stack", 1, _run_stack, requires=("jumps",)),
    AnalysisPass("dispatcher", 1, _run_dispatcher, requires=("jumps",)),
    AnalysisPass(
        "storage", 1, _run_storage, requires=("jumps", "dispatcher")
    ),
    AnalysisPass(
        "reach", 1, _run_reach, requires=("jumps", "dispatcher")
    ),
    AnalysisPass(
        "mutability", 1, _run_mutability,
        requires=("jumps", "dispatcher", "reach"),
    ),
    AnalysisPass(
        "returns", 1, _run_returns,
        requires=("jumps", "dispatcher", "reach"),
    ),
    # v2: storage-unresolved blind spots surface as info findings.
    AnalysisPass(
        "lint", 2, _run_lint,
        requires=("jumps", "stack", "dispatcher", "storage"),
    ),
))

#: The pre-profile pass set: exactly the work a recovery needs (the
#: engine and memo consume cfg/jumps/stack/dispatcher only).  The
#: overhead benchmark compares cold recovery under this pipeline vs the
#: full default one to bound what the new passes cost.
CORE_PIPELINE = AnalysisPipeline(DEFAULT_PIPELINE.passes[:4])


def default_pipeline() -> AnalysisPipeline:
    """The pipeline :func:`repro.analysis.analyze` runs.

    A function (not the bare constant) so cache fingerprints and tests
    observe monkeypatched pipelines; see ``pass_versions``.
    """
    return DEFAULT_PIPELINE


def pass_versions() -> Dict[str, int]:
    """Per-pass schema versions of the default pipeline.

    This dict — not a single scalar — is what the persistent result
    cache and the function-body memo fold into their options
    fingerprints: bumping any one pass version invalidates every cached
    recovery, because any of them could depend on that pass's output.
    """
    return default_pipeline().versions()


def schema_aggregate() -> str:
    """A stable scalar digest of the per-pass versions.

    The derived aggregate replacing the old single
    ``ANALYSIS_SCHEMA_VERSION`` constant wherever one value is wanted
    (human-readable reports, profile documents).
    """
    versions = pass_versions()
    return ";".join(f"{name}={versions[name]}" for name in sorted(versions))
