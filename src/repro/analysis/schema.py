"""A minimal JSON-Schema subset validator for profile documents.

CI validates every ``repro profile --json`` document against the
checked-in ``docs/profile.schema.json``.  The container deliberately
carries no third-party ``jsonschema`` package, so this module
implements exactly the subset of draft-07 the profile schema uses:

``type`` (scalar or list), ``properties``, ``patternProperties``,
``required``, ``additionalProperties`` (boolean), ``items`` (single
schema), ``enum``, ``pattern``, ``minimum``, ``maximum``, ``const``.

Unknown keywords are *errors*, not silently ignored — a typo in the
schema must fail CI, not validate everything vacuously.
"""

from __future__ import annotations

import re
from typing import Any, List

_KNOWN_KEYWORDS = frozenset([
    "$schema", "$id", "title", "description",
    "type", "properties", "patternProperties", "required",
    "additionalProperties", "items", "enum", "pattern",
    "minimum", "maximum", "const",
])

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """The schema itself is malformed (unsupported keyword, bad type)."""


def _check_type(value: Any, expected: str) -> bool:
    python_type = _TYPES.get(expected)
    if python_type is None:
        raise SchemaError(f"unsupported type {expected!r}")
    if expected in ("integer", "number") and isinstance(value, bool):
        return False  # bool is an int subclass; JSON says it is not
    return isinstance(value, python_type)


def validate(instance: Any, schema: dict, path: str = "$") -> List[str]:
    """All violations of ``schema`` by ``instance`` (empty = valid)."""
    unknown = set(schema) - _KNOWN_KEYWORDS
    if unknown:
        raise SchemaError(
            f"{path}: unsupported schema keyword(s): {sorted(unknown)}"
        )
    errors: List[str] = []

    expected_type = schema.get("type")
    if expected_type is not None:
        allowed = (
            expected_type if isinstance(expected_type, list) else [expected_type]
        )
        if not any(_check_type(instance, t) for t in allowed):
            errors.append(
                f"{path}: expected {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structure checks below would just cascade

    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")
    if "pattern" in schema and isinstance(instance, str):
        if re.search(schema["pattern"], instance) is None:
            errors.append(
                f"{path}: {instance!r} does not match /{schema['pattern']}/"
            )
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
        if "maximum" in schema and instance > schema["maximum"]:
            errors.append(f"{path}: {instance} > maximum {schema['maximum']}")

    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        pattern_properties = schema.get("patternProperties", {})
        additional_ok = schema.get("additionalProperties", True)
        for key, value in instance.items():
            child = f"{path}.{key}"
            matched = False
            if key in properties:
                matched = True
                errors.extend(validate(value, properties[key], child))
            for pattern, subschema in pattern_properties.items():
                if re.search(pattern, key):
                    matched = True
                    errors.extend(validate(value, subschema, child))
            if not matched and additional_ok is False:
                errors.append(f"{path}: unexpected property {key!r}")

    if isinstance(instance, list) and "items" in schema:
        item_schema = schema["items"]
        for index, item in enumerate(instance):
            errors.extend(validate(item, item_schema, f"{path}[{index}]"))

    return errors


def validate_or_raise(instance: Any, schema: dict) -> None:
    """Raise ``ValueError`` listing every violation, or return silently."""
    errors = validate(instance, schema)
    if errors:
        raise ValueError(
            f"{len(errors)} schema violation(s):\n" + "\n".join(errors)
        )
