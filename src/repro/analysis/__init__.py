"""Static bytecode analysis over runtime EVM bytecode.

Four cooperating passes, all purely static (no execution):

* :mod:`repro.analysis.dataflow` — jump-target resolution by
  push-constant stack dataflow (fixpoint over the CFG);
* :mod:`repro.analysis.stackcheck` — stack-height verification with
  the interval domain (underflow / overflow / unbalanced joins);
* :mod:`repro.analysis.dispatcher` — selector → entry-block extraction
  from the resolved dispatcher, plus dead-code detection;
* :mod:`repro.analysis.lint` — everything folded into one linter
  verdict with text/JSON rendering.

:func:`repro.analysis.report.analyze` chains them; the resulting
:class:`~repro.analysis.report.ContractAnalysis` doubles as the TASE
engine's pruning oracle and ``SigRec``'s cross-check source.
"""

from repro.analysis.dataflow import ResolvedCFG, resolve_bytecode, resolve_jumps
from repro.analysis.dispatcher import DispatcherReport, extract_dispatch
from repro.analysis.lint import LintReport, lint_analysis, lint_bytecode
from repro.analysis.report import (
    ANALYSIS_SCHEMA_VERSION,
    ContractAnalysis,
    Diagnostic,
    analyze,
    cross_check,
)
from repro.analysis.stackcheck import Finding, StackReport, verify_stack

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "ContractAnalysis",
    "Diagnostic",
    "DispatcherReport",
    "Finding",
    "LintReport",
    "ResolvedCFG",
    "StackReport",
    "analyze",
    "cross_check",
    "extract_dispatch",
    "lint_analysis",
    "lint_bytecode",
    "resolve_bytecode",
    "resolve_jumps",
    "verify_stack",
]
