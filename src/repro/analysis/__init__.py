"""Static bytecode analysis over runtime EVM bytecode.

A multi-pass framework (:mod:`repro.analysis.framework`): every pass
declares its inputs, carries its own schema version, and runs over a
shared per-bytecode context.  The default pipeline:

* ``cfg`` — basic-block construction (:mod:`repro.evm.cfg`);
* ``jumps`` — jump-target resolution by push-constant stack dataflow
  (:mod:`repro.analysis.dataflow`, fixpoint over the CFG);
* ``stack`` — stack-height verification with the interval domain
  (:mod:`repro.analysis.stackcheck`);
* ``dispatcher`` — selector → entry-block extraction from the resolved
  dispatcher, plus dead-code detection
  (:mod:`repro.analysis.dispatcher`);
* ``storage`` — storage-layout recovery from SLOAD/SSTORE slot shapes
  (:mod:`repro.analysis.storage`: mappings, dynamic arrays, packed
  sub-slot variables);
* ``reach`` — per-selector reachable blocks/ops with a completeness
  valve (:mod:`repro.analysis.reachability`);
* ``mutability`` — payable/nonpayable/view/pure from the CALLVALUE
  guard idiom plus reachable state ops
  (:mod:`repro.analysis.mutability`);
* ``returns`` — output type skeletons from RETURN-site head/tail
  shapes (:mod:`repro.analysis.returns`);
* ``lint`` — everything folded into one linter verdict
  (:mod:`repro.analysis.lint`).

:func:`repro.analysis.report.analyze` runs the pipeline; the resulting
:class:`~repro.analysis.report.ContractAnalysis` doubles as the TASE
engine's pruning oracle and ``SigRec``'s cross-check source, and
:func:`~repro.analysis.report.build_profile` folds it (plus recovered
signatures) into the deterministic contract-profile document.
"""

from repro.analysis.dataflow import ResolvedCFG, resolve_bytecode, resolve_jumps
from repro.analysis.dispatcher import DispatcherReport, extract_dispatch
from repro.analysis.framework import (
    CORE_PIPELINE,
    DEFAULT_PIPELINE,
    AnalysisContext,
    AnalysisPass,
    AnalysisPipeline,
    PipelineError,
    default_pipeline,
    pass_versions,
    schema_aggregate,
)
from repro.analysis.lint import LintReport, lint_analysis, lint_bytecode, lint_findings
from repro.analysis.mutability import MutabilityReport, classify_mutability
from repro.analysis.reachability import (
    ReachabilityReport,
    ReachableFunction,
    compute_reachability,
)
from repro.analysis.report import (
    ANALYSIS_SCHEMA_VERSION,
    PROFILE_SCHEMA_VERSION,
    ContractAnalysis,
    ContractProfile,
    Diagnostic,
    analyze,
    build_profile,
    cross_check,
    profile_bytecode,
)
from repro.analysis.returns import FunctionReturns, ReturnsReport, recover_returns
from repro.analysis.stackcheck import Finding, StackReport, verify_stack
from repro.analysis.storage import (
    StorageAccess,
    StorageLayout,
    StorageVariable,
    recover_storage_layout,
)

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "CORE_PIPELINE",
    "DEFAULT_PIPELINE",
    "PROFILE_SCHEMA_VERSION",
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisPipeline",
    "ContractAnalysis",
    "ContractProfile",
    "Diagnostic",
    "DispatcherReport",
    "Finding",
    "FunctionReturns",
    "LintReport",
    "MutabilityReport",
    "PipelineError",
    "ReachabilityReport",
    "ReachableFunction",
    "ResolvedCFG",
    "ReturnsReport",
    "StackReport",
    "StorageAccess",
    "StorageLayout",
    "StorageVariable",
    "analyze",
    "build_profile",
    "classify_mutability",
    "compute_reachability",
    "cross_check",
    "default_pipeline",
    "extract_dispatch",
    "lint_analysis",
    "lint_bytecode",
    "lint_findings",
    "pass_versions",
    "profile_bytecode",
    "recover_returns",
    "recover_storage_layout",
    "resolve_bytecode",
    "resolve_jumps",
    "schema_aggregate",
    "verify_stack",
]
