"""The combined static-analysis result for one contract.

:func:`analyze` runs the default :class:`~repro.analysis.framework.
AnalysisPipeline` — CFG construction, jump resolution, stack
verification, dispatcher extraction, storage-layout recovery, linting —
and folds the pass products into a :class:`ContractAnalysis`, which is
both the linter's input and the TASE engine's pruning oracle.
``analyze`` is *total*: it never raises on arbitrary byte strings (junk
decodes to UNKNOWN instructions, which the passes treat as opaque path
ends).

The engine-facing derived data is computed lazily:

* ``silent_halt_blocks`` — blocks that provably halt without emitting
  any TASE event (only PUSH/POP/JUMPDEST plus a STOP/REVERT/INVALID
  terminator): a symbolic path entering one can be cut immediately;
* ``closed_regions`` — per-selector statically reachable block sets,
  present only when every jump inside the region is resolved (an open
  region must not restrict the engine);
* ``unique_jump_targets`` — jump sites the dataflow proved one-target,
  letting the engine continue where it would otherwise abandon a path.

This module also defines the **contract profile**: the one-document
description of everything the static layer and the recovery engine
know about a bytecode (signatures + storage layout + dispatcher / CFG /
lint facts), with deterministic JSON rendering — sorted keys, no
timestamps — so profiles are byte-identical across runs, worker counts,
and cache temperature.  ``repro profile`` surfaces it on the CLI.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.dataflow import ResolvedCFG
from repro.analysis.dispatcher import DispatcherReport, region_preimage
from repro.analysis.framework import (
    AnalysisPipeline,
    default_pipeline,
    pass_versions,
    schema_aggregate,
)
from repro.analysis.mutability import MutabilityReport
from repro.analysis.reachability import ReachabilityReport
from repro.analysis.returns import ReturnsReport
from repro.analysis.stackcheck import Finding, StackReport
from repro.analysis.storage import StorageLayout
from repro.obs import MetricsRegistry, SpanTracer


def _analysis_schema_version() -> str:
    """Backward-compatible single scalar: the per-pass aggregate."""
    return schema_aggregate()


#: The derived aggregate of the per-pass schema versions.  Kept for
#: importers of the old single constant; the cache fingerprint now
#: folds the full per-pass dict (:func:`repro.analysis.framework.
#: pass_versions`) so one pass bump invalidates precisely and visibly.
ANALYSIS_SCHEMA_VERSION = _analysis_schema_version()

#: Opcodes that can appear in a block provably free of TASE events.
_SILENT_OPS = frozenset(
    ["POP", "JUMPDEST", "STOP", "REVERT", "INVALID"]
)
_SILENT_TERMINATORS = frozenset(["STOP", "REVERT", "INVALID"])


@dataclass(frozen=True)
class Diagnostic:
    """A structured divergence report from the static/TASE cross-check."""

    kind: str
    detail: str
    selectors: Tuple[int, ...] = ()

    def render(self) -> str:
        if self.selectors:
            shown = ", ".join(f"0x{s:08x}" for s in self.selectors)
            return f"{self.kind}: {self.detail} ({shown})"
        return f"{self.kind}: {self.detail}"


@dataclass
class ContractAnalysis:
    """All static passes over one runtime bytecode, plus derived views."""

    bytecode: bytes
    cfg: ResolvedCFG
    stack: StackReport
    dispatcher: DispatcherReport
    #: Recovered storage layout; ``None`` when analyzed under a pipeline
    #: without the storage pass (e.g. the core pre-profile pipeline).
    storage: Optional[StorageLayout] = None
    #: The lint pass's findings; ``None`` under a lint-less pipeline.
    lint_findings: Optional[Tuple[Finding, ...]] = None
    #: Per-selector reachability facts (``None`` under e.g. the core
    #: pipeline), and the ABI-completion products built on them.
    reach: Optional[ReachabilityReport] = None
    mutability: Optional[MutabilityReport] = None
    returns: Optional[ReturnsReport] = None
    _silent_halts: Optional[FrozenSet[int]] = field(default=None, repr=False)
    _closed_regions: Optional[Dict[int, FrozenSet[int]]] = field(
        default=None, repr=False
    )
    _unique_targets: Optional[Dict[int, int]] = field(default=None, repr=False)

    @property
    def findings(self) -> Tuple[Finding, ...]:
        return tuple(self.stack.findings) + tuple(self.dispatcher.findings)

    @property
    def selectors(self) -> Tuple[int, ...]:
        return self.dispatcher.selectors

    # -- engine-facing derived data ------------------------------------

    @property
    def silent_halt_blocks(self) -> FrozenSet[int]:
        """Starts of blocks that halt without any observable TASE event.

        Function entry blocks are excluded even when silent (an empty
        public function's body is PUSH/POP/STOP): entering one is how
        the engine *discovers* the selector, which is an observation.
        """
        if self._silent_halts is None:
            silent = set()
            entry_blocks = set(self.dispatcher.entries.values())
            for start, block in self.cfg.blocks.items():
                if start in entry_blocks:
                    continue
                terminator = block.terminator
                if terminator.op.name not in _SILENT_TERMINATORS:
                    continue
                if all(
                    ins.op.is_push or ins.op.name in _SILENT_OPS
                    for ins in block.instructions
                ):
                    silent.add(start)
            self._silent_halts = frozenset(silent)
        return self._silent_halts

    @property
    def closed_regions(self) -> Dict[int, FrozenSet[int]]:
        """selector -> region, only for regions with no unresolved jumps."""
        if self._closed_regions is None:
            closed: Dict[int, FrozenSet[int]] = {}
            if not self.cfg.incomplete:
                for selector, region in self.dispatcher.regions.items():
                    if self._region_closed(region):
                        closed[selector] = region
            self._closed_regions = closed
        return self._closed_regions

    def _region_closed(self, region: FrozenSet[int]) -> bool:
        blocks = self.cfg.blocks
        for start in region:
            block = blocks.get(start)
            if block is None:
                return False
            terminator = block.terminator
            if terminator.op.name in ("JUMP", "JUMPI"):
                if terminator.pc in self.cfg.unresolved_jumps:
                    return False
                if (
                    terminator.pc not in self.cfg.resolved_targets
                    and terminator.pc not in self.cfg.invalid_targets
                ):
                    # The fixpoint never classified this jump at all —
                    # possible only in corner cases; stay conservative.
                    return False
        return True

    def function_preimage(self, selector: int) -> Optional[bytes]:
        """Memoization preimage for one function, or ``None``.

        Only closed regions qualify: when every jump in the selector's
        region is resolved (and the CFG is complete), a sharded TASE run
        provably never leaves the dispatcher spine + region, so those
        bytes — plus the selector and the engine-options fingerprint —
        fully determine the recovered signature.  Open regions return
        ``None`` and are recovered fresh every time.
        """
        if self.cfg.incomplete or selector not in self.closed_regions:
            return None
        return region_preimage(self.cfg, self.dispatcher, self.bytecode, selector)

    @property
    def unique_jump_targets(self) -> Dict[int, int]:
        """Jump pcs the dataflow resolved to exactly one valid target."""
        if self._unique_targets is None:
            unique: Dict[int, int] = {}
            if not self.cfg.incomplete:
                for pc, targets in self.cfg.resolved_targets.items():
                    if (
                        len(targets) == 1
                        and pc not in self.cfg.unresolved_jumps
                        and pc not in self.cfg.invalid_targets
                    ):
                        unique[pc] = next(iter(targets))
            self._unique_targets = unique
        return self._unique_targets


def analyze(
    bytecode: bytes,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
    pipeline: Optional[AnalysisPipeline] = None,
) -> ContractAnalysis:
    """Run the analysis pipeline over ``bytecode``.

    With no ``pipeline`` argument, :func:`~repro.analysis.framework.
    default_pipeline` runs (all passes); pass e.g. ``CORE_PIPELINE`` to
    restrict to the recovery-critical subset.  ``metrics``/``tracer``
    flow to per-pass phase spans.
    """
    if pipeline is None:
        pipeline = default_pipeline()
    context = pipeline.run(bytecode, metrics=metrics, tracer=tracer)
    products = context.products
    return ContractAnalysis(
        bytecode=bytecode,
        cfg=products["jumps"],
        stack=products["stack"],
        dispatcher=products["dispatcher"],
        storage=products.get("storage"),
        lint_findings=products.get("lint"),
        reach=products.get("reach"),
        mutability=products.get("mutability"),
        returns=products.get("returns"),
    )


def cross_check(analysis: ContractAnalysis, tase_selectors) -> Tuple[Diagnostic, ...]:
    """Compare the static selector set against TASE's discoveries."""
    static = set(analysis.selectors)
    dynamic = set(tase_selectors)
    diagnostics = []
    missing = sorted(static - dynamic)
    if missing:
        diagnostics.append(
            Diagnostic(
                kind="selector-missed-by-tase",
                detail=(
                    f"{len(missing)} selector(s) found in the static "
                    "dispatcher but not explored symbolically"
                ),
                selectors=tuple(missing),
            )
        )
    extra = sorted(dynamic - static)
    if extra:
        diagnostics.append(
            Diagnostic(
                kind="selector-missed-statically",
                detail=(
                    f"{len(extra)} selector(s) discovered by TASE but "
                    "invisible to the static dispatcher walk"
                ),
                selectors=tuple(extra),
            )
        )
    return tuple(diagnostics)


# ----------------------------------------------------------------------
# The contract profile.

#: Profile document schema version (the document *shape*; pass-semantic
#: changes are carried by the per-pass versions inside the document).
#: v2: the ``abi`` section (per-selector mutability + return shapes).
PROFILE_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class ContractProfile:
    """Everything recovered about one bytecode, as one document.

    Deterministic by construction: every field derives from the
    bytecode alone (plus engine options), values are sorted, and
    nothing time- or machine-dependent is admitted — ``to_json`` output
    is byte-identical across runs, worker counts, and cache hits.
    """

    bytecode_sha256: str
    code_size: int
    #: Per-pass schema versions of the pipeline that produced this.
    passes: Tuple[Tuple[str, int], ...]
    #: Recovered signatures (sorted by selector); empty when the
    #: profile was built without running recovery.
    signatures: Tuple[dict, ...]
    storage: dict
    #: Per-selector ABI completion facts: ``{"0x...": {"mutability":
    #: str, "returns": [types] | None}}``; empty when the pipeline ran
    #: without the mutability/returns passes.
    abi: dict
    dispatcher: dict
    cfg: dict
    lint: dict

    def to_dict(self) -> dict:
        return {
            "profile_schema": PROFILE_SCHEMA_VERSION,
            "bytecode_sha256": self.bytecode_sha256,
            "code_size": self.code_size,
            "passes": {name: version for name, version in self.passes},
            "signatures": list(self.signatures),
            "storage": self.storage,
            "abi": self.abi,
            "dispatcher": self.dispatcher,
            "cfg": self.cfg,
            "lint": self.lint,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON: sorted keys, stable separators."""
        if indent is None:
            return json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ContractProfile":
        """Rehydrate a profile document (e.g. from the result cache).

        Round-trip exact: ``from_dict(p.to_dict()).to_json() ==
        p.to_json()`` — cached and freshly built profiles render
        byte-identically.
        """
        return cls(
            bytecode_sha256=data["bytecode_sha256"],
            code_size=data["code_size"],
            passes=tuple(sorted(
                (name, version) for name, version in data["passes"].items()
            )),
            signatures=tuple(data["signatures"]),
            storage=data["storage"],
            abi=data["abi"],
            dispatcher=data["dispatcher"],
            cfg=data["cfg"],
            lint=data["lint"],
        )

    def render_text(self) -> str:
        lines = [
            f"contract {self.bytecode_sha256[:16]}…  "
            f"({self.code_size} bytes, "
            f"{self.cfg['blocks']} blocks, "
            f"{len(self.dispatcher['selectors'])} selector(s))"
        ]
        if self.signatures:
            lines.append("functions:")
            for signature in self.signatures:
                params = ",".join(signature["param_types"])
                lines.append(
                    f"  {signature['selector']}({params})"
                    f"  [{signature['language']}]"
                )
        elif self.dispatcher["selectors"]:
            lines.append(
                "functions (selectors only, recovery not run): "
                + ", ".join(self.dispatcher["selectors"])
            )
        if self.abi:
            lines.append("abi:")
            for selector in sorted(self.abi):
                entry = self.abi[selector]
                returns = entry.get("returns")
                shown = (
                    "unknown" if returns is None
                    else "(" + ",".join(returns) + ")"
                )
                lines.append(
                    f"  {selector}: {entry['mutability']}, returns {shown}"
                )
        storage = self.storage
        variables = storage.get("variables", [])
        lines.append(
            f"storage: {len(variables)} variable(s), "
            f"{storage.get('resolved_sites', 0)}"
            f"/{storage.get('resolved_sites', 0) + storage.get('unresolved_sites', 0)}"
            " access sites resolved"
        )
        for variable in variables:
            where = f"slot {variable['slot']}"
            if variable["kind"] == "value" and variable["width"] != 32:
                end = variable["offset"] + variable["width"] - 1
                where += f" bytes {variable['offset']}..{end}"
            lines.append(
                f"  {where}: {variable['type']}  "
                f"({variable['reads']} reads, {variable['writes']} writes)"
            )
        lint = self.lint
        lines.append(
            ("lint: OK" if lint["ok"] else "lint: FAIL")
            + f" ({lint['errors']} errors, {lint['warnings']} warnings, "
            + f"{lint['notes']} notes)"
        )
        return "\n".join(lines)


def _signature_facts(signatures: Sequence) -> Tuple[dict, ...]:
    """Deterministic signature dicts (no ``elapsed_seconds``: timing is
    machine-dependent and reads 0.0 on cache hits)."""
    facts: List[dict] = []
    for signature in signatures:
        facts.append({
            "selector": f"0x{signature.selector:08x}",
            "param_types": list(signature.param_types),
            "language": signature.language,
            "confidences": list(signature.confidences),
            "fired_rules": sorted(signature.fired_rules),
        })
    facts.sort(key=lambda fact: fact["selector"])
    return tuple(facts)


def build_profile(
    analysis: ContractAnalysis,
    signatures: Sequence = (),
) -> ContractProfile:
    """Fold an analysis (and optional recovered signatures) into a
    :class:`ContractProfile`."""
    from repro.analysis.lint import lint_analysis

    bytecode = analysis.bytecode
    cfg = analysis.cfg
    dispatcher = analysis.dispatcher
    storage = analysis.storage if analysis.storage is not None else StorageLayout()
    lint = lint_analysis(analysis)
    counts = lint.counts()
    versions = pass_versions()
    abi: Dict[str, dict] = {}
    if analysis.mutability is not None or analysis.returns is not None:
        mutability = analysis.mutability
        returns = analysis.returns
        for selector in dispatcher.selectors:
            verdict = "unknown"
            if mutability is not None:
                verdict = mutability.functions.get(selector, "unknown")
            shape = None
            if returns is not None:
                recovered = returns.functions.get(selector)
                if recovered is not None and recovered.shape is not None:
                    shape = list(recovered.shape)
            abi[f"0x{selector:08x}"] = {
                "mutability": verdict,
                "returns": shape,
            }
    return ContractProfile(
        bytecode_sha256=hashlib.sha256(bytecode).hexdigest(),
        code_size=len(bytecode),
        passes=tuple(sorted(versions.items())),
        signatures=_signature_facts(signatures),
        storage=storage.to_dict(),
        abi=abi,
        dispatcher={
            "selectors": [f"0x{s:08x}" for s in dispatcher.selectors],
            "entries": {
                f"0x{selector:08x}": entry
                for selector, entry in sorted(dispatcher.entries.items())
            },
            "dispatcher_blocks": sorted(dispatcher.dispatcher_blocks),
            "unreachable_blocks": sorted(dispatcher.unreachable),
        },
        cfg={
            "blocks": len(cfg.blocks),
            "resolved_jumps": len(cfg.resolved_targets),
            "unresolved_jumps": sorted(cfg.unresolved_jumps),
            "invalid_jumps": sorted(cfg.invalid_targets),
            "incomplete": bool(cfg.incomplete),
        },
        lint={
            "ok": lint.ok,
            "errors": counts["error"],
            "warnings": counts["warning"],
            "notes": counts["info"],
            "findings": [
                {
                    "kind": f.kind,
                    "pc": f.pc,
                    "severity": f.severity,
                    "detail": f.detail,
                }
                for f in lint.findings
            ],
        },
    )


def profile_bytecode(bytecode: bytes, signatures: Sequence = ()) -> ContractProfile:
    """Analyze ``bytecode`` and build its profile in one call."""
    return build_profile(analyze(bytecode), signatures)
