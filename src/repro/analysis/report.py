"""The combined static-analysis result for one contract.

:func:`analyze` chains the passes — CFG construction, jump resolution,
stack verification, dispatcher extraction — and the resulting
:class:`ContractAnalysis` is both the linter's input and the TASE
engine's pruning oracle.  ``analyze`` is *total*: it never raises on
arbitrary byte strings (junk decodes to UNKNOWN instructions, which the
passes treat as opaque path ends).

The engine-facing derived data is computed lazily:

* ``silent_halt_blocks`` — blocks that provably halt without emitting
  any TASE event (only PUSH/POP/JUMPDEST plus a STOP/REVERT/INVALID
  terminator): a symbolic path entering one can be cut immediately;
* ``closed_regions`` — per-selector statically reachable block sets,
  present only when every jump inside the region is resolved (an open
  region must not restrict the engine);
* ``unique_jump_targets`` — jump sites the dataflow proved one-target,
  letting the engine continue where it would otherwise abandon a path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.dataflow import ResolvedCFG, resolve_jumps
from repro.analysis.dispatcher import (
    DispatcherReport,
    extract_dispatch,
    region_preimage,
)
from repro.analysis.stackcheck import Finding, StackReport, verify_stack
from repro.evm.cfg import build_cfg

#: Bumped whenever pass semantics change in a way that affects what the
#: engine may prune or the linter reports; part of the persistent result
#: cache's fingerprint so stale cached recoveries never survive an
#: analysis change.
ANALYSIS_SCHEMA_VERSION = 1

#: Opcodes that can appear in a block provably free of TASE events.
_SILENT_OPS = frozenset(
    ["POP", "JUMPDEST", "STOP", "REVERT", "INVALID"]
)
_SILENT_TERMINATORS = frozenset(["STOP", "REVERT", "INVALID"])


@dataclass(frozen=True)
class Diagnostic:
    """A structured divergence report from the static/TASE cross-check."""

    kind: str
    detail: str
    selectors: Tuple[int, ...] = ()

    def render(self) -> str:
        if self.selectors:
            shown = ", ".join(f"0x{s:08x}" for s in self.selectors)
            return f"{self.kind}: {self.detail} ({shown})"
        return f"{self.kind}: {self.detail}"


@dataclass
class ContractAnalysis:
    """All static passes over one runtime bytecode, plus derived views."""

    bytecode: bytes
    cfg: ResolvedCFG
    stack: StackReport
    dispatcher: DispatcherReport
    _silent_halts: Optional[FrozenSet[int]] = field(default=None, repr=False)
    _closed_regions: Optional[Dict[int, FrozenSet[int]]] = field(
        default=None, repr=False
    )
    _unique_targets: Optional[Dict[int, int]] = field(default=None, repr=False)

    @property
    def findings(self) -> Tuple[Finding, ...]:
        return tuple(self.stack.findings) + tuple(self.dispatcher.findings)

    @property
    def selectors(self) -> Tuple[int, ...]:
        return self.dispatcher.selectors

    # -- engine-facing derived data ------------------------------------

    @property
    def silent_halt_blocks(self) -> FrozenSet[int]:
        """Starts of blocks that halt without any observable TASE event.

        Function entry blocks are excluded even when silent (an empty
        public function's body is PUSH/POP/STOP): entering one is how
        the engine *discovers* the selector, which is an observation.
        """
        if self._silent_halts is None:
            silent = set()
            entry_blocks = set(self.dispatcher.entries.values())
            for start, block in self.cfg.blocks.items():
                if start in entry_blocks:
                    continue
                terminator = block.terminator
                if terminator.op.name not in _SILENT_TERMINATORS:
                    continue
                if all(
                    ins.op.is_push or ins.op.name in _SILENT_OPS
                    for ins in block.instructions
                ):
                    silent.add(start)
            self._silent_halts = frozenset(silent)
        return self._silent_halts

    @property
    def closed_regions(self) -> Dict[int, FrozenSet[int]]:
        """selector -> region, only for regions with no unresolved jumps."""
        if self._closed_regions is None:
            closed: Dict[int, FrozenSet[int]] = {}
            if not self.cfg.incomplete:
                for selector, region in self.dispatcher.regions.items():
                    if self._region_closed(region):
                        closed[selector] = region
            self._closed_regions = closed
        return self._closed_regions

    def _region_closed(self, region: FrozenSet[int]) -> bool:
        blocks = self.cfg.blocks
        for start in region:
            block = blocks.get(start)
            if block is None:
                return False
            terminator = block.terminator
            if terminator.op.name in ("JUMP", "JUMPI"):
                if terminator.pc in self.cfg.unresolved_jumps:
                    return False
                if (
                    terminator.pc not in self.cfg.resolved_targets
                    and terminator.pc not in self.cfg.invalid_targets
                ):
                    # The fixpoint never classified this jump at all —
                    # possible only in corner cases; stay conservative.
                    return False
        return True

    def function_preimage(self, selector: int) -> Optional[bytes]:
        """Memoization preimage for one function, or ``None``.

        Only closed regions qualify: when every jump in the selector's
        region is resolved (and the CFG is complete), a sharded TASE run
        provably never leaves the dispatcher spine + region, so those
        bytes — plus the selector and the engine-options fingerprint —
        fully determine the recovered signature.  Open regions return
        ``None`` and are recovered fresh every time.
        """
        if self.cfg.incomplete or selector not in self.closed_regions:
            return None
        return region_preimage(self.cfg, self.dispatcher, self.bytecode, selector)

    @property
    def unique_jump_targets(self) -> Dict[int, int]:
        """Jump pcs the dataflow resolved to exactly one valid target."""
        if self._unique_targets is None:
            unique: Dict[int, int] = {}
            if not self.cfg.incomplete:
                for pc, targets in self.cfg.resolved_targets.items():
                    if (
                        len(targets) == 1
                        and pc not in self.cfg.unresolved_jumps
                        and pc not in self.cfg.invalid_targets
                    ):
                        unique[pc] = next(iter(targets))
            self._unique_targets = unique
        return self._unique_targets


def analyze(bytecode: bytes) -> ContractAnalysis:
    """Run all static passes over ``bytecode``."""
    rcfg = resolve_jumps(build_cfg(bytecode))
    return ContractAnalysis(
        bytecode=bytecode,
        cfg=rcfg,
        stack=verify_stack(rcfg),
        dispatcher=extract_dispatch(rcfg),
    )


def cross_check(analysis: ContractAnalysis, tase_selectors) -> Tuple[Diagnostic, ...]:
    """Compare the static selector set against TASE's discoveries."""
    static = set(analysis.selectors)
    dynamic = set(tase_selectors)
    diagnostics = []
    missing = sorted(static - dynamic)
    if missing:
        diagnostics.append(
            Diagnostic(
                kind="selector-missed-by-tase",
                detail=(
                    f"{len(missing)} selector(s) found in the static "
                    "dispatcher but not explored symbolically"
                ),
                selectors=tuple(missing),
            )
        )
    extra = sorted(dynamic - static)
    if extra:
        diagnostics.append(
            Diagnostic(
                kind="selector-missed-statically",
                detail=(
                    f"{len(extra)} selector(s) discovered by TASE but "
                    "invisible to the static dispatcher walk"
                ),
                selectors=tuple(extra),
            )
        )
    return tuple(diagnostics)
