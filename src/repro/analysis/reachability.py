"""Per-selector reachability: which instructions can a function touch?

The dispatcher pass already computes each selector's *region* — the
blocks statically reachable from its body entry over resolved jump
edges.  Because jump resolution follows the return-address dispatch of
internal calls (several callers pushing different return targets into
one shared block), a region is naturally **interprocedural**: the
blocks of every internal function a body can call are part of it.

This pass turns regions into an explicit reachability product the
mutability and returns passes consume:

* ``blocks`` — the region's block starts;
* ``ops`` — the set of opcode names appearing anywhere in the region
  (the input to "does this function ever write state?" questions);
* ``complete`` — the safety valve.  ``True`` only when the CFG fixpoint
  finished (``not rcfg.incomplete``) *and* every ``JUMP``/``JUMPI``
  terminator inside the region was classified (resolved or provably
  invalid, never unresolved).  An open region may reach code the static
  walk cannot see, so downstream passes must degrade to "unknown"
  instead of trusting the op set — the same posture as
  ``ContractAnalysis.closed_regions``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.analysis.dataflow import ResolvedCFG
from repro.analysis.dispatcher import DispatcherReport


@dataclass(frozen=True)
class ReachableFunction:
    """The statically reachable footprint of one public function."""

    selector: int
    entry: int
    blocks: FrozenSet[int]
    #: Opcode names appearing anywhere in the region.
    ops: FrozenSet[str]
    #: True when the region is closed: every jump inside it classified
    #: and the CFG fixpoint complete.  When False the footprint is a
    #: lower bound only — never base a verdict on it.
    complete: bool


@dataclass
class ReachabilityReport:
    """selector -> :class:`ReachableFunction`, plus the global valve."""

    functions: Dict[int, ReachableFunction]
    #: Mirrors ``ResolvedCFG.incomplete``: the fixpoint hit its safety
    #: valve, so *every* function is incomplete regardless of region.
    incomplete: bool

    def complete_for(self, selector: int) -> bool:
        function = self.functions.get(selector)
        return bool(function and function.complete)


def _region_closed(rcfg: ResolvedCFG, region: FrozenSet[int]) -> bool:
    """Every jump terminator in the region classified by the dataflow."""
    blocks = rcfg.blocks
    for start in region:
        block = blocks.get(start)
        if block is None:
            return False
        terminator = block.terminator
        if terminator.op.name in ("JUMP", "JUMPI"):
            if terminator.pc in rcfg.unresolved_jumps:
                return False
            if (
                terminator.pc not in rcfg.resolved_targets
                and terminator.pc not in rcfg.invalid_targets
            ):
                return False
    return True


def compute_reachability(
    rcfg: ResolvedCFG, dispatcher: DispatcherReport
) -> ReachabilityReport:
    """Fold dispatcher regions into per-selector reachability facts."""
    functions: Dict[int, ReachableFunction] = {}
    for selector, entry in dispatcher.entries.items():
        region = frozenset(dispatcher.regions.get(selector, frozenset()))
        complete = not rcfg.incomplete and _region_closed(rcfg, region)
        ops = set()
        for start in region:
            block = rcfg.blocks.get(start)
            if block is None:
                continue
            for ins in block.instructions:
                ops.add(ins.op.name)
        functions[selector] = ReachableFunction(
            selector=selector,
            entry=entry,
            blocks=region,
            ops=frozenset(ops),
            complete=complete,
        )
    return ReachabilityReport(
        functions=functions, incomplete=bool(rcfg.incomplete)
    )
