"""Static dispatcher analysis: the selector → entry-block map.

Walks the resolved CFG from the entry with a four-value token domain —
constants, "the first call-data word", "the extracted function id", and
"a comparison of the function id with constant *c*" — precise enough to
recognize every dispatcher shape our compilers (and real solc/vyper)
emit without executing anything:

* ``DIV 2^224`` (pre-Constantinople), ``DIV`` + ``AND 0xffffffff``, and
  ``SHR 224`` function-id extraction;
* linear ``EQ`` chains and binary-search trees (``GT`` splits whose
  leaves are short ``EQ`` chains);
* the optional ``CALLDATASIZE < 4`` fallback check.

A ``JUMPI`` whose condition is ``EQ(<id>, c)`` and whose target is a
resolved constant records ``c → target``; the walk continues down the
not-matched side only, so function bodies are never entered.  Everything
else (size checks, ``GT`` splits) is followed both ways.

The per-selector *region* — the blocks statically reachable from the
entry block along resolved edges — is what the TASE engine uses to
restrict exploration, and the full selector set is the cross-check
oracle for the symbolic dispatcher walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow import ResolvedCFG
from repro.analysis.stackcheck import Finding

_SHIFT_224 = 224
_DIV_2_224 = 1 << 224
_SELECTOR_MASK = 0xFFFFFFFF

# Token kinds.
_CONST = "c"
_CD0 = "cd0"  # CALLDATALOAD(0): the raw first call-data word
_FID = "fid"  # the extracted 4-byte function id
_SELCMP = "sel"  # EQ(fid, <constant>)
_UNKNOWN = "?"

_Token = Tuple  # ("c", v) | ("cd0",) | ("fid",) | ("sel", v) | ("?",)

#: How often one block may be (re)walked with distinct abstract states;
#: real dispatchers are acyclic, so this only guards crafted loops.
_MAX_VISITS = 32
_MAX_STACK = 32


@dataclass
class DispatcherReport:
    """Everything the static dispatcher walk discovered."""

    selectors: Tuple[int, ...] = ()
    #: selector -> entry-block start pc.
    entries: Dict[int, int] = field(default_factory=dict)
    #: Block starts visited while walking the dispatcher itself.
    dispatcher_blocks: FrozenSet[int] = frozenset()
    #: selector -> block starts statically reachable from its entry.
    regions: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: Block starts unreachable from the contract entry (dead code or
    #: trailing data).
    unreachable: FrozenSet[int] = frozenset()
    findings: Tuple[Finding, ...] = ()


def region_preimage(
    rcfg, report: "DispatcherReport", bytecode: bytes, selector: int
) -> Optional[bytes]:
    """The byte string that determines one function's recovery.

    A selector-sharded TASE run is a deterministic function of (a) the
    dispatcher spine it walks from pc 0 to the function entry and (b)
    the function's statically reachable region — both taken as raw
    (start, bytes) block spans, so absolute jump targets are part of
    the key and two layouts never collide.  Hashing this preimage
    (together with the selector and the engine-options fingerprint) is
    what lets a proxy/clone corpus — identical code bodies under
    differing metadata trailers or sibling constants — recover each
    shared body once.

    Returns ``None`` when the selector has no entry or its region is
    unknown; the caller must additionally gate on the region being
    *closed* (every jump resolved) before trusting the preimage.
    """
    if selector not in report.entries:
        return None
    region = report.regions.get(selector)
    if region is None:
        return None
    blocks = rcfg.blocks
    parts = [b"sigrec-fn-region:v1", selector.to_bytes(4, "big")]
    for label, starts in ((b"spine", report.dispatcher_blocks),
                         (b"region", region)):
        parts.append(label)
        for start in sorted(starts):
            block = blocks.get(start)
            if block is None:
                return None
            parts.append(start.to_bytes(4, "big"))
            parts.append(bytecode[block.start:block.end])
    return b"\x00".join(parts)


def _unknown_token() -> _Token:
    return (_UNKNOWN,)


def _is_const(token: _Token, value: Optional[int] = None) -> bool:
    return token[0] == _CONST and (value is None or token[1] == value)


def _binop_token(name: str, a: _Token, b: _Token) -> _Token:
    """a = stack top (popped first), b = next — EVM operand order."""
    if name == "CALLDATALOAD":
        raise AssertionError("handled by caller")
    if name == "DIV" and a[0] == _CD0 and _is_const(b, _DIV_2_224):
        return (_FID,)
    if name == "SHR" and _is_const(a, _SHIFT_224) and b[0] == _CD0:
        return (_FID,)
    if name == "AND":
        if a[0] == _FID and _is_const(b, _SELECTOR_MASK):
            return (_FID,)
        if b[0] == _FID and _is_const(a, _SELECTOR_MASK):
            return (_FID,)
    if name == "EQ":
        if a[0] == _FID and _is_const(b) and b[1] <= _SELECTOR_MASK:
            return (_SELCMP, b[1])
        if b[0] == _FID and _is_const(a) and a[1] <= _SELECTOR_MASK:
            return (_SELCMP, a[1])
    return _unknown_token()


def _walk_block(
    block, stack: List[_Token]
) -> Tuple[List[_Token], Optional[_Token], Optional[_Token]]:
    """Execute one block; returns (out_stack, jump_target, jump_cond)."""
    jump_target: Optional[_Token] = None
    jump_cond: Optional[_Token] = None

    def pop() -> _Token:
        return stack.pop(0) if stack else _unknown_token()

    def push(token: _Token) -> None:
        stack.insert(0, token)
        del stack[_MAX_STACK:]

    for ins in block.instructions:
        op = ins.op
        name = op.name
        if op.is_push:
            push((_CONST, ins.operand or 0))
        elif op.is_dup:
            depth = op.code - 0x7F
            push(stack[depth - 1] if depth <= len(stack) else _unknown_token())
        elif op.is_swap:
            depth = op.code - 0x8F
            while len(stack) < depth + 1:
                stack.append(_unknown_token())
            stack[0], stack[depth] = stack[depth], stack[0]
        elif name == "CALLDATALOAD":
            loc = pop()
            push((_CD0,) if _is_const(loc, 0) else _unknown_token())
        elif name == "JUMP":
            jump_target = pop()
        elif name == "JUMPI":
            jump_target = pop()
            jump_cond = pop()
        elif op.pops == 2 and op.pushes == 1:
            a, b = pop(), pop()
            push(_binop_token(name, a, b))
        else:
            for _ in range(op.pops):
                pop()
            for _ in range(op.pushes):
                push(_unknown_token())
    return stack, jump_target, jump_cond


def extract_dispatch(rcfg: ResolvedCFG) -> DispatcherReport:
    """Walk the dispatcher statically and map selectors to entry blocks."""
    blocks = rcfg.blocks
    findings: List[Finding] = []
    entries: Dict[int, int] = {}
    visited_blocks: Set[int] = set()
    if rcfg.entry not in blocks:
        return DispatcherReport(findings=tuple(findings))

    visits: Dict[int, int] = {}
    work: List[Tuple[int, Tuple[_Token, ...]]] = [(rcfg.entry, ())]
    seen_states: Set[Tuple[int, Tuple[_Token, ...]]] = {(rcfg.entry, ())}

    while work:
        start, in_stack = work.pop()
        block = blocks.get(start)
        if block is None:
            continue
        count = visits.get(start, 0) + 1
        if count > _MAX_VISITS:
            continue
        visits[start] = count
        visited_blocks.add(start)

        out, target, cond = _walk_block(block, list(in_stack))
        terminator = block.terminator
        name = terminator.op.name

        def enqueue(succ: int, stack_out: List[_Token]) -> None:
            state = (succ, tuple(stack_out))
            if succ in blocks and state not in seen_states:
                seen_states.add(state)
                work.append(state)

        if name == "JUMPI" and cond is not None and cond[0] == _SELCMP:
            selector = cond[1]
            if target is not None and _is_const(target):
                dest = target[1]
                if dest in rcfg.valid_jumpdests:
                    previous = entries.get(selector)
                    if previous is not None and previous != dest:
                        findings.append(
                            Finding(
                                "dispatcher-conflict",
                                terminator.pc,
                                f"selector 0x{selector:08x} dispatched to "
                                f"both {previous:#x} and {dest:#x}",
                                severity="warning",
                            )
                        )
                    else:
                        entries[selector] = dest
            # Continue down the not-matched side only.
            enqueue(terminator.next_pc, out)
            continue

        if name == "JUMP":
            for succ in rcfg.resolved_targets.get(terminator.pc, ()):
                enqueue(succ, out)
        elif name == "JUMPI":
            for succ in rcfg.resolved_targets.get(terminator.pc, ()):
                enqueue(succ, out)
            enqueue(terminator.next_pc, out)
        elif not terminator.op.is_terminator and name != "UNKNOWN":
            enqueue(terminator.next_pc, out)

    regions = {
        selector: rcfg.reachable_from(entry)
        for selector, entry in entries.items()
    }
    unreachable = frozenset(blocks) - rcfg.reachable_from(rcfg.entry)
    return DispatcherReport(
        selectors=tuple(sorted(entries)),
        entries=entries,
        dispatcher_blocks=frozenset(visited_blocks),
        regions=regions,
        unreachable=unreachable,
        findings=tuple(findings),
    )
