"""Return-shape recovery: output type skeletons from RETURN sites.

The ABI encodes a function's outputs exactly like its inputs: a *head*
of 32-byte words — the value itself for static types, an offset into
the *tail* for dynamic ones — followed by the tail (length word plus
padded data for ``bytes``/``string``).  A compiler therefore ends every
value-returning path with ``RETURN(p, l)`` over a buffer it just
populated, and the buffer's shape betrays the output types:

* ``l`` is a multiple of 32: the word count is the head size;
* a head word holding a **constant** that is word-aligned, inside the
  buffer, and past its own position is a dynamic-tail offset, and the
  word it points at must hold a plausible length — that output is a
  ``bytes``-like skeleton;
* any other head word (computed at run time) is a static 32-byte word,
  reported as the ``uint256`` skeleton.

Compilers emit the encode-and-RETURN sequence as one straight line —
constant offsets pushed, head and tail words stored, ``RETURN`` — so
the whole site sits inside the basic block the ``RETURN`` terminates.
This pass exploits that: every RETURN-terminated block is simulated
**once per contract** with a constant-folding stack and a
constant-offset memory image, starting from an *unknown* entry state
(pops past the simulated stack yield symbolic values, loads of
untracked memory yield symbolic words).  Per function, the sites of
the blocks inside its reachable region are collected and one shape is
inferred per site.  The per-function verdict never guesses:

* region not complete -> ``None`` (unknown);
* sites disagree, or any site's offset/length/layout stays symbolic ->
  ``None`` — a value flowing in from a predecessor block reads as
  symbolic, degrading toward unknown, never toward a wrong shape;
* ``RETURN`` unreachable (all paths ``STOP``/``REVERT``) -> ``()``,
  the empty output list.

Skeletons deliberately stop at word granularity: a static word reads
as ``uint256`` whether the source declared ``address`` or ``bool``
(indistinguishable at the RETURN site), and every dynamic tail reads
as ``bytes``.  Ground-truth scoring maps declared types through the
same skeleton (``repro.compiler.effects.returns_skeleton``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.dataflow import ResolvedCFG
from repro.analysis.dispatcher import DispatcherReport
from repro.analysis.reachability import ReachabilityReport, ReachableFunction

_MASK = (1 << 256) - 1
_MAX_STACK = 24
#: Highest memory offset tracked (and cap on tracked words): return
#: buffers live in low memory; unbounded tracking would let crafted
#: bytecode blow up the state space.
_MEMORY_LIMIT = 1 << 24
_MAX_MEMORY_WORDS = 256
#: Largest head believed: 16 words is far beyond any real signature.
_MAX_WORDS = 16

#: One RETURN site: (pc, offset, length, memory image).  ``None`` for
#: offset/length means symbolic; memory maps const offsets to const
#: values or ``None`` for runtime-computed stores.
_Site = Tuple[int, Optional[int], Optional[int], Dict[int, Optional[int]]]


@dataclass(frozen=True)
class FunctionReturns:
    """One function's recovered output skeleton."""

    selector: int
    #: ``None`` = unknown; ``()`` = provably no outputs; otherwise a
    #: tuple of ``"uint256"`` / ``"bytes"`` skeleton types.
    shape: Optional[Tuple[str, ...]]
    #: The RETURN pcs the verdict is based on (sorted).
    sites: Tuple[int, ...] = ()


@dataclass
class ReturnsReport:
    """selector -> :class:`FunctionReturns`."""

    functions: Dict[int, FunctionReturns]


def _fold(name: str, a: Optional[int], b: Optional[int]) -> Optional[int]:
    """Constant-fold ``name(a, b)`` with EVM operand order (a popped
    first); ``None`` operands poison the result."""
    if a is None or b is None:
        return None
    if name == "ADD":
        return (a + b) & _MASK
    if name == "SUB":
        return (a - b) & _MASK
    if name == "MUL":
        return (a * b) & _MASK
    if name == "AND":
        return a & b
    if name == "OR":
        return a | b
    if name == "XOR":
        return a ^ b
    if name == "SHL":
        return (b << a) & _MASK if a < 256 else 0
    if name == "SHR":
        return b >> a if a < 256 else 0
    return None


def _block_site(block) -> Optional[_Site]:
    """Simulate one RETURN-terminated block from an unknown entry state.

    Returns the block's RETURN site, or ``None`` when the block does
    not RETURN.  Values inherited from predecessors are symbolic: a
    pop past the simulated stack yields ``None``, as does a load of an
    untracked memory word.
    """
    stack: List[Optional[int]] = []
    memory: Dict[int, Optional[int]] = {}

    def pop() -> Optional[int]:
        return stack.pop(0) if stack else None

    def push(value: Optional[int]) -> None:
        stack.insert(0, value)
        del stack[_MAX_STACK:]

    for ins in block.instructions:
        op = ins.op
        name = op.name
        if op.is_push:
            push(ins.operand or 0)
        elif op.is_dup:
            depth = op.code - 0x7F
            push(stack[depth - 1] if depth <= len(stack) else None)
        elif op.is_swap:
            depth = op.code - 0x8F
            while len(stack) < depth + 1:
                stack.append(None)
            stack[0], stack[depth] = stack[depth], stack[0]
        elif name == "MSTORE":
            loc, value = pop(), pop()
            if loc is not None and loc < _MEMORY_LIMIT:
                if loc in memory or len(memory) < _MAX_MEMORY_WORDS:
                    memory[loc] = value
            # Symbolic-offset stores do not clobber the tracked
            # image: our return buffers are written last, and the
            # storage pass documents the same free-memory-pointer
            # rationale.
        elif name == "MLOAD":
            loc = pop()
            if loc is not None and loc in memory:
                push(memory[loc])
            else:
                push(None)
        elif name in ("CALLDATACOPY", "CODECOPY", "RETURNDATACOPY"):
            dest, _src, length = pop(), pop(), pop()
            if dest is not None and length is not None:
                end = min(dest + length, _MEMORY_LIMIT)
                word = dest - dest % 32
                while word < end and len(memory) < _MAX_MEMORY_WORDS:
                    memory[word] = None
                    word += 32
        elif name == "RETURN":
            offset, length = pop(), pop()
            return (ins.pc, offset, length, memory)
        elif op.pops == 2 and op.pushes == 1:
            a, b = pop(), pop()
            push(_fold(name, a, b))
        else:
            for _ in range(op.pops):
                pop()
            for _ in range(op.pushes):
                push(None)
    return None


def _return_sites(rcfg: ResolvedCFG) -> Dict[int, _Site]:
    """block start -> RETURN site, simulated once for the contract."""
    sites: Dict[int, _Site] = {}
    for start, block in rcfg.blocks.items():
        if any(ins.op.name == "RETURN" for ins in block.instructions):
            site = _block_site(block)
            if site is not None:
                sites[start] = site
    return sites


def _site_shape(
    offset: Optional[int], length: Optional[int], memory: Dict[int, Optional[int]]
) -> Optional[Tuple[str, ...]]:
    """The head/tail skeleton of one RETURN site, or ``None``."""
    if offset is None or length is None:
        return None
    if length == 0:
        return ()
    if length % 32 or length // 32 > _MAX_WORDS:
        return None
    boundary = length
    words: List[str] = []
    index = 0
    while index * 32 < boundary:
        value = memory.get(offset + 32 * index)
        if (
            value is not None
            and 32 <= value < length
            and value % 32 == 0
            and value > index * 32
        ):
            # A plausible dynamic-tail offset; the word it points at
            # must hold a length that fits inside the buffer.
            tail_length = memory.get(offset + value)
            if tail_length is None:
                return None
            padded = (tail_length + 31) // 32 * 32
            if value + 32 + padded > length:
                return None
            words.append("bytes")
            boundary = min(boundary, value)
        else:
            words.append("uint256")
        index += 1
    return tuple(words)


def _function_returns(
    function: ReachableFunction, sites_by_block: Dict[int, _Site]
) -> FunctionReturns:
    selector = function.selector
    if not function.complete:
        return FunctionReturns(selector=selector, shape=None)
    if "RETURN" not in function.ops:
        # Every path halts via STOP/REVERT: provably no outputs.
        return FunctionReturns(selector=selector, shape=())
    sites = sorted(
        sites_by_block[start]
        for start in function.blocks
        if start in sites_by_block
    )
    if not sites:
        # RETURN appears in the region but no site was recoverable —
        # report unknown rather than claiming "no outputs".
        return FunctionReturns(selector=selector, shape=None)
    shapes = {
        _site_shape(offset, length, memory)
        for _pc, offset, length, memory in sites
    }
    pcs = tuple(sorted({pc for pc, _o, _l, _m in sites}))
    if len(shapes) != 1 or None in shapes:
        return FunctionReturns(selector=selector, shape=None, sites=pcs)
    return FunctionReturns(selector=selector, shape=shapes.pop(), sites=pcs)


def recover_returns(
    rcfg: ResolvedCFG,
    dispatcher: DispatcherReport,
    reach: ReachabilityReport,
) -> ReturnsReport:
    """Recover every dispatched function's output skeleton."""
    sites_by_block = _return_sites(rcfg)
    return ReturnsReport(functions={
        selector: _function_returns(function, sites_by_block)
        for selector, function in reach.functions.items()
    })
