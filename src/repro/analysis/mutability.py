"""State-mutability classification from reachable ops and the
``CALLVALUE``-guard prologue idiom.

Solidity marks every non-``payable`` function with a prologue that
rejects attached value::

    CALLVALUE DUP1 ISZERO PUSH <ok> JUMPI
    PUSH1 0 DUP1 REVERT
    <ok>: JUMPDEST POP

(older compilers and optimizers emit the inverted form ``CALLVALUE
PUSH <revert> JUMPI`` jumping straight into a shared revert block).
The *idiom* is what matters, not the mere presence of ``CALLVALUE``:
a payable function may read ``msg.value`` without branching on it, so
this pass only reports ``nonpayable`` when it finds a ``JUMPI`` in the
function's entry block whose condition derives from ``CALLVALUE`` and
whose rejecting side provably reverts.

On top of payability, the reachable-op set from the reachability pass
refines the verdict exactly the way the ABI defines it:

* no reachable state-*mutating* op (``SSTORE``/``LOG*``/``CALL``
  family/``CREATE*``/``SELFDESTRUCT``) -> ``view``;
* additionally no state-*reading* op (``SLOAD``/``BALANCE``/
  ``EXTCODE*``/...) -> ``pure``.

Safety valve: when the function's region is not complete (unresolved
jumps, truncated fixpoint), the verdict is ``"unknown"`` — reachable
ops are a lower bound there, and claiming ``view`` off a lower bound
would be a guess.  Consumers that must emit a standard ABI degrade
``"unknown"`` to ``"nonpayable"``, the weakest claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.dataflow import ResolvedCFG
from repro.analysis.dispatcher import DispatcherReport
from repro.analysis.reachability import ReachabilityReport, ReachableFunction

#: Ops whose reachability forbids ``view`` (they mutate chain state).
MUTATING_OPS = frozenset([
    "SSTORE", "LOG0", "LOG1", "LOG2", "LOG3", "LOG4",
    "CALL", "CALLCODE", "DELEGATECALL",
    "CREATE", "CREATE2", "SELFDESTRUCT",
])

#: Ops whose reachability forbids ``pure`` (they read chain state).
#: ``CALLVALUE`` is deliberately absent: the non-payable guard itself
#: reads it, including in ``pure`` functions.
STATE_READ_OPS = frozenset([
    "SLOAD", "BALANCE", "SELFBALANCE",
    "EXTCODESIZE", "EXTCODECOPY", "EXTCODEHASH",
    "BLOCKHASH", "STATICCALL",
])

_STACK_LIMIT = 32


@dataclass
class MutabilityReport:
    """selector -> ``payable``/``nonpayable``/``view``/``pure``/``unknown``."""

    functions: Dict[int, str]

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for verdict in self.functions.values():
            totals[verdict] = totals.get(verdict, 0) + 1
        return totals


def _always_reverts(rcfg: ResolvedCFG, start: int) -> bool:
    """Entering the block at ``start`` always throws."""
    block = rcfg.blocks.get(start)
    return block is not None and block.terminator.op.name in (
        "REVERT", "INVALID"
    )


def _entry_has_guard(rcfg: ResolvedCFG, function: ReachableFunction) -> bool:
    """The function's entry block ends in a value-rejecting ``JUMPI``.

    A tiny within-block token walk tracks which stack slots hold a
    ``CALLVALUE``-derived word and how many ``ISZERO``s inverted it;
    everything else is opaque.  When the terminating ``JUMPI``'s
    condition is value-derived, the *rejecting* side (the fallthrough
    for the ``ISZERO`` form, the jump targets for the raw form) must
    provably revert for this to count as a guard.
    """
    block = rcfg.blocks.get(function.entry)
    if block is None:
        return False

    # Stack of Optional[(tag, inverted)] tokens; None = opaque.
    stack: List[Optional[Tuple[str, bool]]] = []

    def pop() -> Optional[Tuple[str, bool]]:
        return stack.pop(0) if stack else None

    def push(token: Optional[Tuple[str, bool]]) -> None:
        stack.insert(0, token)
        del stack[_STACK_LIMIT:]

    for ins in block.instructions:
        op = ins.op
        name = op.name
        if name == "CALLVALUE":
            push(("cv", False))
        elif name == "ISZERO":
            token = pop()
            push(("cv", not token[1]) if token else None)
        elif op.is_push:
            push(None)
        elif op.is_dup:
            depth = op.code - 0x7F
            push(stack[depth - 1] if depth <= len(stack) else None)
        elif op.is_swap:
            depth = op.code - 0x8F
            while len(stack) < depth + 1:
                stack.append(None)
            stack[0], stack[depth] = stack[depth], stack[0]
        elif name == "JUMPI":
            pop()  # the target
            condition = pop()
            if condition is None:
                return False
            inverted = condition[1]
            if inverted:
                # Jump taken when CALLVALUE == 0: falling through is
                # the rejecting side.
                return _always_reverts(rcfg, ins.pc + 1)
            # Raw CALLVALUE condition: the jump itself rejects.
            targets = rcfg.resolved_targets.get(ins.pc, frozenset())
            if not targets:
                # All-invalid targets: taking the jump always throws.
                return ins.pc in rcfg.invalid_targets
            return all(_always_reverts(rcfg, t) for t in targets)
        else:
            for _ in range(op.pops):
                pop()
            for _ in range(op.pushes):
                push(None)
    return False


def _classify(rcfg: ResolvedCFG, function: ReachableFunction) -> str:
    if not function.complete:
        return "unknown"
    if not _entry_has_guard(rcfg, function):
        return "payable"
    if function.ops & MUTATING_OPS:
        return "nonpayable"
    if function.ops & STATE_READ_OPS:
        return "view"
    return "pure"


def classify_mutability(
    rcfg: ResolvedCFG,
    dispatcher: DispatcherReport,
    reach: ReachabilityReport,
) -> MutabilityReport:
    """Classify every dispatched function's state mutability."""
    return MutabilityReport(functions={
        selector: _classify(rcfg, function)
        for selector, function in reach.functions.items()
    })
