"""Storage-layout recovery: slot/offset/type from SLOAD/SSTORE shapes.

Calldata signatures describe a contract's *inputs*; its persistent
state lives in the 2^256-slot storage array, addressed by compiler-
fixed layout rules ("Precise Static Identification of Ethereum Storage
Variables", PAPERS.md):

* plain variables sit at small constant slots, several small ones
  *packed* into one slot and extracted with shift+mask idioms
  (``SHR k`` / ``DIV 2^k`` followed by ``AND (2^m - 1)``);
* a mapping's values live at ``keccak256(key . slot)`` — the compiler
  stores the key at scratch memory 0x00 and the declaration slot at
  0x20, then hashes 0x40 bytes (nested mappings chain the pattern,
  hashing the previous hash as the new slot);
* a dynamic array keeps its length at the declaration slot and its
  data from ``keccak256(slot)`` upward (``SHA3`` over 0x20 bytes),
  elements addressed base-plus-index.

This pass walks the resolved CFG (the jump-resolution product the
pipeline already computes) with a small token domain — constants,
environment values, hash-derived slot expressions, and tagged storage
words — plus an abstract scratch memory for constant-offset ``MSTORE``s
below 0x60, which is exactly the region solc's hashing idiom uses.
Every ``SLOAD``/``SSTORE`` site is recorded with its resolved slot
expression (or counted as unresolved), shift/mask refinements on loaded
words become packed sub-slot fields, and the fold classifies each root
slot as a value variable, a mapping (with nesting depth and key tags),
or a dynamic array.

Soundness posture: like the dispatcher walk this is a *recognizer*, not
a verifier — an unrecognized shape degrades to an unresolved access,
never a wrong variable.  The one deliberate heuristic: ``MSTORE``s at
unknown offsets do not clobber the tracked scratch region (solc's free
memory pointer starts at 0x80, so computed stores never alias the
hashing scratch); hand-written assembly violating that convention can
at worst mislabel a mapping's key tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataflow import ResolvedCFG
from repro.analysis.dispatcher import DispatcherReport

_MASK = (1 << 256) - 1

# Token kinds.
_CONST = "c"
_ENV = "env"  # CALLER / ORIGIN / ADDRESS — address-typed environment
_HASH = "h"  # a hash-derived slot expression (see expr grammar below)
_SVAL = "sv"  # a word loaded from storage: ("sv", access id, shift bits)
_UNKNOWN = "?"

_Token = Tuple

# Slot-expression grammar (nested tuples, innermost = declaration slot):
#   ("const", n)                      a constant slot
#   ("map", keytag, inner)            keccak(key . inner); keytag is
#                                     "address" or "word"
#   ("arr", inner)                    keccak(inner): dynamic-array data
#   ("elt", inner)                    inner + offset (array element /
#                                     struct member past the hash)
_EXPR_DEPTH_LIMIT = 6

#: Environment opcodes that push a 160-bit address-typed word.
_ADDRESS_ENVS = frozenset(["CALLER", "ORIGIN", "ADDRESS", "COINBASE"])

#: Re-walk budget per block; dispatcher-style loops are bounded, this
#: only guards crafted cyclic storage code.
_MAX_VISITS = 24
_MAX_STACK = 24
#: Scratch memory offsets tracked for the keccak idiom (solc hashes
#: from 0x00; 0x40/0x50 appear in some layouts).
_SCRATCH_LIMIT = 0x60


@dataclass(frozen=True)
class StorageAccess:
    """One classified SLOAD/SSTORE site."""

    pc: int
    op: str  # "load" | "store"
    expr: Optional[Tuple]  # slot expression, or None when unresolved


@dataclass(frozen=True)
class StorageVariable:
    """One recovered storage variable (or packed sub-slot field)."""

    slot: int
    offset: int  # byte offset inside the slot (packed fields)
    width: int  # bytes; 32 for whole-slot variables
    kind: str  # "value" | "mapping" | "dynamic_array"
    type: str  # rendered solidity-style type
    depth: int = 0  # mapping nesting depth
    reads: int = 0  # distinct SLOAD sites touching this root slot
    writes: int = 0  # distinct SSTORE sites touching this root slot
    selectors: Tuple[int, ...] = ()  # functions whose region touches it

    def render(self) -> str:
        sel = ""
        if self.selectors:
            sel = "  [" + ", ".join(f"0x{s:08x}" for s in self.selectors) + "]"
        where = f"slot {self.slot}"
        if self.kind == "value" and self.width != 32:
            where += f" bytes {self.offset}..{self.offset + self.width - 1}"
        return (
            f"{where}: {self.type}  "
            f"({self.reads} reads, {self.writes} writes){sel}"
        )

    def to_dict(self) -> dict:
        return {
            "slot": self.slot,
            "offset": self.offset,
            "width": self.width,
            "kind": self.kind,
            "type": self.type,
            "depth": self.depth,
            "reads": self.reads,
            "writes": self.writes,
            "selectors": [f"0x{s:08x}" for s in self.selectors],
        }


@dataclass
class StorageLayout:
    """The recovered layout: variables plus access accounting."""

    variables: Tuple[StorageVariable, ...] = ()
    accesses: Tuple[StorageAccess, ...] = ()
    #: Distinct SLOAD/SSTORE pcs whose slot stayed unrecognized.
    unresolved: int = 0

    @property
    def resolved(self) -> int:
        return sum(1 for access in self.accesses if access.expr is not None)

    def variables_at(self, slot: int) -> Tuple[StorageVariable, ...]:
        return tuple(v for v in self.variables if v.slot == slot)

    def to_dict(self) -> dict:
        return {
            "variables": [v.to_dict() for v in self.variables],
            "access_sites": len(self.accesses),
            "resolved_sites": self.resolved,
            "unresolved_sites": self.unresolved,
        }

    def render_text(self) -> str:
        if not self.variables and not self.accesses and not self.unresolved:
            return "storage: none"
        lines = [
            f"storage: {len(self.variables)} variable(s), "
            f"{self.resolved}/{self.resolved + self.unresolved} "
            "access sites resolved"
        ]
        for variable in self.variables:
            lines.append("  " + variable.render())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The abstract walk.


def _unknown() -> _Token:
    return (_UNKNOWN,)


def _is_const(token: _Token, value: Optional[int] = None) -> bool:
    return token[0] == _CONST and (value is None or token[1] == value)


def _expr_depth(expr: Tuple) -> int:
    depth = 0
    while expr[0] != "const":
        depth += 1
        expr = expr[-1]
    return depth


def _low_mask_bits(value: int) -> Optional[int]:
    """``value == 2^m - 1`` -> m (byte-aligned only), else None."""
    bits = value.bit_length()
    if value and value == (1 << bits) - 1 and bits % 8 == 0:
        return bits
    return None


class _Walk:
    """One storage walk over a resolved CFG."""

    def __init__(self, rcfg: ResolvedCFG) -> None:
        self.rcfg = rcfg
        # (pc, op, expr-or-None), deduplicated: revisit order and count
        # must not perturb the layout (determinism under any schedule).
        self.sites: Set[Tuple[int, str, Optional[Tuple]]] = set()
        # access id -> (pc, slot) for loaded-word field refinement.
        self.loads: List[Tuple[int, int]] = []
        # (slot, offset bytes, width bytes, signed) field observations.
        self.fields: Set[Tuple[int, int, int, bool]] = set()

    # -- token helpers -------------------------------------------------

    def _record(self, pc: int, op: str, expr: Optional[Tuple]) -> None:
        self.sites.add((pc, op, expr))

    def _field(self, access_id: int, shift_bits: int, mask_bits: int,
               signed: bool = False) -> None:
        if shift_bits % 8 or shift_bits >= 256:
            return
        _pc, slot = self.loads[access_id]
        self.fields.add((slot, shift_bits // 8, mask_bits // 8, signed))

    def _binop(self, name: str, a: _Token, b: _Token) -> _Token:
        """a = stack top (popped first), b = next — EVM operand order."""
        if _is_const(a) and _is_const(b):
            va, vb = a[1], b[1]
            if name == "ADD":
                return (_CONST, (va + vb) & _MASK)
            if name == "SUB":
                return (_CONST, (va - vb) & _MASK)
            if name == "MUL":
                return (_CONST, (va * vb) & _MASK)
            if name == "AND":
                return (_CONST, va & vb)
            if name == "OR":
                return (_CONST, va | vb)
            if name == "SHL":
                return (_CONST, (vb << va) & _MASK if va < 256 else 0)
            if name == "SHR":
                return (_CONST, vb >> va if va < 256 else 0)
            return _unknown()
        if name == "ADD":
            for x, y in ((a, b), (b, a)):
                if x[0] == _HASH:
                    inner = x[1]
                    if inner[0] == "elt":  # keep elt chains flat
                        return x
                    if _expr_depth(inner) >= _EXPR_DEPTH_LIMIT:
                        return _unknown()
                    return (_HASH, ("elt", inner))
            return _unknown()
        if name in ("SHR", "DIV") and b[0] == _SVAL:
            # SHR(k, sv) or DIV(sv, 2^k): a is the shift/divisor...
            # operand order differs: SHR pops shift first, DIV pops the
            # numerator first.
            return _unknown()
        return _unknown()

    # -- the per-block transfer ---------------------------------------

    def walk_block(
        self, block, stack: List[_Token], memory: Dict[int, _Token]
    ) -> None:
        """Execute one block in place over (stack, memory)."""

        def pop() -> _Token:
            return stack.pop(0) if stack else _unknown()

        def push(token: _Token) -> None:
            stack.insert(0, token)
            del stack[_MAX_STACK:]

        for ins in block.instructions:
            op = ins.op
            name = op.name
            if op.is_push:
                push((_CONST, ins.operand or 0))
            elif op.is_dup:
                depth = op.code - 0x7F
                push(stack[depth - 1] if depth <= len(stack) else _unknown())
            elif op.is_swap:
                depth = op.code - 0x8F
                while len(stack) < depth + 1:
                    stack.append(_unknown())
                stack[0], stack[depth] = stack[depth], stack[0]
            elif name in _ADDRESS_ENVS:
                push((_ENV, name))
            elif name == "SLOAD":
                slot = pop()
                if _is_const(slot):
                    access_id = len(self.loads)
                    self.loads.append((ins.pc, slot[1]))
                    self._record(ins.pc, "load", ("const", slot[1]))
                    push((_SVAL, access_id, 0))
                elif slot[0] == _HASH:
                    self._record(ins.pc, "load", slot[1])
                    push(_unknown())
                else:
                    self._record(ins.pc, "load", None)
                    push(_unknown())
            elif name == "SSTORE":
                slot = pop()
                pop()  # the stored value
                if _is_const(slot):
                    self._record(ins.pc, "store", ("const", slot[1]))
                elif slot[0] == _HASH:
                    self._record(ins.pc, "store", slot[1])
                else:
                    self._record(ins.pc, "store", None)
            elif name == "MSTORE":
                loc, value = pop(), pop()
                if _is_const(loc) and loc[1] < _SCRATCH_LIMIT:
                    memory[loc[1]] = value
                # Unknown/high offsets: scratch survives (see module doc).
            elif name == "SHA3":
                offset, length = pop(), pop()
                push(self._sha3(offset, length, memory))
            elif name == "AND":
                a, b = pop(), pop()
                push(self._and(a, b))
            elif name in ("SHR", "DIV"):
                a, b = pop(), pop()
                if name == "SHR" and _is_const(a) and b[0] == _SVAL:
                    push((_SVAL, b[1], b[2] + a[1]))
                elif name == "DIV" and a[0] == _SVAL and _is_const(b):
                    shift = b[1].bit_length() - 1
                    if b[1] == 1 << shift:
                        push((_SVAL, a[1], a[2] + shift))
                    else:
                        push(_unknown())
                else:
                    push(self._binop(name, a, b))
            elif name == "SIGNEXTEND":
                a, b = pop(), pop()
                if _is_const(a) and b[0] == _SVAL and a[1] < 32:
                    self._field(b[1], b[2], 8 * (a[1] + 1), signed=True)
                    push(b)
                else:
                    push(_unknown())
            elif name == "JUMP":
                pop()
            elif name == "JUMPI":
                pop()
                pop()
            elif op.pops == 2 and op.pushes == 1:
                a, b = pop(), pop()
                push(self._binop(name, a, b))
            else:
                for _ in range(op.pops):
                    pop()
                for _ in range(op.pushes):
                    push(_unknown())

    def _and(self, a: _Token, b: _Token) -> _Token:
        for value, mask in ((a, b), (b, a)):
            if value[0] == _SVAL and _is_const(mask):
                bits = _low_mask_bits(mask[1])
                if bits is not None:
                    # shift-then-mask: a packed field read.
                    self._field(value[1], value[2], bits)
                    return value
                # Read-modify-write clear mask: ~mask is a contiguous
                # byte-aligned field — the write side of a packed slot.
                hole = (~mask[1]) & _MASK
                if hole:
                    low = (hole & -hole).bit_length() - 1
                    width = hole.bit_length() - low
                    if (
                        hole == ((1 << width) - 1) << low
                        and low % 8 == 0 and width % 8 == 0
                    ):
                        _pc, slot = self.loads[value[1]]
                        self.fields.add((slot, low // 8, width // 8, False))
                    return (_SVAL, value[1], value[2])
                return _unknown()
        return self._binop("AND", a, b)

    def _sha3(
        self, offset: _Token, length: _Token, memory: Dict[int, _Token]
    ) -> _Token:
        if not (_is_const(offset) and _is_const(length)):
            return _unknown()
        base = offset[1]
        if length[1] == 0x40:
            key = memory.get(base, _unknown())
            slot_source = memory.get(base + 0x20, _unknown())
            inner: Optional[Tuple] = None
            if _is_const(slot_source):
                inner = ("const", slot_source[1])
            elif slot_source[0] == _HASH:
                inner = slot_source[1]
            if inner is None or _expr_depth(inner) >= _EXPR_DEPTH_LIMIT:
                return _unknown()
            keytag = "address" if key[0] == _ENV else "word"
            return (_HASH, ("map", keytag, inner))
        if length[1] == 0x20:
            base_token = memory.get(base, _unknown())
            if _is_const(base_token):
                return (_HASH, ("arr", ("const", base_token[1])))
            if base_token[0] == _HASH:
                inner = base_token[1]
                if _expr_depth(inner) >= _EXPR_DEPTH_LIMIT:
                    return _unknown()
                return (_HASH, ("arr", inner))
        return _unknown()


def _root_slot(expr: Tuple) -> Optional[int]:
    """The declaration slot at the bottom of a slot expression."""
    while expr[0] != "const":
        expr = expr[-1]
    return expr[1]


def _classify(expr: Tuple) -> Tuple[str, int, Tuple[str, ...]]:
    """(kind, mapping depth, key tags outermost-first) of an expression."""
    depth = 0
    keytags: List[str] = []
    is_array = False
    node = expr
    while node[0] != "const":
        if node[0] == "map":
            depth += 1
            keytags.append(node[1])
        elif node[0] == "arr":
            is_array = True
        node = node[-1]
    if depth:
        return "mapping", depth, tuple(keytags)
    if is_array:
        return "dynamic_array", 0, ()
    return "value", 0, ()


def _value_type(width: int, signed: bool) -> str:
    if signed:
        return f"int{width * 8}"
    if width == 32:
        return "uint256"
    if width == 20:
        return "address"
    if width == 1:
        return "uint8"
    return f"uint{width * 8}"


def _mapping_type(keytags: Tuple[str, ...]) -> str:
    rendered = "uint256"
    for tag in reversed(keytags):
        key = "address" if tag == "address" else "uint256"
        rendered = f"mapping({key} => {rendered})"
    return rendered


def recover_storage_layout(
    rcfg: ResolvedCFG, dispatcher: Optional[DispatcherReport] = None
) -> StorageLayout:
    """Recover the storage layout from a resolved CFG.

    ``dispatcher`` (when available) attributes each variable to the
    selectors whose statically reachable region touches it.
    """
    walk = _Walk(rcfg)
    blocks = rcfg.blocks
    if rcfg.entry in blocks:
        visits: Dict[int, int] = {}
        initial = (rcfg.entry, (), ())
        work: List[Tuple[int, Tuple, Tuple]] = [initial]
        seen: Set[Tuple[int, Tuple, Tuple]] = {initial}
        while work:
            start, stack_state, memory_state = work.pop()
            block = blocks.get(start)
            if block is None:
                continue
            count = visits.get(start, 0) + 1
            if count > _MAX_VISITS:
                continue
            visits[start] = count
            stack = list(stack_state)
            memory = dict(memory_state)
            walk.walk_block(block, stack, memory)
            out_stack = tuple(stack)
            out_memory = tuple(sorted(memory.items()))
            for successor in sorted(rcfg.successors.get(start, ())):
                state = (successor, out_stack, out_memory)
                if successor in blocks and state not in seen:
                    seen.add(state)
                    work.append(state)

    accesses = tuple(
        StorageAccess(pc, op, expr)
        for pc, op, expr in sorted(
            walk.sites, key=lambda site: (site[0], site[1], repr(site[2]))
        )
    )
    unresolved = len({a.pc for a in accesses if a.expr is None})

    # -- fold sites into per-root-slot variables -----------------------
    by_root: Dict[int, List[StorageAccess]] = {}
    for access in accesses:
        if access.expr is None:
            continue
        root = _root_slot(access.expr)
        if root is None:
            continue
        by_root.setdefault(root, []).append(access)

    selector_of_pc = _selector_index(rcfg, dispatcher) if dispatcher else {}

    variables: List[StorageVariable] = []
    for root in sorted(by_root):
        root_accesses = by_root[root]
        reads = len({a.pc for a in root_accesses if a.op == "load"})
        writes = len({a.pc for a in root_accesses if a.op == "store"})
        selectors = tuple(sorted({
            selector
            for access in root_accesses
            for selector in selector_of_pc.get(access.pc, ())
        }))
        kinds = [_classify(a.expr) for a in root_accesses]
        map_depth = max((depth for _k, depth, _t in kinds), default=0)
        if map_depth:
            keytags = max(
                (tags for _k, depth, tags in kinds if depth == map_depth),
                key=len,
                default=(),
            )
            variables.append(StorageVariable(
                slot=root, offset=0, width=32, kind="mapping",
                type=_mapping_type(keytags), depth=map_depth,
                reads=reads, writes=writes, selectors=selectors,
            ))
            continue
        if any(kind == "dynamic_array" for kind, _d, _t in kinds):
            # Direct loads/stores of the root slot are the length word.
            variables.append(StorageVariable(
                slot=root, offset=0, width=32, kind="dynamic_array",
                type="uint256[]", reads=reads, writes=writes,
                selectors=selectors,
            ))
            continue
        fields = sorted(
            (offset, width, signed)
            for slot, offset, width, signed in walk.fields
            if slot == root
        )
        if not fields:
            variables.append(StorageVariable(
                slot=root, offset=0, width=32, kind="value",
                type="uint256", reads=reads, writes=writes,
                selectors=selectors,
            ))
            continue
        # Packed slot: one variable per distinct (offset, width); a
        # signed observation wins over an unsigned one at the same spot.
        merged: Dict[Tuple[int, int], bool] = {}
        for offset, width, signed in fields:
            merged[(offset, width)] = merged.get((offset, width), False) or signed
        for (offset, width), signed in sorted(merged.items()):
            variables.append(StorageVariable(
                slot=root, offset=offset, width=width, kind="value",
                type=_value_type(width, signed),
                reads=reads, writes=writes, selectors=selectors,
            ))

    return StorageLayout(
        variables=tuple(variables), accesses=accesses, unresolved=unresolved
    )


def _selector_index(
    rcfg: ResolvedCFG, dispatcher: DispatcherReport
) -> Dict[int, Tuple[int, ...]]:
    """pc -> selectors whose region contains that pc's block."""
    block_of_pc: Dict[int, int] = {}
    for start, block in rcfg.blocks.items():
        for ins in block.instructions:
            block_of_pc[ins.pc] = start
    selectors_of_block: Dict[int, Set[int]] = {}
    for selector, region in dispatcher.regions.items():
        for start in region:
            selectors_of_block.setdefault(start, set()).add(selector)
    return {
        pc: tuple(sorted(selectors_of_block.get(start, ())))
        for pc, start in block_of_pc.items()
    }
