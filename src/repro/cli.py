"""Command-line interface: ``python -m repro <command>``.

Commands
--------

recover   Recover function signatures from runtime bytecode (hex).
batch     Recover many contracts (parallel workers + persistent cache);
          ``--metrics-out``/``--trace-out`` capture telemetry,
          ``--ledger-out``/``--slowlog-out``/``--profile-hotspots`` the
          deep-observability payloads, and ``--serve-metrics PORT``
          exposes live ``/metrics`` + ``/healthz`` + ``/ledger/summary``
          while the batch runs.
stats     Render a ``--metrics-out`` document for humans (top rules,
          prune/cache ratios, slowest contracts; ``--prometheus`` for
          the text exposition).
report    One document over every telemetry source: phase-time
          attribution, tier hit rates, hotspots, slowest exemplars and
          the perf-history trajectory (``--json`` for machines).
serve-metrics
          Standalone telemetry endpoint over saved ``--metrics-out`` /
          ``--ledger-out`` documents.
ids       Extract function ids only (static scan).
disasm    Disassemble runtime bytecode.
lint      Statically verify bytecode: stack discipline, jump targets,
          dispatcher sanity (text or ``--json``).
inspect   Show the static analysis of a contract: the selector → entry
          map, per-function regions and an annotated disassembly.
profile   Emit the unified contract profile: recovered signatures,
          storage layout, dispatcher/CFG/lint facts — deterministic
          JSON with ``--json``.
abi       Emit a standard Solidity ABI JSON array recovered from the
          bytecode alone (inputs, outputs, stateMutability).
passes    List the registered analysis pipeline passes with versions
          and dependency edges (what the cache fingerprints fold in).
lift      Lift bytecode to three-address IR; ``--plus`` enhances the IR
          with recovered signatures (Erays+).
check     Validate a transaction's call data against the signatures
          recovered from the contract (ParChecker).
selector  Compute the 4-byte function id of a canonical signature.

Bytecode arguments accept a hex string (with or without ``0x``) or
``@path`` to read a hex file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.erays import Erays, EraysPlus
from repro.apps.parchecker import ParChecker
from repro.evm.disasm import disassemble, format_listing
from repro.evm.keccak import selector as compute_selector
from repro.sigrec.api import SigRec
from repro.sigrec.selectors import extract_selectors


def _read_hex(argument: str) -> bytes:
    if argument.startswith("@"):
        with open(argument[1:]) as handle:
            argument = handle.read().strip()
    argument = argument.strip()
    if argument.startswith(("0x", "0X")):
        argument = argument[2:]
    try:
        return bytes.fromhex(argument)
    except ValueError as exc:
        raise SystemExit(f"error: not valid hex bytecode: {exc}")


def _cmd_recover(args: argparse.Namespace) -> int:
    bytecode = _read_hex(args.bytecode)
    tool = SigRec()
    recovered = tool.recover(bytecode)
    if not recovered:
        print("no public/external functions found")
        return 1
    database = None
    if args.db:
        from repro.baselines.efsd import SignatureDatabase

        database = SignatureDatabase.load(args.db)
    for sig in recovered:
        line = f"{sig.selector_hex}({sig.param_list})"
        if database is not None:
            known = database.lookup(sig.selector)
            if known is not None:
                name = known[: known.index("(")]
                marker = "" if known.endswith(f"({sig.param_list})") else "  ! types differ from DB"
                line = f"{sig.selector_hex} {name}({sig.param_list}){marker}"
        if args.verbose:
            confidence = "/".join(sig.confidences) or "-"
            line += (
                f"   [{sig.language}; confidence: {confidence}; "
                f"rules: {', '.join(sig.fired_rules)}]"
            )
        print(line)
    return 0


def _read_batch_source(source: str) -> List[bytes]:
    """Bytecodes from a line-per-contract hex file or a dir of .hex files."""
    import os

    paths: List[str]
    if os.path.isdir(source):
        paths = sorted(
            os.path.join(source, name)
            for name in os.listdir(source)
            if name.endswith(".hex")
        )
        if not paths:
            raise SystemExit(f"error: no .hex files in {source}")
        return [_read_hex(f"@{path}") for path in paths]
    bytecodes: List[bytes] = []
    try:
        handle = open(source)
    except OSError as exc:
        raise SystemExit(f"error: cannot read {source}: {exc}")
    with handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith(("0x", "0X")):
                line = line[2:]
            try:
                bytecodes.append(bytes.fromhex(line))
            except ValueError as exc:
                raise SystemExit(
                    f"error: {source}:{line_no}: not valid hex bytecode: {exc}"
                )
    if not bytecodes:
        raise SystemExit(f"error: no bytecodes in {source}")
    return bytecodes


def _cmd_batch(args: argparse.Namespace) -> int:
    import os

    from repro.sigrec.batch import DEFAULT_UNIT_SIZE, BatchRecovery

    if args.cache_dir and os.path.exists(args.cache_dir) and not os.path.isdir(
        args.cache_dir
    ):
        raise SystemExit(f"error: --cache-dir {args.cache_dir} is not a directory")
    bytecodes = _read_batch_source(args.source)
    metrics = tracer = trace_file = ledger = profiler = slowlog = None
    server = None
    if args.metrics_out or args.serve_metrics is not None:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    if args.trace_out:
        from repro.obs import SpanTracer

        trace_file = open(args.trace_out, "w", encoding="utf-8")
        tracer = SpanTracer(trace_file)
    if args.ledger_out or args.serve_metrics is not None:
        from repro.obs import RunLedger

        # ``--serve-metrics`` without ``--ledger-out`` keeps the ledger
        # in memory purely for the ``/ledger/summary`` endpoint.
        ledger = RunLedger(args.ledger_out or None)
    if args.profile_hotspots:
        from repro.obs import HotLoopProfiler

        profiler = HotLoopProfiler(mode=args.profile_hotspots)
    if args.slowlog_out:
        from repro.obs import SlowLog

        slowlog = SlowLog(k=args.slowlog_k)
    try:
        tool = SigRec(
            prune=args.prune,
            sharded=args.shard,
            memo=args.memo,
            inference_memo=args.inference_memo,
            metrics=metrics,
            tracer=tracer,
            ledger=ledger,
            profiler=profiler,
        )
        runner = BatchRecovery(
            tool=tool,
            workers=args.workers,
            cache_dir=args.cache_dir,
            unit_size=(
                args.unit_size
                if args.unit_size is not None
                else DEFAULT_UNIT_SIZE
            ),
            slowlog=slowlog,
        )
        if args.serve_metrics is not None:
            from repro.obs.httpexp import TelemetryServer

            server = TelemetryServer(
                registry=metrics, ledger=ledger, port=args.serve_metrics
            ).start()
            print(f"serving telemetry on {server.url()}", file=sys.stderr)
        if args.profiles_out:
            # profile_all runs recover_all internally (cache-backed),
            # then builds one deterministic profile per input.
            profiles = runner.profile_all(bytecodes)
        else:
            profiles = None
            results = runner.recover_all(bytecodes)
        if server is not None and args.serve_hold > 0:
            import time

            print(
                f"holding the endpoint for {args.serve_hold:g}s",
                file=sys.stderr,
            )
            time.sleep(args.serve_hold)
    finally:
        if server is not None:
            server.stop()
        if tracer is not None:
            tracer.close()
            trace_file.close()
    if profiles is not None:
        for index, profile in enumerate(profiles):
            signatures = " ".join(
                f"{fact['selector']}({','.join(fact['param_types'])})"
                for fact in profile.signatures
            )
            print(
                f"contract {index}: {signatures or '(no public functions)'}"
            )
    else:
        for index, recovered in enumerate(results):
            signatures = " ".join(
                f"{sig.selector_hex}({sig.param_list})" for sig in recovered
            )
            print(f"contract {index}: {signatures or '(no public functions)'}")
    if profiles is not None:
        os.makedirs(args.profiles_out, exist_ok=True)
        for index, profile in enumerate(profiles):
            name = f"{index:04d}_{profile.bytecode_sha256[:12]}.json"
            path = os.path.join(args.profiles_out, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(profile.to_json(indent=2))
                handle.write("\n")
        print(
            f"profiles: wrote {len(profiles)} to {args.profiles_out}",
            file=sys.stderr,
        )
    if args.metrics_out:
        from repro.obs import dump_metrics

        # Merge-on-write: counters accumulate across runs (a cold run's
        # misses and the warm rerun's hits share one document); delete
        # the file to start fresh.
        dump_metrics(metrics, args.metrics_out)
        print(f"metrics: {args.metrics_out}", file=sys.stderr)
    if args.ledger_out:
        print(
            f"ledger: {args.ledger_out} ({ledger.written} records)",
            file=sys.stderr,
        )
    if args.slowlog_out:
        slowlog.dump(args.slowlog_out)
        print(f"slowlog: {args.slowlog_out}", file=sys.stderr)
    if profiler is not None:
        sys.stderr.write(profiler.render_table())
    if args.time:
        print(f"batch: {runner.stats.summary()}", file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Render a metrics document (and optional trace) for humans."""
    from repro.obs import load_metrics, read_trace, render_prometheus, render_stats

    doc = load_metrics(args.metrics)
    if doc is None:
        raise SystemExit(f"error: {args.metrics} is not a metrics document")
    if args.prometheus:
        sys.stdout.write(render_prometheus(doc))
        return 0
    trace_records = read_trace(args.trace) if args.trace else None
    sys.stdout.write(render_stats(doc, trace_records, top=args.top))
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    """Standalone telemetry endpoint over saved documents."""
    from repro.obs.httpexp import TelemetryServer

    if not args.metrics and not args.ledger:
        raise SystemExit("error: need --metrics and/or --ledger to serve")
    server = TelemetryServer(
        metrics_path=args.metrics,
        ledger_path=args.ledger,
        host=args.host,
        port=args.port,
    )
    print(f"serving telemetry on {server.url()}", file=sys.stderr)
    if args.hold is not None:
        import time

        server.start()
        time.sleep(args.hold)
        server.stop()
        return 0
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """One document over every telemetry source this run produced."""
    import json

    from repro.obs import load_metrics
    from repro.obs.report import (
        build_report,
        perf_history_section,
        render_report,
    )

    metrics_doc = ledger_records = slowlog = perf = None
    if args.metrics:
        metrics_doc = load_metrics(args.metrics)
        if metrics_doc is None:
            raise SystemExit(
                f"error: {args.metrics} is not a metrics document"
            )
    if args.ledger:
        from repro.obs import read_ledger

        ledger_records = read_ledger(args.ledger)
    if args.slowlog:
        from repro.obs import SlowLog

        try:
            slowlog = SlowLog.load(args.slowlog)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"error: cannot read {args.slowlog}: {exc}")
    if args.check_perf:
        perf = perf_history_section(args.bench, args.history)
    if metrics_doc is None and ledger_records is None and slowlog is None \
            and perf is None:
        raise SystemExit(
            "error: nothing to report — give --metrics, --ledger, "
            "--slowlog and/or --check-perf"
        )
    report = build_report(
        metrics_doc=metrics_doc,
        ledger_records=ledger_records,
        slowlog=slowlog,
        perf=perf,
        top=args.top,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_report(report, top=args.top))
    if perf is not None and perf.get("status") == "regressed":
        return 1
    return 0


def _cmd_ids(args: argparse.Namespace) -> int:
    bytecode = _read_hex(args.bytecode)
    for selector_value in extract_selectors(bytecode):
        print(f"0x{selector_value:08x}")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    print(format_listing(disassemble(_read_hex(args.bytecode))))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_bytecode

    report = lint_bytecode(_read_hex(args.bytecode))
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.analysis import analyze

    bytecode = _read_hex(args.bytecode)
    analysis = analyze(bytecode)
    cfg = analysis.cfg
    if args.json:
        import json

        payload = {
            "blocks": len(cfg.blocks),
            "incomplete": cfg.incomplete,
            "functions": [
                {
                    "selector": f"0x{sel:08x}",
                    "entry": analysis.dispatcher.entries[sel],
                    "region_blocks": len(
                        analysis.dispatcher.regions.get(sel, ())
                    ),
                    "region_closed": sel in analysis.closed_regions,
                }
                for sel in analysis.selectors
            ],
            "dispatcher_blocks": sorted(analysis.dispatcher.dispatcher_blocks),
            "unreachable_blocks": sorted(analysis.dispatcher.unreachable),
            "silent_halt_blocks": sorted(analysis.silent_halt_blocks),
            "findings": [
                {
                    "kind": f.kind,
                    "pc": f.pc,
                    "severity": f.severity,
                    "detail": f.detail,
                }
                for f in analysis.findings
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{len(cfg.blocks)} blocks, {len(analysis.selectors)} functions, "
        f"{len(cfg.resolved_targets)} resolved jumps, "
        f"{len(cfg.unresolved_jumps)} unresolved"
    )
    for sel in analysis.selectors:
        entry = analysis.dispatcher.entries[sel]
        region = analysis.dispatcher.regions.get(sel, frozenset())
        closed = "closed" if sel in analysis.closed_regions else "open"
        print(
            f"  0x{sel:08x} -> {entry:#06x}  "
            f"({len(region)} reachable blocks, {closed} region)"
        )
    for finding in analysis.findings:
        print(finding.render())
    if args.disasm:
        annotations = {}
        for start in analysis.dispatcher.dispatcher_blocks:
            annotations[start] = "dispatcher"
        for start in analysis.dispatcher.unreachable:
            annotations[start] = "unreachable"
        for start in analysis.silent_halt_blocks:
            annotations[start] = "silent halt"
        for sel, entry in analysis.dispatcher.entries.items():
            annotations[entry] = f"entry of 0x{sel:08x}"
        print(format_listing(disassemble(bytecode), annotations=annotations))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Emit the unified contract profile (signatures + storage + facts)."""
    bytecode = _read_hex(args.bytecode)
    tool = SigRec()
    if args.static_only:
        profile = tool.profile(bytecode, signatures=[])
    else:
        profile = tool.profile(bytecode)
    if args.json:
        # ``to_json`` is the canonical deterministic rendering: sorted
        # keys, no timestamps — byte-identical across runs and machines.
        print(profile.to_json(indent=2))
    else:
        print(profile.render_text())
    return 0


def _cmd_abi(args: argparse.Namespace) -> int:
    """Emit a standard Solidity ABI JSON array from bytecode alone."""
    import json

    bytecode = _read_hex(args.bytecode)
    tool = SigRec()
    entries = tool.abi(bytecode)
    if args.pretty:
        print(json.dumps(entries, indent=2, sort_keys=True))
    else:
        print(json.dumps(entries, sort_keys=True, separators=(",", ":")))
    return 0


def _cmd_passes(args: argparse.Namespace) -> int:
    """List the registered pipeline passes, versions, and edges."""
    from repro.analysis import default_pipeline

    pipeline = default_pipeline()
    if args.json:
        import json

        payload = [
            {
                "name": pass_.name,
                "version": pass_.version,
                "requires": list(pass_.requires),
            }
            for pass_ in pipeline
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for pass_ in pipeline:
        edges = " <- " + ", ".join(pass_.requires) if pass_.requires else ""
        print(f"{pass_.name} v{pass_.version}{edges}")
    return 0


def _cmd_lift(args: argparse.Namespace) -> int:
    bytecode = _read_hex(args.bytecode)
    if args.structured:
        from repro.apps.structurer import Structurer

        print(Structurer().structure(bytecode).render())
        return 0
    if args.plus:
        recovered = SigRec().recover(bytecode)
        result = EraysPlus(recovered).enhance(bytecode)
        print(result.text)
        print(
            f"\n; erays+: {result.added_types} types, "
            f"{result.added_param_names} names, "
            f"{result.added_num_names} num names, "
            f"{result.removed_lines} lines removed",
            file=sys.stderr,
        )
    else:
        print(Erays().lift(bytecode, fold=args.fold).render())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    bytecode = _read_hex(args.bytecode)
    calldata = _read_hex(args.calldata)
    recovered = SigRec().recover_map(bytecode)
    checker = ParChecker({s: r.param_list for s, r in recovered.items()})
    result = checker.check(calldata)
    if result.short_address_attack:
        print("INVALID: short address attack detected")
    elif not result.valid:
        print("INVALID: " + "; ".join(result.issues))
    elif not result.known_function:
        print("unknown function id (cannot validate)")
    else:
        print("valid")
    return 0 if result.valid else 2


def _cmd_selector(args: argparse.Namespace) -> int:
    print("0x" + compute_selector(args.signature).hex())
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    """Decode a transaction's arguments using recovered signatures."""
    from repro.abi.codec import AbiCodecError, decode
    from repro.abi.types import parse_type
    from repro.apps.parchecker import _split_top

    bytecode = _read_hex(args.bytecode)
    calldata = _read_hex(args.calldata)
    if len(calldata) < 4:
        raise SystemExit("error: call data shorter than a function id")
    selector_value = int.from_bytes(calldata[:4], "big")
    recovered = SigRec().recover_map(bytecode)
    signature = recovered.get(selector_value)
    if signature is None:
        print(f"0x{selector_value:08x}: unknown function")
        return 1
    if not signature.param_types:
        print(f"0x{selector_value:08x}()")
        return 0
    types = [parse_type(t) for t in _split_top(signature.param_list)]
    try:
        values = decode(types, calldata[4:], strict=False)
    except AbiCodecError as exc:
        print(f"0x{selector_value:08x}: cannot decode arguments: {exc}")
        return 2
    rendered = ", ".join(
        f"{t.canonical()}={_render_value(t, v)}" for t, v in zip(types, values)
    )
    print(f"0x{selector_value:08x}({rendered})")
    return 0


def _render_value(abi_type, value) -> str:
    canonical = abi_type.canonical()
    if canonical == "address":
        return f"0x{value:040x}"
    if isinstance(value, (bytes, bytearray)):
        return "0x" + bytes(value).hex()
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_render_plain(v) for v in value) + "]"
    return _render_plain(value)


def _render_plain(value) -> str:
    if isinstance(value, (bytes, bytearray)):
        return "0x" + bytes(value).hex()
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_render_plain(v) for v in value) + "]"
    if isinstance(value, str):
        return repr(value)
    return str(value)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Step-trace one message call."""
    from repro.evm.tracer import Tracer

    bytecode = _read_hex(args.bytecode)
    calldata = _read_hex(args.calldata)
    trace = Tracer(bytecode).trace(calldata)
    print(trace.render(limit=args.limit))
    return 0 if trace.result and trace.result.success else 2


def _cmd_export_corpus(args: argparse.Namespace) -> int:
    """Generate and export a ground-truth benchmark corpus to disk."""
    from repro.corpus.datasets import (
        build_open_source_corpus,
        build_vyper_corpus,
    )
    from repro.corpus.export import export_corpus

    if args.language == "vyper":
        corpus = build_vyper_corpus(n_contracts=args.contracts, seed=args.seed)
    else:
        corpus = build_open_source_corpus(
            n_contracts=args.contracts, seed=args.seed,
            quirk_rate=args.quirk_rate,
        )
    manifest = export_corpus(corpus, args.directory)
    print(
        f"wrote {len(corpus)} contracts "
        f"({corpus.function_count} functions) to {args.directory}"
    )
    print(f"manifest: {manifest}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    bytecode = _read_hex(args.bytecode)
    selector_text = args.function_id.lower()
    if selector_text.startswith("0x"):
        selector_text = selector_text[2:]
    try:
        selector_value = int(selector_text, 16)
    except ValueError:
        raise SystemExit(f"error: not a function id: {args.function_id}")
    print(SigRec().explain(bytecode, selector_value))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SigRec: recover function signatures from EVM bytecode",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("recover", help="recover function signatures")
    p.add_argument("bytecode", help="hex bytecode or @file")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="show language and fired rules")
    p.add_argument("--db", metavar="FILE",
                   help="signature database (JSON) for name resolution")
    p.set_defaults(func=_cmd_recover)

    p = sub.add_parser(
        "batch", help="recover many contracts (parallel + cached)"
    )
    p.add_argument(
        "source",
        help="file with one hex bytecode per line, or a directory of .hex files",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size (default: all cores; 0 = serial)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache directory (repeat runs skip analysis)",
    )
    p.add_argument(
        "--time", action="store_true",
        help="print contracts/s, unique ratio, cache hit-rate and workers",
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write (merge-accumulate) the metrics JSON document to FILE",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write structured span/event records to FILE (JSONL)",
    )
    p.add_argument(
        "--prune", dest="prune", action="store_true", default=True,
        help="suppress provably-silent TASE forks via static analysis "
        "(output-preserving; default on for batch)",
    )
    p.add_argument(
        "--no-prune", dest="prune", action="store_false",
        help="disable static pruning",
    )
    p.add_argument(
        "--unit-size", type=int, default=None, metavar="K",
        help="selectors per scheduler unit before a contract splits "
        "into several work-stealing units (0 = never split)",
    )
    p.add_argument(
        "--no-shard", dest="shard", action="store_false", default=True,
        help="force the monolithic TASE walk (disable per-selector shards)",
    )
    p.add_argument(
        "--no-memo", dest="memo", action="store_false", default=True,
        help="disable the function-body memo tier",
    )
    p.add_argument(
        "--no-inference-memo", dest="inference_memo",
        action="store_false", default=True,
        help="disable the inference-memo tier (event-digest keyed)",
    )
    p.add_argument(
        "--profiles-out", default=None, metavar="DIR",
        help="write one contract-profile JSON per input to DIR",
    )
    p.add_argument(
        "--ledger-out", default=None, metavar="FILE",
        help="append one run-ledger JSONL record per recovery to FILE",
    )
    p.add_argument(
        "--slowlog-out", default=None, metavar="FILE",
        help="write the K slowest units (span trees + diagnostics) to FILE",
    )
    p.add_argument(
        "--slowlog-k", type=int, default=10, metavar="K",
        help="how many slow exemplars --slowlog-out keeps (default 10)",
    )
    p.add_argument(
        "--profile-hotspots", choices=["count", "sample"], default=None,
        help="attribute TASE steps to superblock entry pcs "
        "(count = exact, sample = cheap every-Nth-step)",
    )
    p.add_argument(
        "--serve-metrics", type=int, default=None, metavar="PORT",
        help="serve live /metrics, /healthz and /ledger/summary on PORT "
        "(0 = ephemeral) while the batch runs",
    )
    p.add_argument(
        "--serve-hold", type=float, default=0.0, metavar="SECONDS",
        help="keep the --serve-metrics endpoint up SECONDS after the "
        "batch finishes (for scrapers)",
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "stats", help="summarize a --metrics-out document (and trace)"
    )
    p.add_argument("metrics", help="metrics JSON written by --metrics-out")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="JSONL trace from --trace-out (adds slowest contracts)")
    p.add_argument("--top", type=int, default=10,
                   help="rows per ranking section")
    p.add_argument("--prometheus", action="store_true",
                   help="emit the Prometheus text exposition instead")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "report",
        help="phase attribution, tier hit rates, hotspots, slow "
        "exemplars and the perf-history trajectory in one document",
    )
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="metrics JSON written by batch --metrics-out")
    p.add_argument("--ledger", default=None, metavar="FILE",
                   help="run-ledger JSONL written by batch --ledger-out")
    p.add_argument("--slowlog", default=None, metavar="FILE",
                   help="slow-exemplar JSON written by batch --slowlog-out")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report document")
    p.add_argument("--top", type=int, default=10,
                   help="rows per ranking section")
    p.add_argument("--check-perf", action="store_true",
                   help="include the perf-history check; exit 1 when a "
                   "tier regressed")
    p.add_argument("--bench", default="BENCH_throughput.json",
                   metavar="FILE", help="current benchmark document")
    p.add_argument("--history", default="benchmarks/history", metavar="DIR",
                   help="perf-history snapshot directory")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "serve-metrics",
        help="standalone /metrics + /healthz + /ledger/summary endpoint "
        "over saved telemetry documents",
    )
    p.add_argument("--metrics", default=None, metavar="FILE",
                   help="metrics JSON to expose (re-read per scrape)")
    p.add_argument("--ledger", default=None, metavar="FILE",
                   help="run-ledger JSONL to summarize (re-read per scrape)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9464)
    p.add_argument("--hold", type=float, default=None, metavar="SECONDS",
                   help="serve for SECONDS then exit (default: run forever)")
    p.set_defaults(func=_cmd_serve_metrics)

    p = sub.add_parser("ids", help="extract function ids only")
    p.add_argument("bytecode")
    p.set_defaults(func=_cmd_ids)

    p = sub.add_parser("disasm", help="disassemble bytecode")
    p.add_argument("bytecode")
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser(
        "lint", help="statically verify bytecode (stack + jump discipline)"
    )
    p.add_argument("bytecode")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "inspect", help="show the static analysis of a contract"
    )
    p.add_argument("bytecode")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.add_argument("--disasm", action="store_true",
                   help="append an annotated disassembly listing")
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser(
        "profile",
        help="unified contract profile: signatures + storage layout + "
        "dispatcher/CFG/lint facts",
    )
    p.add_argument("bytecode")
    p.add_argument("--json", action="store_true",
                   help="deterministic JSON document (sorted keys)")
    p.add_argument("--static-only", action="store_true",
                   help="skip signature recovery (static facts only)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "abi",
        help="standard Solidity ABI JSON recovered from bytecode alone",
    )
    p.add_argument("bytecode")
    p.add_argument("--pretty", action="store_true",
                   help="indented JSON instead of one compact line")
    p.set_defaults(func=_cmd_abi)

    p = sub.add_parser(
        "passes",
        help="list analysis pipeline passes, versions, dependency edges",
    )
    p.add_argument("--json", action="store_true",
                   help="machine-readable list")
    p.set_defaults(func=_cmd_passes)

    p = sub.add_parser("lift", help="lift bytecode to three-address IR")
    p.add_argument("bytecode")
    p.add_argument("--plus", action="store_true",
                   help="enhance with recovered signatures (Erays+)")
    p.add_argument("--structured", action="store_true",
                   help="recover while/if structure instead of flat blocks")
    p.add_argument("--fold", action="store_true",
                   help="inline single-use pure definitions")
    p.set_defaults(func=_cmd_lift)

    p = sub.add_parser("check", help="validate call data (ParChecker)")
    p.add_argument("bytecode", help="the callee contract's bytecode")
    p.add_argument("calldata", help="the transaction's call data")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("selector", help="function id of a signature")
    p.add_argument("signature", help='e.g. "transfer(address,uint256)"')
    p.set_defaults(func=_cmd_selector)

    p = sub.add_parser(
        "explain", help="show the evidence behind one function's recovery"
    )
    p.add_argument("bytecode")
    p.add_argument("function_id", help="e.g. 0xa9059cbb")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "decode", help="decode a transaction's arguments via recovery"
    )
    p.add_argument("bytecode", help="the callee contract's bytecode")
    p.add_argument("calldata", help="the transaction's call data")
    p.set_defaults(func=_cmd_decode)

    p = sub.add_parser("trace", help="step-trace one message call")
    p.add_argument("bytecode")
    p.add_argument("calldata")
    p.add_argument("--limit", type=int, default=200,
                   help="max steps to print")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "export-corpus", help="write a ground-truth benchmark corpus to disk"
    )
    p.add_argument("directory")
    p.add_argument("--contracts", type=int, default=50)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--quirk-rate", type=float, default=0.02)
    p.add_argument("--language", choices=["solidity", "vyper"],
                   default="solidity")
    p.set_defaults(func=_cmd_export_corpus)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
