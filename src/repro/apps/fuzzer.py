"""ContractFuzzer / ContractFuzzer− (paper §6.2).

The experiment: the same fuzzer, with and without recovered function
signatures.  With signatures it generates *typed* arguments (ABI-encoded
well-formed values per parameter); without, it emits random byte
sequences after the function id.  Bugs are planted ``INVALID``
instructions guarded by conditions on parameter values; conditions that
require canonically-encoded values (a true bool is exactly 1, a bytes4
is right-padded, an intN is sign-canonical) are effectively unreachable
for random byte sequences, which is precisely why typed mutation finds
more bugs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.abi.codec import encode_call
from repro.abi.signature import FunctionSignature, Visibility
from repro.abi.types import BoolType, FixedBytesType, IntType, UIntType
from repro.compiler.options import CodegenOptions
from repro.compiler.solidity import SolidityCodegen, head_positions
from repro.corpus.signatures import SignatureGenerator
from repro.evm.asm import Assembler
from repro.evm.interpreter import Interpreter


@dataclass
class TargetFunction:
    sig: FunctionSignature
    bug_kind: str  # "shallow" | "deep"
    selector: int = 0

    def __post_init__(self) -> None:
        self.selector = int.from_bytes(self.sig.selector, "big")


@dataclass
class FuzzTarget:
    """One vulnerable contract: bytecode + per-function bug metadata."""

    bytecode: bytes
    functions: List[TargetFunction]


@dataclass
class FuzzReport:
    bugs_found: Set[int] = field(default_factory=set)  # selectors
    vulnerable_contracts: Set[int] = field(default_factory=set)  # target idx
    executions: int = 0
    reverts: int = 0

    @property
    def bug_count(self) -> int:
        return len(self.bugs_found)


# ----------------------------------------------------------------------
# Vulnerable-contract factory
# ----------------------------------------------------------------------

_ENTROPY_MASK = 0x3  # 2 entropy bits: reachable in a handful of attempts


def _emit_bug_condition(
    asm: Assembler, sig: FunctionSignature, bug_kind: str, bug_label: str
) -> None:
    """Jump to ``bug_label`` when the planted condition holds.

    * ``shallow``: two low bits of the first parameter word equal a
      magic value — random byte sequences hit this at the same 1/4 rate
      as typed inputs.
    * ``deep``: additionally every parameter word must be *canonically
      encoded* for its type (true bools are exactly 1, bytesN values
      are right-padded, intN values sign-canonical, uintN zero-padded);
      a random byte sequence satisfies this with probability ~0.
    """
    positions = head_positions(list(sig.params))

    # Entropy condition: a couple of bits the *typed* encoding actually
    # randomizes.  uint/int/address values randomize their low bits;
    # bytesN values randomize their high byte; a bool only ever has one
    # random bit, so it degenerates to "is true".
    entropy_param, entropy_pos = sig.params[0], positions[0]
    for param, pos in zip(sig.params, positions):
        if not isinstance(param, (BoolType, FixedBytesType)):
            entropy_param, entropy_pos = param, pos
            break
    asm.push(entropy_pos).op("CALLDATALOAD")
    if isinstance(entropy_param, BoolType):
        asm.push(1).op("EQ")  # flag: v == true
    elif isinstance(entropy_param, FixedBytesType):
        asm.push(0).op("BYTE")
        asm.push(_ENTROPY_MASK).op("AND")
        asm.push(0x2).op("EQ")  # flag on the top byte's low bits
    else:
        asm.push(_ENTROPY_MASK).op("AND")
        asm.push(0x2).op("EQ")  # flag

    if bug_kind == "deep":
        for param, pos in zip(sig.params, positions):
            canonical = param.canonical()
            asm.push(pos).op("CALLDATALOAD")  # [flag, v]
            if isinstance(param, BoolType):
                asm.push(1).op("SWAP1").op("GT")  # v > 1 -> non-canonical
                asm.op("ISZERO")  # 1 when v <= 1
            elif isinstance(param, UIntType) and param.bits < 256:
                mask = ((1 << (256 - param.bits)) - 1) << param.bits
                asm.push(mask, width=32).op("AND").op("ISZERO")  # padding clean
            elif isinstance(param, IntType) and param.bits < 256:
                asm.push(param.bits // 8 - 1).op("SIGNEXTEND")
                asm.push(pos).op("CALLDATALOAD").op("EQ")  # sign-canonical
            elif isinstance(param, FixedBytesType) and param.size < 32:
                mask = (1 << (8 * (32 - param.size))) - 1
                asm.push(mask, width=32).op("AND").op("ISZERO")  # tail clean
            else:
                asm.op("POP").push(1)  # no canonicality constraint
            asm.op("AND")  # fold into the flag

    asm.push_label(bug_label).op("JUMPI")


def build_fuzz_targets(
    n_contracts: int = 30,
    seed: int = 17,
    deep_ratio: float = 0.05,
    all_deep_ratio: float = 0.15,
) -> List[FuzzTarget]:
    """Vulnerable contracts with a mix of shallow and deep bugs.

    ``deep_ratio`` is the per-function chance of a canonicality-gated
    bug; ``all_deep_ratio`` is the chance that a whole contract carries
    only such bugs (making the *contract* invisible to the untyped
    fuzzer).  The defaults are calibrated so the typed fuzzer's
    advantage lands near the paper's +23% bugs / +25% vulnerable
    contracts.
    """
    rng = random.Random(seed)
    gen = SignatureGenerator(
        seed=seed + 1, max_params=3, composite_weight=0.0,
        struct_weight=0.0, nested_weight=0.0,
    )
    targets: List[FuzzTarget] = []
    for _ in range(n_contracts):
        functions: List[TargetFunction] = []
        n_functions = rng.randint(1, 3)
        all_deep = rng.random() < all_deep_ratio
        for _ in range(n_functions):
            sig = gen.signature()
            deep = all_deep or rng.random() < deep_ratio
            functions.append(TargetFunction(sig, "deep" if deep else "shallow"))
        targets.append(_compile_target(functions))
    return targets


def _emit_staged_bug(
    asm: Assembler, sig: FunctionSignature, bug_label: str, stages: int = 12
) -> None:
    """A multi-stage bug: bit k of the first parameter must be set at
    stage k, each passed stage opening a new basic block.

    Blind generation must set all ``stages`` bits at once (2^-stages per
    attempt); coverage-guided mutation accumulates one bit at a time,
    each newly-passed stage yielding fresh coverage that retains the
    seed — the workload where the paper's "strategic mutation" pays off.
    """
    positions = head_positions(list(sig.params))
    first = positions[0]
    skip = None
    for stage in range(stages):
        asm.push(first).op("CALLDATALOAD")
        asm.push(1 << stage).op("AND")  # nonzero iff bit `stage` is set
        if stage < stages - 1:
            skip = skip or asm.fresh_label("stage_skip")
            asm.op("ISZERO").push_label(skip).op("JUMPI")
            asm.op("JUMPDEST")  # a fresh block: coverage signal
        else:
            asm.push_label(bug_label).op("JUMPI")
    if skip is not None:
        asm.label(skip).op("JUMPDEST")


def build_staged_targets(n_contracts: int = 20, seed: int = 23) -> List[FuzzTarget]:
    """Targets whose bugs hide behind multi-stage value conditions.

    Every function's first parameter is an unsigned integer (the staged
    nibble conditions apply to it); the remaining parameters vary.
    """
    rng = random.Random(seed)
    gen = SignatureGenerator(
        seed=seed + 1, max_params=2, composite_weight=0.0,
        struct_weight=0.0, nested_weight=0.0,
    )
    targets: List[FuzzTarget] = []
    for _ in range(n_contracts):
        functions = []
        for _ in range(rng.randint(1, 2)):
            base = gen.signature()
            params = (UIntType(256),) + base.params[1:]
            sig = FunctionSignature(base.name, params, base.visibility)
            functions.append(TargetFunction(sig, "staged"))
        targets.append(_compile_target(functions))
    return targets


def _compile_target(functions: List[TargetFunction]) -> FuzzTarget:
    options = CodegenOptions(version="0.5.5")
    asm = Assembler()

    # Dispatcher (same shape as repro.compiler.contract).
    asm.op("CALLDATASIZE").push(4).op("SWAP1").op("LT")
    asm.push_label("fallback").op("JUMPI")
    asm.push(0).op("CALLDATALOAD").push(0xE0).op("SHR")
    for i, fn in enumerate(functions):
        asm.op("DUP1").push(fn.selector, width=4).op("EQ")
        asm.push_label(f"body_{i}").op("JUMPI")
    asm.label("fallback").op("JUMPDEST").op("STOP")

    revert_label = "revert_all"
    for i, fn in enumerate(functions):
        asm.label(f"body_{i}").op("JUMPDEST").op("POP")
        codegen = SolidityCodegen(options, asm, revert_label)
        codegen.emit_function_body(fn.sig)
        if fn.bug_kind == "staged":
            _emit_staged_bug(asm, fn.sig, f"bug_{i}")
        else:
            _emit_bug_condition(asm, fn.sig, fn.bug_kind, f"bug_{i}")
        asm.op("STOP")
        asm.label(f"bug_{i}").op("JUMPDEST").op("INVALID")

    asm.label(revert_label).op("JUMPDEST")
    asm.push(0).push(0).op("REVERT")
    return FuzzTarget(asm.assemble(), functions)


# ----------------------------------------------------------------------
# The fuzzer
# ----------------------------------------------------------------------


class ContractFuzzer:
    """A bug-oracle fuzzer over the concrete interpreter.

    ``typed=True`` is ContractFuzzer with SigRec-recovered signatures:
    arguments are well-formed ABI encodings of random values.
    ``typed=False`` is ContractFuzzer−: random byte sequences after the
    function id.  The bug oracle is reaching an ``INVALID`` instruction.
    """

    def __init__(self, typed: bool, seed: int = 0) -> None:
        self.typed = typed
        self.rng = random.Random(seed)

    def _make_input(self, fn: TargetFunction) -> bytes:
        selector = fn.sig.selector
        if self.typed:
            values = [p.random_value(self.rng) for p in fn.sig.params]
            return encode_call(selector, list(fn.sig.params), values)
        length = 32 * len(fn.sig.params) or 32
        body = bytes(self.rng.getrandbits(8) for _ in range(length))
        return selector + body

    def fuzz_target(self, target: FuzzTarget, budget_per_function: int = 40) -> FuzzReport:
        report = FuzzReport()
        interp = Interpreter(target.bytecode)
        for fn in target.functions:
            for _ in range(budget_per_function):
                report.executions += 1
                result = interp.call(self._make_input(fn))
                if result.error == "revert":
                    report.reverts += 1
                if result.invalid_hit:
                    report.bugs_found.add(fn.selector)
                    break
        return report

    def fuzz_campaign(
        self, targets: Sequence[FuzzTarget], budget_per_function: int = 40
    ) -> FuzzReport:
        total = FuzzReport()
        for idx, target in enumerate(targets):
            report = self.fuzz_target(target, budget_per_function)
            total.executions += report.executions
            total.reverts += report.reverts
            total.bugs_found |= report.bugs_found
            if report.bugs_found:
                total.vulnerable_contracts.add(idx)
        return total


class MutationFuzzer(ContractFuzzer):
    """Coverage-guided typed mutation (the paper's "strategically mutate
    the test cases" claim, §1/§6.2, made concrete).

    Keeps a seed pool of typed argument vectors per function; inputs
    that reach new program counters are retained and mutated further.
    Mutations are *type-aware*: integers get bit flips and boundary
    values, booleans toggle, fixed bytes get byte flips — so every
    mutant remains canonically encoded and passes validity checks that
    random byte flips would break.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(typed=True, seed=seed)

    def _mutate_value(self, param, value):
        rng = self.rng
        if isinstance(param, BoolType):
            return not value
        if isinstance(param, UIntType):
            choice = rng.randrange(4)
            if choice <= 1:
                # Bit flips, biased toward the low bits where magic
                # values and flags live (standard havoc bias).
                span = min(param.bits, 32) if choice == 0 else param.bits
                return value ^ (1 << rng.randrange(span))
            if choice == 2:
                return rng.choice([0, 1, (1 << param.bits) - 1])
            return param.random_value(rng)
        if isinstance(param, IntType):
            bound = 1 << (param.bits - 1)
            choice = rng.randrange(3)
            if choice == 0:
                flipped = value ^ (1 << rng.randrange(param.bits - 1))
                return max(-bound, min(bound - 1, flipped))
            if choice == 1:
                return rng.choice([0, -1, bound - 1, -bound])
            return param.random_value(rng)
        if isinstance(param, FixedBytesType):
            data = bytearray(value)
            data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            return bytes(data)
        return param.random_value(rng)

    def fuzz_target(self, target: FuzzTarget, budget_per_function: int = 40) -> FuzzReport:
        report = FuzzReport()
        interp = Interpreter(target.bytecode)
        for fn in target.functions:
            pool = [
                [p.random_value(self.rng) for p in fn.sig.params]
                for _ in range(3)
            ]
            seen_pcs: set = set()
            found = False
            for _ in range(budget_per_function):
                report.executions += 1
                values = [
                    self._mutate_value(p, v)
                    for p, v in zip(fn.sig.params, self.rng.choice(pool))
                ]
                calldata = encode_call(fn.sig.selector, list(fn.sig.params), values)
                result = interp.call(calldata)
                if result.error == "revert":
                    report.reverts += 1
                if result.invalid_hit:
                    report.bugs_found.add(fn.selector)
                    found = True
                    break
                new_coverage = result.pcs_executed - seen_pcs
                if new_coverage:
                    seen_pcs |= result.pcs_executed
                    pool.append(values)
            if found:
                continue
        return report
