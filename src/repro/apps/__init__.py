"""Applications of recovered signatures (paper §6).

* :mod:`repro.apps.parchecker` — detection of invalid actual arguments
  and short address attacks (§6.1);
* :mod:`repro.apps.fuzzer` — a smart-contract fuzzer that uses
  recovered signatures for typed input generation (§6.2);
* :mod:`repro.apps.erays` — a bytecode-to-IR reverse engineering tool
  and its signature-aware enhancement Erays+ (§6.3).
"""

from repro.apps.parchecker import CheckResult, ParChecker, corrupt_calldata
from repro.apps.fuzzer import (
    ContractFuzzer,
    FuzzReport,
    MutationFuzzer,
    build_fuzz_targets,
    build_staged_targets,
)
from repro.apps.erays import Erays, EraysPlus, IRFunction
from repro.apps.oracles import Finding, run_all_oracles
from repro.apps.structurer import StructuredFunction, Structurer

__all__ = [
    "ParChecker",
    "CheckResult",
    "corrupt_calldata",
    "ContractFuzzer",
    "MutationFuzzer",
    "FuzzReport",
    "build_fuzz_targets",
    "build_staged_targets",
    "Erays",
    "EraysPlus",
    "IRFunction",
    "Structurer",
    "StructuredFunction",
    "Finding",
    "run_all_oracles",
]
