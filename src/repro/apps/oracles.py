"""Vulnerability oracles over message-call traces (§6.2's substrate).

ContractFuzzer detects vulnerabilities with *test oracles* evaluated on
execution behaviour.  This module implements the trace-level members of
that taxonomy against :class:`repro.chain.machine.CallMachine` traces:

* **exception disorder** — an inner call failed but the enclosing
  transaction succeeded: some caller ignored a callee's failure;
* **reentrancy** — a contract is entered again while one of its frames
  is still live (the DAO shape: external call before state settlement);
* **dangerous delegatecall** — a DELEGATECALL whose target address was
  supplied by the transaction's input data.

Each oracle takes the transaction's call trace (plus the call data for
the delegatecall oracle) and returns a finding or None.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.chain.machine import CallTraceEntry


@dataclass(frozen=True)
class Finding:
    oracle: str
    detail: str


def exception_disorder(
    trace: Sequence[CallTraceEntry], root_success: bool
) -> Optional[Finding]:
    """An inner frame failed, yet the transaction went through."""
    if not root_success:
        return None
    for entry in trace:
        if entry.depth > 0 and not entry.success:
            return Finding(
                "exception_disorder",
                f"call to {entry.to:#x} at depth {entry.depth} failed but "
                f"the transaction succeeded",
            )
    return None


def reentrancy(trace: Sequence[CallTraceEntry]) -> Optional[Finding]:
    """A contract is re-entered *and* pays out more than once.

    Re-entry alone is common and often harmless (a guarded withdraw is
    re-entered but pays nothing the second time); the exploitable shape
    — ContractFuzzer's oracle — is a re-entered contract that sends
    value in more than one of its frames, i.e. the stale-state drain.

    The trace records frames in completion order with their depth: a
    contract appearing at depths d1 < d2 ran again while its shallower
    frame was still on the call stack.
    """
    depths_by_contract = {}
    for entry in trace:
        if entry.kind not in ("call", "callcode"):
            continue
        depths_by_contract.setdefault(entry.to, set()).add(entry.depth)
    details = []
    for contract, depths in sorted(depths_by_contract.items()):
        if len(depths) < 2:
            continue
        payouts = [
            e.value
            for e in trace
            if e.sender == contract and e.kind == "call" and e.value > 0
        ]
        if len(payouts) >= 2:
            details.append(
                f"{contract:#x} re-entered at depths {sorted(depths)} and "
                f"paid out {len(payouts)} times (total {sum(payouts)})"
            )
    if details:
        return Finding("reentrancy", "; ".join(details))
    return None


def dangerous_delegatecall(
    trace: Sequence[CallTraceEntry], calldata: bytes
) -> Optional[Finding]:
    """A DELEGATECALL target controlled by the transaction input."""
    words = {
        int.from_bytes(calldata[i : i + 32], "big") & ((1 << 160) - 1)
        for i in range(4, max(4, len(calldata) - 31), 32)
    }
    for entry in trace:
        if entry.kind == "delegatecall" and entry.to in words:
            return Finding(
                "dangerous_delegatecall",
                f"delegatecall target {entry.to:#x} came from the call data",
            )
    return None


def run_all_oracles(
    trace: Sequence[CallTraceEntry], root_success: bool, calldata: bytes
) -> List[Finding]:
    findings = []
    for finding in (
        exception_disorder(trace, root_success),
        reentrancy(trace),
        dangerous_delegatecall(trace, calldata),
    ):
        if finding is not None:
            findings.append(finding)
    return findings
