"""Erays and Erays+ (paper §6.3).

*Erays* lifts EVM bytecode into register-based three-address statements
(one ``v<n> = OP(...)`` line per value-producing instruction, effect
statements for stores/jumps), which is more readable than raw bytecode
but keeps all the compiler-generated plumbing for parameter access.

*Erays+* post-processes the IR using recovered function signatures:

* calldata loads of head slots become named, typed arguments
  (``arg1: uint256 = calldata[0x04]``) — *added types* and *added
  parameter names*;
* loads of offset/num fields become ``offset(argN)`` / ``num(argN)``
  — *added num names*;
* the mask / bound-check / address-arithmetic plumbing that only
  serves parameter access is deleted — *removed lines*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.evm.cfg import build_cfg
from repro.evm.disasm import Instruction
from repro.sigrec.api import RecoveredSignature


@dataclass
class IRStatement:
    """One three-address statement."""

    dest: Optional[str]  # None for effect-only statements
    op: str
    args: Tuple[str, ...]
    pc: int

    def render(self) -> str:
        if self.op == "EXPR":  # an already-rendered folded expression
            return f"{self.dest} = {self.args[0]}"
        call = f"{self.op}({', '.join(self.args)})"
        if self.dest is not None:
            return f"{self.dest} = {call}"
        return call


@dataclass
class IRFunction:
    """The lifted statements of one basic block region."""

    start: int
    statements: List[IRStatement] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"block_{self.start:#x}:"]
        lines.extend("  " + s.render() for s in self.statements)
        return "\n".join(lines)


@dataclass
class LiftedContract:
    blocks: List[IRFunction]

    @property
    def line_count(self) -> int:
        return sum(len(b.statements) for b in self.blocks)

    def render(self) -> str:
        return "\n".join(b.render() for b in self.blocks)


_PURE_OPS = frozenset(
    ["ADD", "MUL", "SUB", "DIV", "SDIV", "MOD", "SMOD", "EXP", "SIGNEXTEND",
     "LT", "GT", "SLT", "SGT", "EQ", "ISZERO", "AND", "OR", "XOR", "NOT",
     "BYTE", "SHL", "SHR", "SAR", "ADDMOD", "MULMOD",
     "CALLDATALOAD", "CALLDATASIZE", "CALLER", "CALLVALUE", "ADDRESS",
     "ORIGIN", "TIMESTAMP", "NUMBER", "CHAINID", "GASPRICE"]
)

class Erays:
    """Bytecode -> three-address IR, block by block.

    Within a block the symbolic stack is tracked exactly; values
    flowing in from predecessors appear as ``in<k>`` symbols, matching
    how Erays presents register-based code.  ``lift(fold=True)``
    additionally inlines single-use pure definitions into their user,
    producing the nested human-readable expressions Erays is known for
    (``v5 = EQ(0xa9059cbb, DIV(CALLDATALOAD(0x0), 0x1...))``).
    """

    def lift(self, bytecode: bytes, fold: bool = False) -> LiftedContract:
        lifted = self._lift_flat(bytecode)
        if fold:
            for block in lifted.blocks:
                block.statements = _fold_block(block.statements)
        return lifted

    def _lift_flat(self, bytecode: bytes) -> LiftedContract:
        cfg = build_cfg(bytecode)
        blocks: List[IRFunction] = []
        counter = 0
        for start in sorted(cfg.blocks):
            block = cfg.blocks[start]
            ir = IRFunction(start=start)
            stack: List[str] = []
            in_count = 0

            def pop() -> str:
                nonlocal in_count
                if stack:
                    return stack.pop()
                in_count += 1
                return f"in{in_count}"

            for ins in block.instructions:
                counter, stmt = self._lift_instruction(ins, stack, pop, counter)
                if stmt is not None:
                    ir.statements.append(stmt)
            blocks.append(ir)
        return LiftedContract(blocks)

    @staticmethod
    def _lift_instruction(ins: Instruction, stack, pop, counter: int):
        op = ins.op
        name = op.name
        if op.is_push:
            stack.append(f"{(ins.operand or 0):#x}")
            return counter, None
        if op.is_dup:
            n = op.code - 0x7F
            while len(stack) < n:
                stack.insert(0, f"in_d{len(stack)}")
            stack.append(stack[-n])
            return counter, None
        if op.is_swap:
            n = op.code - 0x8F
            while len(stack) < n + 1:
                stack.insert(0, f"in_s{len(stack)}")
            stack[-1], stack[-n - 1] = stack[-n - 1], stack[-1]
            return counter, None
        if name in ("POP", "JUMPDEST"):
            if name == "POP":
                pop()
            return counter, None
        args = tuple(pop() for _ in range(op.pops))
        if op.pushes:
            counter += 1
            dest = f"v{counter}"
            stack.append(dest)
            return counter, IRStatement(dest, name, args, ins.pc)
        return counter, IRStatement(None, name, args, ins.pc)


def _fold_block(statements: List[IRStatement]) -> List[IRStatement]:
    """Inline single-use pure definitions into their (later) user.

    Every op in ``_PURE_OPS`` is arithmetic or reads immutable inputs
    (call data, environment), so a folded definition can safely move
    forward across any statement; memory and storage reads (MLOAD,
    SLOAD) are deliberately not pure here.
    """
    use_counts: Dict[str, int] = {}
    for stmt in statements:
        for arg in stmt.args:
            use_counts[arg] = use_counts.get(arg, 0) + 1

    rendered: Dict[str, str] = {}  # deferred var -> expression text
    defer_order: List[str] = []
    out: List[IRStatement] = []

    for stmt in statements:
        args = tuple(rendered.pop(a, a) for a in stmt.args)
        stmt = IRStatement(stmt.dest, stmt.op, args, stmt.pc)
        if (
            stmt.dest is not None
            and stmt.op in _PURE_OPS
            and use_counts.get(stmt.dest, 0) == 1
        ):
            rendered[stmt.dest] = f"{stmt.op}({', '.join(stmt.args)})"
            defer_order.append(stmt.dest)
            continue
        out.append(stmt)

    # Definitions whose single use lives in a *different* block must
    # stay visible as explicit assignments.
    for var in defer_order:
        if var in rendered:
            out.append(IRStatement(var, "EXPR", (rendered[var],), -1))
    return out


# ----------------------------------------------------------------------
# Erays+
# ----------------------------------------------------------------------


@dataclass
class EraysPlusResult:
    text: str
    added_types: int = 0
    added_param_names: int = 0
    added_num_names: int = 0
    removed_lines: int = 0


class EraysPlus:
    """Signature-aware IR cleanup."""

    def __init__(self, signatures: Sequence[RecoveredSignature]) -> None:
        self.signatures = list(signatures)

    def enhance(self, bytecode: bytes) -> EraysPlusResult:
        lifted = Erays().lift(bytecode)
        result = EraysPlusResult(text="")

        # Per-function head-slot tables: each dispatcher target starts a
        # body region, and blocks in that region resolve slots against
        # that function's recovered signature.
        from repro.abi.types import parse_type

        def slot_table(sig) -> Dict[int, Tuple[str, str]]:
            table: Dict[int, Tuple[str, str]] = {}
            pos = 4
            for i, type_str in enumerate(sig.param_types, start=1):
                table[pos] = (f"arg{i}", type_str)
                try:
                    pos += parse_type(type_str).head_size()
                except ValueError:
                    pos += 32
            return table

        by_selector = {sig.selector: sig for sig in self.signatures}
        regions: List[Tuple[int, Dict[int, Tuple[str, str]]]] = []
        for target, selector_value in _dispatch_targets(bytecode):
            sig = by_selector.get(selector_value)
            if sig is not None:
                regions.append((target, slot_table(sig)))
        regions.sort()

        def slots_for(block_start: int) -> Dict[int, Tuple[str, str]]:
            active: Dict[int, Tuple[str, str]] = {}
            for target, table in regions:
                if target <= block_start:
                    active = table
                else:
                    break
            return active

        renames: Dict[str, str] = {}
        removable: Set[str] = set()
        out_blocks: List[str] = []

        annotated_slots: Set[Tuple[int, int]] = set()
        for block in lifted.blocks:
            slot_names = slots_for(block.start)
            region_key = id(slot_names)
            lines: List[str] = [f"block_{block.start:#x}:"]
            arg_vars: Set[str] = set()
            defs: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
            for stmt in block.statements:
                args = tuple(renames.get(a, a) for a in stmt.args)
                if stmt.dest is not None:
                    defs[stmt.dest] = (stmt.op, args)
                # Copy of a static-array parameter into memory: annotate
                # the copy with the argument's name and type.  The source
                # may be computed (base + loop offsets); trace its
                # constant term through the block-local definitions.
                if stmt.op == "CALLDATACOPY" and len(args) == 3:
                    src = _const_term(args[1], defs)
                    if src is not None and src in slot_names:
                        arg_name, type_str = slot_names[src]
                        lines.append(
                            f"  memory[{args[0]}] = {arg_name}: {type_str} "
                            f"(calldatacopy)"
                        )
                        if (region_key, src) not in annotated_slots:
                            annotated_slots.add((region_key, src))
                            result.added_types += 1
                            result.added_param_names += 1
                        continue
                # Calldata head read -> named, typed argument.
                if stmt.op == "CALLDATALOAD" and len(args) == 1 and _is_hex(args[0]):
                    slot = int(args[0], 16)
                    if slot in slot_names and stmt.dest is not None:
                        arg_name, type_str = slot_names[slot]
                        renames[stmt.dest] = arg_name
                        arg_vars.add(arg_name)
                        lines.append(
                            f"  {arg_name}: {type_str} = calldata[{args[0]}]"
                        )
                        result.added_types += 1
                        result.added_param_names += 1
                        continue
                # Offset/num dereference -> num(argN).
                if stmt.op == "CALLDATALOAD" and len(args) == 1 and stmt.dest:
                    inner = args[0]
                    if any(name in inner for name in arg_vars) or inner.startswith(
                        ("num(", "offset(")
                    ):
                        new_name = f"num({inner})"
                        renames[stmt.dest] = new_name
                        lines.append(f"  {new_name} = calldata[{inner}]")
                        result.added_num_names += 1
                        continue
                # Parameter-access plumbing: masks and address arithmetic
                # whose inputs are an argument and constants only.
                if (
                    stmt.dest is not None
                    and stmt.op in ("AND", "SIGNEXTEND", "ADD", "MUL", "SUB",
                                    "ISZERO", "LT", "GT")
                    and args
                    and all(
                        _is_hex(a) or a in arg_vars or a in removable
                        or a.startswith(("num(", "offset("))
                        for a in args
                    )
                    and any(not _is_hex(a) for a in args)
                ):
                    removable.add(stmt.dest)
                    renames[stmt.dest] = (
                        next(a for a in args if not _is_hex(a))
                    )
                    result.removed_lines += 1
                    continue
                rendered_dest = stmt.dest
                call = f"{stmt.op}({', '.join(args)})"
                if rendered_dest is not None:
                    lines.append(f"  {rendered_dest} = {call}")
                else:
                    lines.append(f"  {call}")
            out_blocks.append("\n".join(lines))

        result.text = "\n".join(out_blocks)
        return result


def _dispatch_targets(bytecode: bytes) -> List[Tuple[int, int]]:
    """(body start pc, selector) pairs from the dispatcher's EQ chain."""
    from repro.evm.disasm import disassemble as _disassemble

    instructions = _disassemble(bytecode)
    targets: List[Tuple[int, int]] = []
    for i, ins in enumerate(instructions):
        if (
            ins.op.is_push
            and ins.op.immediate_size == 4
            and i + 3 < len(instructions)
            and instructions[i + 1].op.name == "EQ"
            and instructions[i + 2].op.is_push
            and instructions[i + 3].op.name == "JUMPI"
        ):
            targets.append((instructions[i + 2].operand or 0, ins.operand or 0))
    return targets


def _is_hex(text: str) -> bool:
    return text.startswith("0x")


def _const_term(var: str, defs, depth: int = 8):
    """The constant addend of a value, traced through ADD definitions.

    Returns None when the value has no constant contribution at all
    (e.g. a bare loop counter), so that unrelated copies are not
    annotated as parameters.
    """
    if depth == 0:
        return None
    if _is_hex(var):
        return int(var, 16)
    definition = defs.get(var)
    if definition is None:
        return 0  # unknown symbol: contributes nothing
    op, args = definition
    if op == "ADD" and len(args) == 2:
        left = _const_term(args[0], defs, depth - 1)
        right = _const_term(args[1], defs, depth - 1)
        if left is None and right is None:
            return None
        return (left or 0) + (right or 0)
    if op == "MUL":
        return 0  # scaled loop offsets: no constant term
    return None
