"""Control-flow structuring: from basic blocks to while/if pseudocode.

Erays presents register-based statements per basic block; this module
recovers the *structure* — loops and conditionals — producing nested
pseudocode, which is what makes decompiled parameter-access code
actually readable (§6.3's end goal).

The algorithm is a pattern-driven structural analysis that exploits the
shapes structured compilers emit (and SigRec's corpus contains):

* **while loops** — a header block whose conditional exit jumps forward
  past a region that ends with an unconditional jump back to the header;
* **if/else** — a conditional forward jump over a fall-through region
  (optionally with a join);
* anything else degrades gracefully to explicit ``goto`` lines, never
  to wrong structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.erays import Erays, IRStatement, LiftedContract


@dataclass
class StructuredFunction:
    """Pseudocode lines (indentation encodes nesting)."""

    lines: List[str] = field(default_factory=list)

    def render(self) -> str:
        return "\n".join(self.lines)

    @property
    def loop_count(self) -> int:
        return sum(1 for line in self.lines if line.lstrip().startswith("while"))

    @property
    def goto_count(self) -> int:
        return sum(1 for line in self.lines if "goto " in line)


class Structurer:
    """Structures a lifted contract into nested pseudocode."""

    def structure(self, bytecode: bytes) -> StructuredFunction:
        lifted = Erays().lift(bytecode)
        blocks = {block.start: block for block in lifted.blocks}
        order = sorted(blocks)
        out = StructuredFunction()
        self._emit_region(blocks, order, 0, len(order), out, 0, set())
        return out

    # ------------------------------------------------------------------

    def _emit_region(
        self,
        blocks: Dict[int, object],
        order: List[int],
        lo: int,
        hi: int,
        out: StructuredFunction,
        depth: int,
        emitted: set,
    ) -> None:
        """Emit blocks order[lo:hi] as structured code."""
        index = lo
        while index < hi:
            start = order[index]
            if start in emitted:
                index += 1
                continue
            emitted.add(start)
            block = blocks[start]
            statements: List[IRStatement] = block.statements
            indent = "  " * depth
            out.lines.append(f"{indent}loc_{start:#x}:")

            terminator: Optional[IRStatement] = (
                statements[-1] if statements else None
            )
            body = statements[:-1] if self._is_flow(terminator) else statements
            for stmt in body:
                out.lines.append(f"{indent}  {stmt.render()}")

            if terminator is None or not self._is_flow(terminator):
                index += 1
                continue

            if terminator.op == "JUMP":
                target = self._const_target(terminator)
                if target is not None and target <= start:
                    out.lines.append(f"{indent}  continue  # -> loc_{target:#x}")
                elif target is not None:
                    out.lines.append(f"{indent}  goto loc_{target:#x}")
                else:
                    out.lines.append(f"{indent}  goto *{terminator.args[0]}")
                index += 1
                continue

            # JUMPI: try the while-loop shape first.
            target = self._const_target(terminator)
            cond = terminator.args[1]
            if target is not None:
                loop_end = self._loop_region(blocks, order, index, target)
                if loop_end is not None:
                    out.lines.append(f"{indent}  while not ({cond}):")
                    self._emit_region(
                        blocks, order, index + 1, loop_end, out, depth + 2, emitted
                    )
                    index = loop_end
                    # The exit target continues at this level.
                    continue
                # Forward conditional: if (cond) goto target.
                if target > start:
                    region_end = self._index_of(order, target)
                    if region_end is not None and region_end > index + 1:
                        out.lines.append(f"{indent}  if not ({cond}):")
                        self._emit_region(
                            blocks, order, index + 1, region_end, out,
                            depth + 2, emitted,
                        )
                        index = region_end
                        continue
                out.lines.append(f"{indent}  if ({cond}) goto loc_{target:#x}")
                index += 1
                continue
            out.lines.append(f"{indent}  if ({cond}) goto *{terminator.args[0]}")
            index += 1

    # ------------------------------------------------------------------

    @staticmethod
    def _is_flow(stmt: Optional[IRStatement]) -> bool:
        return stmt is not None and stmt.op in ("JUMP", "JUMPI")

    @staticmethod
    def _const_target(stmt: IRStatement) -> Optional[int]:
        target = stmt.args[0]
        if target.startswith("0x"):
            return int(target, 16)
        return None

    @staticmethod
    def _index_of(order: List[int], pc: int) -> Optional[int]:
        try:
            return order.index(pc)
        except ValueError:
            return None

    def _loop_region(
        self, blocks: Dict[int, object], order: List[int], head_index: int,
        exit_target: int,
    ) -> Optional[int]:
        """If order[head_index] heads a while loop whose exit is
        ``exit_target``, return the region-end index (the exit block's
        index); else None.

        Shape: the blocks between the header and the exit end with an
        unconditional JUMP back to the header.
        """
        head = order[head_index]
        exit_index = self._index_of(order, exit_target)
        if exit_index is None or exit_index <= head_index + 1:
            return None
        last_block = blocks[order[exit_index - 1]]
        statements = last_block.statements
        if not statements:
            return None
        terminator = statements[-1]
        if terminator.op != "JUMP":
            return None
        return exit_index if self._const_target(terminator) == head else None
