"""ParChecker: detecting invalid actual arguments (paper §6.1).

Given recovered function signatures, ParChecker validates the call data
of a transaction: is every actual argument encoded according to the ABI
specification?  It applies the padding rules of Table 6 (derived from
§2's per-type padding schemes) to basic types and static arrays, and
structural checks (offset field, num field, tail padding) to dynamic
types.  On top of that it recognizes the *short address attack*: a
``transfer(address,uint256)`` invocation whose arguments are shorter
than 64 bytes, so that the EVM's implicit zero-padding shifts the
amount left and multiplies it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.abi.codec import AbiCodecError, decode, encode, encode_call
from repro.abi.signature import FunctionSignature
from repro.abi.types import AbiType, parse_type

TRANSFER_SELECTOR = 0xA9059CBB  # transfer(address,uint256)


@dataclass
class CheckResult:
    """Outcome of validating one transaction's call data."""

    valid: bool
    known_function: bool
    selector: Optional[int] = None
    issues: List[str] = field(default_factory=list)
    short_address_attack: bool = False


class ParChecker:
    """Validates call data against recovered signatures.

    ``signatures`` maps function ids to parameter type lists — either
    strings ("address,uint256") or sequences of :class:`AbiType`.
    Typically built from SigRec's output::

        recovered = SigRec().recover_map(bytecode)
        checker = ParChecker({s: r.param_list for s, r in recovered.items()})
    """

    def __init__(self, signatures: Dict[int, object]) -> None:
        self._types: Dict[int, List[AbiType]] = {}
        for selector, params in signatures.items():
            self._types[selector] = _as_types(params)

    def check(self, calldata: bytes) -> CheckResult:
        if len(calldata) < 4:
            return CheckResult(
                valid=False, known_function=False,
                issues=["call data shorter than a function id"],
            )
        selector = int.from_bytes(calldata[:4], "big")
        types = self._types.get(selector)
        if types is None:
            return CheckResult(valid=True, known_function=False, selector=selector)

        result = CheckResult(valid=True, known_function=True, selector=selector)
        body = calldata[4:]

        if self._is_short_address_attack(selector, types, body):
            result.valid = False
            result.short_address_attack = True
            result.issues.append(
                "short address attack: truncated address borrows the "
                "amount's padding"
            )
            return result

        try:
            decode(types, body, strict=True)
        except AbiCodecError as exc:
            result.valid = False
            result.issues.append(str(exc))
        return result

    @staticmethod
    def _is_short_address_attack(
        selector: int, types: Sequence[AbiType], body: bytes
    ) -> bool:
        """§6.1's detection recipe for transfer-style functions.

        The arguments should be exactly 64 bytes (address + uint256).
        If ``len < 64``, the EVM pads with zeros on the right; the
        attack works when the *highest* ``64 - len`` bytes of the final
        32-byte word are zeros, i.e. the amount's leading zeros were
        consumed to complete the address.
        """
        if selector != TRANSFER_SELECTOR or len(types) != 2:
            return False
        expected = 64
        if len(body) >= expected or len(body) <= 32:
            return False
        missing = expected - len(body)
        last_word = body[-32:] if len(body) >= 32 else body
        return all(b == 0 for b in last_word[:missing])


def _as_types(params: object) -> List[AbiType]:
    if isinstance(params, str):
        if not params:
            return []
        return [parse_type(p) for p in _split_top(params)]
    return [p if isinstance(p, AbiType) else parse_type(str(p)) for p in params]  # type: ignore[union-attr]


def _split_top(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    parts.append(current)
    return parts


@dataclass
class ScanReport:
    """Aggregate result of auditing a chain's mined transactions."""

    blocks_scanned: int = 0
    transactions_scanned: int = 0
    invalid: int = 0
    short_address_attacks: int = 0
    unknown_function: int = 0
    flagged: List[CheckResult] = field(default_factory=list)

    @property
    def invalid_ratio(self) -> float:
        if not self.transactions_scanned:
            return 0.0
        return self.invalid / self.transactions_scanned


def scan_chain(chain, checker: "ParChecker") -> ScanReport:
    """Audit every message-call transaction in every mined block.

    The §6.1 pipeline as a reusable call: iterate the chain's blocks,
    validate each transaction's call data against the recovered
    signatures, and aggregate.
    """
    report = ScanReport()
    for block in chain.blocks:
        report.blocks_scanned += 1
        for tx in block.transactions:
            if tx.is_create:
                continue
            report.transactions_scanned += 1
            result = checker.check(tx.data)
            if result.known_function is False and result.valid:
                report.unknown_function += 1
            if not result.valid:
                report.invalid += 1
                report.flagged.append(result)
            if result.short_address_attack:
                report.short_address_attacks += 1
    return report


# ----------------------------------------------------------------------
# Malformation synthesis (for the §6.1 experiment)
# ----------------------------------------------------------------------

CORRUPTION_KINDS = (
    "short_address",
    "dirty_uint_padding",
    "dirty_bytes_padding",
    "bad_bool",
    "truncated_tail",
    "bad_offset",
)


def corrupt_calldata(
    sig: FunctionSignature, values: Sequence[object], kind: str, rng: random.Random
) -> Optional[bytes]:
    """Produce invalid call data of the requested kind, or None when the
    signature cannot host that malformation."""
    types = list(sig.params)
    data = bytearray(encode_call(sig.selector, types, values))

    if kind == "short_address":
        # Only meaningful for transfer(address,uint256).
        if sig.selector_hex != "0xa9059cbb":
            return None
        # Drop the address's trailing byte (attacker addresses end in
        # zeros): everything after shifts left and the EVM right-pads
        # the amount, multiplying it by 256.
        return bytes(data[:35] + data[36:])

    if kind == "dirty_uint_padding":
        for i, t in enumerate(types):
            canonical = t.canonical()
            if canonical.startswith("uint") and canonical != "uint256":
                head = 4 + sum(x.head_size() for x in types[:i])
                data[head] = 0xFF  # dirty the high-order padding byte
                return bytes(data)
        return None

    if kind == "dirty_bytes_padding":
        for i, t in enumerate(types):
            canonical = t.canonical()
            if canonical.startswith("bytes") and canonical not in ("bytes", "bytes32"):
                head = 4 + sum(x.head_size() for x in types[:i])
                data[head + 31] = 0xFF  # dirty the low-order padding byte
                return bytes(data)
        return None

    if kind == "bad_bool":
        for i, t in enumerate(types):
            if t.canonical() == "bool":
                head = 4 + sum(x.head_size() for x in types[:i])
                data[head + 31] = rng.randint(2, 255)
                return bytes(data)
        return None

    if kind == "truncated_tail":
        if not any(t.is_dynamic for t in types):
            return None
        if len(data) <= 36:
            return None
        return bytes(data[: len(data) - 32])

    if kind == "bad_offset":
        for i, t in enumerate(types):
            if t.is_dynamic:
                head = 4 + sum(x.head_size() for x in types[:i])
                data[head:head + 32] = (10**9).to_bytes(32, "big")
                return bytes(data)
        return None

    raise ValueError(f"unknown corruption kind: {kind}")
