"""Vulnerable-by-construction contracts for the security experiments.

Hand-assembled EVM contracts exhibiting the classic vulnerability
shapes the ContractFuzzer line of work hunts (§6.2), used to exercise
the oracles in :mod:`repro.apps.oracles` on *real executions* over the
chain substrate:

* :func:`build_bank` — the DAO shape: ``withdraw()`` sends the caller's
  balance with an external CALL *before* zeroing it (or after, for the
  fixed variant);
* :func:`build_attacker` — a contract whose fallback re-enters the bank
  while a storage counter lasts;
* :func:`build_unchecked_send` — calls a callee and ignores its failure
  (exception disorder);
* :func:`build_delegate_proxy` — DELEGATECALLs to an address taken from
  the call data (dangerous delegatecall).
"""

from __future__ import annotations

from repro.evm.asm import Assembler
from repro.evm.keccak import selector

WITHDRAW_SELECTOR = int.from_bytes(selector("withdraw()"), "big")
DEPOSIT_SELECTOR = int.from_bytes(selector("deposit()"), "big")


def build_bank(reentrant: bool = True) -> bytes:
    """A deposit/withdraw bank; ``reentrant=True`` plants the DAO bug."""
    asm = Assembler()
    asm.push(0).op("CALLDATALOAD").push(0xE0).op("SHR")
    asm.op("DUP1").push(WITHDRAW_SELECTOR, width=4).op("EQ")
    asm.push_label("withdraw").op("JUMPI")
    asm.op("DUP1").push(DEPOSIT_SELECTOR, width=4).op("EQ")
    asm.push_label("deposit").op("JUMPI")
    asm.op("STOP")

    asm.label("deposit").op("JUMPDEST").op("POP")
    # storage[caller] += msg.value
    asm.op("CALLER").op("SLOAD").op("CALLVALUE").op("ADD")
    asm.op("CALLER").op("SSTORE").op("STOP")

    asm.label("withdraw").op("JUMPDEST").op("POP")
    asm.op("CALLER").op("SLOAD")  # [bal]
    asm.op("DUP1").op("ISZERO").push_label("done").op("JUMPI")
    if not reentrant:
        asm.push(0).op("CALLER").op("SSTORE")  # clear first: safe
    asm.push(0).push(0).push(0).push(0)  # outSize outOff inSize inOff
    asm.op("DUP5")  # value = bal
    asm.op("CALLER").op("GAS").op("CALL").op("POP")
    if reentrant:
        asm.push(0).op("CALLER").op("SSTORE")  # clear last: the bug
    asm.label("done").op("JUMPDEST").op("POP").op("STOP")
    return asm.assemble()


def build_attacker(bank_address: int) -> bytes:
    """Re-enters ``bank_address.withdraw()`` while storage[0] lasts."""
    asm = Assembler()
    asm.push(0).op("SLOAD")  # [budget]
    asm.op("DUP1").op("ISZERO").push_label("stop").op("JUMPI")
    asm.push(1).op("SWAP1").op("SUB").push(0).op("SSTORE")
    asm.push(WITHDRAW_SELECTOR << 224, width=32).push(0).op("MSTORE")
    asm.push(0).push(0).push(4).push(0)  # outSize outOff inSize inOff
    asm.push(0)  # value
    asm.push(bank_address, width=20).op("GAS").op("CALL").op("POP")
    asm.op("STOP")
    asm.label("stop").op("JUMPDEST").op("POP").op("STOP")
    return asm.assemble()


def build_unchecked_send(callee_address: int) -> bytes:
    """CALLs the callee, drops the success flag, succeeds regardless."""
    asm = Assembler()
    asm.push(0).push(0).push(0).push(0).push(0)
    asm.push(callee_address, width=20).op("GAS").op("CALL")
    asm.op("POP").op("STOP")
    return asm.assemble()


def build_always_revert() -> bytes:
    asm = Assembler()
    asm.push(0).push(0).op("REVERT")
    return asm.assemble()


def build_delegate_proxy() -> bytes:
    """DELEGATECALLs the address supplied in calldata[4:36]."""
    asm = Assembler()
    asm.push(4).op("CALLDATALOAD")
    asm.push((1 << 160) - 1, width=20).op("AND")  # [target]
    asm.push(0).push(0).push(0).push(0)  # outSize outOff inSize inOff
    asm.op("DUP5")  # target
    asm.op("GAS").op("DELEGATECALL").op("POP")
    asm.op("POP").op("STOP")
    return asm.assemble()
