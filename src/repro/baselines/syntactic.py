"""A syntactic pattern-matching recoverer (no symbolic execution).

Tools like heimdall-rs and EVMole recover selectors and parameter types
by scanning instruction windows for the literal idioms compilers emit —
`PUSH<h> CALLDATALOAD` head reads, `PUSH20 0xff..ff AND` address masks,
`SIGNEXTEND` widths — without executing anything.  This class
implements that approach honestly: it is fast, it does well on
straight-line unobfuscated code, and it degrades exactly where the
paper (and our ablation) predicts — optimizer variance, patterns
spanning control flow, and any semantic-preserving rewrite.

It serves two roles here: an additional comparison point for the
dataset benchmarks, and the "attacker's view" in the obfuscation
ablation (its accuracy collapses where TASE's does not).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.tools import BaselineTool, RecoveryOutput
from repro.evm.disasm import Instruction, disassemble
from repro.sigrec.rules import high_mask_bytes, low_mask_bytes


class SyntacticMatcher(BaselineTool):
    """Selector extraction + literal-idiom type matching."""

    name = "syntactic"

    def recover(self, bytecode: bytes) -> RecoveryOutput:
        output = RecoveryOutput()
        instructions = disassemble(bytecode)
        regions = self._function_regions(instructions)
        for selector, (start, end) in regions.items():
            window = [i for i in instructions if start <= i.pc < end]
            output.functions[selector] = self._recover_region(window)
        return output

    # ------------------------------------------------------------------

    @staticmethod
    def _function_regions(
        instructions: List[Instruction],
    ) -> Dict[int, Tuple[int, int]]:
        """selector -> [body start, body end) from the dispatcher."""
        targets: List[Tuple[int, int]] = []  # (target pc, selector)
        for i, ins in enumerate(instructions):
            if (
                ins.op.is_push
                and ins.op.immediate_size == 4
                and i + 3 < len(instructions)
                and instructions[i + 1].op.name == "EQ"
                and instructions[i + 2].op.is_push
                and instructions[i + 3].op.name == "JUMPI"
            ):
                targets.append((instructions[i + 2].operand or 0, ins.operand or 0))
        targets.sort()
        regions: Dict[int, Tuple[int, int]] = {}
        code_end = instructions[-1].next_pc if instructions else 0
        for index, (start, selector) in enumerate(targets):
            end = targets[index + 1][0] if index + 1 < len(targets) else code_end
            regions[selector] = (start, end)
        return regions

    def _recover_region(self, window: List[Instruction]) -> str:
        """Literal window matching inside one body region."""
        heads: Dict[int, str] = {}
        for i, ins in enumerate(window):
            # PUSH<slot> CALLDATALOAD at an aligned head offset.
            if not (ins.op.is_push and ins.operand is not None):
                continue
            slot = ins.operand
            if slot < 4 or (slot - 4) % 32 != 0 or slot > 4 + 32 * 16:
                continue
            if i + 1 >= len(window) or window[i + 1].op.name != "CALLDATALOAD":
                continue
            heads.setdefault(slot, self._type_after(window, i + 2))
        return ",".join(heads[k] for k in sorted(heads))

    @staticmethod
    def _type_after(window: List[Instruction], index: int) -> str:
        """Type from the literal instructions right after the load."""
        look = window[index : index + 4]
        names = [ins.op.name for ins in look]
        # PUSH<mask> AND
        if len(look) >= 2 and look[0].op.is_push and names[1] == "AND":
            mask = look[0].operand or 0
            low = low_mask_bytes(mask)
            if low == 20:
                return "address"
            if 0 < low < 32:
                return f"uint{8 * low}"
            high = high_mask_bytes(mask)
            if 0 < high < 32:
                return f"bytes{high}"
        # PUSH<k> SIGNEXTEND
        if len(look) >= 2 and look[0].op.is_push and names[1] == "SIGNEXTEND":
            return f"int{((look[0].operand or 0) + 1) * 8}"
        if names[:2] == ["ISZERO", "ISZERO"]:
            return "bool"
        if len(look) >= 2 and look[0].op.is_push and names[1] == "BYTE":
            return "bytes32"
        return "uint256"
