"""Baseline recovery tools (OSD / EBD / JEB / Eveem / Gigahorse).

All expose ``recover(bytecode) -> RecoveryOutput`` mapping each function
id found in the dispatcher to a recovered parameter-list string (or None
when the tool has no answer).  Error behaviours follow the paper's
observations:

* pure database tools answer only for selectors in their database;
* Eveem falls back to simple heuristics that find parameter counts but
  type everything 32-byte-looking as ``uint256`` (the paper: "Eveem
  uses its simple rules to infer parameter types if it cannot find
  function signatures from EFSD");
* Gigahorse adds the catalogued failure modes: occasional aborts,
  nonexistent widths (``uint2304``), merged consecutive parameters,
  phantom extras and dropped parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.efsd import SignatureDatabase
from repro.sigrec.engine import TASEEngine
from repro.sigrec.selectors import extract_selectors


@dataclass
class RecoveryOutput:
    """What one tool produced for one contract."""

    aborted: bool = False
    # selector -> parameter list string ("uint256,address") or None.
    functions: Dict[int, Optional[str]] = field(default_factory=dict)


class BaselineTool:
    """Interface shared by all baselines."""

    name = "baseline"

    def recover(self, bytecode: bytes) -> RecoveryOutput:  # pragma: no cover
        raise NotImplementedError


class DatabaseTool(BaselineTool):
    """OSD / EBD / JEB: selector extraction + database lookup only."""

    def __init__(self, name: str, db: SignatureDatabase) -> None:
        self.name = name
        self.db = db

    def recover(self, bytecode: bytes) -> RecoveryOutput:
        output = RecoveryOutput()
        for selector in extract_selectors(bytecode):
            output.functions[selector] = self.db.lookup_params(selector)
        return output


def _crude_param_count(bytecode: bytes, selector: int) -> List[str]:
    """Shared heuristic core: head-slot counting via a shallow TASE run.

    Finds roughly how many 32-byte head slots the function touches and
    calls every one a uint256 — dynamic types are reported as ``bytes``
    when an offset dereference is obvious.  This deliberately reproduces
    the *class* of inference simple tools do, not SigRec's rules.
    """
    engine = TASEEngine(bytecode, max_total_steps=60_000, max_paths=128)
    result = engine.run()
    events = result.functions.get(selector)
    if events is None:
        return []
    heads: Dict[int, str] = {}
    offset_bases = []
    address_mask = (1 << 160) - 1
    for load in events.loads:
        if load.loc.is_const and load.loc.value >= 4 and (load.loc.value - 4) % 32 == 0:
            kind = "uint256"
            # Eveem's rules do recognize the 20-byte address mask.
            for use in events.uses:
                if (
                    use.kind == "and_mask"
                    and use.operand == address_mask
                    and ("cd", load.loc.value) in use.labels
                ):
                    kind = "address"
            heads[load.loc.value] = kind
            offset_bases.append((load.loc.value, load.result))
    for loc_value, base in offset_bases:
        derived = any(
            other.loc.contains(base) for other in events.loads
        ) or any(
            copy.src.contains(base) or copy.length.contains(base)
            for copy in events.copies
        )
        if derived:
            heads[loc_value] = "bytes"
    return [heads[k] for k in sorted(heads)]


class EveemLike(BaselineTool):
    """Eveem: EFSD lookup, then simple heuristic rules on a miss."""

    name = "eveem"

    def __init__(self, db: SignatureDatabase, miss_rate: float = 0.01,
                 seed: int = 7) -> None:
        self.db = db
        self._rng = random.Random(seed)
        self.miss_rate = miss_rate  # functions it fails to produce at all

    def recover(self, bytecode: bytes) -> RecoveryOutput:
        output = RecoveryOutput()
        for selector in extract_selectors(bytecode):
            hit = self.db.lookup_params(selector)
            if hit is not None:
                output.functions[selector] = hit
                continue
            if self._rng.random() < self.miss_rate:
                output.functions[selector] = None
                continue
            params = _crude_param_count(bytecode, selector)
            output.functions[selector] = ",".join(params)
        return output


class GigahorseLike(BaselineTool):
    """Gigahorse: database + lifting heuristics with catalogued errors."""

    name = "gigahorse"

    def __init__(self, db: SignatureDatabase, abort_rate: float = 0.034,
                 db_miss_rate: float = 0.05, seed: int = 11) -> None:
        self.db = db
        self.abort_rate = abort_rate
        self.db_miss_rate = db_miss_rate  # "fails to recover some
        # function signatures even they are recorded in EFSD"
        self._rng = random.Random(seed)

    def recover(self, bytecode: bytes) -> RecoveryOutput:
        output = RecoveryOutput()
        if self._rng.random() < self.abort_rate:
            output.aborted = True
            return output
        for selector in extract_selectors(bytecode):
            hit = self.db.lookup_params(selector)
            if hit is not None and self._rng.random() > self.db_miss_rate:
                output.functions[selector] = hit
                continue
            params = _crude_param_count(bytecode, selector)
            output.functions[selector] = self._mangle(params)
        return output

    def _mangle(self, params: List[str]) -> str:
        """Inject the four error classes §5.6 catalogues."""
        rng = self._rng
        params = list(params)
        roll = rng.random()
        if params and roll < 0.25:
            # Wrong, possibly nonexistent width (e.g. uint2304).
            index = rng.randrange(len(params))
            params[index] = f"uint{rng.choice([2304, 3228, 8, 32]) }"
        elif len(params) >= 2 and roll < 0.45:
            # Merge consecutive parameters into one nonexistent type.
            index = rng.randrange(len(params) - 1)
            merged_width = 256 * 2 + rng.randrange(4) * 8
            params[index : index + 2] = [f"uint{merged_width}"]
        elif roll < 0.6:
            params.append("uint256")  # phantom extra parameter
        elif params and roll < 0.75:
            params.pop(rng.randrange(len(params)))  # dropped parameter
        return ",".join(params)
