"""A simulated Ethereum Function Signature Database (EFSD).

EFSD-style databases map 4-byte function ids to known canonical
signatures, crowd-sourced from published source code.  Their defining
property — the one the paper's Table 1-3 comparison hinges on — is
*incompleteness*: they contain signatures only for functions someone
published, so closed-source and freshly synthesized functions miss.

``build_efsd`` populates a database from a corpus with a configurable
coverage fraction, modelling that gap.
"""

from __future__ import annotations

import json
import random
from typing import Dict, Iterable, List, Optional

from repro.abi.signature import FunctionSignature
from repro.corpus.datasets import Corpus


class SignatureDatabase:
    """selector -> list of known canonical signature strings.

    Supports the 4byte-directory-style JSON interchange format
    (``{"0xa9059cbb": ["transfer(address,uint256)"], ...}``) via
    :meth:`save` / :meth:`load`.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, List[str]] = {}

    def add(self, signature: FunctionSignature) -> None:
        selector = int.from_bytes(signature.selector, "big")
        texts = self._entries.setdefault(selector, [])
        canonical = signature.canonical()
        if canonical not in texts:
            texts.append(canonical)

    def add_text(self, text: str) -> None:
        self.add(FunctionSignature.parse(text))

    def lookup(self, selector: int) -> Optional[str]:
        """The first known signature for ``selector`` (as real tools
        return), or None on a miss."""
        texts = self._entries.get(selector)
        return texts[0] if texts else None

    def lookup_params(self, selector: int) -> Optional[str]:
        """Just the parameter list of the first hit."""
        text = self.lookup(selector)
        if text is None:
            return None
        return text[text.index("(") + 1 : -1]

    def __contains__(self, selector: int) -> bool:
        return selector in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Dict[int, List[str]]:
        """A copy of the full selector -> signatures mapping."""
        return {sel: list(texts) for sel, texts in self._entries.items()}

    def save(self, path: str) -> None:
        """Write the database as 4byte-style JSON."""
        payload = {
            f"0x{selector:08x}": texts
            for selector, texts in sorted(self._entries.items())
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "SignatureDatabase":
        """Read a database written by :meth:`save` (or hand-authored in
        the same format).  Signatures are re-validated: an entry whose
        text does not hash to its key is rejected."""
        with open(path) as handle:
            payload = json.load(handle)
        db = cls()
        for key, texts in payload.items():
            selector = int(key, 16)
            for text in texts:
                sig = FunctionSignature.parse(text)
                if int.from_bytes(sig.selector, "big") != selector:
                    raise ValueError(
                        f"corrupt database entry: {text!r} does not hash "
                        f"to {key}"
                    )
                db.add(sig)
        return db


def build_efsd(
    corpora: Iterable[Corpus],
    coverage: float = 0.5,
    seed: int = 99,
    extra_signatures: Iterable[str] = (),
) -> SignatureDatabase:
    """Populate a database with ``coverage`` of the corpus functions.

    The paper finds that >49% of open-source function signatures are
    missing from EFSD, so the default coverage is 0.5.
    """
    rng = random.Random(seed)
    db = SignatureDatabase()
    for corpus in corpora:
        for _case, sig, _quirk in corpus.functions():
            if rng.random() < coverage:
                db.add(sig)
    for text in extra_signatures:
        db.add_text(text)
    return db
