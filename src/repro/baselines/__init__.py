"""Baseline tools the paper compares against (§5.6).

The real tools fall into two families, both reproduced structurally:

* **database lookups** (OSD, EBD, JEB) — they know exactly the
  signatures recorded in a database such as EFSD and nothing else;
* **database + simple heuristics** (Eveem, Gigahorse) — on a database
  miss they fall back to crude rules that recover parameter counts but
  mangle types, abort on some contracts, and emit the error classes the
  paper catalogues (nonexistent widths, merged or phantom parameters).
"""

from repro.baselines.efsd import SignatureDatabase, build_efsd
from repro.baselines.syntactic import SyntacticMatcher
from repro.baselines.tools import (
    BaselineTool,
    DatabaseTool,
    EveemLike,
    GigahorseLike,
    RecoveryOutput,
)

__all__ = [
    "SignatureDatabase",
    "build_efsd",
    "BaselineTool",
    "DatabaseTool",
    "EveemLike",
    "GigahorseLike",
    "SyntacticMatcher",
    "RecoveryOutput",
]
