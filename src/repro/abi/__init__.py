"""ABI substrate: Solidity/Vyper type system, codec, signatures."""

from repro.abi.types import (
    AbiType,
    AddressType,
    ArrayType,
    BoolType,
    BoundedBytesType,
    BoundedStringType,
    BytesType,
    DecimalType,
    FixedBytesType,
    IntType,
    StringType,
    TupleType,
    UIntType,
    parse_type,
)
from repro.abi.codec import AbiCodecError, decode, encode, encode_call
from repro.abi.signature import FunctionSignature, Visibility, Language

__all__ = [
    "AbiType",
    "UIntType",
    "IntType",
    "AddressType",
    "BoolType",
    "FixedBytesType",
    "BytesType",
    "StringType",
    "DecimalType",
    "BoundedBytesType",
    "BoundedStringType",
    "ArrayType",
    "TupleType",
    "parse_type",
    "encode",
    "decode",
    "encode_call",
    "AbiCodecError",
    "FunctionSignature",
    "Visibility",
    "Language",
]
