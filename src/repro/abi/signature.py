"""Function signatures: name + ordered parameter types.

A signature's *function id* (selector) is the first 4 bytes of the
Keccak-256 hash of its canonical string, e.g.
``keccak256("transfer(address,uint256)")[:4] == a9059cbb`` — computed
with our own Keccak implementation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.abi.types import AbiType, parse_type
from repro.evm.keccak import keccak256


class Visibility(enum.Enum):
    """Solidity function visibility; drives the parameter accessing mode.

    Public functions copy composite parameters into memory with
    CALLDATACOPY; external functions read items from the call data on
    demand with CALLDATALOAD (paper §2.3.1).  Vyper emits the same code
    for both.
    """

    PUBLIC = "public"
    EXTERNAL = "external"


class Language(enum.Enum):
    SOLIDITY = "solidity"
    VYPER = "vyper"


@dataclass(frozen=True)
class FunctionSignature:
    """An (immutable) function signature with optional source metadata."""

    name: str
    params: Tuple[AbiType, ...]
    visibility: Visibility = Visibility.PUBLIC
    language: Language = Language.SOLIDITY

    @staticmethod
    def parse(text: str, visibility: Visibility = Visibility.PUBLIC,
              language: Language = Language.SOLIDITY) -> "FunctionSignature":
        """Parse ``"name(type1,type2,...)"`` into a signature."""
        text = text.strip()
        open_idx = text.index("(")
        if not text.endswith(")"):
            raise ValueError(f"malformed signature: {text!r}")
        name = text[:open_idx]
        inner = text[open_idx + 1 : -1].strip()
        params: Tuple[AbiType, ...] = ()
        if inner:
            params = tuple(parse_type(part) for part in _split_top(inner))
        return FunctionSignature(name, params, visibility, language)

    def canonical(self) -> str:
        """The canonical string the selector is hashed over."""
        return f"{self.name}({','.join(p.canonical() for p in self.params)})"

    def param_list(self) -> str:
        """Just the comma-separated canonical parameter types."""
        return ",".join(p.canonical() for p in self.params)

    @property
    def selector(self) -> bytes:
        return keccak256(self.canonical().encode("ascii"))[:4]

    @property
    def selector_hex(self) -> str:
        return "0x" + self.selector.hex()

    def __str__(self) -> str:
        return self.canonical()


def _split_top(text: str) -> Sequence[str]:
    """Split a parameter list at top-level commas (tuples may nest)."""
    parts = []
    depth = 0
    current = ""
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    parts.append(current)
    return parts
