"""The parameter type system shared by the whole reproduction.

Models every Solidity parameter type the paper's §2.3.1 covers (five
basic types, static/dynamic/nested arrays, ``bytes``, ``string``,
structs) plus Vyper's additions from §2.3.2 (``decimal``, fixed-size
lists, fixed-size byte arrays ``bytes[maxLen]``, fixed-size strings
``string[maxLen]``, structs).

Each type knows:

* its canonical ABI string (what a signature database stores, what the
  selector is hashed over);
* its head width and whether it is *dynamic* (encoded in the tail via an
  offset field);
* how to draw a random well-formed Python value for itself (used by the
  corpus generator, the fuzzer and the property tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class AbiTypeError(ValueError):
    """Raised for malformed type constructions or unparsable strings."""


@dataclass(frozen=True)
class AbiType:
    """Base class of all parameter types."""

    def canonical(self) -> str:
        """Canonical ABI string used in signatures ("uint256", "bytes32[2]")."""
        raise NotImplementedError

    @property
    def is_dynamic(self) -> bool:
        """True when the value is encoded in the tail behind an offset."""
        return False

    def head_size(self) -> int:
        """Bytes this type occupies in the head section of an encoding."""
        return 32

    def static_size(self) -> int:
        """Total encoded size for static types.

        Raises AbiTypeError for dynamic types, whose size depends on the
        value.
        """
        if self.is_dynamic:
            raise AbiTypeError(f"{self.canonical()} has no static size")
        return 32

    def random_value(self, rng: random.Random, depth: int = 0):
        """A uniformly-ish random well-formed Python value of this type."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.canonical()


# ----------------------------------------------------------------------
# Basic types (Solidity §2.3.1 item 1; Vyper shares five of them)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UIntType(AbiType):
    """uint<M>, 8 <= M <= 256, M % 8 == 0. Left-padded with zeros."""

    bits: int = 256

    def __post_init__(self) -> None:
        if not (8 <= self.bits <= 256 and self.bits % 8 == 0):
            raise AbiTypeError(f"invalid uint width: {self.bits}")

    def canonical(self) -> str:
        return f"uint{self.bits}"

    def random_value(self, rng: random.Random, depth: int = 0) -> int:
        return rng.getrandbits(self.bits)


@dataclass(frozen=True)
class IntType(AbiType):
    """int<M>, sign-extended to 32 bytes."""

    bits: int = 256

    def __post_init__(self) -> None:
        if not (8 <= self.bits <= 256 and self.bits % 8 == 0):
            raise AbiTypeError(f"invalid int width: {self.bits}")

    def canonical(self) -> str:
        return f"int{self.bits}"

    def random_value(self, rng: random.Random, depth: int = 0) -> int:
        return rng.getrandbits(self.bits) - (1 << (self.bits - 1))


@dataclass(frozen=True)
class AddressType(AbiType):
    """A 20-byte account address, encoded like uint160."""

    def canonical(self) -> str:
        return "address"

    def random_value(self, rng: random.Random, depth: int = 0) -> int:
        return rng.getrandbits(160)


@dataclass(frozen=True)
class BoolType(AbiType):
    """true/false, encoded as uint8 0/1."""

    def canonical(self) -> str:
        return "bool"

    def random_value(self, rng: random.Random, depth: int = 0) -> bool:
        return rng.random() < 0.5


@dataclass(frozen=True)
class FixedBytesType(AbiType):
    """bytes<M>, 0 < M <= 32. Right-padded with zeros."""

    size: int = 32

    def __post_init__(self) -> None:
        if not (0 < self.size <= 32):
            raise AbiTypeError(f"invalid bytesM size: {self.size}")

    def canonical(self) -> str:
        return f"bytes{self.size}"

    def random_value(self, rng: random.Random, depth: int = 0) -> bytes:
        return bytes(rng.getrandbits(8) for _ in range(self.size))


@dataclass(frozen=True)
class DecimalType(AbiType):
    """Vyper decimal: fixed-point with 10 decimal places, int168 range.

    Canonical ABI name (what Vyper hashes into the selector) is
    ``fixed168x10``; early Vyper used int128-scale bounds which is what
    the paper describes, so we model the value range as
    [-2**127, 2**127 - 1] scaled by 10**10.
    """

    def canonical(self) -> str:
        return "fixed168x10"

    def random_value(self, rng: random.Random, depth: int = 0) -> int:
        return rng.getrandbits(127) - (1 << 126)


# ----------------------------------------------------------------------
# Dynamic blobs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BytesType(AbiType):
    """Solidity ``bytes``: dynamic byte sequence, length in a num field."""

    @property
    def is_dynamic(self) -> bool:
        return True

    def canonical(self) -> str:
        return "bytes"

    def random_value(self, rng: random.Random, depth: int = 0) -> bytes:
        return bytes(rng.getrandbits(8) for _ in range(rng.randint(0, 70)))


@dataclass(frozen=True)
class StringType(AbiType):
    """Solidity ``string``: same layout as bytes (paper §2.3.1 item 4)."""

    @property
    def is_dynamic(self) -> bool:
        return True

    def canonical(self) -> str:
        return "string"

    def random_value(self, rng: random.Random, depth: int = 0) -> str:
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 "
        return "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 50)))


@dataclass(frozen=True)
class BoundedBytesType(AbiType):
    """Vyper ``bytes[maxLen]``: byte sequence with a compile-time cap.

    ABI-encodes exactly like ``bytes`` (the cap is enforced, not
    encoded), so its canonical string is "bytes"; the Vyper-notation
    name is available via :meth:`vyper_name`.
    """

    max_length: int = 32

    def __post_init__(self) -> None:
        if self.max_length <= 0:
            raise AbiTypeError("bytes[maxLen] needs a positive cap")

    @property
    def is_dynamic(self) -> bool:
        return True

    def canonical(self) -> str:
        return "bytes"

    def vyper_name(self) -> str:
        return f"bytes[{self.max_length}]"

    def random_value(self, rng: random.Random, depth: int = 0) -> bytes:
        return bytes(
            rng.getrandbits(8) for _ in range(rng.randint(0, self.max_length))
        )


@dataclass(frozen=True)
class BoundedStringType(AbiType):
    """Vyper ``string[maxLen]``; layout identical to bytes[maxLen]."""

    max_length: int = 32

    def __post_init__(self) -> None:
        if self.max_length <= 0:
            raise AbiTypeError("string[maxLen] needs a positive cap")

    @property
    def is_dynamic(self) -> bool:
        return True

    def canonical(self) -> str:
        return "string"

    def vyper_name(self) -> str:
        return f"string[{self.max_length}]"

    def random_value(self, rng: random.Random, depth: int = 0) -> str:
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        return "".join(
            rng.choice(alphabet) for _ in range(rng.randint(0, self.max_length))
        )


# ----------------------------------------------------------------------
# Arrays and structs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayType(AbiType):
    """T[N] (static, ``length`` set) or T[] (dynamic, ``length`` None).

    Multidimensional arrays nest: ``uint256[3][2]`` is
    ``ArrayType(ArrayType(uint256, 3), 2)`` — an array of two
    ``uint256[3]``, matching the paper's reversed-notation discussion.
    A *nested array* in the paper's sense is an ArrayType with a dynamic
    array anywhere below the top dimension.
    """

    element: AbiType = field(default_factory=UIntType)
    length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.length is not None and self.length <= 0:
            raise AbiTypeError("static array length must be positive")

    @property
    def is_dynamic(self) -> bool:
        if self.length is None:
            return True
        return self.element.is_dynamic

    def canonical(self) -> str:
        suffix = f"[{self.length}]" if self.length is not None else "[]"
        return self.element.canonical() + suffix

    def static_size(self) -> int:
        if self.is_dynamic:
            raise AbiTypeError(f"{self.canonical()} has no static size")
        assert self.length is not None
        return self.length * self.element.static_size()

    def head_size(self) -> int:
        return 32 if self.is_dynamic else self.static_size()

    @property
    def dimensions(self) -> List[Optional[int]]:
        """Dimension sizes from the outermost (highest) inwards."""
        dims: List[Optional[int]] = [self.length]
        inner = self.element
        while isinstance(inner, ArrayType):
            dims.append(inner.length)
            inner = inner.element
        return dims

    @property
    def base_element(self) -> AbiType:
        """The non-array element type at the bottom of the nesting."""
        inner: AbiType = self.element
        while isinstance(inner, ArrayType):
            inner = inner.element
        return inner

    @property
    def is_nested_dynamic(self) -> bool:
        """Paper's "nested array": some non-top dimension is dynamic."""
        inner = self.element
        while isinstance(inner, ArrayType):
            if inner.length is None:
                return True
            inner = inner.element
        return False

    def random_value(self, rng: random.Random, depth: int = 0) -> list:
        count = self.length if self.length is not None else rng.randint(0, 3)
        return [self.element.random_value(rng, depth + 1) for _ in range(count)]


@dataclass(frozen=True)
class TupleType(AbiType):
    """A struct ``(T1,...,Tn)``.

    Static structs of basic types have the same layout as their items
    laid out individually (paper §2.3.1 item 5) — the ground-truth
    canonicalizer in :mod:`repro.abi.signature` encodes that
    indistinguishability.
    """

    components: Tuple[AbiType, ...] = ()

    def __post_init__(self) -> None:
        if not self.components:
            raise AbiTypeError("a struct needs at least one component")

    @property
    def is_dynamic(self) -> bool:
        return any(c.is_dynamic for c in self.components)

    def canonical(self) -> str:
        return "(" + ",".join(c.canonical() for c in self.components) + ")"

    def static_size(self) -> int:
        if self.is_dynamic:
            raise AbiTypeError(f"{self.canonical()} has no static size")
        return sum(c.static_size() for c in self.components)

    def head_size(self) -> int:
        return 32 if self.is_dynamic else self.static_size()

    def random_value(self, rng: random.Random, depth: int = 0) -> tuple:
        return tuple(c.random_value(rng, depth + 1) for c in self.components)


# ----------------------------------------------------------------------
# Parsing canonical type strings
# ----------------------------------------------------------------------


def _parse_base(text: str) -> AbiType:
    if text == "address":
        return AddressType()
    if text == "bool":
        return BoolType()
    if text == "bytes":
        return BytesType()
    if text == "string":
        return StringType()
    if text in ("fixed168x10", "decimal"):
        return DecimalType()
    if text == "uint":
        return UIntType(256)
    if text == "int":
        return IntType(256)
    if text.startswith("uint"):
        return UIntType(int(text[4:]))
    if text.startswith("int"):
        return IntType(int(text[3:]))
    if text.startswith("bytes"):
        return FixedBytesType(int(text[5:]))
    raise AbiTypeError(f"unknown type: {text!r}")


def _split_tuple(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise AbiTypeError(f"unbalanced parentheses in {text!r}")
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    parts.append(current)
    return parts


def parse_type(text: str) -> AbiType:
    """Parse a canonical ABI type string into an :class:`AbiType`.

    Supports the full grammar including tuples and arbitrarily nested
    arrays: ``"(uint256,bytes)[2][]"``.
    """
    text = text.strip()
    if not text:
        raise AbiTypeError("empty type string")

    # Peel array suffixes from the right.
    if text.endswith("]"):
        open_idx = text.rindex("[")
        inner_text, dim = text[:open_idx], text[open_idx + 1 : -1]
        element = parse_type(inner_text)
        if dim == "":
            return ArrayType(element, None)
        return ArrayType(element, int(dim))

    if text.startswith("("):
        if not text.endswith(")"):
            raise AbiTypeError(f"unbalanced tuple in {text!r}")
        inner = text[1:-1]
        if not inner:
            raise AbiTypeError("empty tuple type")
        return TupleType(tuple(parse_type(part) for part in _split_tuple(inner)))

    return _parse_base(text)
