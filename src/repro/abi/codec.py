"""Full ABI encoder/decoder (head/tail scheme).

Implements the Contract ABI specification the paper's §2 describes:
basic values padded to 32 bytes (left for numbers, right for bytesM),
dynamic values referenced through offset fields relative to the start of
the enclosing block, arrays carrying a num field, structs encoded as
tuples.  The decoder is strict by default — it verifies padding and
offsets — because ParChecker (§6.1) is built on precisely those checks.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.abi.types import (
    AbiType,
    AddressType,
    ArrayType,
    BoolType,
    BoundedBytesType,
    BoundedStringType,
    BytesType,
    DecimalType,
    FixedBytesType,
    IntType,
    StringType,
    TupleType,
    UIntType,
)

_WORD = 1 << 256


class AbiCodecError(ValueError):
    """Raised when a value cannot be encoded or data cannot be decoded."""


def _pad_right(data: bytes) -> bytes:
    remainder = len(data) % 32
    return data if remainder == 0 else data + b"\x00" * (32 - remainder)


def _encode_word(value: int) -> bytes:
    return (value % _WORD).to_bytes(32, "big")


def _encode_single(abi_type: AbiType, value: Any) -> bytes:
    """Encode one *static* head word (basic types)."""
    if isinstance(abi_type, UIntType):
        if not isinstance(value, int) or isinstance(value, bool):
            raise AbiCodecError(f"{abi_type} expects int, got {type(value).__name__}")
        if not (0 <= value < (1 << abi_type.bits)):
            raise AbiCodecError(f"{value} out of range for {abi_type}")
        return _encode_word(value)
    if isinstance(abi_type, IntType):
        if not isinstance(value, int) or isinstance(value, bool):
            raise AbiCodecError(f"{abi_type} expects int, got {type(value).__name__}")
        bound = 1 << (abi_type.bits - 1)
        if not (-bound <= value < bound):
            raise AbiCodecError(f"{value} out of range for {abi_type}")
        return _encode_word(value)
    if isinstance(abi_type, AddressType):
        if not isinstance(value, int) or not (0 <= value < (1 << 160)):
            raise AbiCodecError(f"invalid address value: {value!r}")
        return _encode_word(value)
    if isinstance(abi_type, BoolType):
        if not isinstance(value, bool):
            raise AbiCodecError(f"bool expects bool, got {type(value).__name__}")
        return _encode_word(1 if value else 0)
    if isinstance(abi_type, FixedBytesType):
        if not isinstance(value, (bytes, bytearray)) or len(value) != abi_type.size:
            raise AbiCodecError(f"{abi_type} expects exactly {abi_type.size} bytes")
        return bytes(value) + b"\x00" * (32 - abi_type.size)
    if isinstance(abi_type, DecimalType):
        bound = 1 << 127
        if not isinstance(value, int) or not (-bound <= value < bound):
            raise AbiCodecError(f"{value} out of range for decimal")
        return _encode_word(value)
    raise AbiCodecError(f"not a basic type: {abi_type}")


def _encode_value(abi_type: AbiType, value: Any) -> bytes:
    """Encode one value of any type (without its enclosing offset)."""
    if isinstance(abi_type, (BytesType, BoundedBytesType)):
        if isinstance(value, str):
            value = value.encode("utf-8")
        if not isinstance(value, (bytes, bytearray)):
            raise AbiCodecError("bytes value expected")
        if isinstance(abi_type, BoundedBytesType) and len(value) > abi_type.max_length:
            raise AbiCodecError(
                f"value of {len(value)} bytes exceeds cap {abi_type.max_length}"
            )
        return _encode_word(len(value)) + _pad_right(bytes(value))
    if isinstance(abi_type, (StringType, BoundedStringType)):
        if not isinstance(value, str):
            raise AbiCodecError("string value expected")
        raw = value.encode("utf-8")
        if isinstance(abi_type, BoundedStringType) and len(raw) > abi_type.max_length:
            raise AbiCodecError(
                f"string of {len(raw)} bytes exceeds cap {abi_type.max_length}"
            )
        return _encode_word(len(raw)) + _pad_right(raw)
    if isinstance(abi_type, ArrayType):
        if not isinstance(value, (list, tuple)):
            raise AbiCodecError(f"{abi_type} expects a sequence")
        if abi_type.length is not None and len(value) != abi_type.length:
            raise AbiCodecError(
                f"{abi_type} expects {abi_type.length} items, got {len(value)}"
            )
        body = _encode_block([abi_type.element] * len(value), list(value))
        if abi_type.length is None:
            return _encode_word(len(value)) + body
        return body
    if isinstance(abi_type, TupleType):
        if not isinstance(value, (list, tuple)) or len(value) != len(
            abi_type.components
        ):
            raise AbiCodecError(f"{abi_type} expects {len(abi_type.components)} items")
        return _encode_block(list(abi_type.components), list(value))
    return _encode_single(abi_type, value)


def _encode_block(types: Sequence[AbiType], values: Sequence[Any]) -> bytes:
    """Encode a head/tail block for parallel type and value lists."""
    if len(types) != len(values):
        raise AbiCodecError("type/value count mismatch")
    head_size = sum(t.head_size() for t in types)
    heads: List[bytes] = []
    tails: List[bytes] = []
    tail_offset = head_size
    for abi_type, value in zip(types, values):
        if abi_type.is_dynamic:
            heads.append(_encode_word(tail_offset))
            tail = _encode_value(abi_type, value)
            tails.append(tail)
            tail_offset += len(tail)
        else:
            heads.append(_encode_value(abi_type, value))
    return b"".join(heads) + b"".join(tails)


def encode(types: Sequence[AbiType], values: Sequence[Any]) -> bytes:
    """ABI-encode ``values`` according to ``types`` (no selector)."""
    return _encode_block(types, values)


def encode_call(selector: bytes, types: Sequence[AbiType], values: Sequence[Any]) -> bytes:
    """Build complete call data: 4-byte function id + encoded arguments."""
    if len(selector) != 4:
        raise AbiCodecError("selector must be 4 bytes")
    return selector + encode(types, values)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _read_word(data: bytes, offset: int) -> int:
    if offset + 32 > len(data):
        raise AbiCodecError(f"truncated data at offset {offset}")
    return int.from_bytes(data[offset : offset + 32], "big")


def _decode_single(abi_type: AbiType, data: bytes, offset: int, strict: bool) -> Any:
    word = _read_word(data, offset)
    if isinstance(abi_type, UIntType):
        if strict and abi_type.bits < 256 and word >= (1 << abi_type.bits):
            raise AbiCodecError(f"dirty padding for {abi_type}")
        return word
    if isinstance(abi_type, IntType):
        signed = word - _WORD if word >= (_WORD >> 1) else word
        bound = 1 << (abi_type.bits - 1)
        if strict and not (-bound <= signed < bound):
            raise AbiCodecError(f"dirty sign extension for {abi_type}")
        return signed
    if isinstance(abi_type, AddressType):
        if strict and word >= (1 << 160):
            raise AbiCodecError("dirty padding for address")
        return word
    if isinstance(abi_type, BoolType):
        if strict and word > 1:
            raise AbiCodecError("invalid bool encoding")
        return bool(word)
    if isinstance(abi_type, FixedBytesType):
        raw = data[offset : offset + 32]
        if strict and any(raw[abi_type.size :]):
            raise AbiCodecError(f"dirty padding for {abi_type}")
        return raw[: abi_type.size]
    if isinstance(abi_type, DecimalType):
        signed = word - _WORD if word >= (_WORD >> 1) else word
        bound = 1 << 127
        if strict and not (-bound <= signed < bound):
            raise AbiCodecError("decimal out of range")
        return signed
    raise AbiCodecError(f"not a basic type: {abi_type}")


def _decode_value(abi_type: AbiType, data: bytes, offset: int, strict: bool) -> Any:
    if isinstance(abi_type, (BytesType, BoundedBytesType, StringType, BoundedStringType)):
        length = _read_word(data, offset)
        start = offset + 32
        padded = (length + 31) // 32 * 32
        if start + padded > len(data):
            raise AbiCodecError("bytes/string tail runs past end of data")
        raw = data[start : start + length]
        if strict and any(data[start + length : start + padded]):
            raise AbiCodecError("dirty padding in bytes/string tail")
        if isinstance(abi_type, (StringType, BoundedStringType)):
            try:
                return raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise AbiCodecError("invalid utf-8 in string") from exc
        return raw
    if isinstance(abi_type, ArrayType):
        if abi_type.length is None:
            count = _read_word(data, offset)
            if count > len(data):  # cheap sanity bound against absurd nums
                raise AbiCodecError("implausible array length")
            return _decode_block(
                [abi_type.element] * count, data, offset + 32, strict
            )
        return _decode_block(
            [abi_type.element] * abi_type.length, data, offset, strict
        )
    if isinstance(abi_type, TupleType):
        return tuple(_decode_block(list(abi_type.components), data, offset, strict))
    return _decode_single(abi_type, data, offset, strict)


def _decode_block(
    types: Sequence[AbiType], data: bytes, base: int, strict: bool
) -> List[Any]:
    values: List[Any] = []
    head = base
    for abi_type in types:
        if abi_type.is_dynamic:
            rel = _read_word(data, head)
            target = base + rel
            if target > len(data):
                raise AbiCodecError(f"offset field points past end: {rel}")
            values.append(_decode_value(abi_type, data, target, strict))
            head += 32
        else:
            values.append(_decode_value(abi_type, data, head, strict))
            head += abi_type.head_size()
    return values


def decode(types: Sequence[AbiType], data: bytes, strict: bool = True) -> List[Any]:
    """Decode ABI ``data`` (without selector) into Python values.

    With ``strict=True`` (the default) the decoder additionally verifies
    padding bits and offset sanity and raises :class:`AbiCodecError` on
    any malformation — this is the validation core ParChecker uses.
    """
    return _decode_block(types, data, 0, strict)
