"""Hot-loop step attribution for the superblock TASE driver.

The superblock driver executes straight-line runs as one fused loop, so
the natural attribution unit is the *superblock entry pc*: the driver
calls :meth:`HotLoopProfiler.record_block` once per block transition
with the entry pc and the number of steps charged while the block was
current (body steps plus its control op, including truncation probes).
That granularity keeps the disabled cost to one ``is not None`` check
per superblock — the per-step hot path never sees the profiler — which
is how the <3% disabled-overhead gate holds.

Two modes:

* ``"count"`` — exact: the per-pc tallies sum to precisely the steps
  the driver charged (``sum(counts.values()) == TASEResult.total_steps``
  for a single run), the mode tests and ``repro report`` use;
* ``"sample"`` — every ``interval`` executed steps one sample of
  ``interval`` steps is attributed to the block that crossed the
  threshold.  Cheaper bookkeeping per call and statistically the same
  table on hot contracts: the production mode.

The legacy per-opcode driver is not attributed (use ``step_hook`` for
per-pc tracing there); profiles are meaningful for the default
superblock driver only.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "HotLoopProfiler",
    "render_hotspots",
    "top_hotspots",
]


class HotLoopProfiler:
    """Attributes executed TASE steps to superblock entry pcs."""

    __slots__ = ("mode", "interval", "counts", "_credit")

    def __init__(self, mode: str = "count", interval: int = 256) -> None:
        if mode not in ("count", "sample"):
            raise ValueError(f"unknown profiler mode: {mode!r}")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.mode = mode
        self.interval = interval
        #: superblock entry pc -> attributed steps.
        self.counts: Dict[int, int] = {}
        self._credit = interval

    def record_block(self, pc: int, steps: int) -> None:
        """Charge ``steps`` driver steps to the block entered at ``pc``.

        Called by the driver once per superblock transition — never per
        step — so even counting mode costs one dict update per block.
        """
        if self.mode == "count":
            counts = self.counts
            counts[pc] = counts.get(pc, 0) + steps
            return
        credit = self._credit - steps
        if credit > 0:
            self._credit = credit
            return
        interval = self.interval
        samples = 1 + (-credit) // interval
        self._credit = credit + samples * interval
        counts = self.counts
        counts[pc] = counts.get(pc, 0) + samples * interval

    # -- aggregation ---------------------------------------------------

    @property
    def total_steps(self) -> int:
        """Steps attributed so far (exact in counting mode)."""
        return sum(self.counts.values())

    def snapshot(self) -> Dict[int, int]:
        """A copy of the current tallies (diff with :meth:`delta`)."""
        return dict(self.counts)

    def delta(self, before: Mapping[int, int]) -> Dict[int, int]:
        """Per-pc step growth since a :meth:`snapshot` (positive only)."""
        out: Dict[int, int] = {}
        for pc, count in self.counts.items():
            grown = count - before.get(pc, 0)
            if grown > 0:
                out[pc] = grown
        return out

    def merge(self, other) -> None:
        """Fold another profiler's (or a plain dict's) tallies in."""
        counts = other.counts if isinstance(other, HotLoopProfiler) else other
        for pc, count in counts.items():
            self.counts[pc] = self.counts.get(pc, 0) + int(count)

    def clear(self) -> None:
        self.counts.clear()
        self._credit = self.interval

    def top(self, n: int = 10) -> List[Tuple[int, int]]:
        """The ``n`` hottest blocks as ``(entry pc, steps)``."""
        return top_hotspots(self.counts, n)

    def render_table(self, n: int = 10) -> str:
        """The per-contract top-N hotspot table."""
        return render_hotspots(self.counts, n, mode=self.mode)


def top_hotspots(counts: Mapping[int, int], n: int = 10) -> List[Tuple[int, int]]:
    """``(entry pc, steps)`` sorted hottest first (pc breaks ties)."""
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:n]


def render_hotspots(
    counts: Mapping[int, int], n: int = 10, mode: Optional[str] = None
) -> str:
    """Human rendering of a hotspot table."""
    total = sum(counts.values())
    title = "hot superblocks"
    if mode == "sample":
        title += " (sampled)"
    lines = [f"{title}: {total:,} steps over {len(counts)} blocks"]
    if not total:
        return lines[0] + "\n"
    for pc, steps in top_hotspots(counts, n):
        lines.append(f"  {pc:#08x}  {steps:>12,} steps  {steps / total:6.1%}")
    return "\n".join(lines) + "\n"
