"""Prometheus text-exposition rendering of a metrics document.

The future service layer scrapes ``/metrics``; this helper turns a
:class:`~repro.obs.metrics.MetricsRegistry` (or its serialized
document) into the ``text/plain; version=0.0.4`` exposition format:
dots in metric names become underscores, labels render as
``name{label="value"}``, and histograms expand into the conventional
cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.obs.metrics import MetricsRegistry, parse_key

_NAME_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _prom_name(name: str) -> str:
    out = "".join(ch if ch in _NAME_SAFE else "_" for ch in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{_prom_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(source: Union[MetricsRegistry, Mapping]) -> str:
    """The exposition text for a registry or a metrics document."""
    doc = source.to_dict() if isinstance(source, MetricsRegistry) else source
    lines = []
    typed = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in doc.get("counters", {}).items():
        name, labels = parse_key(key)
        name = _prom_name(name)
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(labels)} {_format_value(value)}")
    for key, value in doc.get("gauges", {}).items():
        name, labels = parse_key(key)
        name = _prom_name(name)
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(labels)} {_format_value(float(value))}")
    for key, payload in doc.get("histograms", {}).items():
        name, labels = parse_key(key)
        name = _prom_name(name)
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            label_text = _prom_labels(labels, extra=f'le="{bound}"')
            lines.append(f"{name}_bucket{label_text} {cumulative}")
        label_text = _prom_labels(labels, extra='le="+Inf"')
        lines.append(f"{name}_bucket{label_text} {payload['count']}")
        lines.append(
            f"{name}_sum{_prom_labels(labels)} {_format_value(payload['sum'])}"
        )
        lines.append(f"{name}_count{_prom_labels(labels)} {payload['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
