"""Prometheus text-exposition rendering of a metrics document.

The future service layer scrapes ``/metrics``; this helper turns a
:class:`~repro.obs.metrics.MetricsRegistry` (or its serialized
document) into the ``text/plain; version=0.0.4`` exposition format:
dots in metric names become underscores, labels render as
``name{label="value"}``, and histograms expand into the conventional
cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Tuple, Union

from repro.obs.metrics import MetricsRegistry, parse_key

_NAME_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _prom_name(name: str) -> str:
    out = "".join(ch if ch in _NAME_SAFE else "_" for ch in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{_prom_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float):
        # Non-finite floats must use the exposition spellings — and the
        # ``int(value)`` probe below would raise on them anyway.
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value):
            return str(int(value))
    return repr(value)


def render_prometheus(source: Union[MetricsRegistry, Mapping]) -> str:
    """The exposition text for a registry or a metrics document."""
    doc = source.to_dict() if isinstance(source, MetricsRegistry) else source
    lines = []
    typed = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in doc.get("counters", {}).items():
        name, labels = parse_key(key)
        name = _prom_name(name)
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(labels)} {_format_value(value)}")
    for key, value in doc.get("gauges", {}).items():
        name, labels = parse_key(key)
        name = _prom_name(name)
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(labels)} {_format_value(float(value))}")
    for key, payload in doc.get("histograms", {}).items():
        name, labels = parse_key(key)
        name = _prom_name(name)
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            label_text = _prom_labels(labels, extra=f'le="{bound}"')
            lines.append(f"{name}_bucket{label_text} {cumulative}")
        label_text = _prom_labels(labels, extra='le="+Inf"')
        lines.append(f"{name}_bucket{label_text} {payload['count']}")
        lines.append(
            f"{name}_sum{_prom_labels(labels)} {_format_value(payload['sum'])}"
        )
        lines.append(f"{name}_count{_prom_labels(labels)} {payload['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Exposition validation (CI endpoint smoke + tests)
# ----------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_TYPE_KINDS = frozenset(
    ("counter", "gauge", "histogram", "summary", "untyped")
)


def _parse_label_block(line: str, start: int) -> Tuple[Dict[str, str], int]:
    """Parse ``{a="b",...}`` beginning at ``line[start] == '{'``.

    Returns the label dict and the index just past the closing brace;
    raises ValueError on malformed syntax.  Handles the three escapes
    the renderer emits (backslash, quote, newline).
    """
    labels: Dict[str, str] = {}
    i = start + 1
    if i < len(line) and line[i] == "}":
        return labels, i + 1
    while True:
        eq = line.find("=", i)
        if eq == -1:
            raise ValueError("label without '='")
        name = line[i:eq]
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"bad label name {name!r}")
        if eq + 1 >= len(line) or line[eq + 1] != '"':
            raise ValueError(f"label {name!r} value is not quoted")
        i = eq + 2
        chars: List[str] = []
        while True:
            if i >= len(line):
                raise ValueError(f"label {name!r} value is unterminated")
            ch = line[i]
            if ch == "\\":
                if i + 1 >= len(line):
                    raise ValueError("dangling escape in label value")
                chars.append(line[i + 1])
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            chars.append(ch)
            i += 1
        labels[name] = "".join(chars)
        if i < len(line) and line[i] == ",":
            i += 1
            continue
        if i < len(line) and line[i] == "}":
            return labels, i + 1
        raise ValueError("label block not closed with '}'")


def _parse_sample(line: str) -> Tuple[str, Dict[str, str], float]:
    """One sample line -> ``(name, labels, value)``; raises ValueError."""
    brace = line.find("{")
    space = line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        name = line[:brace]
        labels, end = _parse_label_block(line, brace)
        rest = line[end:]
    else:
        name, _, rest = line.partition(" ")
        labels = {}
    fields = rest.split()
    if not fields or len(fields) > 2:  # optional trailing timestamp
        raise ValueError("expected 'value [timestamp]' after the name")
    return name, labels, float(fields[0])


def validate_exposition(text: str) -> List[str]:
    """Structural checks over a text exposition; returns error strings.

    Validates what a scraper would choke on: metric/label name
    charsets, parseable sample values, and — for ``_bucket`` series —
    that cumulative counts are monotone in ``le`` and agree with the
    ``_count`` sample.  An empty list means the exposition parses.
    """
    errors: List[str] = []
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                  List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"line {lineno}: malformed TYPE comment")
                    continue
                if not _METRIC_NAME_RE.match(parts[2]):
                    errors.append(
                        f"line {lineno}: bad metric name {parts[2]!r}"
                    )
                if parts[3] not in _TYPE_KINDS:
                    errors.append(
                        f"line {lineno}: unknown metric type {parts[3]!r}"
                    )
            continue
        try:
            name, labels, value = _parse_sample(line)
        except ValueError as exc:
            errors.append(f"line {lineno}: {exc}")
            continue
        if not _METRIC_NAME_RE.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
            continue
        if name.endswith("_bucket"):
            if "le" not in labels:
                errors.append(
                    f"line {lineno}: bucket sample without an 'le' label"
                )
                continue
            le_text = labels.pop("le")
            try:
                le = float(le_text)
            except ValueError:
                errors.append(f"line {lineno}: bad le bound {le_text!r}")
                continue
            family = (name[: -len("_bucket")],
                      tuple(sorted(labels.items())))
            buckets.setdefault(family, []).append((le, value))
        elif name.endswith("_count"):
            counts[(name[: -len("_count")],
                    tuple(sorted(labels.items())))] = value
    for (base, labels), series in sorted(buckets.items()):
        ordered = sorted(series, key=lambda pair: pair[0])
        label_note = (
            "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            if labels else ""
        )
        previous = None
        for le, value in ordered:
            if previous is not None and value < previous:
                errors.append(
                    f"{base}{label_note}: bucket counts not cumulative "
                    f"(le={le:g} has {value:g} < {previous:g})"
                )
            previous = value
        if ordered and ordered[-1][0] != float("inf"):
            errors.append(f"{base}{label_note}: no le=\"+Inf\" bucket")
        total = counts.get((base, labels))
        if total is not None and ordered and ordered[-1][1] != total:
            errors.append(
                f"{base}{label_note}: +Inf bucket {ordered[-1][1]:g} "
                f"!= _count {total:g}"
            )
    return errors
