"""Append-only run ledger: one JSONL record per recovery.

The aggregate registry answers "how is the pipeline doing"; the ledger
answers "which contracts were slow and why".  Every :meth:`SigRec.recover
<repro.sigrec.api.SigRec.recover>` call with a ledger attached appends
one record — code hash, options fingerprint, strategy, per-phase
seconds (deltas of the ``phase.seconds`` histograms, so the ledger's
sums reconcile exactly with the registry), the cache/memo tier outcome,
TASE step/fork/truncation tallies, and diagnostics — and
:class:`~repro.sigrec.batch.BatchRecovery` merges worker records
additively, the same pattern as the metrics documents.

Two storage modes:

* ``path=None`` — records accumulate in memory on :attr:`RunLedger.records`
  (the batch-worker mode: the parent ships the list home and appends it
  to its own ledger);
* a file path — each record is one appended JSON line, with size-based
  rotation (``ledger.jsonl`` -> ``ledger.jsonl.1`` -> ... up to
  ``backups``), so an always-on service never grows one file without
  bound.

The query helpers (:func:`filter_records`, :func:`top_by_phase`,
:func:`summarize`) operate on plain record lists so they work equally
on a live in-memory ledger and on :func:`read_ledger` output.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "RunLedger",
    "filter_records",
    "ledger_paths",
    "phase_delta",
    "phase_snapshot",
    "read_ledger",
    "summarize",
    "top_by_elapsed",
    "top_by_phase",
]

#: Version of the ledger record layout.
LEDGER_SCHEMA_VERSION = 1

#: Default rotation threshold (bytes) and number of rotated backups.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024
DEFAULT_BACKUPS = 3


class RunLedger:
    """Append-only JSONL ledger with size-based rotation.

    Thread-safe: the batch parent appends cache-hit records while the
    telemetry endpoint may be summarizing from another thread.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        backups: int = DEFAULT_BACKUPS,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = max(0, backups)
        #: In-memory records (``path=None`` mode only).
        self.records: List[dict] = []
        #: Total records appended through this instance.
        self.written = 0
        self._lock = threading.Lock()
        if path:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)

    # -- writing -------------------------------------------------------

    def append(self, record: Mapping) -> None:
        """Append one record (a ``schema`` field is added if missing)."""
        payload = dict(record)
        payload.setdefault("schema", LEDGER_SCHEMA_VERSION)
        with self._lock:
            self.written += 1
            if self.path is None:
                self.records.append(payload)
                return
            line = json.dumps(payload, sort_keys=True) + "\n"
            self._rotate_if_needed(len(line))
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)

    def extend(self, records: Iterable[Mapping]) -> None:
        """Append many records (the batch parent merging worker output)."""
        for record in records:
            self.append(record)

    def _rotate_if_needed(self, incoming: int) -> None:
        """Rotate ``path`` -> ``path.1`` -> ... when the next write would
        push the active file past ``max_bytes``."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size == 0 or size + incoming <= self.max_bytes:
            return
        if self.backups == 0:
            os.unlink(self.path)
            return
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.unlink(oldest)
        for index in range(self.backups - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")

    # -- reading -------------------------------------------------------

    def all_records(self) -> List[dict]:
        """Every record this ledger can see, oldest first.

        In-memory mode returns a copy of :attr:`records`; file mode
        re-reads the rotation chain, so records appended by other
        processes to the same path are visible too.
        """
        with self._lock:
            if self.path is None:
                return list(self.records)
        return read_ledger(self.path)


def ledger_paths(path: str) -> List[str]:
    """The rotation chain for ``path`` that exists on disk, oldest first."""
    backups = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        backups.append(f"{path}.{index}")
        index += 1
    chain = list(reversed(backups))
    if os.path.exists(path):
        chain.append(path)
    return chain


def read_ledger(path: str) -> List[dict]:
    """Parse a ledger (including rotated backups), oldest record first.

    Malformed lines — e.g. a final line truncated mid-write — are
    skipped, like :func:`repro.obs.trace.read_trace`.
    """
    records: List[dict] = []
    for chunk in ledger_paths(path):
        try:
            handle = open(chunk, "r", encoding="utf-8")
        except OSError:
            continue
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    return records


# ----------------------------------------------------------------------
# Phase accounting helpers
# ----------------------------------------------------------------------


def phase_snapshot(registry) -> Dict[str, float]:
    """``phase -> cumulative seconds`` from ``phase.seconds`` histograms.

    ``SigRec.recover`` snapshots before and after each call; the delta
    is the per-record phase attribution, which by construction sums to
    the registry's histogram totals.
    """
    return {
        phase: total
        for phase, (total, _count) in registry.histogram_sums(
            "phase.seconds", "phase"
        ).items()
    }


def phase_delta(
    before: Mapping[str, float], after: Mapping[str, float]
) -> Dict[str, float]:
    """Per-phase second deltas between two snapshots (positive only)."""
    deltas: Dict[str, float] = {}
    for phase, total in after.items():
        delta = total - before.get(phase, 0.0)
        if delta > 0:
            deltas[phase] = delta
    return deltas


# ----------------------------------------------------------------------
# Query API
# ----------------------------------------------------------------------


def _is_truncated(record: Mapping) -> bool:
    tase = record.get("tase")
    if not isinstance(tase, Mapping):
        return False
    return bool(tase.get("truncated_paths") or tase.get("truncated_steps"))


def filter_records(
    records: Iterable[Mapping],
    strategy: Optional[str] = None,
    tier: Optional[str] = None,
    truncated: Optional[bool] = None,
) -> List[Mapping]:
    """Records matching every given criterion (``None`` = don't care)."""
    out = []
    for record in records:
        if strategy is not None and record.get("strategy") != strategy:
            continue
        if tier is not None and record.get("tier") != tier:
            continue
        if truncated is not None and _is_truncated(record) != truncated:
            continue
        out.append(record)
    return out


def top_by_phase(
    records: Iterable[Mapping], phase: str, n: int = 10
) -> List[Mapping]:
    """The ``n`` records that spent the most seconds in ``phase``."""
    def seconds(record: Mapping) -> float:
        phases = record.get("phases")
        if not isinstance(phases, Mapping):
            return 0.0
        return float(phases.get(phase, 0.0))

    ranked = sorted(records, key=seconds, reverse=True)
    return [record for record in ranked[:n] if seconds(record) > 0]


def top_by_elapsed(records: Iterable[Mapping], n: int = 10) -> List[Mapping]:
    """The ``n`` slowest records by total elapsed seconds."""
    return sorted(
        records,
        key=lambda record: float(record.get("elapsed_seconds", 0.0)),
        reverse=True,
    )[:n]


def summarize(records: Iterable[Mapping]) -> dict:
    """Aggregate view of a record list (the ``/ledger/summary`` payload)."""
    records = list(records)
    strategies: Dict[str, int] = {}
    tiers: Dict[str, int] = {}
    phase_seconds: Dict[str, float] = {}
    functions = 0
    truncated = 0
    elapsed = 0.0
    for record in records:
        strategies[record.get("strategy", "unknown")] = (
            strategies.get(record.get("strategy", "unknown"), 0) + 1
        )
        tiers[record.get("tier", "unknown")] = (
            tiers.get(record.get("tier", "unknown"), 0) + 1
        )
        functions += int(record.get("functions", 0))
        elapsed += float(record.get("elapsed_seconds", 0.0))
        if _is_truncated(record):
            truncated += 1
        phases = record.get("phases")
        if isinstance(phases, Mapping):
            for phase, seconds in phases.items():
                phase_seconds[phase] = (
                    phase_seconds.get(phase, 0.0) + float(seconds)
                )
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "records": len(records),
        "functions": functions,
        "elapsed_seconds": round(elapsed, 9),
        "strategies": dict(sorted(strategies.items())),
        "tiers": dict(sorted(tiers.items())),
        "phase_seconds": {
            phase: round(seconds, 9)
            for phase, seconds in sorted(phase_seconds.items())
        },
        "truncated": truncated,
    }
