"""Human rendering of a metrics document: the ``repro stats`` command.

Takes the JSON document written by ``--metrics-out`` (optionally plus
the JSONL trace from ``--trace-out``) and answers the questions the
paper's evaluation answers with tables: how much work did TASE do,
which rules carry the recovery, how effective are pruning and the
cache, where did the wall-clock go, and which contracts were slowest.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import parse_key


def _labelled_counters(
    counters: Mapping[str, int], name: str, label: str
) -> Dict[str, int]:
    """``label value -> count`` for every ``name{label=...}`` counter."""
    out: Dict[str, int] = defaultdict(int)
    for key, value in counters.items():
        base, labels = parse_key(key)
        if base == name and label in labels:
            out[labels[label]] += value
    return dict(out)


def _ratio(part: float, whole: float) -> str:
    return f"{part / whole:.1%}" if whole else "n/a"


def render_stats(
    doc: Mapping,
    trace_records: Optional[Sequence[Mapping]] = None,
    top: int = 10,
) -> str:
    """The ``repro stats`` text for one metrics document."""
    counters: Mapping[str, int] = doc.get("counters", {})
    histograms: Mapping[str, Mapping] = doc.get("histograms", {})
    lines: List[str] = []

    # -- engine work ---------------------------------------------------
    paths = counters.get("tase.paths", 0)
    steps = counters.get("tase.steps", 0)
    runs = counters.get("tase.runs", 0)
    forks = counters.get("tase.forks", 0)
    suppressed = counters.get("tase.forks_suppressed", 0)
    exhaustions = counters.get("tase.budget_exhaustions", 0)
    # Single-core symbolic throughput: steps over the tase phase's
    # wall-clock (the same ratio BENCH_throughput.json freezes as
    # ``tase.steps_per_second``).
    tase_seconds = 0.0
    for key, payload in histograms.items():
        base, labels = parse_key(key)
        if base == "phase.seconds" and labels.get("phase") == "tase":
            tase_seconds += float(payload["sum"])
    lines.append("engine")
    lines.append(
        f"  runs {runs:,} | paths {paths:,} | steps {steps:,}"
        + (f" ({steps / max(1, runs):,.0f} steps/run)" if runs else "")
        + (
            f" | {steps / tase_seconds:,.0f} steps/s"
            if steps and tase_seconds
            else ""
        )
    )
    lines.append(
        f"  forks taken {forks:,} | suppressed by pruning {suppressed:,} "
        f"(prune ratio {_ratio(suppressed, forks + suppressed)}) | "
        f"branch-budget exhaustions {exhaustions:,}"
    )
    truncations = _labelled_counters(counters, "tase.truncations", "reason")
    if truncations:
        detail = ", ".join(
            f"{reason}: {count}" for reason, count in sorted(truncations.items())
        )
        lines.append(f"  truncated runs: {detail} (recovery may be incomplete)")

    # -- recovery outcome ----------------------------------------------
    recovers = counters.get("recover.calls", 0)
    functions = counters.get("recover.functions", 0)
    if recovers or functions:
        lines.append("recovery")
        lines.append(
            f"  recover() calls {recovers:,} | functions recovered {functions:,}"
        )

    # -- rules ---------------------------------------------------------
    fired = _labelled_counters(counters, "rules.fired", "rule")
    if fired:
        total_fired = sum(fired.values())
        ranked = sorted(fired.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        lines.append(f"rules (fired {total_fired:,} times, top {len(ranked)})")
        for rule, count in ranked:
            lines.append(f"  {rule:<4} {count:>8,}  {_ratio(count, total_fired)}")
        conflicts = _labelled_counters(counters, "rules.conflicts", "rule")
        if conflicts:
            shadowed = ", ".join(
                f"{rule}: {count}"
                for rule, count in sorted(
                    conflicts.items(), key=lambda kv: (-kv[1], kv[0])
                )[:top]
            )
            lines.append(f"  shadowed candidates: {shadowed}")

    # -- cache ---------------------------------------------------------
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    invalidations = counters.get("cache.invalidations", 0)
    if hits or misses or invalidations:
        lines.append("cache")
        lines.append(
            f"  hits {hits:,} | misses {misses:,} "
            f"(hit rate {_ratio(hits, hits + misses)}) | "
            f"invalidations {invalidations:,}"
        )

    # -- function-body memo --------------------------------------------
    memo_tiers = _labelled_counters(counters, "memo.hits", "tier")
    memo_hits = sum(memo_tiers.values()) + counters.get("memo.hits", 0)
    memo_misses = counters.get("memo.misses", 0)
    if memo_hits or memo_misses:
        tier_note = ""
        if memo_tiers:
            tier_note = " [" + ", ".join(
                f"{tier}: {count:,}"
                for tier, count in sorted(memo_tiers.items())
            ) + "]"
        lines.append("function memo")
        lines.append(
            f"  hits {memo_hits:,}{tier_note} | misses {memo_misses:,} "
            f"(hit rate {_ratio(memo_hits, memo_hits + memo_misses)}) | "
            f"writes {counters.get('memo.writes', 0):,}"
        )

    # -- inference memo ------------------------------------------------
    inf_tiers = _labelled_counters(counters, "infmemo.hits", "tier")
    inf_hits = sum(inf_tiers.values()) + counters.get("infmemo.hits", 0)
    inf_misses = counters.get("infmemo.misses", 0)
    if inf_hits or inf_misses:
        tier_note = ""
        if inf_tiers:
            tier_note = " [" + ", ".join(
                f"{tier}: {count:,}"
                for tier, count in sorted(inf_tiers.items())
            ) + "]"
        lines.append("inference memo")
        lines.append(
            f"  hits {inf_hits:,}{tier_note} | misses {inf_misses:,} "
            f"(hit rate {_ratio(inf_hits, inf_hits + inf_misses)}) | "
            f"writes {counters.get('infmemo.writes', 0):,}"
        )

    # -- batch scheduler -----------------------------------------------
    units = counters.get("batch.units", 0)
    if units:
        gauges: Mapping[str, float] = doc.get("gauges", {})
        sharded_runs = counters.get("tase.sharded_runs", 0)
        shards = counters.get("tase.shards", 0)
        lines.append("scheduler")
        lines.append(
            f"  units {units:,} | sharded recoveries {sharded_runs:,} "
            f"({shards:,} shards) | last run: "
            f"queue peak {gauges.get('batch.queue_peak', 0):,.0f}, "
            f"steals {gauges.get('batch.steals', 0):,.0f}"
        )

    # -- evaluation ----------------------------------------------------
    eval_contracts = counters.get("eval.contracts", 0)
    if eval_contracts:
        eval_functions = counters.get("eval.functions", 0)
        eval_correct = counters.get("eval.correct", 0)
        lines.append("evaluation")
        lines.append(
            f"  contracts {eval_contracts:,} | functions {eval_functions:,} | "
            f"correct {eval_correct:,} "
            f"(accuracy {_ratio(eval_correct, eval_functions)})"
        )

    # -- phase timing --------------------------------------------------
    phase_rows: List[Tuple[str, float, int]] = []
    for key, payload in histograms.items():
        base, labels = parse_key(key)
        if base == "phase.seconds" and "phase" in labels:
            phase_rows.append(
                (labels["phase"], float(payload["sum"]), int(payload["count"]))
            )
    if phase_rows:
        total_time = sum(row[1] for row in phase_rows)
        lines.append("phases")
        for phase, seconds, count in sorted(phase_rows, key=lambda r: -r[1]):
            lines.append(
                f"  {phase:<16} {seconds:>9.3f}s  {_ratio(seconds, total_time):>6}"
                f"  ({count:,} spans)"
            )

    # -- slowest contracts (from the trace) ----------------------------
    if trace_records:
        timed = []
        for record in trace_records:
            if record.get("type") != "event":
                continue
            attrs = record.get("attrs", {})
            elapsed = attrs.get("elapsed")
            if record.get("name") in ("contract", "contract_eval") and elapsed:
                timed.append((float(elapsed), attrs))
        timed.sort(key=lambda pair: -pair[0])
        if timed:
            lines.append(f"slowest contracts (top {min(top, len(timed))})")
            for elapsed, attrs in timed[:top]:
                ident = attrs.get("sha") or f"#{attrs.get('index', '?')}"
                functions = attrs.get("functions")
                suffix = f"  {functions} function(s)" if functions is not None else ""
                lines.append(f"  {ident:<18} {elapsed:>9.3f}s{suffix}")

    if not lines:
        return "empty metrics document\n"
    return "\n".join(lines) + "\n"
