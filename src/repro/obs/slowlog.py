"""Slow-exemplar log: the K slowest batch units, with evidence.

A regression on a 100k-contract batch shows up first as a shifted
``contract.seconds`` histogram — which names no contract.  The slowlog
keeps the K slowest (contract, selector-group) units *with their span
trees and diagnostics*, so the report comes with concrete reproducers:
which contract, which unit, which phase dominated, and what the
cross-check had to say about it.

:class:`SlowLog` is a bounded min-heap keyed by elapsed seconds;
:meth:`offer` is O(log K) and drops fast units immediately, so feeding
every unit of a chain-scale batch through it is cheap.
"""

from __future__ import annotations

import heapq
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "SLOWLOG_SCHEMA_VERSION",
    "SlowLog",
    "span_tree_lines",
]

SLOWLOG_SCHEMA_VERSION = 1


def span_tree_lines(spans: Iterable[Mapping]) -> List[str]:
    """Render span records (``span_start``/``span_end`` dicts) as an
    indented duration tree, e.g.::

        recover 0.101s
          static_analysis 0.012s
          tase 0.080s
          inference 0.007s
    """
    starts: Dict[int, Mapping] = {}
    order: List[int] = []
    durations: Dict[int, float] = {}
    children: Dict[Optional[int], List[int]] = {}
    for record in spans:
        kind = record.get("type")
        if kind == "span_start":
            span_id = record.get("id")
            if span_id is None:
                continue
            starts[span_id] = record
            order.append(span_id)
        elif kind == "span_end":
            span_id = record.get("id")
            if span_id is not None:
                durations[span_id] = float(record.get("dur", 0.0))
    for span_id in order:
        parent = starts[span_id].get("parent")
        if parent not in starts:
            parent = None
        children.setdefault(parent, []).append(span_id)

    lines: List[str] = []

    def walk(span_id: int, depth: int) -> None:
        record = starts[span_id]
        duration = durations.get(span_id)
        note = f" {duration:.3f}s" if duration is not None else ""
        lines.append(f"{'  ' * depth}{record.get('name', '?')}{note}")
        for child in children.get(span_id, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return lines


class SlowLog:
    """Keeps the ``k`` slowest units offered to it."""

    def __init__(self, k: int = 10) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.offered = 0
        # Min-heap of (elapsed, sequence, entry): the fastest kept unit
        # is at the root and is evicted first.  The sequence breaks
        # elapsed ties so entries never compare.
        self._heap: List[Tuple[float, int, dict]] = []
        self._sequence = 0

    def offer(
        self,
        elapsed: float,
        contract: str,
        unit: Optional[Tuple[int, int]] = None,
        spans: Optional[List[Mapping]] = None,
        diagnostics: Optional[List[Mapping]] = None,
        **extra: Any,
    ) -> bool:
        """Consider one finished unit; returns True when it was kept."""
        self.offered += 1
        if len(self._heap) >= self.k and elapsed <= self._heap[0][0]:
            return False
        entry = {
            "elapsed_seconds": round(float(elapsed), 9),
            "contract": contract,
            "unit": list(unit) if unit is not None else None,
            "spans": [dict(span) for span in spans] if spans else [],
            "diagnostics": (
                [dict(diag) for diag in diagnostics] if diagnostics else []
            ),
        }
        entry.update(extra)
        heapq.heappush(self._heap, (float(elapsed), self._sequence, entry))
        self._sequence += 1
        if len(self._heap) > self.k:
            heapq.heappop(self._heap)
        return True

    def entries(self) -> List[dict]:
        """The kept exemplars, slowest first."""
        ranked = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        return [entry for _elapsed, _sequence, entry in ranked]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SLOWLOG_SCHEMA_VERSION,
            "k": self.k,
            "offered": self.offered,
            "entries": self.entries(),
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "SlowLog":
        log = cls(k=int(doc.get("k", 10)))
        entries = doc.get("entries", [])
        # Feed oldest-slowest last so heap state matches a live log.
        for entry in reversed(list(entries)):
            payload = dict(entry)
            elapsed = payload.pop("elapsed_seconds", 0.0)
            contract = payload.pop("contract", "?")
            unit = payload.pop("unit", None)
            spans = payload.pop("spans", None)
            diagnostics = payload.pop("diagnostics", None)
            log.offer(
                elapsed,
                contract,
                unit=tuple(unit) if unit else None,
                spans=spans,
                diagnostics=diagnostics,
                **payload,
            )
        log.offered = int(doc.get("offered", log.offered))
        return log

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "SlowLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # -- rendering -----------------------------------------------------

    def render_text(self, limit: Optional[int] = None) -> str:
        entries = self.entries()
        if limit is not None:
            entries = entries[:limit]
        lines = [
            f"slowest units ({len(entries)} kept of {self.offered} offered)"
        ]
        for entry in entries:
            unit = entry.get("unit")
            unit_note = (
                f" unit {unit[0]}/{unit[1]}" if unit else ""
            )
            lines.append(
                f"  {entry['contract']}{unit_note}  "
                f"{entry['elapsed_seconds']:.3f}s"
            )
            for line in span_tree_lines(entry.get("spans", [])):
                lines.append(f"    {line}")
            for diagnostic in entry.get("diagnostics", []):
                lines.append(
                    f"    ! {diagnostic.get('kind')}: "
                    f"{diagnostic.get('detail')}"
                )
        return "\n".join(lines) + "\n"
