"""``repro report`` — one document over every telemetry source.

Builds a structured report (and its human rendering) from any subset
of: a metrics document (``--metrics-out``), a run ledger, a slowlog,
and the perf-history trajectory.  Sections:

* **phases** — per-phase time attribution from the ``phase.seconds``
  histograms, with each phase's share of the attributable wall time
  (the ``recover`` span nests the others and is excluded from shares);
* **tiers** — result-cache / function-memo hit rates from the
  counters, plus the per-record tier outcome counts from the ledger;
* **hotspots** — profiler step attribution aggregated across ledger
  records;
* **slowest** — the slowest ledger records and, when a slowlog is
  given, the kept exemplars with their span trees;
* **perf_history** — ``benchmarks/perf_history.py check`` outcome and,
  when a tier regressed and both sides carry a ``phases`` section in
  the bench document, the phase whose share of wall time moved most.
  Tiers that *improved* past the threshold render as ``info:`` lines —
  a successful optimisation is reported, not silently passed over.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import parse_key
from repro.obs.ledger import summarize, top_by_elapsed
from repro.obs.profiler import render_hotspots, top_hotspots
from repro.obs.slowlog import SlowLog, span_tree_lines

__all__ = [
    "build_report",
    "perf_history_section",
    "render_report",
]

#: The non-overlapping top-level pipeline phases: shares are computed
#: over these four only.  ``recover`` nests all of them and the
#: ``analysis.*`` passes nest inside ``static_analysis``, so folding
#: either into the denominator would double-count wall time.
_TOP_PHASES = ("disasm", "static_analysis", "tase", "inference")


def _phase_section(doc: Mapping) -> Dict[str, dict]:
    """Per-phase seconds/count/share from a metrics document."""
    phases: Dict[str, dict] = {}
    for key, payload in doc.get("histograms", {}).items():
        name, labels = parse_key(key)
        if name != "phase.seconds" or "phase" not in labels:
            continue
        phases[labels["phase"]] = {
            "seconds": float(payload.get("sum", 0.0)),
            "count": int(payload.get("count", 0)),
        }
    attributable = sum(
        entry["seconds"]
        for phase, entry in phases.items()
        if phase in _TOP_PHASES
    )
    for phase, entry in phases.items():
        if phase in _TOP_PHASES and attributable > 0:
            entry["share"] = entry["seconds"] / attributable
    return dict(sorted(phases.items()))


def _tier_section(doc: Mapping) -> dict:
    """Cache/memo hit-rate breakdown from the counters."""
    counters = doc.get("counters", {})

    def value(key: str) -> int:
        return int(counters.get(key, 0))

    cache_hits = value("cache.hits")
    cache_misses = value("cache.misses")
    memo_memory = value("memo.hits{tier=memory}")
    memo_disk = value("memo.hits{tier=disk}")
    memo_misses = value("memo.misses")
    inf_memory = value("infmemo.hits{tier=memory}")
    inf_disk = value("infmemo.hits{tier=disk}")
    inf_misses = value("infmemo.misses")
    cache_probes = cache_hits + cache_misses
    memo_probes = memo_memory + memo_disk + memo_misses
    inf_probes = inf_memory + inf_disk + inf_misses
    return {
        "result_cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "invalidations": value("cache.invalidations"),
            "hit_rate": cache_hits / cache_probes if cache_probes else None,
        },
        "function_memo": {
            "hits_memory": memo_memory,
            "hits_disk": memo_disk,
            "misses": memo_misses,
            "hit_rate": (
                (memo_memory + memo_disk) / memo_probes
                if memo_probes else None
            ),
        },
        "inference_memo": {
            "hits_memory": inf_memory,
            "hits_disk": inf_disk,
            "misses": inf_misses,
            "hit_rate": (
                (inf_memory + inf_disk) / inf_probes
                if inf_probes else None
            ),
        },
    }


def _aggregate_hotspots(records: Iterable[Mapping]) -> Dict[int, int]:
    """Sum per-record ``hotspots`` tables across the ledger."""
    counts: Dict[int, int] = {}
    for record in records:
        for entry in record.get("hotspots", []) or []:
            pc, steps = int(entry[0]), int(entry[1])
            counts[pc] = counts.get(pc, 0) + steps
    return counts


def _dominant_phase(record: Mapping) -> Optional[str]:
    phases = record.get("phases")
    if not isinstance(phases, Mapping) or not phases:
        return None
    candidates = {
        phase: seconds
        for phase, seconds in phases.items()
        if phase in _TOP_PHASES
    } or dict(phases)
    return max(candidates.items(), key=lambda item: item[1])[0]


def _slowest_section(records: List[Mapping], top: int) -> List[dict]:
    out = []
    for record in top_by_elapsed(records, top):
        out.append({
            "code_sha256": str(record.get("code_sha256", "?"))[:16],
            "elapsed_seconds": float(record.get("elapsed_seconds", 0.0)),
            "strategy": record.get("strategy"),
            "tier": record.get("tier"),
            "functions": record.get("functions"),
            "dominant_phase": _dominant_phase(record),
        })
    return out


def perf_history_section(
    bench_path: str, history_dir: str, threshold: float = 0.2
) -> dict:
    """The trajectory check plus phase-share attribution.

    Runs :func:`repro.obs.perfhistory.check_regression`; when a tier
    regressed, compares the current bench document's ``phases`` section
    (per-phase shares of attributable wall time, written by the
    observability benchmark) against the newest history snapshot's to
    name the phase whose share moved most.
    """
    from repro.obs.perfhistory import (
        calibrate,
        check_improvement,
        check_regression,
        history_entries,
    )

    entries = history_entries(history_dir)
    if not entries or not os.path.exists(bench_path):
        return {"status": "no-history", "failures": []}
    # One shared calibration run: the regression and improvement checks
    # must judge the same machine-speed figure or a noisy calibration
    # could report a tier as both regressed and improved.
    calibration = calibrate()
    failures = check_regression(
        bench_path, history_dir, threshold=threshold, calibration=calibration
    )
    improvements = check_improvement(
        bench_path, history_dir, threshold=threshold, calibration=calibration
    )
    section: dict = {
        "status": "regressed" if failures else "ok",
        "failures": failures,
        "improvements": improvements,
        "baseline_entry": entries[-1][0],
        "threshold": threshold,
    }
    with open(bench_path, encoding="utf-8") as handle:
        current = json.load(handle)
    current_shares = current.get("phases")
    previous_shares = entries[-1][1].get("bench", {}).get("phases")
    if isinstance(current_shares, Mapping) and isinstance(
        previous_shares, Mapping
    ):
        shifts = {}
        for phase in sorted(set(current_shares) | set(previous_shares)):
            cur = current_shares.get(phase)
            prev = previous_shares.get(phase)
            if not isinstance(cur, (int, float)) or not isinstance(
                prev, (int, float)
            ):
                continue
            shifts[phase] = round(float(cur) - float(prev), 6)
        section["phase_shares"] = {
            "current": dict(current_shares),
            "previous": dict(previous_shares),
            "shifts": shifts,
        }
        if shifts:
            mover = max(shifts.items(), key=lambda item: abs(item[1]))
            section["phase_shares"]["mover"] = mover[0]
    elif failures:
        # Regressed but unattributable: one side predates the phases
        # section of the bench document.
        section["phase_shares"] = None
    return section


def build_report(
    metrics_doc: Optional[Mapping] = None,
    ledger_records: Optional[List[Mapping]] = None,
    slowlog: Optional[SlowLog] = None,
    perf: Optional[Mapping] = None,
    top: int = 10,
) -> dict:
    """Assemble the report document from whatever sources are given."""
    report: dict = {"schema": 1}
    if metrics_doc is not None:
        report["phases"] = _phase_section(metrics_doc)
        report["tiers"] = _tier_section(metrics_doc)
    if ledger_records is not None:
        report["ledger"] = summarize(ledger_records)
        hotspots = _aggregate_hotspots(ledger_records)
        if hotspots:
            report["hotspots"] = [
                [pc, steps] for pc, steps in top_hotspots(hotspots, top)
            ]
        report["slowest"] = _slowest_section(list(ledger_records), top)
    if slowlog is not None:
        report["exemplars"] = slowlog.to_dict()
    if perf is not None:
        report["perf_history"] = dict(perf)
    return report


def _render_phases(report: dict, lines: List[str]) -> None:
    phases = report.get("phases")
    ledger = report.get("ledger")
    if not phases:
        return
    lines.append("phase time attribution")
    ledger_phases = (
        ledger.get("phase_seconds", {}) if isinstance(ledger, Mapping) else {}
    )
    for phase, entry in phases.items():
        share = entry.get("share")
        share_note = f"  {share:6.1%}" if share is not None else "        "
        note = ""
        if phase in ledger_phases:
            note = f"  [ledger {ledger_phases[phase]:.3f}s]"
        lines.append(
            f"  {phase:<16} {entry['seconds']:>9.3f}s{share_note}"
            f"  ({entry['count']} spans){note}"
        )
    lines.append("")


def _render_tiers(report: dict, lines: List[str]) -> None:
    tiers = report.get("tiers")
    ledger = report.get("ledger")
    if tiers:
        lines.append("tier hit rates")
        cache = tiers["result_cache"]
        rate = cache["hit_rate"]
        lines.append(
            f"  result cache    {cache['hits']} hits / "
            f"{cache['misses']} misses"
            + (f"  ({rate:.0%} hit rate)" if rate is not None else "")
        )
        memo = tiers["function_memo"]
        rate = memo["hit_rate"]
        lines.append(
            f"  function memo   {memo['hits_memory']} memory + "
            f"{memo['hits_disk']} disk hits / {memo['misses']} misses"
            + (f"  ({rate:.0%} hit rate)" if rate is not None else "")
        )
        # Older report documents predate the inference-memo tier.
        inf = tiers.get("inference_memo")
        if inf is not None:
            rate = inf["hit_rate"]
            lines.append(
                f"  inference memo  {inf['hits_memory']} memory + "
                f"{inf['hits_disk']} disk hits / {inf['misses']} misses"
                + (f"  ({rate:.0%} hit rate)" if rate is not None else "")
            )
    if isinstance(ledger, Mapping) and ledger.get("tiers"):
        rendered = ", ".join(
            f"{tier} {count}" for tier, count in ledger["tiers"].items()
        )
        lines.append(f"  ledger outcomes {rendered}")
    if tiers or (isinstance(ledger, Mapping) and ledger.get("tiers")):
        lines.append("")


def _render_ledger(report: dict, lines: List[str]) -> None:
    ledger = report.get("ledger")
    if not isinstance(ledger, Mapping):
        return
    lines.append(
        f"run ledger: {ledger.get('records', 0)} records, "
        f"{ledger.get('functions', 0)} functions, "
        f"{ledger.get('truncated', 0)} truncated"
    )
    strategies = ledger.get("strategies", {})
    if strategies:
        rendered = ", ".join(
            f"{name} {count}" for name, count in strategies.items()
        )
        lines.append(f"  strategies: {rendered}")
    lines.append("")


def _render_slowest(report: dict, lines: List[str], top: int) -> None:
    slowest = report.get("slowest")
    if slowest:
        lines.append("slowest recoveries")
        for entry in slowest[:top]:
            dominant = entry.get("dominant_phase")
            note = f"  mostly {dominant}" if dominant else ""
            lines.append(
                f"  {entry['code_sha256']}  "
                f"{entry['elapsed_seconds']:.3f}s  "
                f"{entry.get('strategy')}/{entry.get('tier')}{note}"
            )
        lines.append("")
    exemplars = report.get("exemplars")
    if isinstance(exemplars, Mapping) and exemplars.get("entries"):
        lines.append("slow exemplars (with span trees)")
        for entry in exemplars["entries"][:top]:
            unit = entry.get("unit")
            unit_note = f" unit {unit[0]}/{unit[1]}" if unit else ""
            lines.append(
                f"  {entry.get('contract')}{unit_note}  "
                f"{entry.get('elapsed_seconds', 0.0):.3f}s"
            )
            for line in span_tree_lines(entry.get("spans", [])):
                lines.append(f"    {line}")
            for diagnostic in entry.get("diagnostics", []):
                lines.append(
                    f"    ! {diagnostic.get('kind')}: "
                    f"{diagnostic.get('detail')}"
                )
        lines.append("")


def _render_perf(report: dict, lines: List[str]) -> None:
    perf = report.get("perf_history")
    if not isinstance(perf, Mapping):
        return
    status = perf.get("status")
    if status == "no-history":
        lines.append("perf history: no snapshots to compare against")
        lines.append("")
        return
    if status == "ok":
        lines.append(
            "perf history: OK — no tier regressed more than "
            f"{perf.get('threshold', 0.2):.0%} vs entry "
            f"{perf.get('baseline_entry')}"
        )
    else:
        lines.append("perf history: REGRESSED")
        for failure in perf.get("failures", []):
            lines.append(f"  {failure}")
    # Improvements are never silent: a successful optimisation should
    # be as visible in the report as a regression would be.
    for improvement in perf.get("improvements", []):
        lines.append(f"  info: improved — {improvement}")
    shares = perf.get("phase_shares")
    if isinstance(shares, Mapping) and shares.get("mover"):
        mover = shares["mover"]
        shift = shares["shifts"].get(mover, 0.0)
        previous = shares["previous"].get(mover)
        current = shares["current"].get(mover)
        lines.append(
            f"  phase share moved most: {mover} "
            f"({previous:.1%} -> {current:.1%}, {shift:+.1%})"
        )
        for phase, phase_shift in sorted(shares["shifts"].items()):
            if phase != mover and phase_shift < -0.01:
                lines.append(
                    f"  info: {phase} share down {phase_shift:+.1%} "
                    f"({shares['previous'].get(phase, 0.0):.1%} -> "
                    f"{shares['current'].get(phase, 0.0):.1%})"
                )
    elif status == "regressed" and shares is None:
        lines.append(
            "  (no phase-share baseline in the bench history — rerun "
            "the observability benchmark to record one)"
        )
    lines.append("")


def render_report(report: dict, top: int = 10) -> str:
    """The human rendering of :func:`build_report`'s document."""
    lines: List[str] = []
    _render_phases(report, lines)
    _render_tiers(report, lines)
    _render_ledger(report, lines)
    hotspots = report.get("hotspots")
    if hotspots:
        counts = {int(pc): int(steps) for pc, steps in hotspots}
        lines.append(render_hotspots(counts, n=top).rstrip("\n"))
        lines.append("")
    _render_slowest(report, lines, top)
    _render_perf(report, lines)
    while lines and not lines[-1]:
        lines.pop()
    return ("\n".join(lines) + "\n") if lines else "(empty report)\n"
