"""Live telemetry exposition over HTTP (stdlib only).

:class:`TelemetryServer` is a ``ThreadingHTTPServer`` serving three
endpoints:

* ``/metrics`` — the Prometheus text exposition
  (:func:`repro.obs.prom.render_prometheus`), byte-identical to
  ``repro stats --prometheus`` for the same registry;
* ``/healthz`` — liveness (always ``200 ok`` while the server runs);
* ``/ledger/summary`` — the aggregated run-ledger view
  (:func:`repro.obs.ledger.summarize`) as JSON.

Two source modes, matching the two CLI entry points:

* **live objects** (``registry=`` / ``ledger=``): the embedded mode —
  ``repro batch --serve-metrics PORT`` starts the server on a
  background thread and requests read the batch's registry and ledger
  as they fill;
* **paths** (``metrics_path=`` / ``ledger_path=``): the standalone
  ``repro serve-metrics`` mode — each request re-reads the documents,
  so a directory that a batch keeps appending to is served fresh.

This is the first concrete piece of ROADMAP item 1's
recovery-as-a-service daemon: the scrape surface exists before the
daemon does.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.ledger import RunLedger, read_ledger, summarize
from repro.obs.metrics import MetricsRegistry, load_metrics
from repro.obs.prom import render_prometheus

__all__ = ["TelemetryServer"]


class TelemetryServer:
    """Serves ``/metrics``, ``/healthz`` and ``/ledger/summary``."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        metrics_path: Optional[str] = None,
        ledger: Optional[RunLedger] = None,
        ledger_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.metrics_path = metrics_path
        self.ledger = ledger
        self.ledger_path = ledger_path
        self._httpd = ThreadingHTTPServer(
            (host, port), self._handler_class()
        )
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- addressing ----------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Serve on a daemon background thread; returns self."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the standalone CLI mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- payloads ------------------------------------------------------

    def metrics_text(self) -> str:
        """The exposition body; raises LookupError without a source."""
        if self.registry is not None:
            return render_prometheus(self.registry.to_dict())
        if self.metrics_path is not None:
            doc = load_metrics(self.metrics_path)
            if doc is None:
                raise LookupError(
                    f"no metrics document at {self.metrics_path}"
                )
            return render_prometheus(doc)
        raise LookupError("no metrics source configured")

    def ledger_summary(self) -> dict:
        """The summary payload; raises LookupError without a source."""
        if self.ledger is not None:
            return summarize(self.ledger.all_records())
        if self.ledger_path is not None:
            return summarize(read_ledger(self.ledger_path))
        raise LookupError("no ledger source configured")

    # -- request handling ----------------------------------------------

    def _handler_class(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, format, *args):  # noqa: A002
                pass  # scrapes must not spam the batch's stderr

            def _send(self, status: int, content_type: str, body: str):
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self):
                path = self.path.split("?", 1)[0]
                if path == "/healthz":
                    self._send(200, "text/plain; charset=utf-8", "ok\n")
                elif path == "/metrics":
                    try:
                        body = server.metrics_text()
                    except LookupError as exc:
                        self._send(
                            503, "text/plain; charset=utf-8", f"{exc}\n"
                        )
                        return
                    self._send(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        body,
                    )
                elif path == "/ledger/summary":
                    try:
                        summary = server.ledger_summary()
                    except LookupError as exc:
                        self._send(
                            404, "text/plain; charset=utf-8", f"{exc}\n"
                        )
                        return
                    self._send(
                        200,
                        "application/json; charset=utf-8",
                        json.dumps(summary, indent=2, sort_keys=True) + "\n",
                    )
                else:
                    self._send(
                        404, "text/plain; charset=utf-8", "not found\n"
                    )

        return Handler
