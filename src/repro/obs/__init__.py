"""``repro.obs`` — the observability core of the recovery pipeline.

Three pieces, all process-local and dependency-free:

* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms in a mergeable :class:`MetricsRegistry`, with
  :data:`NULL_REGISTRY` as the no-op disabled backend;
* :mod:`repro.obs.trace` — a :class:`SpanTracer` emitting structured
  JSONL span/event records (:data:`NULL_TRACER` when disabled);
* :mod:`repro.obs.prom` / :mod:`repro.obs.stats` — the Prometheus text
  exposition and the human ``repro stats`` rendering of a document;
* :mod:`repro.obs.ledger` — the append-only per-recovery run ledger;
* :mod:`repro.obs.profiler` — superblock hot-loop step attribution;
* :mod:`repro.obs.slowlog` — the K slowest batch units with evidence;
* :mod:`repro.obs.httpexp` / :mod:`repro.obs.report` — the live
  ``/metrics`` endpoint and the ``repro report`` document (imported
  lazily; not re-exported here to keep this package import cheap).

:func:`phase_span` is the one-liner instrumented code uses at phase
boundaries: it opens a tracer span and, on exit, observes the duration
into the ``phase.seconds{phase=...}`` histogram.  When both backends
are the shared null singletons it returns a no-op context manager
without reading any clock.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    read_ledger,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    dump_metrics,
    load_metrics,
    metric_key,
    parse_key,
)
from repro.obs.profiler import HotLoopProfiler
from repro.obs.prom import render_prometheus, validate_exposition
from repro.obs.slowlog import SlowLog
from repro.obs.stats import render_stats
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanTracer,
    read_trace,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "LEDGER_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "HotLoopProfiler",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RunLedger",
    "SlowLog",
    "SpanTracer",
    "dump_metrics",
    "load_metrics",
    "metric_key",
    "parse_key",
    "phase_span",
    "read_ledger",
    "read_trace",
    "render_prometheus",
    "render_stats",
    "validate_exposition",
]


class _NullPhase:
    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_PHASE = _NullPhase()


class _PhaseSpan:
    """Times one pipeline phase: tracer span + duration histogram."""

    __slots__ = ("_metrics", "_span", "_phase", "_t0")

    def __init__(
        self,
        metrics: MetricsRegistry,
        tracer: SpanTracer,
        phase: str,
        attrs: dict,
    ) -> None:
        self._metrics = metrics
        self._phase = phase
        self._span = tracer.span(phase, **attrs)
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseSpan":
        self._span.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        self._metrics.histogram("phase.seconds", phase=self._phase).observe(elapsed)
        self._span.__exit__(exc_type, exc, tb)


def phase_span(
    metrics: MetricsRegistry, tracer: SpanTracer, phase: str, **attrs: Any
):
    """A context manager timing one phase; free when both backends are null."""
    if metrics is NULL_REGISTRY and tracer is NULL_TRACER:
        return _NULL_PHASE
    return _PhaseSpan(metrics, tracer, phase, attrs)
